// MetricsRegistry: the unified, lock-cheap metrics plane of the flight
// recorder (DESIGN.md §13).
//
// Every layer of the stack — copy meter, CloudClient retry loop, AsyncBatch,
// the congestion fair queue, the schemes — registers named counters, gauges,
// and log-scaled histograms here once (under a mutex) and then updates them
// through handles that touch nothing but cache-line-padded per-thread cells:
// one relaxed atomic RMW per update, no shared-line ping-pong, no ordering.
// That is the budget the 10^6-tenant discrete-event hot path can afford.
//
// Reads (snapshot / to_json / value) merge the cells. They are exact once
// writers have quiesced (join / event-loop drain) and approximate while
// writers race — they are statistics, not synchronization.
//
// Compile-out: configuring with -DHYRD_OBS_METRICS=OFF defines
// HYRD_OBS_DISABLED, which turns every handle update into a no-op the
// optimizer deletes (reads then return 0 — including the copy meter, so the
// E2 databus assertions only hold in the default ON build). This is what the
// "<5% with metrics enabled" comparison in EXPERIMENTS.md E5 builds against.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"

namespace hyrd::obs {

#if defined(HYRD_OBS_DISABLED)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/// Power-of-two shard count: enough to keep 8-16 hardware threads off each
/// other's lines without bloating snapshot cost.
inline constexpr std::size_t kMetricShards = 16;

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct alignas(64) GaugeCell {
  std::atomic<std::int64_t> value{0};
};

namespace internal {

/// Stable per-thread shard slot: threads are striped round-robin across the
/// cells, so two hot threads almost never share one.
inline std::size_t shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kMetricShards - 1);
  return slot;
}

struct CounterState {
  CounterCell cells[kMetricShards];
};

struct GaugeState {
  GaugeCell cells[kMetricShards];
};

struct HistogramState {
  double base = 1.0;
  double growth = 2.0;
  std::size_t buckets = 0;
  // Shard-major: cell (shard, bucket) at [shard * buckets + bucket]. Buckets
  // of one shard are contiguous; different shards land on different lines
  // for any realistic bucket count.
  std::vector<std::atomic<std::uint64_t>> counts;
};

}  // namespace internal

/// Monotone counter handle. Copyable, trivially destructible; the default-
/// constructed handle is an inert no-op (useful for optional metrics).
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n) const {
    if constexpr (!kMetricsEnabled) {
      (void)n;
      return;
    }
    if (state_ == nullptr) return;
    state_->cells[internal::shard_index()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void inc() const { add(1); }

  [[nodiscard]] std::uint64_t value() const {
    if (state_ == nullptr) return 0;
    std::uint64_t sum = 0;
    for (const auto& c : state_->cells) {
      sum += c.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// Zeroes every cell (benches/tests only; racing writers are benign).
  void reset() const {
    if (state_ == nullptr) return;
    for (auto& c : state_->cells) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(internal::CounterState* state) : state_(state) {}
  internal::CounterState* state_ = nullptr;
};

/// Up/down gauge (e.g. in-flight ops). Sharded the same way: the current
/// value is the sum of per-cell deltas, so inc on one thread and dec on
/// another still net to zero.
class Gauge {
 public:
  Gauge() = default;

  void add(std::int64_t delta) const {
    if constexpr (!kMetricsEnabled) {
      (void)delta;
      return;
    }
    if (state_ == nullptr) return;
    state_->cells[internal::shard_index()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void inc() const { add(1); }
  void dec() const { add(-1); }

  [[nodiscard]] std::int64_t value() const {
    if (state_ == nullptr) return 0;
    std::int64_t sum = 0;
    for (const auto& c : state_->cells) {
      sum += c.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() const {
    if (state_ == nullptr) return;
    for (auto& c : state_->cells) c.value.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(internal::GaugeState* state) : state_(state) {}
  internal::GaugeState* state_ = nullptr;
};

/// Log-scaled histogram handle with the exact bucketing of
/// common::LogHistogram (shared via LogHistogram::bucket_index), so a
/// snapshot merged out of the shards equals a single-stream LogHistogram
/// fed the same values.
class Histogram {
 public:
  Histogram() = default;

  void record(double x) const {
    if constexpr (!kMetricsEnabled) {
      (void)x;
      return;
    }
    if (state_ == nullptr) return;
    const std::size_t bucket = common::LogHistogram::bucket_index(
        x, state_->base, state_->growth, state_->buckets);
    state_->counts[internal::shard_index() * state_->buckets + bucket]
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Shards merged into a plain LogHistogram (percentiles, render, merge).
  [[nodiscard]] common::LogHistogram snapshot() const {
    if (state_ == nullptr) return common::LogHistogram(1.0, 2.0, 1);
    std::vector<std::size_t> counts(state_->buckets, 0);
    for (std::size_t s = 0; s < kMetricShards; ++s) {
      for (std::size_t b = 0; b < state_->buckets; ++b) {
        counts[b] += state_->counts[s * state_->buckets + b].load(
            std::memory_order_relaxed);
      }
    }
    return common::LogHistogram(state_->base, state_->growth,
                                std::move(counts));
  }

  void reset() const {
    if (state_ == nullptr) return;
    for (auto& c : state_->counts) c.store(0, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(internal::HistogramState* state) : state_(state) {}
  internal::HistogramState* state_ = nullptr;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }

  /// Registers (or finds) a counter. Registration locks; the returned
  /// handle never does. Handles stay valid for the registry's lifetime.
  Counter counter(const std::string& name) {
    std::lock_guard lock(mu_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<internal::CounterState>();
    return Counter(slot.get());
  }

  Gauge gauge(const std::string& name) {
    std::lock_guard lock(mu_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<internal::GaugeState>();
    return Gauge(slot.get());
  }

  /// Re-registering an existing histogram returns it unchanged; the
  /// geometry of the first registration wins (asserted in debug builds).
  Histogram histogram(const std::string& name, double base, double growth,
                      std::size_t buckets) {
    std::lock_guard lock(mu_);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
      slot = std::make_unique<internal::HistogramState>();
      slot->base = base;
      slot->growth = growth;
      slot->buckets = buckets == 0 ? 1 : buckets;
      slot->counts =
          std::vector<std::atomic<std::uint64_t>>(kMetricShards * slot->buckets);
    }
    assert(slot->base == base && slot->growth == growth &&
           slot->buckets == (buckets == 0 ? 1 : buckets) &&
           "histogram re-registered with a different geometry");
    return Histogram(slot.get());
  }

  struct Snapshot {
    // std::map: name-sorted, so serialization order is deterministic.
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, common::LogHistogram> histograms;
  };

  [[nodiscard]] Snapshot snapshot() const {
    std::lock_guard lock(mu_);
    Snapshot snap;
    for (const auto& [name, state] : counters_) {
      snap.counters.emplace(name, Counter(state.get()).value());
    }
    for (const auto& [name, state] : gauges_) {
      snap.gauges.emplace(name, Gauge(state.get()).value());
    }
    for (const auto& [name, state] : histograms_) {
      snap.histograms.emplace(name, Histogram(state.get()).snapshot());
    }
    return snap;
  }

  /// One JSON object, keys sorted (deterministic given quiesced writers).
  [[nodiscard]] std::string to_json() const {
    const Snapshot snap = snapshot();
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(v));
      out += (first ? "" : ",");
      out += "\"" + name + "\":" + buf;
      first = false;
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      out += (first ? "" : ",");
      out += "\"" + name + "\":" + buf;
      first = false;
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : snap.histograms) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"total\":%llu,\"p50\":%.6f,\"p99\":%.6f}",
                    static_cast<unsigned long long>(h.total()),
                    h.percentile(50.0), h.percentile(99.0));
      out += (first ? "" : ",");
      out += "\"" + name + "\":" + buf;
      first = false;
    }
    out += "}}";
    return out;
  }

  /// Zeroes every registered metric (benches/tests).
  void reset() {
    std::lock_guard lock(mu_);
    for (const auto& [name, state] : counters_) Counter(state.get()).reset();
    for (const auto& [name, state] : gauges_) Gauge(state.get()).reset();
    for (const auto& [name, state] : histograms_) {
      Histogram(state.get()).reset();
    }
  }

 private:
  mutable std::mutex mu_;
  // node-based maps: handle pointers stay valid as registrations grow.
  std::map<std::string, std::unique_ptr<internal::CounterState>> counters_;
  std::map<std::string, std::unique_ptr<internal::GaugeState>> gauges_;
  std::map<std::string, std::unique_ptr<internal::HistogramState>> histograms_;
};

}  // namespace hyrd::obs
