#include "obs/trace.h"

#include <cstdio>

namespace hyrd::obs {

namespace {

/// Minimal JSON string escaping for the one dynamic field (provider names,
/// object keys): quotes, backslashes, and control bytes.
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace

std::string TraceRecorder::to_chrome_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\"traceEvents\":[";
  char buf[192];
  bool first = true;
  for (const TraceSpan& s : spans_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"cat\":\"";
    out += s.cat;
    out += "\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"pid\":%u,\"tid\":%llu,\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<unsigned>(s.pid),
                  static_cast<unsigned long long>(s.tid),
                  static_cast<double>(s.ts) / 1000.0,
                  static_cast<double>(s.dur) / 1000.0);
    out += buf;
    if (s.arg_count > 0 || !s.detail.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (std::uint32_t i = 0; i < s.arg_count; ++i) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld",
                      first_arg ? "" : ",", s.args[i].key, s.args[i].value);
        out += buf;
        first_arg = false;
      }
      if (!s.detail.empty()) {
        out += first_arg ? "\"what\":\"" : ",\"what\":\"";
        append_escaped(out, s.detail);
        out += "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace hyrd::obs
