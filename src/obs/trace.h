// Per-op trace spans: the second leg of the flight recorder (DESIGN.md §13).
//
// A TraceSpan is one completed operation at one layer — a tenant op attempt,
// a CloudClient retry loop, one AsyncBatch provider op, a fair-queue 429 —
// stamped with *virtual-time* begin/duration, so a trace of a --seed run is
// byte-identical across runs and machines. Spans carry a static name/
// category, the issuing tenant id (rendered as the Chrome tid), up to four
// numeric args, and one optional dynamic string (provider name and the
// like).
//
// Recording is opt-in and scoped: nothing is captured unless a TraceScope
// has installed a TraceRecorder, and the fast path when inactive is a single
// relaxed load (trace_active()). The recorder serializes to the Chrome
// trace_event JSON array format, so `bench_scaleout --campaign --trace=f`
// output loads directly in chrome://tracing / Perfetto.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"

namespace hyrd::obs {

struct TraceSpan {
  const char* name = "";  // static storage only (literals)
  const char* cat = "";   // static storage only
  std::uint64_t tid = 0;  // issuing tenant / flow id
  std::uint32_t pid = 0;  // 0 = recorder default (set at record time)
  common::SimDuration ts = 0;   // virtual begin
  common::SimDuration dur = 0;  // virtual duration (0 = instant event)

  struct Arg {
    const char* key = "";
    long long value = 0;
  };
  std::array<Arg, 4> args{};
  std::uint32_t arg_count = 0;
  std::string detail;  // serialized as args.what when non-empty

  TraceSpan& arg(const char* key, long long value) {
    if (arg_count < args.size()) args[arg_count++] = {key, value};
    return *this;
  }
};

class TraceRecorder {
 public:
  /// Keep only spans of this tenant/flow id (single-tenant inspection).
  void set_tid_filter(std::uint64_t tid) {
    std::lock_guard lock(mu_);
    tid_filter_ = tid;
  }
  void clear_tid_filter() {
    std::lock_guard lock(mu_);
    tid_filter_.reset();
  }

  /// Chrome pid stamped on subsequently recorded spans that carry pid 0 —
  /// the campaign driver uses one pid per scheme, so a multi-scheme trace
  /// renders as separate process lanes.
  void set_default_pid(std::uint32_t pid) {
    std::lock_guard lock(mu_);
    default_pid_ = pid;
  }

  void record(TraceSpan span) {
    std::lock_guard lock(mu_);
    if (tid_filter_.has_value() && span.tid != *tid_filter_) return;
    if (span.pid == 0) span.pid = default_pid_;
    spans_.push_back(std::move(span));
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return spans_.size();
  }
  [[nodiscard]] std::vector<TraceSpan> spans() const {
    std::lock_guard lock(mu_);
    return spans_;
  }
  void clear() {
    std::lock_guard lock(mu_);
    spans_.clear();
  }

  /// Chrome trace_event JSON ({"traceEvents":[...]}): complete events
  /// (ph "X"), ts/dur in microseconds of virtual time, fixed %.3f
  /// formatting — byte-identical for identical span streams.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::optional<std::uint64_t> tid_filter_;
  std::uint32_t default_pid_ = 1;
};

namespace internal {
inline std::atomic<TraceRecorder*> g_recorder{nullptr};
}  // namespace internal

/// The inactive-path cost at every instrumentation site: one relaxed load.
[[nodiscard]] inline bool trace_active() {
  return internal::g_recorder.load(std::memory_order_relaxed) != nullptr;
}

inline void emit(TraceSpan&& span) {
  TraceRecorder* recorder =
      internal::g_recorder.load(std::memory_order_relaxed);
  if (recorder != nullptr) recorder->record(std::move(span));
}

/// RAII installer, nestable (inner scope wins; outer restored on exit).
class TraceScope {
 public:
  explicit TraceScope(TraceRecorder* recorder)
      : prev_(internal::g_recorder.exchange(recorder,
                                            std::memory_order_relaxed)) {}
  ~TraceScope() {
    internal::g_recorder.store(prev_, std::memory_order_relaxed);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* prev_;
};

}  // namespace hyrd::obs
