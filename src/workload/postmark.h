// PostMark: from-scratch reimplementation of Katcher's small-file benchmark
// (the tool the paper uses for Figures 5 and 6).
//
// Phase 1 creates an initial pool of files with sizes uniform in
// [min_size, max_size]; phase 2 runs a transaction mix of reads, updates
// (the classic PostMark "append"), creates and deletes against the pool;
// phase 3 optionally deletes everything. All latencies are virtual and per
// transaction-type percentiles come back in the report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/storage_client.h"
#include "workload/size_dist.h"

namespace hyrd::workload {

/// How PostMark draws file sizes within [min_size, max_size].
enum class SizeMode {
  kMixture,     // Agrawal-style small/medium/large mixture (default; the
                // "random text and image files" population of the paper)
  kLogUniform,  // uniform in log-size
  kUniform,     // classic PostMark: uniform in bytes
};

struct PostMarkConfig {
  std::size_t initial_files = 50;
  std::size_t transactions = 200;
  std::uint64_t min_size = 1024;                 // 1 KB (paper)
  std::uint64_t max_size = 100ull * 1024 * 1024; // 100 MB (paper)
  // Transaction mix (weights; normalized internally). PostMark's default
  // biases read/append vs create/delete 1:1 and read vs append 1:1.
  double w_read = 5.0;
  double w_update = 3.0;
  double w_create = 1.0;
  double w_delete = 1.0;
  std::uint64_t update_block = 4096;  // bytes rewritten by an update txn
  std::size_t subdirectories = 10;
  bool cleanup = false;  // phase 3
  std::uint64_t seed = 20150529;     // IPDPS'15 conference date
  SizeMode size_mode = SizeMode::kMixture;
  SizeDistParams mixture = {};       // used when size_mode == kMixture

  /// Access skew (paper §II-B, citing Agrawal/Lofstead: "small files that
  /// are 4 KB or smaller account for the most user accesses"): probability
  /// that a read/update transaction targets the small-file population when
  /// both populations exist. 0.5 disables the skew.
  double small_txn_bias = 0.8;
  std::uint64_t small_cut = 64 * 1024;  // pool split point
};

struct PostMarkReport {
  std::string client;
  std::size_t reads = 0, updates = 0, creates = 0, deletes = 0;
  std::uint64_t bytes_read = 0, bytes_written = 0;
  std::uint64_t failed = 0;
  std::uint64_t degraded_reads = 0;
  common::Samples read_ms;
  common::Samples update_ms;
  common::Samples create_ms;
  common::Samples delete_ms;
  common::Samples all_ms;

  [[nodiscard]] double mean_latency_ms() const { return all_ms.mean(); }
};

class PostMark {
 public:
  explicit PostMark(PostMarkConfig config = {}) : config_(config) {}

  [[nodiscard]] const PostMarkConfig& config() const { return config_; }

  /// Runs the benchmark against `client`. Deterministic given the seed:
  /// the same op sequence (paths, sizes, order) is issued to every client,
  /// making scheme comparisons paired.
  PostMarkReport run(core::StorageClient& client) const;

 private:
  std::uint64_t draw_size(common::Xoshiro256& rng) const;

  PostMarkConfig config_;
};

}  // namespace hyrd::workload
