#include "workload/popularity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hyrd::workload {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  assert(n > 0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(common::Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

}  // namespace hyrd::workload
