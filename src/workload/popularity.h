// Access-popularity models. Real object-store traffic is heavily skewed —
// a few hot objects take most reads (the premise behind Fig. 2's
// "frequently accessed large files are also placed in performance-
// oriented providers"). ZipfSampler draws ranks 0..n-1 with
// P(rank i) ∝ 1/(i+1)^s via a precomputed CDF.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace hyrd::workload {

class ZipfSampler {
 public:
  /// `s` is the skew exponent: 0 = uniform, ~1 = classic Zipf, larger =
  /// hotter head.
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  [[nodiscard]] double skew() const { return s_; }

  /// Draws a rank in [0, n).
  std::size_t sample(common::Xoshiro256& rng) const;

  /// Probability mass of rank i (for tests / analysis).
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  double s_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

}  // namespace hyrd::workload
