#include "workload/trace_io.h"

#include <charconv>

namespace hyrd::workload {

namespace {
constexpr std::string_view kHeader =
    "month,bytes_written,bytes_read,write_requests,read_requests";

std::string_view strip_cr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return line;
}

template <typename T>
bool parse_number(std::string_view field, T& out) {
  auto [p, ec] = std::from_chars(field.data(), field.data() + field.size(),
                                 out);
  return ec == std::errc{} && p == field.data() + field.size();
}

}  // namespace

std::string trace_to_csv(const std::vector<MonthSpec>& trace) {
  std::string out(kHeader);
  out += '\n';
  for (const auto& m : trace) {
    out += std::to_string(m.month) + ',' + std::to_string(m.bytes_written) +
           ',' + std::to_string(m.bytes_read) + ',' +
           std::to_string(m.write_requests) + ',' +
           std::to_string(m.read_requests) + '\n';
  }
  return out;
}

common::Result<std::vector<MonthSpec>> trace_from_csv(std::string_view csv) {
  std::vector<MonthSpec> trace;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto end = csv.find('\n', start);
    std::string_view line = strip_cr(
        csv.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                        : end - start));
    start = end == std::string_view::npos ? csv.size() + 1 : end + 1;
    ++line_no;

    if (line.empty()) continue;
    if (line_no == 1) {
      if (line != kHeader) {
        return common::invalid_argument("bad CSV header: " +
                                        std::string(line));
      }
      continue;
    }

    MonthSpec spec;
    std::string_view fields[5];
    std::size_t field_count = 0;
    std::size_t field_start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (field_count >= 5) {
          return common::invalid_argument(
              "too many fields on line " + std::to_string(line_no));
        }
        fields[field_count++] = line.substr(field_start, i - field_start);
        field_start = i + 1;
      }
    }
    if (field_count != 5) {
      return common::invalid_argument("expected 5 fields on line " +
                                      std::to_string(line_no));
    }
    if (!parse_number(fields[0], spec.month) ||
        !parse_number(fields[1], spec.bytes_written) ||
        !parse_number(fields[2], spec.bytes_read) ||
        !parse_number(fields[3], spec.write_requests) ||
        !parse_number(fields[4], spec.read_requests)) {
      return common::invalid_argument("non-numeric field on line " +
                                      std::to_string(line_no));
    }
    trace.push_back(spec);
  }
  if (trace.empty()) {
    return common::invalid_argument("trace CSV holds no data rows");
  }
  return trace;
}

}  // namespace hyrd::workload
