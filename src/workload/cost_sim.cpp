#include "workload/cost_sim.h"

#include "common/bytes.h"

namespace hyrd::workload {

CostSimReport CostSimulator::replay(const std::vector<MonthSpec>& trace,
                                    core::StorageClient& client,
                                    cloud::CloudRegistry& registry) const {
  CostSimReport report;
  report.client = client.name();
  common::Xoshiro256 rng(config_.seed);
  SizeDist sizes(config_.sizes);

  struct PoolFile {
    std::string path;
    std::uint64_t size;
  };
  std::vector<PoolFile> small_pool;
  std::vector<PoolFile> large_pool;
  constexpr std::uint64_t kSmallCut = 64 * 1024;

  double cumulative = 0.0;
  for (const auto& month : trace) {
    const auto write_target = static_cast<std::uint64_t>(
        static_cast<double>(month.bytes_written) * config_.scale);
    const auto read_target = static_cast<std::uint64_t>(
        static_cast<double>(month.bytes_read) * config_.scale);

    // Ingest until the month's (scaled) write volume is reached.
    std::uint64_t written = 0;
    while (written < write_target) {
      const std::uint64_t size = sizes.sample(rng);
      const std::string path = "/ia/m" + std::to_string(month.month) + "/f" +
                               std::to_string(report.files_created);
      const common::Bytes data = common::patterned(size, rng());
      auto r = client.put(path, data);
      if (r.status.is_ok()) {
        (size <= kSmallCut ? small_pool : large_pool).push_back({path, size});
        written += size;
        ++report.files_created;
        ++report.issued.write_requests;
      }
    }
    report.issued.bytes_written += written;

    // Serve reads until the month's (scaled) read volume is reached, with
    // requests biased toward the small-file population.
    std::uint64_t read = 0;
    while (read < read_target && (!small_pool.empty() || !large_pool.empty())) {
      const bool pick_small =
          !small_pool.empty() &&
          (large_pool.empty() || rng.chance(config_.small_read_bias));
      const auto& pool = pick_small ? small_pool : large_pool;
      const auto& f = pool[rng.uniform_int(0, pool.size() - 1)];
      auto r = client.get(f.path);
      if (r.status.is_ok()) {
        read += r.data.size();
        ++report.issued.read_requests;
      }
    }
    report.issued.bytes_read += read;

    // Month close: storage is billed on resident bytes, and the month's
    // transfer/transaction charges are finalized.
    registry.close_month_all();
    double month_cost = 0.0;
    for (const auto& p : registry.all()) {
      month_cost += p->billing().bills().back().total();
    }
    const double full_scale = month_cost / config_.scale;
    cumulative += full_scale;
    report.monthly_cost.push_back(full_scale);
    report.cumulative_cost.push_back(cumulative);
  }
  return report;
}

}  // namespace hyrd::workload
