// File-size distributions matching the workload facts HyRD's policy is
// built on (paper §II-B, citing Agrawal et al. FAST'07):
//   * more than 50 % of files are 4 KB or smaller;
//   * files of a few MB (3–9 MB) hold ~80 % of total bytes;
//   * large files are 10–20 % of the population.
// Modelled as a three-component clamped-lognormal mixture.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace hyrd::workload {

struct SizeDistParams {
  // Component weights (must sum to 1).
  double p_small = 0.54;   // <= 4 KB regime
  double p_medium = 0.30;  // 4 KB .. 1 MB regime
  double p_large = 0.16;   // multi-MB regime

  // Lognormal (median, sigma) per component, with clamping bounds.
  double small_median = 1800.0;
  double small_sigma = 0.7;
  std::uint64_t small_min = 256, small_max = 4 * 1024;

  double medium_median = 48.0 * 1024;
  double medium_sigma = 1.1;
  std::uint64_t medium_min = 4 * 1024 + 1, medium_max = 1024 * 1024;

  double large_median = 5.0 * 1024 * 1024;
  double large_sigma = 0.55;
  std::uint64_t large_min = 1024 * 1024 + 1,
                large_max = 100ull * 1024 * 1024;
};

class SizeDist {
 public:
  explicit SizeDist(SizeDistParams params = {}) : params_(params) {}

  [[nodiscard]] const SizeDistParams& params() const { return params_; }

  /// Draws one file size in bytes.
  std::uint64_t sample(common::Xoshiro256& rng) const;

  /// Draws a size from only the small (<=4 KB) component.
  std::uint64_t sample_small(common::Xoshiro256& rng) const;
  /// Draws a size from only the large (multi-MB) component.
  std::uint64_t sample_large(common::Xoshiro256& rng) const;

 private:
  SizeDistParams params_;
};

}  // namespace hyrd::workload
