#include "workload/postmark.h"

#include <algorithm>
#include <cmath>

#include "common/bytes.h"

namespace hyrd::workload {

std::uint64_t PostMark::draw_size(common::Xoshiro256& rng) const {
  switch (config_.size_mode) {
    case SizeMode::kMixture: {
      const SizeDist dist(config_.mixture);
      return std::clamp(dist.sample(rng), config_.min_size, config_.max_size);
    }
    case SizeMode::kLogUniform: {
      const double lo = std::log(static_cast<double>(config_.min_size));
      const double hi = std::log(static_cast<double>(config_.max_size));
      return static_cast<std::uint64_t>(
          std::exp(lo + (hi - lo) * rng.uniform()));
    }
    case SizeMode::kUniform:
      return rng.uniform_int(config_.min_size, config_.max_size);
  }
  return config_.min_size;
}

PostMarkReport PostMark::run(core::StorageClient& client) const {
  PostMarkReport report;
  report.client = client.name();
  common::Xoshiro256 rng(config_.seed);

  struct PoolFile {
    std::string path;
    std::uint64_t size;
  };
  std::vector<PoolFile> pool;
  pool.reserve(config_.initial_files + config_.transactions);
  std::size_t next_id = 0;

  // Pick a transaction target with the configured small-file access skew.
  auto pick_victim = [&]() -> std::size_t {
    std::vector<std::size_t> small_idx, large_idx;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      (pool[i].size <= config_.small_cut ? small_idx : large_idx).push_back(i);
    }
    if (small_idx.empty()) return large_idx[rng.uniform_int(0, large_idx.size() - 1)];
    if (large_idx.empty()) return small_idx[rng.uniform_int(0, small_idx.size() - 1)];
    const auto& side =
        rng.chance(config_.small_txn_bias) ? small_idx : large_idx;
    return side[rng.uniform_int(0, side.size() - 1)];
  };

  auto make_path = [&](std::size_t id) {
    const std::size_t sub = id % std::max<std::size_t>(config_.subdirectories, 1);
    return "/postmark/s" + std::to_string(sub) + "/f" + std::to_string(id);
  };

  auto create_file = [&](common::Samples& samples) {
    const std::uint64_t size = draw_size(rng);
    const std::string path = make_path(next_id++);
    const common::Bytes data = common::patterned(size, rng());
    auto r = client.put(path, data);
    samples.add(common::to_ms(r.latency));
    report.all_ms.add(common::to_ms(r.latency));
    if (r.status.is_ok()) {
      pool.push_back({path, size});
      report.bytes_written += size;
    } else {
      ++report.failed;
    }
  };

  // Phase 1: initial pool.
  for (std::size_t i = 0; i < config_.initial_files; ++i) {
    create_file(report.create_ms);
    ++report.creates;
  }

  // Phase 2: transactions.
  const double total_w =
      config_.w_read + config_.w_update + config_.w_create + config_.w_delete;
  for (std::size_t t = 0; t < config_.transactions; ++t) {
    double u = rng.uniform() * total_w;
    if (pool.empty()) {
      create_file(report.create_ms);
      ++report.creates;
      continue;
    }
    if (u < config_.w_read) {
      const auto& f = pool[pick_victim()];
      auto r = client.get(f.path);
      report.read_ms.add(common::to_ms(r.latency));
      report.all_ms.add(common::to_ms(r.latency));
      ++report.reads;
      if (r.status.is_ok()) {
        report.bytes_read += r.data.size();
        if (r.degraded) ++report.degraded_reads;
      } else {
        ++report.failed;
      }
      continue;
    }
    u -= config_.w_read;
    if (u < config_.w_update) {
      const auto& f = pool[pick_victim()];
      const std::uint64_t block = std::min(config_.update_block, f.size);
      const std::uint64_t offset =
          f.size > block ? rng.uniform_int(0, f.size - block) : 0;
      const common::Bytes data = common::patterned(block, rng());
      auto r = client.update(f.path, offset, data);
      report.update_ms.add(common::to_ms(r.latency));
      report.all_ms.add(common::to_ms(r.latency));
      ++report.updates;
      if (r.status.is_ok()) {
        report.bytes_written += block;
      } else {
        ++report.failed;
      }
      continue;
    }
    u -= config_.w_update;
    if (u < config_.w_create) {
      create_file(report.create_ms);
      ++report.creates;
      continue;
    }
    // Delete.
    const std::size_t victim = rng.uniform_int(0, pool.size() - 1);
    auto r = client.remove(pool[victim].path);
    report.delete_ms.add(common::to_ms(r.latency));
    report.all_ms.add(common::to_ms(r.latency));
    ++report.deletes;
    if (!r.status.is_ok()) ++report.failed;
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(victim));
  }

  // Phase 3: cleanup.
  if (config_.cleanup) {
    for (const auto& f : pool) {
      auto r = client.remove(f.path);
      report.delete_ms.add(common::to_ms(r.latency));
      ++report.deletes;
      if (!r.status.is_ok()) ++report.failed;
    }
    pool.clear();
  }
  return report;
}

}  // namespace hyrd::workload
