// CostSimulator: the paper's Fig. 4 experiment — replay the (synthesized)
// Internet Archive year against a storage scheme and meter every
// provider's monthly bill.
//
// Because every bill component (storage, transfer, transactions) is linear
// in the issued volume, the replay runs at a configurable scale factor and
// reports dollars scaled back to full trace volume; ratios between schemes
// are exact regardless of scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/registry.h"
#include "common/rng.h"
#include "core/storage_client.h"
#include "workload/ia_trace.h"
#include "workload/size_dist.h"

namespace hyrd::workload {

struct CostSimConfig {
  /// Fraction of the full trace volume actually issued (default 1/4000:
  /// ~0.5 GB/month of simulated puts instead of 2 TB).
  double scale = 1.0 / 4000.0;
  /// Fraction of read requests directed at the small-file population
  /// (paper §II-B: small files take most accesses, large files most bytes).
  double small_read_bias = 0.85;
  std::uint64_t seed = 20080201;  // trace start: Feb 2008
  SizeDistParams sizes = {};
};

struct CostSimReport {
  std::string client;
  /// Full-scale dollars per month (sum across the scheme's providers).
  std::vector<double> monthly_cost;
  std::vector<double> cumulative_cost;
  /// What was actually issued, at replay scale.
  TraceTotals issued;
  std::uint64_t files_created = 0;

  [[nodiscard]] double total_cost() const {
    return cumulative_cost.empty() ? 0.0 : cumulative_cost.back();
  }
};

class CostSimulator {
 public:
  explicit CostSimulator(CostSimConfig config = {}) : config_(config) {}

  /// Replays `trace` through `client`; bills accrue on the providers in
  /// `registry` (which must be the fleet `client`'s session wraps, freshly
  /// created so no foreign charges are mixed in).
  CostSimReport replay(const std::vector<MonthSpec>& trace,
                       core::StorageClient& client,
                       cloud::CloudRegistry& registry) const;

 private:
  CostSimConfig config_;
};

}  // namespace hyrd::workload
