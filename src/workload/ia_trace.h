// Internet Archive trace synthesizer.
//
// The paper's cost study (Fig. 4) replays one year of Internet Archive
// server activity (Feb 2008 – Jan 2009); Fig. 3 reports its monthly
// aggregates. The raw trace is not redistributable, so we synthesize a
// 12-month trace reproducing its published shape:
//   * transferred bytes dominated by reads, reads:writes ~ 2.1 : 1;
//   * read requests outnumber write requests ~ 3.5 : 1;
//   * multi-TB monthly volumes with seasonal ripple;
//   * document/media file sizes (the SizeDist mixture).
// See DESIGN.md §2 for why this preserves the cost experiment: billing is
// linear in bytes, resident storage, and transaction counts, all of which
// the synthesizer reproduces (and the replayer scales uniformly).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace hyrd::workload {

struct MonthSpec {
  int month = 0;                    // 0..11 (Feb 2008 .. Jan 2009)
  std::uint64_t bytes_written = 0;  // data-in for the month
  std::uint64_t bytes_read = 0;     // data-out for the month
  std::uint64_t write_requests = 0;
  std::uint64_t read_requests = 0;
};

struct IaTraceParams {
  int months = 12;
  /// Mean monthly ingest in bytes (full-scale trace: ~2 TB/month).
  double mean_monthly_write_bytes = 2.0e12;
  double read_write_byte_ratio = 2.1;   // paper Fig. 3(a)
  double read_write_request_ratio = 3.5;  // paper Fig. 3(b)
  double seasonal_amplitude = 0.35;     // +-35 % sinusoidal ripple
  double noise_sigma = 0.10;            // lognormal month-to-month noise
  /// Mean size of a written object (documents + media, ~5 MB).
  double mean_write_object_bytes = 5.0e6;
  std::uint64_t seed = 2008;
};

/// Deterministically synthesizes the 12 monthly aggregates.
std::vector<MonthSpec> synthesize_ia_trace(const IaTraceParams& params = {});

/// Aggregate ratios over a trace (test / report helpers).
struct TraceTotals {
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t write_requests = 0;
  std::uint64_t read_requests = 0;

  [[nodiscard]] double byte_ratio() const {
    return bytes_written == 0
               ? 0.0
               : static_cast<double>(bytes_read) /
                     static_cast<double>(bytes_written);
  }
  [[nodiscard]] double request_ratio() const {
    return write_requests == 0
               ? 0.0
               : static_cast<double>(read_requests) /
                     static_cast<double>(write_requests);
  }
};

TraceTotals trace_totals(const std::vector<MonthSpec>& trace);

}  // namespace hyrd::workload
