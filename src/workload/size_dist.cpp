#include "workload/size_dist.h"

#include <algorithm>
#include <cmath>

namespace hyrd::workload {

namespace {

std::uint64_t clamped_lognormal(common::Xoshiro256& rng, double median,
                                double sigma, std::uint64_t lo,
                                std::uint64_t hi) {
  const double v = rng.lognormal(std::log(median), sigma);
  const auto bytes = static_cast<std::uint64_t>(v);
  return std::clamp(bytes, lo, hi);
}

}  // namespace

std::uint64_t SizeDist::sample(common::Xoshiro256& rng) const {
  const double u = rng.uniform();
  if (u < params_.p_small) return sample_small(rng);
  if (u < params_.p_small + params_.p_medium) {
    return clamped_lognormal(rng, params_.medium_median, params_.medium_sigma,
                             params_.medium_min, params_.medium_max);
  }
  return sample_large(rng);
}

std::uint64_t SizeDist::sample_small(common::Xoshiro256& rng) const {
  return clamped_lognormal(rng, params_.small_median, params_.small_sigma,
                           params_.small_min, params_.small_max);
}

std::uint64_t SizeDist::sample_large(common::Xoshiro256& rng) const {
  return clamped_lognormal(rng, params_.large_median, params_.large_sigma,
                           params_.large_min, params_.large_max);
}

}  // namespace hyrd::workload
