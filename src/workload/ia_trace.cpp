#include "workload/ia_trace.h"

#include <cmath>
#include <numbers>

namespace hyrd::workload {

std::vector<MonthSpec> synthesize_ia_trace(const IaTraceParams& params) {
  common::Xoshiro256 rng(params.seed);
  std::vector<MonthSpec> trace;
  trace.reserve(static_cast<std::size_t>(params.months));

  for (int m = 0; m < params.months; ++m) {
    MonthSpec spec;
    spec.month = m;

    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(m) /
                         static_cast<double>(params.months);
    const double season = 1.0 + params.seasonal_amplitude * std::sin(phase);
    const double w_noise = rng.lognormal(0.0, params.noise_sigma);
    const double r_noise = rng.lognormal(0.0, params.noise_sigma);

    const double writes =
        params.mean_monthly_write_bytes * season * w_noise;
    // Reads ripple half a season out of phase with writes (archive reads
    // spike when ingest is quiet), preserving the annual byte ratio.
    const double r_season =
        1.0 + params.seasonal_amplitude *
                  std::sin(phase + std::numbers::pi / 3.0);
    const double reads = params.mean_monthly_write_bytes *
                         params.read_write_byte_ratio * r_season * r_noise;

    spec.bytes_written = static_cast<std::uint64_t>(writes);
    spec.bytes_read = static_cast<std::uint64_t>(reads);
    spec.write_requests = static_cast<std::uint64_t>(
        writes / params.mean_write_object_bytes);
    spec.read_requests = static_cast<std::uint64_t>(
        static_cast<double>(spec.write_requests) *
        params.read_write_request_ratio * r_noise / w_noise);
    trace.push_back(spec);
  }
  return trace;
}

TraceTotals trace_totals(const std::vector<MonthSpec>& trace) {
  TraceTotals totals;
  for (const auto& m : trace) {
    totals.bytes_written += m.bytes_written;
    totals.bytes_read += m.bytes_read;
    totals.write_requests += m.write_requests;
    totals.read_requests += m.read_requests;
  }
  return totals;
}

}  // namespace hyrd::workload
