// CSV import/export for monthly trace aggregates, so the cost simulator
// can consume *real* trace summaries (e.g. actual Internet Archive
// numbers, if you have them) instead of the built-in synthesizer — and so
// synthesized traces can be exported for plotting.
//
// Format (header required, one row per month):
//   month,bytes_written,bytes_read,write_requests,read_requests
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "workload/ia_trace.h"

namespace hyrd::workload {

/// Serializes a trace to CSV.
std::string trace_to_csv(const std::vector<MonthSpec>& trace);

/// Parses a CSV trace. Validates the header, field count, and numeric
/// fields; tolerates trailing newlines and \r\n line endings.
common::Result<std::vector<MonthSpec>> trace_from_csv(std::string_view csv);

}  // namespace hyrd::workload
