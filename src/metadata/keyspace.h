// Keyspace: the directory → shard router of the sharded metadata plane.
//
// A consistent-hash ring over the shard set: each shard owns a fixed number
// of virtual points on the 64-bit ring, generated deterministically from the
// shard id alone, and a directory maps to the shard owning the first ring
// point at or after its stable hash. That makes the assignment
//
//   * explicit     — callers route through shard_of_dir(), never through an
//                    implicit `hash % N`;
//   * deterministic — independent of construction order, process, platform;
//   * rebalance-ready — growing from N to N+1 shards only moves the arcs
//                    the new shard's points claim (~1/(N+1) of the space),
//                    measured exactly by moved_fraction().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hyrd::meta {

class Keyspace {
 public:
  static constexpr std::size_t kDefaultVnodes = 64;

  explicit Keyspace(std::size_t shard_count,
                    std::size_t vnodes_per_shard = kDefaultVnodes);

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] std::size_t vnodes_per_shard() const { return vnodes_; }

  /// Ring successor of an arbitrary 64-bit point, wrapping to the start.
  /// Inline: this sits on the metadata hot path (every lookup/upsert
  /// routes through it). The LUT entry is the first candidate in the
  /// point's radix bucket; everything before it is strictly below the
  /// bucket's start <= point.
  [[nodiscard]] std::size_t shard_of_hash(std::uint64_t point) const {
    std::size_t i = lut_[point >> kLutShift];
    while (i < ring_.size() && ring_[i].where < point) ++i;
    return ring_[i == ring_.size() ? 0 : i].shard;
  }

  /// Routes a directory (the metadata replication unit) to its shard.
  [[nodiscard]] std::size_t shard_of_dir(std::string_view dir) const;

  /// Routes a logical file path via its directory component.
  [[nodiscard]] std::size_t shard_of_path(const std::string& path) const;

  /// Fraction of the hash space each shard owns (sums to 1).
  [[nodiscard]] std::vector<double> ownership() const;

  /// Exact fraction of the hash space whose owner differs between two
  /// keyspaces — the data that a rebalance from `from` to `to` would move.
  /// Consistent hashing bounds this near |ΔN| / max(N) instead of the
  /// ~1 - 1/N a modulo scheme reshuffles.
  static double moved_fraction(const Keyspace& from, const Keyspace& to);

 private:
  struct Point {
    std::uint64_t where;
    std::uint32_t shard;
  };

  // Radix front-end for ring successor queries: lut_[b] is the index of
  // the first ring point in bucket b's half-open range (top kLutBits of
  // the hash), so a route is one table load plus a scan of the ~0-1
  // points per bucket, instead of a full binary search per lookup.
  static constexpr unsigned kLutBits = 12;
  static constexpr unsigned kLutShift = 64 - kLutBits;

  std::size_t shard_count_;
  std::size_t vnodes_;
  std::vector<Point> ring_;        // sorted by `where`
  std::vector<std::uint32_t> lut_;  // 2^kLutBits entries into ring_
};

}  // namespace hyrd::meta
