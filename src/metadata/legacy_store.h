// LegacyMetadataStore: the pre-sharding metadata store — one global mutex
// over a nested std::map — retained verbatim as (a) the baseline
// bench_metadata measures the sharded plane against, and (b) the reference
// implementation the MetadataShard property tests compare behavior and
// serialized bytes with. Not used on any production path.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metadata/file_meta.h"

namespace hyrd::meta {

class LegacyMetadataStore {
 public:
  void upsert(FileMeta meta);
  [[nodiscard]] std::optional<FileMeta> lookup(const std::string& path) const;
  bool erase(const std::string& path);

  [[nodiscard]] std::size_t file_count() const;
  [[nodiscard]] std::vector<std::string> directories() const;
  [[nodiscard]] std::vector<FileMeta> files_in(const std::string& dir) const;
  [[nodiscard]] std::vector<std::string> all_paths() const;

  [[nodiscard]] common::Bytes serialize_directory(const std::string& dir) const;
  common::Status load_directory_block(common::ByteSpan block);

  void clear();

 private:
  mutable std::mutex mu_;
  // dir -> filename -> meta
  std::map<std::string, std::map<std::string, FileMeta>> dirs_;
};

}  // namespace hyrd::meta
