#include "metadata/metadata_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <utility>

#include "metadata/serializer.h"

namespace hyrd::meta {

namespace {
constexpr std::uint32_t kBlockMagic = 0x48795244;  // "HyRD"

/// split_path without the two string allocations — the views alias `path`,
/// which every caller keeps alive across the table operation. Semantics
/// match split_path exactly: no slash → {"/", path}, empty dir → "/".
inline std::pair<std::string_view, std::string_view> split_path_view(
    std::string_view path) {
  const std::size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) return {std::string_view("/"), path};
  std::string_view dir = path.substr(0, pos);
  if (dir.empty()) dir = std::string_view("/");
  return {dir, path.substr(pos + 1)};
}

/// Steady-clock nanoseconds, read only when the metrics plane is compiled
/// in — the sharded hot path pays nothing for timing in the OFF build.
inline std::uint64_t metric_now_ns() {
  if constexpr (!obs::kMetricsEnabled) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII latency sample into a registry histogram (no-op when disabled).
/// Samples 1 in 64 operations: a table op is tens of nanoseconds, so two
/// unconditional clock reads would cost more than the op being measured.
class ScopedLatency {
 public:
  static constexpr std::uint32_t kSampleMask = 63;

  explicit ScopedLatency(const obs::Histogram& h) : h_(h) {
    if constexpr (obs::kMetricsEnabled) {
      thread_local std::uint32_t tick = 0;
      armed_ = (++tick & kSampleMask) == 0;
      if (armed_) start_ = metric_now_ns();
    }
  }
  ~ScopedLatency() {
    if constexpr (obs::kMetricsEnabled) {
      if (armed_) h_.record(static_cast<double>(metric_now_ns() - start_));
    }
  }

 private:
  const obs::Histogram& h_;
  std::uint64_t start_ = 0;
  bool armed_ = false;
};
}  // namespace

MetadataStore::MetadataStore(std::size_t shard_count)
    : keyspace_(shard_count == 0 ? 1 : shard_count) {
  auto& registry = obs::MetricsRegistry::global();
  // 16 ns .. ~1 s in half-decade-ish steps: plenty for an in-memory table.
  lookup_ns_ = registry.histogram("meta.lookup.ns", 16.0, 2.0, 28);
  upsert_ns_ = registry.histogram("meta.upsert.ns", 16.0, 2.0, 28);
  shards_.reserve(keyspace_.shard_count());
  for (std::size_t i = 0; i < keyspace_.shard_count(); ++i) {
    auto shard = std::make_unique<Shard>();
    char name[48];
    std::snprintf(name, sizeof name, "meta.shard.%02zu.files", i);
    shard->files_gauge = registry.gauge(name);
    std::snprintf(name, sizeof name, "meta.shard.%02zu.contended", i);
    shard->contended = registry.counter(name);
    shards_.push_back(std::move(shard));
  }
}

std::unique_lock<std::mutex> MetadataStore::lock_shard(const Shard& s) const {
  std::unique_lock lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    s.contended.inc();
    lock.lock();
  }
  return lock;
}

void MetadataStore::upsert(FileMeta m) {
  const ScopedLatency timer(upsert_ns_);
  const auto [dir, name] = split_path_view(m.path);
  const std::uint64_t dh = stable_key_hash(dir);
  Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  DirTable& files = shard.dirs.try_emplace_h(dh, dir);
  // `name` aliases m.path; insert_or_assign materializes its key before
  // the move, so the view never dangles.
  if (files.insert_or_assign(name, std::move(m))) {
    ++shard.files;
    shard.files_gauge.inc();
  }
}

std::uint64_t MetadataStore::upsert_versioned(FileMeta& m) {
  const ScopedLatency timer(upsert_ns_);
  const auto [dir, name] = split_path_view(m.path);
  const std::uint64_t dh = stable_key_hash(dir);
  const std::uint64_t nh = stable_key_hash(name);
  Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  DirTable& files = shard.dirs.try_emplace_h(dh, dir);
  FileMeta* existing = files.find_h(nh, name);
  if (existing != nullptr) {
    m.version = existing->version + 1;
    *existing = m;
  } else {
    m.version = 1;
    files.insert_or_assign_h(nh, name, FileMeta(m));
    ++shard.files;
    shard.files_gauge.inc();
  }
  return m.version;
}

bool MetadataStore::upsert_if_newer(FileMeta m) {
  const ScopedLatency timer(upsert_ns_);
  const auto [dir, name] = split_path_view(m.path);
  const std::uint64_t dh = stable_key_hash(dir);
  const std::uint64_t nh = stable_key_hash(name);
  Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  DirTable& files = shard.dirs.try_emplace_h(dh, dir);
  const FileMeta* existing = files.find_h(nh, name);
  if (existing != nullptr && existing->version > m.version) return false;
  if (files.insert_or_assign_h(nh, name, std::move(m))) {
    ++shard.files;
    shard.files_gauge.inc();
  }
  return true;
}

std::optional<FileMeta> MetadataStore::lookup(const std::string& path) const {
  const ScopedLatency timer(lookup_ns_);
  const auto [dir, name] = split_path_view(path);
  const std::uint64_t dh = stable_key_hash(dir);
  const Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  const DirTable* files = shard.dirs.find_h(dh, dir);
  if (files == nullptr) return std::nullopt;
  const FileMeta* m = files->find(name);
  if (m == nullptr) return std::nullopt;
  return *m;
}

bool MetadataStore::erase(const std::string& path) {
  const auto [dir, name] = split_path_view(path);
  const std::uint64_t dh = stable_key_hash(dir);
  Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  DirTable* files = shard.dirs.find_h(dh, dir);
  if (files == nullptr) return false;
  if (!files->erase(name)) return false;
  --shard.files;
  shard.files_gauge.dec();
  if (files->empty()) shard.dirs.erase_h(dh, dir);
  return true;
}

std::size_t MetadataStore::file_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    const auto lock = lock_shard(*shard);
    n += shard->files;
  }
  return n;
}

std::vector<std::string> MetadataStore::directories() const {
  std::vector<std::string> out;
  for (const auto& shard : shards_) {
    const auto lock = lock_shard(*shard);
    shard->dirs.for_each(
        [&](const std::string& dir, const DirTable&) { out.push_back(dir); });
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FileMeta> MetadataStore::files_in(const std::string& dir) const {
  std::vector<FileMeta> out;
  const std::uint64_t dh = stable_key_hash(dir);
  const Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  const DirTable* files = shard.dirs.find_h(dh, dir);
  if (files == nullptr) return out;
  out.reserve(files->size());
  files->for_each(
      [&](const std::string&, const FileMeta& m) { out.push_back(m); });
  std::sort(out.begin(), out.end(), [](const FileMeta& a, const FileMeta& b) {
    return a.filename() < b.filename();
  });
  return out;
}

std::vector<std::string> MetadataStore::all_paths() const {
  // (dir, name, path) triples, sorted the way the legacy nested map
  // iterated: by directory, then filename.
  std::vector<std::pair<std::pair<std::string, std::string>, std::string>> rows;
  for (const auto& shard : shards_) {
    const auto lock = lock_shard(*shard);
    shard->dirs.for_each([&](const std::string& dir, const DirTable& files) {
      files.for_each([&](const std::string& name, const FileMeta& m) {
        rows.push_back({{dir, name}, m.path});
      });
    });
  }
  std::sort(rows.begin(), rows.end());
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (auto& r : rows) out.push_back(std::move(r.second));
  return out;
}

common::Bytes MetadataStore::serialize_directory(const std::string& dir) const {
  const std::uint64_t dh = stable_key_hash(dir);
  const Shard& shard = *shards_[keyspace_.shard_of_hash(dh)];
  const auto lock = lock_shard(shard);
  Writer w;
  w.u32(kBlockMagic);
  const DirTable* files = shard.dirs.find_h(dh, dir);
  w.str(dir);
  w.u32(files == nullptr ? 0 : static_cast<std::uint32_t>(files->size()));
  if (files != nullptr) {
    // Filename order, exactly as the legacy std::map iterated — the block
    // format is pinned byte-compatible across shard counts.
    std::vector<std::pair<const std::string*, const FileMeta*>> rows;
    rows.reserve(files->size());
    files->for_each([&](const std::string& name, const FileMeta& m) {
      rows.push_back({&name, &m});
    });
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return *a.first < *b.first; });
    for (const auto& [name, m] : rows) m->serialize(w);
  }
  return w.take();
}

common::Status MetadataStore::load_directory_block(common::ByteSpan block) {
  Reader r(block);
  auto magic = r.u32();
  if (!magic.is_ok()) return magic.status();
  if (magic.value() != kBlockMagic) {
    return common::invalid_argument("bad metadata block magic");
  }
  auto dir = r.str();
  if (!dir.is_ok()) return dir.status();
  auto count = r.u32();
  if (!count.is_ok()) return count.status();

  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto m = FileMeta::deserialize(r);
    if (!m.is_ok()) return m.status();
    // Routed per record via the keyspace; the version comparison and the
    // upsert are one atomic step under the owning shard's lock.
    upsert_if_newer(std::move(m).value());
  }
  return common::Status::ok();
}

void MetadataStore::clear() {
  for (const auto& shard : shards_) {
    const auto lock = lock_shard(*shard);
    shard->dirs.clear();
    shard->files_gauge.add(-static_cast<std::int64_t>(shard->files));
    shard->files = 0;
  }
}

std::mutex& MetadataStore::write_order_mu(const std::string& path) {
  const auto [dir, name] = split_path_view(path);
  Shard& shard = *shards_[keyspace_.shard_of_dir(dir)];
  const std::size_t stripe =
      stable_key_hash(path) % kWriteStripesPerShard;
  return shard.write_order[stripe];
}

std::vector<MetadataStore::ShardOccupancy> MetadataStore::shard_occupancy()
    const {
  std::vector<ShardOccupancy> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const auto lock = lock_shard(*shard);
    out.push_back({shard->dirs.size(), shard->files});
  }
  return out;
}

}  // namespace hyrd::meta
