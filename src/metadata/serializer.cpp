#include "metadata/serializer.h"

namespace hyrd::meta {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
  }
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::bytes(common::ByteSpan b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

common::Status Reader::need(std::size_t n) {
  if (pos_ + n > data_.size()) {
    return common::invalid_argument("truncated metadata record");
  }
  return common::Status::ok();
}

common::Result<std::uint8_t> Reader::u8() {
  if (auto st = need(1); !st.is_ok()) return st;
  return data_[pos_++];
}

common::Result<std::uint16_t> Reader::u16() {
  if (auto st = need(2); !st.is_ok()) return st;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

common::Result<std::uint32_t> Reader::u32() {
  if (auto st = need(4); !st.is_ok()) return st;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (i * 8);
  }
  pos_ += 4;
  return v;
}

common::Result<std::uint64_t> Reader::u64() {
  if (auto st = need(8); !st.is_ok()) return st;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (i * 8);
  }
  pos_ += 8;
  return v;
}

common::Result<std::int64_t> Reader::i64() {
  auto v = u64();
  if (!v.is_ok()) return v.status();
  return static_cast<std::int64_t>(v.value());
}

common::Result<std::string> Reader::str() {
  auto len = u32();
  if (!len.is_ok()) return len.status();
  if (auto st = need(len.value()); !st.is_ok()) return st;
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  len.value());
  pos_ += len.value();
  return out;
}

common::Result<common::Bytes> Reader::bytes() {
  auto len = u32();
  if (!len.is_ok()) return len.status();
  if (auto st = need(len.value()); !st.is_ok()) return st;
  common::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                    data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
  pos_ += len.value();
  return out;
}

}  // namespace hyrd::meta
