#include "metadata/file_meta.h"

#include "metadata/serializer.h"

namespace hyrd::meta {

namespace {
constexpr std::uint8_t kFileMetaVersion = 2;  // v2 added fragment_crcs
}

std::pair<std::string, std::string> split_path(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return {"/", path};
  std::string dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  return {dir, path.substr(slash + 1)};
}

std::string FileMeta::directory() const { return split_path(path).first; }
std::string FileMeta::filename() const { return split_path(path).second; }

void FileMeta::serialize(Writer& w) const {
  w.u8(kFileMetaVersion);
  w.str(path);
  w.u64(size);
  w.i64(mtime);
  w.u64(version);
  w.u8(static_cast<std::uint8_t>(redundancy));
  w.u32(crc);
  w.u32(stripe_k);
  w.u32(stripe_m);
  w.u64(shard_size);
  w.u32(static_cast<std::uint32_t>(locations.size()));
  for (const auto& loc : locations) {
    w.str(loc.provider);
    w.str(loc.object_name);
  }
  w.u32(static_cast<std::uint32_t>(fragment_crcs.size()));
  for (std::uint32_t c : fragment_crcs) w.u32(c);
}

common::Result<FileMeta> FileMeta::deserialize(Reader& r) {
  auto ver = r.u8();
  if (!ver.is_ok()) return ver.status();
  if (ver.value() != kFileMetaVersion) {
    return common::invalid_argument("unsupported FileMeta version");
  }
  FileMeta m;
#define HYRD_READ(field, call)              \
  {                                         \
    auto v = (call);                        \
    if (!v.is_ok()) return v.status();      \
    m.field = std::move(v).value();         \
  }
  HYRD_READ(path, r.str());
  HYRD_READ(size, r.u64());
  HYRD_READ(mtime, r.i64());
  HYRD_READ(version, r.u64());
  {
    auto v = r.u8();
    if (!v.is_ok()) return v.status();
    if (v.value() > 1) {
      return common::invalid_argument("bad redundancy kind");
    }
    m.redundancy = static_cast<RedundancyKind>(v.value());
  }
  HYRD_READ(crc, r.u32());
  HYRD_READ(stripe_k, r.u32());
  HYRD_READ(stripe_m, r.u32());
  HYRD_READ(shard_size, r.u64());
  auto count = r.u32();
  if (!count.is_ok()) return count.status();
  // A location is at least two length prefixes (8 bytes); a hostile count
  // must not drive a giant reserve before the element reads fail.
  if (count.value() > r.remaining() / 8) {
    return common::invalid_argument("location count exceeds payload");
  }
  m.locations.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    FragmentLocation loc;
    {
      auto v = r.str();
      if (!v.is_ok()) return v.status();
      loc.provider = std::move(v).value();
    }
    {
      auto v = r.str();
      if (!v.is_ok()) return v.status();
      loc.object_name = std::move(v).value();
    }
    m.locations.push_back(std::move(loc));
  }
  auto crc_count = r.u32();
  if (!crc_count.is_ok()) return crc_count.status();
  if (crc_count.value() > r.remaining() / 4) {
    return common::invalid_argument("crc count exceeds payload");
  }
  m.fragment_crcs.reserve(crc_count.value());
  for (std::uint32_t i = 0; i < crc_count.value(); ++i) {
    auto v = r.u32();
    if (!v.is_ok()) return v.status();
    m.fragment_crcs.push_back(v.value());
  }
#undef HYRD_READ
  return m;
}

}  // namespace hyrd::meta
