// MetadataStore: the client-resident file-system metadata plane, grouped
// per directory so each directory serializes to one block (the replication
// unit shipped to performance-oriented providers).
//
// Sharded (DESIGN.md §14): directories are routed by a consistent-hash
// Keyspace onto N lock-striped shards, each an open-addressed robin-hood
// table of directories (each directory itself a robin-hood table of files).
// Lookups and upserts touch exactly one shard mutex; whole-store scans
// (file_count, directories, all_paths) lock shards one at a time in
// ascending index order and sort their harvest, so results stay
// deterministic regardless of shard count. serialize_directory output is
// byte-compatible with the pre-sharding single-map format.
//
// Lock order: a shard's write-order stripe (held across a whole client
// write, including cloud I/O) is always acquired before the shard's table
// mutex (held only for the microseconds of a table operation); the table
// mutex is never held while acquiring anything else.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metadata/file_meta.h"
#include "metadata/keyspace.h"
#include "metadata/shard_table.h"
#include "obs/metrics.h"

namespace hyrd::meta {

class MetadataStore {
 public:
  static constexpr std::size_t kDefaultShards = 16;
  /// Write-order stripes per shard: same-path write serialization (see
  /// core::StorageClient) folds into the shard this many ways, so distinct
  /// files of one directory keep their write parallelism.
  static constexpr std::size_t kWriteStripesPerShard = 8;

  MetadataStore() : MetadataStore(kDefaultShards) {}
  explicit MetadataStore(std::size_t shard_count);

  MetadataStore(const MetadataStore&) = delete;
  MetadataStore& operator=(const MetadataStore&) = delete;

  /// Inserts or overwrites the record for meta.path.
  void upsert(FileMeta meta);

  /// Atomically assigns meta.version = stored version + 1 (or 1 when the
  /// path is new) and upserts, all under the owning shard's lock. Returns
  /// the assigned version. This is the mutation every write path routes
  /// through the keyspace.
  std::uint64_t upsert_versioned(FileMeta& meta);

  /// Last-writer-wins merge step: upserts unless a strictly newer version
  /// is already present. Returns true when the record was applied.
  bool upsert_if_newer(FileMeta meta);

  [[nodiscard]] std::optional<FileMeta> lookup(const std::string& path) const;

  /// Removes a record; false if absent.
  bool erase(const std::string& path);

  [[nodiscard]] std::size_t file_count() const;
  [[nodiscard]] std::vector<std::string> directories() const;
  [[nodiscard]] std::vector<FileMeta> files_in(const std::string& dir) const;
  [[nodiscard]] std::vector<std::string> all_paths() const;

  /// Serializes one directory's records into a metadata block. Byte-
  /// compatible with the legacy single-map store: records in filename
  /// order, independent of shard count.
  [[nodiscard]] common::Bytes serialize_directory(const std::string& dir) const;

  /// Merges a metadata block's records into the store. Records already
  /// present with a newer version win (last-writer-wins per file).
  common::Status load_directory_block(common::ByteSpan block);

  void clear();

  // --- Keyspace routing (explicit, deterministic, rebalance-ready) ---
  [[nodiscard]] const Keyspace& keyspace() const { return keyspace_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of_dir(std::string_view dir) const {
    return keyspace_.shard_of_dir(dir);
  }

  /// The mutex serializing same-path client writes end-to-end. Routed via
  /// the keyspace to the owning shard's stripe set, so PR 7's standalone
  /// striped write locks fold into the shard layout.
  [[nodiscard]] std::mutex& write_order_mu(const std::string& path);

  /// Per-shard occupancy snapshot (gauges mirror this into the registry).
  struct ShardOccupancy {
    std::size_t directories = 0;
    std::size_t files = 0;
  };
  [[nodiscard]] std::vector<ShardOccupancy> shard_occupancy() const;

 private:
  // One directory: filename -> meta.
  using DirTable = RobinHoodMap<FileMeta>;

  struct Shard {
    mutable std::mutex mu;
    RobinHoodMap<DirTable> dirs;
    std::size_t files = 0;  // under mu; sum of dir sizes
    std::array<std::mutex, kWriteStripesPerShard> write_order;
    obs::Gauge files_gauge;       // meta.shard.<i>.files (registry-wide sum)
    obs::Counter contended;       // meta.shard.<i>.contended lock acquisitions
  };

  /// Locks a shard's table mutex, counting acquisitions that had to wait.
  [[nodiscard]] std::unique_lock<std::mutex> lock_shard(const Shard& s) const;

  [[nodiscard]] Shard& shard_for_dir(std::string_view dir) {
    return *shards_[keyspace_.shard_of_dir(dir)];
  }
  [[nodiscard]] const Shard& shard_for_dir(std::string_view dir) const {
    return *shards_[keyspace_.shard_of_dir(dir)];
  }

  Keyspace keyspace_;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::Histogram lookup_ns_;  // meta.lookup.ns
  obs::Histogram upsert_ns_;  // meta.upsert.ns
};

}  // namespace hyrd::meta
