// MetadataStore: the client-resident file-system metadata map, grouped per
// directory so each directory serializes to one block (the replication unit
// shipped to performance-oriented providers).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "metadata/file_meta.h"

namespace hyrd::meta {

class MetadataStore {
 public:
  /// Inserts or overwrites the record for meta.path.
  void upsert(FileMeta meta);

  [[nodiscard]] std::optional<FileMeta> lookup(const std::string& path) const;

  /// Removes a record; false if absent.
  bool erase(const std::string& path);

  [[nodiscard]] std::size_t file_count() const;
  [[nodiscard]] std::vector<std::string> directories() const;
  [[nodiscard]] std::vector<FileMeta> files_in(const std::string& dir) const;
  [[nodiscard]] std::vector<std::string> all_paths() const;

  /// Serializes one directory's records into a metadata block.
  [[nodiscard]] common::Bytes serialize_directory(const std::string& dir) const;

  /// Merges a metadata block's records into the store. Records already
  /// present with a newer version win (last-writer-wins per file).
  common::Status load_directory_block(common::ByteSpan block);

  void clear();

 private:
  mutable std::mutex mu_;
  // dir -> filename -> meta
  std::map<std::string, std::map<std::string, FileMeta>> dirs_;
};

}  // namespace hyrd::meta
