#include "metadata/update_log.h"

#include <algorithm>

#include "metadata/keyspace.h"
#include "metadata/serializer.h"

namespace hyrd::meta {

namespace {
constexpr std::uint32_t kLogMagic = 0x4C4F4731;  // "LOG1"
}

std::uint32_t UpdateLog::route(const LogRecord& rec) const {
  if (keyspace_ == nullptr) return 0;
  return static_cast<std::uint32_t>(keyspace_->shard_of_path(rec.path));
}

std::uint64_t UpdateLog::append(std::string provider, std::string container,
                                std::string path, std::string object_name,
                                LogAction action) {
  std::lock_guard lock(mu_);
  Slot slot;
  slot.rec = LogRecord{next_seq_++,          std::move(provider),
                       std::move(container), std::move(path),
                       std::move(object_name), action};
  slot.shard = route(slot.rec);
  const std::size_t idx = slab_.size();
  const std::uint64_t seq = slot.rec.seq;

  ProviderIndex& pi = providers_[slot.rec.provider];
  pi.slots.push_back(idx);
  if (keyspace_ != nullptr) pi.by_shard[slot.shard].push_back(idx);
  auto [it, fresh] = pi.latest.try_emplace(slot.rec.object_name, idx);
  slab_.push_back(std::move(slot));
  if (!fresh) {
    // A later record for the same object shadows the earlier one: it no
    // longer appears in pending_for's compacted view, and past the
    // watermark it is dropped from the log entirely.
    slab_[it->second].shadowed = true;
    it->second = idx;
    if (++pi.superseded >= watermark_) compact_provider(pi);
  }
  maybe_compact_slab();
  return seq;
}

std::vector<LogRecord> UpdateLog::pending_for(
    const std::string& provider) const {
  std::lock_guard lock(mu_);
  std::vector<LogRecord> out;
  const auto it = providers_.find(provider);
  if (it == providers_.end()) return out;
  out.reserve(it->second.slots.size() - it->second.superseded);
  for (const std::size_t idx : it->second.slots) {
    const Slot& s = slab_[idx];
    if (!s.dead && !s.shadowed) out.push_back(s.rec);
  }
  // Slots are appended in seq order; restored snapshots could in principle
  // carry arbitrary numbering, so pin the contract explicitly. The common
  // case is already sorted — verify in O(n) rather than sort in O(n log n).
  const auto by_seq = [](const LogRecord& a, const LogRecord& b) {
    return a.seq < b.seq;
  };
  if (!std::is_sorted(out.begin(), out.end(), by_seq)) {
    std::sort(out.begin(), out.end(), by_seq);
  }
  return out;
}

std::vector<LogRecord> UpdateLog::pending_for_shard(
    const std::string& provider, std::size_t shard) const {
  std::lock_guard lock(mu_);
  std::vector<LogRecord> out;
  const auto it = providers_.find(provider);
  if (it == providers_.end()) return out;
  const ProviderIndex& pi = it->second;
  const std::vector<std::size_t>* slots = &pi.slots;
  if (keyspace_ != nullptr) {
    const auto sh = pi.by_shard.find(static_cast<std::uint32_t>(shard));
    if (sh == pi.by_shard.end()) return out;
    slots = &sh->second;
  } else if (shard != 0) {
    return out;
  }
  for (const std::size_t idx : *slots) {
    const Slot& s = slab_[idx];
    if (!s.dead && !s.shadowed && s.shard == shard) out.push_back(s.rec);
  }
  const auto by_seq = [](const LogRecord& a, const LogRecord& b) {
    return a.seq < b.seq;
  };
  if (!std::is_sorted(out.begin(), out.end(), by_seq)) {
    std::sort(out.begin(), out.end(), by_seq);
  }
  return out;
}

void UpdateLog::truncate(const std::string& provider,
                         std::uint64_t through_seq) {
  std::lock_guard lock(mu_);
  const auto it = providers_.find(provider);
  if (it == providers_.end()) return;
  ProviderIndex& pi = it->second;

  std::vector<std::size_t> keep;
  keep.reserve(pi.slots.size());
  for (const std::size_t idx : pi.slots) {
    Slot& s = slab_[idx];
    if (s.rec.seq > through_seq) {
      keep.push_back(idx);
      continue;
    }
    s.dead = true;
    ++dead_;
    if (s.shadowed) {
      --pi.superseded;
    } else {
      const auto latest = pi.latest.find(s.rec.object_name);
      if (latest != pi.latest.end() && latest->second == idx) {
        pi.latest.erase(latest);
      }
    }
  }
  if (keep.empty()) {
    providers_.erase(it);
  } else {
    pi.slots = std::move(keep);
    if (keyspace_ != nullptr) {
      pi.by_shard.clear();
      for (const std::size_t idx : pi.slots) {
        pi.by_shard[slab_[idx].shard].push_back(idx);
      }
    }
  }
  maybe_compact_slab();
}

void UpdateLog::bind_keyspace(const Keyspace* keyspace) {
  std::lock_guard lock(mu_);
  keyspace_ = keyspace;
  for (Slot& s : slab_) s.shard = route(s.rec);
  rebuild_indexes();
}

std::size_t UpdateLog::size() const {
  std::lock_guard lock(mu_);
  return slab_.size() - dead_;
}

void UpdateLog::set_compaction_watermark(std::size_t records) {
  std::lock_guard lock(mu_);
  watermark_ = records == 0 ? 1 : records;
}

std::size_t UpdateLog::compactions() const {
  std::lock_guard lock(mu_);
  return compactions_;
}

void UpdateLog::compact_provider(ProviderIndex& pi) {
  std::vector<std::size_t> keep;
  keep.reserve(pi.slots.size() - pi.superseded);
  for (const std::size_t idx : pi.slots) {
    Slot& s = slab_[idx];
    if (s.dead) continue;
    if (s.shadowed) {
      s.dead = true;
      ++dead_;
      continue;
    }
    keep.push_back(idx);
  }
  pi.slots = std::move(keep);
  pi.superseded = 0;
  if (keyspace_ != nullptr) {
    pi.by_shard.clear();
    for (const std::size_t idx : pi.slots) {
      pi.by_shard[slab_[idx].shard].push_back(idx);
    }
  }
  ++compactions_;
}

void UpdateLog::maybe_compact_slab() {
  if (slab_.size() < 64 || dead_ * 2 <= slab_.size()) return;
  std::vector<Slot> live;
  live.reserve(slab_.size() - dead_);
  for (Slot& s : slab_) {
    if (!s.dead) live.push_back(std::move(s));
  }
  slab_ = std::move(live);
  dead_ = 0;
  rebuild_indexes();
}

void UpdateLog::rebuild_indexes() {
  providers_.clear();
  for (std::size_t idx = 0; idx < slab_.size(); ++idx) {
    Slot& s = slab_[idx];
    if (s.dead) continue;
    s.shadowed = false;
    ProviderIndex& pi = providers_[s.rec.provider];
    pi.slots.push_back(idx);
    if (keyspace_ != nullptr) pi.by_shard[s.shard].push_back(idx);
    auto [it, fresh] = pi.latest.try_emplace(s.rec.object_name, idx);
    if (!fresh) {
      slab_[it->second].shadowed = true;
      it->second = idx;
      ++pi.superseded;
    }
  }
}

common::Bytes UpdateLog::serialize() const {
  std::lock_guard lock(mu_);
  Writer w;
  w.u32(kLogMagic);
  w.u64(next_seq_);
  w.u32(static_cast<std::uint32_t>(slab_.size() - dead_));
  for (const Slot& s : slab_) {
    if (s.dead) continue;
    w.u64(s.rec.seq);
    w.str(s.rec.provider);
    w.str(s.rec.container);
    w.str(s.rec.path);
    w.str(s.rec.object_name);
    w.u8(static_cast<std::uint8_t>(s.rec.action));
  }
  return w.take();
}

common::Status UpdateLog::restore(common::ByteSpan data) {
  Reader r(data);
  auto magic = r.u32();
  if (!magic.is_ok()) return magic.status();
  if (magic.value() != kLogMagic) {
    return common::invalid_argument("bad update-log magic");
  }
  auto next = r.u64();
  if (!next.is_ok()) return next.status();
  auto count = r.u32();
  if (!count.is_ok()) return count.status();

  // Each record carries a u64 seq + four length-prefixed fields + action:
  // at least 21 bytes. Bound the reserve by the actual payload so hostile
  // counts fail cleanly instead of allocating.
  if (count.value() > r.remaining() / 21) {
    return common::invalid_argument("record count exceeds payload");
  }
  std::vector<Slot> slab;
  slab.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    LogRecord rec;
    auto seq = r.u64();
    if (!seq.is_ok()) return seq.status();
    rec.seq = seq.value();
    auto provider = r.str();
    if (!provider.is_ok()) return provider.status();
    rec.provider = std::move(provider).value();
    auto container = r.str();
    if (!container.is_ok()) return container.status();
    rec.container = std::move(container).value();
    auto path = r.str();
    if (!path.is_ok()) return path.status();
    rec.path = std::move(path).value();
    auto object_name = r.str();
    if (!object_name.is_ok()) return object_name.status();
    rec.object_name = std::move(object_name).value();
    auto action = r.u8();
    if (!action.is_ok()) return action.status();
    if (action.value() > 1) {
      return common::invalid_argument("bad log action");
    }
    rec.action = static_cast<LogAction>(action.value());
    Slot slot;
    slot.rec = std::move(rec);
    slab.push_back(std::move(slot));
  }

  std::lock_guard lock(mu_);
  next_seq_ = next.value();
  slab_ = std::move(slab);
  dead_ = 0;
  for (Slot& s : slab_) s.shard = route(s.rec);
  rebuild_indexes();
  return common::Status::ok();
}

}  // namespace hyrd::meta
