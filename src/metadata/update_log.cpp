#include "metadata/update_log.h"

#include <algorithm>
#include <map>

#include "metadata/serializer.h"

namespace hyrd::meta {

namespace {
constexpr std::uint32_t kLogMagic = 0x4C4F4731;  // "LOG1"
}

std::uint64_t UpdateLog::append(std::string provider, std::string container,
                                std::string path, std::string object_name,
                                LogAction action) {
  std::lock_guard lock(mu_);
  LogRecord rec{next_seq_++,         std::move(provider),
                std::move(container), std::move(path),
                std::move(object_name), action};
  records_.push_back(std::move(rec));
  return records_.back().seq;
}

std::vector<LogRecord> UpdateLog::pending_for(
    const std::string& provider) const {
  std::lock_guard lock(mu_);
  // Compaction: keep only the last record per object name.
  std::map<std::string, const LogRecord*> latest;
  for (const auto& r : records_) {
    if (r.provider == provider) latest[r.object_name] = &r;
  }
  std::vector<LogRecord> out;
  out.reserve(latest.size());
  for (const auto& [name, rec] : latest) out.push_back(*rec);
  std::sort(out.begin(), out.end(),
            [](const LogRecord& a, const LogRecord& b) { return a.seq < b.seq; });
  return out;
}

void UpdateLog::truncate(const std::string& provider,
                         std::uint64_t through_seq) {
  std::lock_guard lock(mu_);
  std::erase_if(records_, [&](const LogRecord& r) {
    return r.provider == provider && r.seq <= through_seq;
  });
}

std::size_t UpdateLog::size() const {
  std::lock_guard lock(mu_);
  return records_.size();
}

common::Bytes UpdateLog::serialize() const {
  std::lock_guard lock(mu_);
  Writer w;
  w.u32(kLogMagic);
  w.u64(next_seq_);
  w.u32(static_cast<std::uint32_t>(records_.size()));
  for (const auto& r : records_) {
    w.u64(r.seq);
    w.str(r.provider);
    w.str(r.container);
    w.str(r.path);
    w.str(r.object_name);
    w.u8(static_cast<std::uint8_t>(r.action));
  }
  return w.take();
}

common::Status UpdateLog::restore(common::ByteSpan data) {
  Reader r(data);
  auto magic = r.u32();
  if (!magic.is_ok()) return magic.status();
  if (magic.value() != kLogMagic) {
    return common::invalid_argument("bad update-log magic");
  }
  auto next = r.u64();
  if (!next.is_ok()) return next.status();
  auto count = r.u32();
  if (!count.is_ok()) return count.status();

  // Each record carries a u64 seq + four length-prefixed fields + action:
  // at least 21 bytes. Bound the reserve by the actual payload so hostile
  // counts fail cleanly instead of allocating.
  if (count.value() > r.remaining() / 21) {
    return common::invalid_argument("record count exceeds payload");
  }
  std::vector<LogRecord> recs;
  recs.reserve(count.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    LogRecord rec;
    auto seq = r.u64();
    if (!seq.is_ok()) return seq.status();
    rec.seq = seq.value();
    auto provider = r.str();
    if (!provider.is_ok()) return provider.status();
    rec.provider = std::move(provider).value();
    auto container = r.str();
    if (!container.is_ok()) return container.status();
    rec.container = std::move(container).value();
    auto path = r.str();
    if (!path.is_ok()) return path.status();
    rec.path = std::move(path).value();
    auto object_name = r.str();
    if (!object_name.is_ok()) return object_name.status();
    rec.object_name = std::move(object_name).value();
    auto action = r.u8();
    if (!action.is_ok()) return action.status();
    if (action.value() > 1) {
      return common::invalid_argument("bad log action");
    }
    rec.action = static_cast<LogAction>(action.value());
    recs.push_back(std::move(rec));
  }

  std::lock_guard lock(mu_);
  next_seq_ = next.value();
  records_ = std::move(recs);
  return common::Status::ok();
}

}  // namespace hyrd::meta
