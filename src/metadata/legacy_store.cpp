#include "metadata/legacy_store.h"

#include "metadata/serializer.h"

namespace hyrd::meta {

namespace {
constexpr std::uint32_t kBlockMagic = 0x48795244;  // "HyRD"
}

void LegacyMetadataStore::upsert(FileMeta m) {
  auto [dir, name] = split_path(m.path);
  std::lock_guard lock(mu_);
  dirs_[dir][name] = std::move(m);
}

std::optional<FileMeta> LegacyMetadataStore::lookup(
    const std::string& path) const {
  auto [dir, name] = split_path(path);
  std::lock_guard lock(mu_);
  auto d = dirs_.find(dir);
  if (d == dirs_.end()) return std::nullopt;
  auto f = d->second.find(name);
  if (f == d->second.end()) return std::nullopt;
  return f->second;
}

bool LegacyMetadataStore::erase(const std::string& path) {
  auto [dir, name] = split_path(path);
  std::lock_guard lock(mu_);
  auto d = dirs_.find(dir);
  if (d == dirs_.end()) return false;
  const bool erased = d->second.erase(name) > 0;
  if (erased && d->second.empty()) dirs_.erase(d);
  return erased;
}

std::size_t LegacyMetadataStore::file_count() const {
  std::lock_guard lock(mu_);
  std::size_t n = 0;
  for (const auto& [dir, files] : dirs_) n += files.size();
  return n;
}

std::vector<std::string> LegacyMetadataStore::directories() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.reserve(dirs_.size());
  for (const auto& [dir, files] : dirs_) out.push_back(dir);
  return out;
}

std::vector<FileMeta> LegacyMetadataStore::files_in(
    const std::string& dir) const {
  std::lock_guard lock(mu_);
  std::vector<FileMeta> out;
  auto d = dirs_.find(dir);
  if (d == dirs_.end()) return out;
  out.reserve(d->second.size());
  for (const auto& [name, m] : d->second) out.push_back(m);
  return out;
}

std::vector<std::string> LegacyMetadataStore::all_paths() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  for (const auto& [dir, files] : dirs_) {
    for (const auto& [name, m] : files) out.push_back(m.path);
  }
  return out;
}

common::Bytes LegacyMetadataStore::serialize_directory(
    const std::string& dir) const {
  std::lock_guard lock(mu_);
  Writer w;
  w.u32(kBlockMagic);
  auto d = dirs_.find(dir);
  const std::uint32_t count =
      d == dirs_.end() ? 0 : static_cast<std::uint32_t>(d->second.size());
  w.str(dir);
  w.u32(count);
  if (d != dirs_.end()) {
    for (const auto& [name, m] : d->second) m.serialize(w);
  }
  return w.take();
}

common::Status LegacyMetadataStore::load_directory_block(
    common::ByteSpan block) {
  Reader r(block);
  auto magic = r.u32();
  if (!magic.is_ok()) return magic.status();
  if (magic.value() != kBlockMagic) {
    return common::invalid_argument("bad metadata block magic");
  }
  auto dir = r.str();
  if (!dir.is_ok()) return dir.status();
  auto count = r.u32();
  if (!count.is_ok()) return count.status();

  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto m = FileMeta::deserialize(r);
    if (!m.is_ok()) return m.status();
    FileMeta meta = std::move(m).value();
    auto existing = lookup(meta.path);
    if (!existing.has_value() || existing->version <= meta.version) {
      upsert(std::move(meta));
    }
  }
  return common::Status::ok();
}

void LegacyMetadataStore::clear() {
  std::lock_guard lock(mu_);
  dirs_.clear();
}

}  // namespace hyrd::meta
