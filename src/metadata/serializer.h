// Little-endian binary (de)serialization for metadata blocks and log
// records. Reader is fully bounds-checked: corrupt or truncated input
// surfaces as a Status, never UB.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::meta {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Length-prefixed (u32) string.
  void str(std::string_view s);

  /// Length-prefixed (u32) raw bytes.
  void bytes(common::ByteSpan b);

  [[nodiscard]] const common::Bytes& data() const { return buf_; }
  [[nodiscard]] common::Bytes take() { return std::move(buf_); }

 private:
  common::Bytes buf_;
};

class Reader {
 public:
  explicit Reader(common::ByteSpan data) : data_(data) {}

  common::Result<std::uint8_t> u8();
  common::Result<std::uint16_t> u16();
  common::Result<std::uint32_t> u32();
  common::Result<std::uint64_t> u64();
  common::Result<std::int64_t> i64();
  common::Result<std::string> str();
  common::Result<common::Bytes> bytes();

  [[nodiscard]] bool at_end() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  common::Status need(std::size_t n);

  common::ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace hyrd::meta
