// RobinHoodMap: the open-addressed hash table one metadata shard is built
// from. Robin-hood displacement keeps probe sequences short and uniform
// under high load; backward-shift deletion keeps the table tombstone-free,
// so lookup cost never degrades as directories churn.
//
// Layout is struct-of-arrays: the probe sequence walks a dense array of
// 64-bit hashes (8 bytes per step — one cache line covers 8 probes) and
// touches the key/value slot only on a hash match, so a miss or a short
// probe costs one line, not one line per slot.
//
// This is deliberately not a general-purpose container: keys are strings
// (directory names, file names), values are default-constructible, and the
// caller owns all locking — one RobinHoodMap lives entirely inside one
// MetadataStore shard and is only touched under that shard's mutex.
// References returned by find/try_emplace are invalidated by any mutation.
// The `_h` variants take the key's stable_key_hash precomputed, so callers
// that already hashed the key for shard routing don't hash it twice.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/checksum.h"

namespace hyrd::meta {

/// The stable 64-bit key hash shared by the table, the keyspace ring, and
/// the write-order stripes: fnv1a with a SplitMix64-style finalizer (fnv1a
/// alone clusters low bits on short ASCII keys). Never returns 0 — that is
/// the table's empty-slot sentinel.
inline std::uint64_t stable_key_hash(std::string_view key) {
  std::uint64_t z = common::fnv1a(key);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

template <typename V>
class RobinHoodMap {
 public:
  RobinHoodMap() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] V* find(std::string_view key) {
    return const_cast<V*>(std::as_const(*this).find_h(stable_key_hash(key), key));
  }
  [[nodiscard]] const V* find(std::string_view key) const {
    return find_h(stable_key_hash(key), key);
  }

  [[nodiscard]] V* find_h(std::uint64_t h, std::string_view key) {
    return const_cast<V*>(std::as_const(*this).find_h(h, key));
  }

  [[nodiscard]] const V* find_h(std::uint64_t h, std::string_view key) const {
    if (hashes_.empty()) return nullptr;
    std::size_t i = h & mask_;
    // Fetch the home slot while the probe array's line is in flight: hits
    // land on the first probe almost always (robin-hood keeps mean probe
    // distance < 1), so this overlaps the two cache misses a lookup must
    // pay instead of chaining them.
    __builtin_prefetch(&slots_[i], 0, 1);
    std::size_t dist = 0;
    for (;;) {
      const std::uint64_t sh = hashes_[i];
      if (sh == 0) return nullptr;
      // A resident poorer than us would have been displaced on insert, so
      // passing one proves the key is absent.
      if (probe_distance(sh, i) < dist) return nullptr;
      if (sh == h && slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
      ++dist;
    }
  }

  /// Returns the value for `key`, default-constructing (and inserting) it
  /// if absent.
  V& try_emplace(std::string_view key) {
    return try_emplace_h(stable_key_hash(key), key);
  }
  V& try_emplace_h(std::uint64_t h, std::string_view key) {
    if (V* v = find_h(h, key)) return *v;
    reserve_one();
    return *insert_fresh(h, std::string(key), V{});
  }

  /// Inserts or overwrites; returns true when the key was new. Safe to
  /// pass a `key` view into the value being moved: the key string is
  /// materialized before the value moves.
  bool insert_or_assign(std::string_view key, V&& value) {
    return insert_or_assign_h(stable_key_hash(key), key, std::move(value));
  }
  bool insert_or_assign_h(std::uint64_t h, std::string_view key, V&& value) {
    if (V* v = find_h(h, key)) {
      *v = std::move(value);
      return false;
    }
    reserve_one();
    std::string k(key);  // materialize before the value (and any view into
                         // it) is moved away
    insert_fresh(h, std::move(k), std::move(value));
    return true;
  }

  /// Backward-shift deletion: the cluster after the hole moves one slot
  /// back, so no tombstones accumulate. False if the key was absent.
  bool erase(std::string_view key) {
    return erase_h(stable_key_hash(key), key);
  }
  bool erase_h(std::uint64_t h, std::string_view key) {
    if (hashes_.empty()) return false;
    std::size_t i = h & mask_;
    std::size_t dist = 0;
    for (;;) {
      const std::uint64_t sh = hashes_[i];
      if (sh == 0) return false;
      if (probe_distance(sh, i) < dist) return false;
      if (sh == h && slots_[i].key == key) break;
      i = (i + 1) & mask_;
      ++dist;
    }
    std::size_t j = (i + 1) & mask_;
    for (;;) {
      if (hashes_[j] == 0 || probe_distance(hashes_[j], j) == 0) break;
      hashes_[i] = hashes_[j];
      slots_[i] = std::move(slots_[j]);
      hashes_[j] = 0;
      slots_[j].key.clear();
      slots_[j].value = V{};
      i = j;
      j = (j + 1) & mask_;
    }
    hashes_[i] = 0;
    slots_[i].key.clear();
    slots_[i].value = V{};
    --size_;
    return true;
  }

  /// Visits every (key, value) in unspecified order; callers that need
  /// determinism (serialization, listings) sort what they collect.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
      if (hashes_[i] != 0) f(slots_[i].key, slots_[i].value);
    }
  }

  void clear() {
    hashes_.clear();
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

 private:
  struct Slot {
    std::string key;
    V value{};
  };

  [[nodiscard]] std::size_t probe_distance(std::uint64_t hash,
                                           std::size_t at) const {
    return (at + hashes_.size() - (hash & mask_)) & mask_;
  }

  /// Grows before the load factor crosses 3/4.
  void reserve_one() {
    if (hashes_.empty()) {
      rehash(8);
    } else if ((size_ + 1) * 4 > hashes_.size() * 3) {
      rehash(hashes_.size() * 2);
    }
  }

  void rehash(std::size_t capacity) {
    std::vector<std::uint64_t> old_hashes = std::move(hashes_);
    std::vector<Slot> old_slots = std::move(slots_);
    hashes_.assign(capacity, 0);
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_hashes.size(); ++i) {
      if (old_hashes[i] != 0) {
        insert_fresh(old_hashes[i], std::move(old_slots[i].key),
                     std::move(old_slots[i].value));
      }
    }
  }

  /// Robin-hood insert of a key known to be absent. Returns the address
  /// where the inserted value came to rest.
  V* insert_fresh(std::uint64_t h, std::string key, V value) {
    std::size_t i = h & mask_;
    std::size_t dist = 0;
    V* inserted = nullptr;
    for (;;) {
      if (hashes_[i] == 0) {
        hashes_[i] = h;
        slots_[i].key = std::move(key);
        slots_[i].value = std::move(value);
        ++size_;
        return inserted != nullptr ? inserted : &slots_[i].value;
      }
      const std::size_t sdist = probe_distance(hashes_[i], i);
      if (sdist < dist) {
        // Rob the rich: the resident is closer to home than we are; it
        // takes over the carried element and we continue placing it.
        std::swap(h, hashes_[i]);
        std::swap(key, slots_[i].key);
        std::swap(value, slots_[i].value);
        if (inserted == nullptr) inserted = &slots_[i].value;
        dist = sdist;
      }
      i = (i + 1) & mask_;
      ++dist;
    }
  }

  std::vector<std::uint64_t> hashes_;  // 0 = empty; probe array
  std::vector<Slot> slots_;            // parallel key/value storage
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hyrd::meta
