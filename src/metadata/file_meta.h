// FileMeta: the client-side inode. Records a logical file's size, version,
// integrity digest, and *where its redundancy lives* — which providers hold
// which replicas or which erasure shards.
//
// Metadata is itself data: FileMeta records are grouped per directory
// (paper §III-C, "groups the metadata in a directory together to exploit
// the access locality") and the resulting blocks are replicated on
// performance-oriented providers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::meta {

enum class RedundancyKind : std::uint8_t {
  kReplicated = 0,
  kErasure = 1,
};

constexpr std::string_view redundancy_name(RedundancyKind k) {
  return k == RedundancyKind::kReplicated ? "replicated" : "erasure";
}

/// One stored fragment: which provider, and the object name there.
struct FragmentLocation {
  std::string provider;
  std::string object_name;

  friend bool operator==(const FragmentLocation&,
                         const FragmentLocation&) = default;
};

struct FileMeta {
  std::string path;   // logical path, e.g. "/mail/inbox/0001"
  std::uint64_t size = 0;
  std::int64_t mtime = 0;   // virtual nanoseconds
  std::uint64_t version = 0;  // bumped on every write
  RedundancyKind redundancy = RedundancyKind::kReplicated;
  std::uint32_t crc = 0;      // CRC32C of the full object

  // Replication: `locations` holds one entry per replica.
  // Erasure: `locations` holds k data + m parity shard slots in code order.
  std::vector<FragmentLocation> locations;
  std::uint32_t stripe_k = 0;
  std::uint32_t stripe_m = 0;
  std::uint64_t shard_size = 0;

  /// Per-fragment CRC32C digests (code order, erasure only; empty for
  /// replication). Lets the read path pinpoint a silently corrupted
  /// fragment and treat it as an erasure instead of failing the object.
  /// 0 entries mean "digest unknown" (after an in-place block update).
  std::vector<std::uint32_t> fragment_crcs;

  friend bool operator==(const FileMeta&, const FileMeta&) = default;

  /// Directory component of `path` ("/" for top-level files).
  [[nodiscard]] std::string directory() const;
  [[nodiscard]] std::string filename() const;

  void serialize(class Writer& w) const;
  static common::Result<FileMeta> deserialize(class Reader& r);
};

/// Splits a logical path into (directory, filename).
std::pair<std::string, std::string> split_path(const std::string& path);

}  // namespace hyrd::meta
