#include "metadata/keyspace.h"

#include <algorithm>
#include <cassert>

#include "common/rng.h"
#include "metadata/file_meta.h"
#include "metadata/shard_table.h"

namespace hyrd::meta {

Keyspace::Keyspace(std::size_t shard_count, std::size_t vnodes_per_shard)
    : shard_count_(shard_count == 0 ? 1 : shard_count),
      vnodes_(vnodes_per_shard == 0 ? 1 : vnodes_per_shard) {
  ring_.reserve(shard_count_ * vnodes_);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    // Each shard's points derive from its id alone, so shard s owns the
    // same arcs in every keyspace that contains it — the property that
    // makes growth move only the new shard's arcs.
    common::SplitMix64 gen(0x6b657973'70616365ull ^ (s + 1));
    for (std::size_t v = 0; v < vnodes_; ++v) {
      ring_.push_back({gen.next(), static_cast<std::uint32_t>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const Point& a, const Point& b) {
    return a.where != b.where ? a.where < b.where : a.shard < b.shard;
  });

  lut_.resize(std::size_t{1} << kLutBits);
  std::size_t ri = 0;
  for (std::size_t b = 0; b < lut_.size(); ++b) {
    const std::uint64_t start = static_cast<std::uint64_t>(b) << kLutShift;
    while (ri < ring_.size() && ring_[ri].where < start) ++ri;
    lut_[b] = static_cast<std::uint32_t>(ri);
  }
}

std::size_t Keyspace::shard_of_dir(std::string_view dir) const {
  return shard_of_hash(stable_key_hash(dir));
}

std::size_t Keyspace::shard_of_path(const std::string& path) const {
  return shard_of_dir(split_path(path).first);
}

std::vector<double> Keyspace::ownership() const {
  std::vector<double> out(shard_count_, 0.0);
  constexpr double kSpace = 18446744073709551616.0;  // 2^64
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    // Point i owns the arc (prev, i]; the first point also owns the wrap.
    const std::uint64_t hi = ring_[i].where;
    const std::uint64_t lo = ring_[i == 0 ? ring_.size() - 1 : i - 1].where;
    const double arc =
        i == 0 ? (kSpace - static_cast<double>(lo) + static_cast<double>(hi))
               : static_cast<double>(hi - lo);
    out[ring_[i].shard] += arc / kSpace;
  }
  return out;
}

double Keyspace::moved_fraction(const Keyspace& from, const Keyspace& to) {
  // Merge both rings' boundary points: ownership is constant between
  // consecutive boundaries, so comparing one interior point per interval
  // is exact.
  std::vector<std::uint64_t> bounds;
  bounds.reserve(from.ring_.size() + to.ring_.size());
  for (const auto& p : from.ring_) bounds.push_back(p.where);
  for (const auto& p : to.ring_) bounds.push_back(p.where);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  if (bounds.empty()) return 0.0;

  constexpr double kSpace = 18446744073709551616.0;  // 2^64
  double moved = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::uint64_t lo = bounds[i];
    const std::uint64_t hi = bounds[(i + 1) % bounds.size()];
    // The interval (lo, hi] routes like any interior point; `hi` itself is
    // a member and cheap to query.
    if (from.shard_of_hash(hi) == to.shard_of_hash(hi)) continue;
    const double arc = i + 1 < bounds.size()
                           ? static_cast<double>(hi - lo)
                           : kSpace - static_cast<double>(lo) +
                                 static_cast<double>(hi);
    moved += arc / kSpace;
  }
  return moved;
}

}  // namespace hyrd::meta
