// UpdateLog: the write/update log the paper's recovery design keeps during
// a provider outage (§III-C). While a provider is offline, every mutation
// that *would* have touched it is appended here; when the provider returns,
// the log drives consistency updates and is then truncated.
//
// Indexed (DESIGN.md §14): records live in one append-only slab in sequence
// order, and each provider keeps an index of its slot positions plus a
// latest-record-per-object map. That makes
//
//   * append        O(1) amortized — one slab push + index updates;
//   * pending_for   O(records pending for that provider) — no full-log
//                   scan-and-compact per call;
//   * truncate      touches only that provider's slots (slab space is
//                   reclaimed by an amortized compaction when over half the
//                   slab is dead).
//
// Superseded records (an object re-logged for the same provider) are
// flagged at append time; once a provider accumulates more shadowed
// records than the compaction watermark they are dropped eagerly, bounding
// the log's footprint during a long outage. serialize() writes live
// records in sequence order — byte-identical to the pre-index format for
// any log that has not crossed the watermark.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::meta {

class Keyspace;

enum class LogAction : std::uint8_t {
  kPut = 0,     // object on the offline provider is stale; re-push
  kRemove = 1,  // object was deleted while provider was offline
};

struct LogRecord {
  std::uint64_t seq = 0;
  std::string provider;     // the offline provider this record targets
  std::string container;    // provider-side container of the stale object
  std::string path;         // logical file path (or synthetic meta path)
  std::string object_name;  // provider-side object name
  LogAction action = LogAction::kPut;
};

class UpdateLog {
 public:
  /// Superseded records tolerated per provider before eager compaction.
  static constexpr std::size_t kDefaultCompactionWatermark = 4096;

  /// Appends a record; assigns and returns its sequence number. O(1)
  /// amortized.
  std::uint64_t append(std::string provider, std::string container,
                       std::string path, std::string object_name,
                       LogAction action);

  /// All pending records for one provider, in sequence order. Later
  /// records for the same object supersede earlier ones (compacted view).
  [[nodiscard]] std::vector<LogRecord> pending_for(
      const std::string& provider) const;

  /// The pending records for one provider whose paths route to `shard`
  /// under the bound keyspace (everything is shard 0 when unbound) — the
  /// shard-local slice a per-shard resync or rebalance replays.
  [[nodiscard]] std::vector<LogRecord> pending_for_shard(
      const std::string& provider, std::size_t shard) const;

  /// Drops every record for `provider` with seq <= through_seq, touching
  /// only that provider's index.
  void truncate(const std::string& provider, std::uint64_t through_seq);

  /// Routes each record's path through `keyspace` at append time so
  /// pending_for_shard can answer per-shard. Re-binding re-indexes the
  /// existing records. Pass nullptr to unbind. The keyspace must outlive
  /// the log (in practice: the owning client's MetadataStore).
  void bind_keyspace(const Keyspace* keyspace);

  /// Logical record count (live, including superseded-but-uncompacted).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Compaction knobs/introspection (tests, benches).
  void set_compaction_watermark(std::size_t records);
  [[nodiscard]] std::size_t compactions() const;

  /// Serialized form (crash-consistency snapshot; round-trips in tests).
  [[nodiscard]] common::Bytes serialize() const;
  common::Status restore(common::ByteSpan data);

 private:
  struct Slot {
    LogRecord rec;
    std::uint32_t shard = 0;  // keyspace route of rec.path (0 when unbound)
    bool dead = false;        // truncated or compacted away
    bool shadowed = false;    // a later record for the same object exists
  };

  struct ProviderIndex {
    std::vector<std::size_t> slots;  // live slab positions, seq order
    // object_name -> slab position of the latest record for it
    std::unordered_map<std::string, std::size_t> latest;
    // shard -> live slab positions (maintained only while a keyspace is
    // bound; filtered lazily for dead slots)
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_shard;
    std::size_t superseded = 0;  // live slots with shadowed = true
  };

  /// Drops this provider's shadowed records (marks them dead and purges
  /// them from the index). Called under mu_.
  void compact_provider(ProviderIndex& pi);

  /// Rebuilds the slab (dropping dead slots) and every provider index when
  /// more than half the slab is dead. Called under mu_.
  void maybe_compact_slab();

  /// Rebuilds providers_ (and shard routes) from slab_. Called under mu_.
  void rebuild_indexes();

  [[nodiscard]] std::uint32_t route(const LogRecord& rec) const;

  mutable std::mutex mu_;
  std::vector<Slot> slab_;
  std::unordered_map<std::string, ProviderIndex> providers_;
  std::size_t dead_ = 0;
  std::size_t watermark_ = kDefaultCompactionWatermark;
  std::uint64_t compactions_ = 0;
  std::uint64_t next_seq_ = 1;
  const Keyspace* keyspace_ = nullptr;
};

}  // namespace hyrd::meta
