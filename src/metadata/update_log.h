// UpdateLog: the write/update log the paper's recovery design keeps during
// a provider outage (§III-C). While a provider is offline, every mutation
// that *would* have touched it is appended here; when the provider returns,
// the log drives consistency updates and is then truncated.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::meta {

enum class LogAction : std::uint8_t {
  kPut = 0,     // object on the offline provider is stale; re-push
  kRemove = 1,  // object was deleted while provider was offline
};

struct LogRecord {
  std::uint64_t seq = 0;
  std::string provider;     // the offline provider this record targets
  std::string container;    // provider-side container of the stale object
  std::string path;         // logical file path (or synthetic meta path)
  std::string object_name;  // provider-side object name
  LogAction action = LogAction::kPut;
};

class UpdateLog {
 public:
  /// Appends a record; assigns and returns its sequence number.
  std::uint64_t append(std::string provider, std::string container,
                       std::string path, std::string object_name,
                       LogAction action);

  /// All pending records for one provider, in sequence order. Later
  /// records for the same object supersede earlier ones (compacted view).
  [[nodiscard]] std::vector<LogRecord> pending_for(
      const std::string& provider) const;

  /// Drops every record for `provider` with seq <= through_seq.
  void truncate(const std::string& provider, std::uint64_t through_seq);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Serialized form (crash-consistency snapshot; round-trips in tests).
  [[nodiscard]] common::Bytes serialize() const;
  common::Status restore(common::ByteSpan data);

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace hyrd::meta
