// Event-driven failure injection for the discrete-event scale-out engine.
//
// The legacy failure tools are step-driven: OutageController is scripted by
// the bench loop, RandomOutageInjector flips coins once per externally
// supplied epoch. Neither composes with the event queue — a sim run has no
// "per-step" place to put them, so PR 6's fleets ran against providers that
// never failed. FailureInjector makes disruptions first-class events:
//
//   outage          correlated set of providers offline for a duration,
//                   restored (data intact) at the end event
//   brownout        slow-but-alive: latency_scale applied for a duration
//                   (the degraded-provider tail hedged reads exist to cut)
//   permanent loss  SimProvider::fail_permanently() — store wiped, offline
//                   forever; restore attempts are refused by the provider
//
// Each scheduled disruption becomes one or two EventHandlers on the same
// queue the tenants run on, so onsets and recoveries interleave with tenant
// steps at exact virtual instants and the whole campaign stays a pure
// function of the config (deterministic, byte-identical per seed).
//
// Restores invoke an optional listener — the harness points it at
// StorageClient::on_provider_restored so schemes run their post-outage
// consistency update (UpdateLog replay) the moment the provider returns,
// exactly like the paper's recovery story.
//
// schedule_random_churn() is the event-driven replacement for per-step
// RandomOutageInjector loops: it pre-generates a seeded Markov outage
// schedule (respecting min_online) at schedule time, so the churn itself
// is part of the deterministic event timeline.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/registry.h"
#include "sim/event_queue.h"

namespace hyrd::sim {

enum class FailureKind { kOutage, kBrownout, kPermanentLoss };

constexpr std::string_view failure_kind_name(FailureKind k) {
  switch (k) {
    case FailureKind::kOutage: return "outage";
    case FailureKind::kBrownout: return "brownout";
    case FailureKind::kPermanentLoss: return "permanent_loss";
  }
  return "unknown";
}

/// One scheduled disruption. Every named provider flips together (that is
/// what makes an outage "correlated"); unknown names are ignored.
struct FailureSpec {
  FailureKind kind = FailureKind::kOutage;
  std::vector<std::string> providers;
  common::SimDuration at = 0;
  common::SimDuration duration = 0;  // ignored for kPermanentLoss
  double latency_scale = 8.0;        // kBrownout only
};

/// One applied state transition, in dispatch order (deterministic).
struct FailureLogEntry {
  common::SimDuration at = 0;
  FailureKind kind = FailureKind::kOutage;
  bool onset = true;  // false = recovery (restore / scale back to 1.0)
  std::string provider;
};

class FailureInjector {
 public:
  FailureInjector(cloud::CloudRegistry& registry, EventQueue& queue)
      : registry_(registry), queue_(queue) {}

  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  /// Schedules one disruption (onset event, plus an end event for the
  /// transient kinds). Must be called before/while the queue runs; the
  /// injector must outlive the queue's run.
  void schedule(FailureSpec spec);

  void schedule_outage(std::vector<std::string> providers,
                       common::SimDuration at, common::SimDuration duration);
  void schedule_brownout(std::vector<std::string> providers,
                         common::SimDuration at, common::SimDuration duration,
                         double latency_scale);
  void schedule_permanent_loss(std::string provider, common::SimDuration at);

  /// Pre-generates a seeded random outage schedule over `epochs` epochs of
  /// `epoch_length` each: every online provider goes down with p_down per
  /// epoch (never below min_online symbolically-online providers) and every
  /// offline one recovers with p_up. The whole schedule is drawn up front
  /// from its own RNG stream, so it is independent of event dispatch.
  void schedule_random_churn(std::uint64_t seed, std::size_t epochs,
                             common::SimDuration epoch_length,
                             double p_down = 0.02, double p_up = 0.30,
                             std::size_t min_online = 3);

  /// Called (provider name, virtual now) after an outage restore takes
  /// effect — the hook for scheme-level consistency updates.
  using RestoreListener =
      std::function<void(const std::string&, common::SimDuration)>;
  void set_restore_listener(RestoreListener listener) {
    restore_listener_ = std::move(listener);
  }

  [[nodiscard]] const std::vector<FailureLogEntry>& log() const {
    return log_;
  }

  /// Latest virtual end of any *applied* transient disruption (outage
  /// restore or brownout recovery); 0 when none ended. The campaign's
  /// recovery-time metric is measured from here.
  [[nodiscard]] common::SimDuration last_transient_end() const {
    return last_transient_end_;
  }

 private:
  struct Phase final : EventHandler {
    FailureInjector* injector = nullptr;
    std::size_t spec_index = 0;
    bool onset = true;
    void on_event(EventQueue& queue, common::SimDuration now) override;
  };

  void apply(std::size_t spec_index, bool onset, common::SimDuration now);

  cloud::CloudRegistry& registry_;
  EventQueue& queue_;
  std::deque<FailureSpec> specs_;
  std::deque<Phase> phases_;  // deque: stable addresses, the queue holds ptrs
  std::vector<FailureLogEntry> log_;
  RestoreListener restore_listener_;
  common::SimDuration last_transient_end_ = 0;
};

}  // namespace hyrd::sim
