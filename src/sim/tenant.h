// A synthetic tenant: one closed-loop client modeled as a state machine
// stepped by the discrete-event queue.
//
// Where the legacy benches dedicate an OS thread (≥ 512 KB of stack) to
// each concurrent client, a Tenant is ~100 bytes of state: an id, an RNG,
// an op counter, and its object path. Its entire lifecycle is a chain of
// events:
//
//   wakeup(t) -> install VirtualScope{t, id, weight}
//             -> issue one PUT or GET through the shared StorageClient
//                (AsyncBatch detects the scope and runs inline; latency —
//                including SimProvider queueing delay — comes back as a
//                virtual duration, with zero wall-clock blocking)
//             -> record the op into the fleet metrics
//             -> schedule next wakeup at t + latency + think time
//
// The tenant works on a single object in its own directory (t<id>/o), so
// per-tenant metadata stays O(1): metadata blocks are per-directory, and a
// shared directory would make every put serialize an O(tenants) block.
//
// Payloads are random-offset slices of one fleet-wide arena buffer: with
// the zero-copy store, 10^6 stored objects share the arena's bytes and
// cost only control blocks, which is what keeps a million-tenant run in
// hundreds of MB instead of tens of GB.
#pragma once

#include <cstdint>

#include "common/buffer.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/storage_client.h"
#include "gcsapi/retry.h"
#include "sim/event_queue.h"

namespace hyrd::sim {

/// Workload shape shared by every tenant of a fleet.
struct TenantConfig {
  std::uint32_t ops = 4;               // ops per tenant (first is a PUT)
  double write_ratio = 0.25;           // P(PUT) after the object exists
  std::uint32_t object_bytes = 4096;   // small file -> replicated path
  common::SimDuration mean_think = 2 * common::kSecond;  // exp. distributed
  double weight = 1.0;                 // fair-queuing share at providers

  /// Fraction of post-creation ops that are metadata stats: answered from
  /// the client-resident sharded MetadataStore, no provider traffic, zero
  /// virtual latency. The RNG draw only happens when this is > 0, so
  /// default runs keep their exact event streams (the determinism pins).
  double stat_ratio = 0.0;

  /// Tenant-level failure response: when an op fails retryably (throttled
  /// 429, provider outage), the tenant *schedules the retry as an event*
  /// at now + latency + backoff instead of counting a failure — the
  /// non-blocking Retry-v2 variant, so outage-end and brownout-recovery
  /// events interleave between attempts. Default none(): one attempt per
  /// op, one event per op (the shape the determinism tests pin).
  gcs::RetryPolicy retry = gcs::RetryPolicy::none();
};

/// Fleet-wide accounting shared (single-threaded) by all tenants.
struct FleetMetrics {
  common::LogHistogram latency_ms{0.1, 1.25, 120};  // 0.1 ms .. ~5e8 ms
  common::RunningStat put_ms;
  common::RunningStat get_ms;
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  std::uint64_t ops_started = 0;  // fresh ops issued (first attempts)
  std::uint64_t meta_stats = 0;  // client-side metadata stats issued
  std::uint64_t retries = 0;  // attempts beyond each op's first
  std::uint64_t tenants_finished = 0;
  common::SimDuration last_completion = 0;  // fleet makespan (virtual)
  /// Latest virtual completion of a failed attempt (retried or given up):
  /// the moment the fleet last *felt* a disruption. Recovery time is
  /// measured from the last disruption's end to here.
  common::SimDuration last_disruption_felt = 0;

  void note_op(bool is_put, bool ok, common::SimDuration latency,
               common::SimDuration completed_at) {
    latency_ms.add(common::to_ms(latency));
    (is_put ? put_ms : get_ms).add(common::to_ms(latency));
    ok ? ++ops_ok : ++ops_failed;
    if (completed_at > last_completion) last_completion = completed_at;
    if (!ok && completed_at > last_disruption_felt) {
      last_disruption_felt = completed_at;
    }
  }

  void note_retry(common::SimDuration failed_at) {
    ++retries;
    if (failed_at > last_disruption_felt) last_disruption_felt = failed_at;
  }
};

class Tenant final : public EventHandler {
 public:
  Tenant(std::uint64_t id, std::uint64_t seed, const TenantConfig& config,
         core::StorageClient& client, const common::Buffer& arena,
         FleetMetrics& metrics)
      : id_(id),
        rng_(seed),
        config_(config),
        client_(client),
        arena_(arena),
        metrics_(metrics),
        path_("t" + std::to_string(id) + "/o") {}

  /// One step: issue the next op, account it, schedule the next wakeup.
  void on_event(EventQueue& queue, common::SimDuration now) override;

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint32_t ops_done() const { return ops_done_; }

 private:
  [[nodiscard]] common::Buffer draw_payload();
  [[nodiscard]] common::SimDuration draw_think();

  const std::uint64_t id_;
  common::Xoshiro256 rng_;
  const TenantConfig& config_;   // shared, fleet-owned
  core::StorageClient& client_;  // shared, fleet-owned
  const common::Buffer& arena_;  // shared, fleet-owned
  FleetMetrics& metrics_;        // shared, fleet-owned
  const std::string path_;       // "t<id>/o" — fits SSO
  std::uint32_t ops_done_ = 0;
  std::uint32_t attempt_ = 0;  // attempts of the in-flight op; 0 = fresh op
  common::SimDuration op_spent_ = 0;  // virtual time charged to it so far
  bool retry_is_put_ = false;  // kind of the op being retried
  bool has_object_ = false;  // first successful PUT landed
};

}  // namespace hyrd::sim
