#include "sim/event_queue.h"

#include <cassert>

#include "cloud/cancel.h"

namespace hyrd::sim {

EventId EventQueue::schedule_at(common::SimDuration when,
                                EventHandler* handler) {
  assert(handler != nullptr);
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  entries_[id].handler = handler;
  heap_.push({when, id});
  return id;
}

EventId EventQueue::schedule_in(common::SimDuration delay,
                                EventHandler* handler) {
  return schedule_at(delay > 0 ? now_ + delay : now_, handler);
}

bool EventQueue::cancel(EventId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  // Flag, don't erase: the heap item still references the entry, and the
  // flag must stay readable (it may be the installed CancelScope of work
  // already associated with this event).
  return !it->second.cancelled.exchange(true, std::memory_order_acq_rel);
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    const HeapItem item = heap_.top();
    heap_.pop();
    auto it = entries_.find(item.id);
    assert(it != entries_.end() && "heap item without entry");
    if (it->second.cancelled.load(std::memory_order_acquire)) {
      entries_.erase(it);
      continue;
    }
    assert(item.when >= now_ && "virtual time must be monotonic");
    now_ = item.when;
    ++dispatched_;
    EventHandler* handler = it->second.handler;
    {
      // The event's own flag doubles as the cooperative-cancellation token
      // for everything the handler does: a provider op issued from this
      // step aborts exactly like an AsyncBatch straggler would.
      cloud::CancelScope scope(&it->second.cancelled);
      handler->on_event(*this, now_);
    }
    entries_.erase(item.id);  // `it` may be stale after handler side effects
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace hyrd::sim
