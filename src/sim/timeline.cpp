#include "sim/timeline.h"

#include <algorithm>
#include <cstdio>

namespace hyrd::sim {

namespace {

void append_num(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f,", key, v);
  out += buf;
}

void append_num(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu,", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

TimelineSampler::TimelineSampler(TimelineConfig config,
                                 const FleetMetrics& metrics,
                                 const cloud::CloudRegistry& registry,
                                 std::size_t fleet_size)
    : config_(config),
      metrics_(metrics),
      registry_(registry),
      fleet_size_(fleet_size) {
  for (const auto& provider : registry_.all()) {
    provider_names_.push_back(provider->name());
  }
  prev_provider_throttled_.assign(provider_names_.size(), 0);
  prev_latency_counts_ = metrics_.latency_ms.counts();
}

void TimelineSampler::start(EventQueue& queue) {
  if (!config_.enabled || config_.interval <= 0) return;
  queue.schedule_at(config_.interval, this);
}

void TimelineSampler::on_event(EventQueue& queue, common::SimDuration now) {
  sample(now);
  // Once every tenant has finished, this tick closed the final window; not
  // rescheduling lets the queue drain instead of ticking forever.
  if (metrics_.tenants_finished >= fleet_size_) return;
  queue.schedule_at(now + config_.interval, this);
}

void TimelineSampler::sample(common::SimDuration now) {
  TimelineRow row;
  row.t_vs = common::to_seconds(now);

  row.ops_ok_w = metrics_.ops_ok - prev_ops_ok_;
  row.ops_failed_w = metrics_.ops_failed - prev_ops_failed_;
  row.retries_w = metrics_.retries - prev_retries_;
  prev_ops_ok_ = metrics_.ops_ok;
  prev_ops_failed_ = metrics_.ops_failed;
  prev_retries_ = metrics_.retries;

  const double interval_s = common::to_seconds(config_.interval);
  row.goodput_ops_per_vs =
      interval_s > 0 ? static_cast<double>(row.ops_ok_w) / interval_s : 0.0;
  const std::uint64_t done_w = row.ops_ok_w + row.ops_failed_w;
  row.retry_amplification_w =
      done_w ? static_cast<double>(done_w + row.retries_w) /
                   static_cast<double>(done_w)
             : 1.0;

  // Window percentiles: the latency histogram's count delta over this
  // window is itself a LogHistogram (same geometry), so the bucket
  // interpolation machinery applies unchanged.
  const std::vector<std::size_t>& cum = metrics_.latency_ms.counts();
  std::vector<std::size_t> delta(cum.size());
  for (std::size_t i = 0; i < cum.size(); ++i) {
    delta[i] = cum[i] - prev_latency_counts_[i];
  }
  prev_latency_counts_ = cum;
  const common::LogHistogram window(metrics_.latency_ms.base(),
                                    metrics_.latency_ms.growth(),
                                    std::move(delta));
  row.p50_ms_w = window.percentile(50.0);
  row.p99_ms_w = window.percentile(99.0);

  row.in_flight =
      metrics_.ops_started - metrics_.ops_ok - metrics_.ops_failed;

  const auto& providers = registry_.all();
  row.provider_queue_depth.reserve(providers.size());
  row.provider_online.reserve(providers.size());
  row.provider_throttled_w.reserve(providers.size());
  for (std::size_t i = 0; i < providers.size(); ++i) {
    row.provider_queue_depth.push_back(providers[i]->congestion_depth(now));
    row.provider_online.push_back(providers[i]->online() ? 1 : 0);
    const std::uint64_t throttled = providers[i]->counters().throttled;
    row.provider_throttled_w.push_back(throttled -
                                       prev_provider_throttled_[i]);
    prev_provider_throttled_[i] = throttled;
    row.throttled_w += row.provider_throttled_w.back();
  }

  rows_.push_back(std::move(row));
}

std::string timeline_to_json(const std::vector<TimelineRow>& rows,
                             const std::vector<std::string>& providers,
                             double interval_vs) {
  std::string out = "{";
  append_num(out, "interval_vs", interval_vs);
  out += "\"providers\":[";
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + providers[i] + "\"";
  }
  out += "],\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const TimelineRow& r = rows[i];
    if (i > 0) out += ",";
    out += "{";
    append_num(out, "t_vs", r.t_vs);
    append_num(out, "ops_ok_w", r.ops_ok_w);
    append_num(out, "ops_failed_w", r.ops_failed_w);
    append_num(out, "retries_w", r.retries_w);
    append_num(out, "throttled_w", r.throttled_w);
    append_num(out, "goodput_ops_per_vs", r.goodput_ops_per_vs);
    append_num(out, "retry_amplification_w", r.retry_amplification_w);
    append_num(out, "p50_ms_w", r.p50_ms_w);
    append_num(out, "p99_ms_w", r.p99_ms_w);
    append_num(out, "in_flight", r.in_flight);
    const auto append_array = [&out](const char* key, auto&& values) {
      out += "\"";
      out += key;
      out += "\":[";
      bool first = true;
      for (const auto v : values) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%llu", first ? "" : ",",
                      static_cast<unsigned long long>(v));
        out += buf;
        first = false;
      }
      out += "],";
    };
    append_array("provider_queue_depth", r.provider_queue_depth);
    append_array("provider_online", r.provider_online);
    append_array("provider_throttled", r.provider_throttled_w);
    out.back() = '}';  // replace the trailing comma
  }
  out += "]}";
  return out;
}

double timeline_recovery_seconds(const std::vector<TimelineRow>& rows,
                                 double baseline_from_vs,
                                 double baseline_to_vs, double after_vs,
                                 double fraction) {
  double baseline_sum = 0;
  std::size_t baseline_n = 0;
  for (const TimelineRow& r : rows) {
    if (r.t_vs >= baseline_from_vs && r.t_vs < baseline_to_vs) {
      baseline_sum += r.goodput_ops_per_vs;
      ++baseline_n;
    }
  }
  if (baseline_n == 0) return -1;
  const double target =
      fraction * baseline_sum / static_cast<double>(baseline_n);
  if (target <= 0) return -1;

  // First row at/after `after_vs` opening a run of >= 2 rows at target.
  // The final row of the series counts alone (nothing follows to confirm
  // it, but the fleet finishing healthy is itself the confirmation).
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].t_vs < after_vs) continue;
    if (rows[i].goodput_ops_per_vs < target) continue;
    const bool sustained = i + 1 >= rows.size() ||
                           rows[i + 1].goodput_ops_per_vs >= target;
    if (sustained) return rows[i].t_vs - after_vs;
  }
  return -1;
}

}  // namespace hyrd::sim
