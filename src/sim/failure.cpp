#include "sim/failure.h"

#include <algorithm>

#include "common/rng.h"

namespace hyrd::sim {

void FailureInjector::Phase::on_event(EventQueue&, common::SimDuration now) {
  injector->apply(spec_index, onset, now);
}

void FailureInjector::schedule(FailureSpec spec) {
  const bool transient = spec.kind != FailureKind::kPermanentLoss;
  const common::SimDuration at = spec.at;
  const common::SimDuration end = spec.at + spec.duration;
  specs_.push_back(std::move(spec));
  const std::size_t index = specs_.size() - 1;

  phases_.push_back({});
  Phase& begin = phases_.back();
  begin.injector = this;
  begin.spec_index = index;
  begin.onset = true;
  queue_.schedule_at(at, &begin);

  if (transient) {
    phases_.push_back({});
    Phase& finish = phases_.back();
    finish.injector = this;
    finish.spec_index = index;
    finish.onset = false;
    queue_.schedule_at(end, &finish);
  }
}

void FailureInjector::schedule_outage(std::vector<std::string> providers,
                                      common::SimDuration at,
                                      common::SimDuration duration) {
  schedule({.kind = FailureKind::kOutage,
            .providers = std::move(providers),
            .at = at,
            .duration = duration});
}

void FailureInjector::schedule_brownout(std::vector<std::string> providers,
                                        common::SimDuration at,
                                        common::SimDuration duration,
                                        double latency_scale) {
  schedule({.kind = FailureKind::kBrownout,
            .providers = std::move(providers),
            .at = at,
            .duration = duration,
            .latency_scale = latency_scale});
}

void FailureInjector::schedule_permanent_loss(std::string provider,
                                              common::SimDuration at) {
  schedule({.kind = FailureKind::kPermanentLoss,
            .providers = {std::move(provider)},
            .at = at});
}

void FailureInjector::schedule_random_churn(std::uint64_t seed,
                                            std::size_t epochs,
                                            common::SimDuration epoch_length,
                                            double p_down, double p_up,
                                            std::size_t min_online) {
  // The Markov chain is simulated symbolically at schedule time: `down[i]`
  // tracks the provider's scheduled state, seeded from its current real
  // state. Down providers get an outage spec when their recovery epoch is
  // drawn, so every churn outage has a definite [at, at+duration) window.
  common::Xoshiro256 rng(seed);
  const auto& providers = registry_.all();
  std::vector<bool> down(providers.size());
  std::vector<common::SimDuration> down_since(providers.size(), 0);
  std::size_t online = 0;
  for (std::size_t i = 0; i < providers.size(); ++i) {
    down[i] = !providers[i]->online() || providers[i]->permanently_failed();
    if (!down[i]) ++online;
  }
  for (std::size_t e = 1; e <= epochs; ++e) {
    const common::SimDuration t =
        static_cast<common::SimDuration>(e) * epoch_length;
    for (std::size_t i = 0; i < providers.size(); ++i) {
      if (providers[i]->permanently_failed()) continue;  // out of the pool
      if (!down[i]) {
        if (online > min_online && rng.chance(p_down)) {
          down[i] = true;
          down_since[i] = t;
          --online;
        }
      } else if (rng.chance(p_up)) {
        down[i] = false;
        ++online;
        schedule_outage({providers[i]->name()}, down_since[i],
                        t - down_since[i]);
      }
    }
  }
  // Providers still down at the horizon recover at the horizon's end.
  const common::SimDuration horizon =
      static_cast<common::SimDuration>(epochs + 1) * epoch_length;
  for (std::size_t i = 0; i < providers.size(); ++i) {
    if (down[i] && !providers[i]->permanently_failed() &&
        providers[i]->online()) {
      schedule_outage({providers[i]->name()}, down_since[i],
                      horizon - down_since[i]);
    }
  }
}

void FailureInjector::apply(std::size_t spec_index, bool onset,
                            common::SimDuration now) {
  const FailureSpec& spec = specs_[spec_index];
  for (const auto& name : spec.providers) {
    cloud::SimProvider* p = registry_.find(name);
    if (p == nullptr) continue;
    bool applied = false;
    switch (spec.kind) {
      case FailureKind::kOutage:
        // set_online(true) refuses permanently failed providers, so an
        // outage whose end lands after a scheduled destruction can never
        // resurrect the wiped store.
        applied = p->set_online(!onset);
        break;
      case FailureKind::kBrownout:
        p->set_latency_scale(onset ? spec.latency_scale : 1.0);
        applied = true;
        break;
      case FailureKind::kPermanentLoss:
        p->fail_permanently();
        applied = true;
        break;
    }
    if (!applied) continue;
    log_.push_back({now, spec.kind, onset, name});
    if (!onset) {
      last_transient_end_ = std::max(last_transient_end_, now);
      if (spec.kind == FailureKind::kOutage && restore_listener_) {
        restore_listener_(name, now);
      }
    }
  }
}

}  // namespace hyrd::sim
