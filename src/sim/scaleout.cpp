#include "sim/scaleout.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/registry.h"
#include "common/buffer.h"
#include "common/rng.h"
#include "common/virtual_time.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "gcsapi/session.h"
#include "sim/event_queue.h"
#include "sim/failure.h"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace hyrd::sim {

namespace {

/// Flow identity for post-outage repair traffic (consistency updates).
/// Tenant ids count up from 0, so the all-ones id can never collide.
constexpr std::uint64_t kRepairFlowId = ~0ull;

std::unique_ptr<core::StorageClient> make_client(const std::string& scheme,
                                                 gcs::MultiCloudSession& s) {
  if (scheme == "HyRD") return std::make_unique<core::HyRDClient>(s);
  if (scheme == "DuraCloud") return std::make_unique<core::DuraCloudClient>(s);
  if (scheme == "RACS") return std::make_unique<core::RACSClient>(s);
  throw std::invalid_argument("unknown scaleout scheme: " + scheme);
}

/// Fills the shared payload arena with seeded pseudo-random bytes, so
/// tenant objects have unique-looking content without per-tenant storage.
common::Buffer make_arena(std::size_t bytes, std::uint64_t seed) {
  common::MutableBuffer arena(bytes);
  common::SplitMix64 mixer(seed ^ 0xa5a5a5a5a5a5a5a5ull);
  std::uint8_t* p = arena.data();
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    const std::uint64_t word = mixer.next();
    std::memcpy(p + i, &word, 8);
  }
  if (i < bytes) {
    const std::uint64_t word = mixer.next();
    std::memcpy(p + i, &word, bytes - i);
  }
  return std::move(arena).freeze();
}

/// Fixed-format double: enough digits to be faithful, same bytes for the
/// same value (reproducibility contract of report_to_json).
void append_field(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.6f,", key, v);
  out += buf;
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu,", key,
                static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return resident * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

ScaleoutReport run_scaleout(const ScaleoutConfig& config) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::uint64_t rss_before = current_rss_bytes();

  // --- Fleet + scheme under test ---------------------------------------
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, config.seed);
  if (config.congestion_enabled) {
    for (const auto& provider : registry.all()) {
      provider->set_congestion(config.congestion);
    }
  }
  gcs::MultiCloudSession session(registry, config.client_retry);
  std::unique_ptr<core::StorageClient> client =
      make_client(config.scheme, session);
  // Setup traffic (container creates, evaluator probes) is not part of the
  // measured workload: start the audit counters at zero. The congestion
  // queue is untouched by setup — it only sees VirtualScope traffic.
  for (const auto& provider : registry.all()) provider->reset_counters();
  client->configure_cache(config.cache);

  // --- Tenants ----------------------------------------------------------
  const common::Buffer arena = make_arena(config.arena_bytes, config.seed);
  FleetMetrics metrics;
  EventQueue queue;
  std::vector<Tenant> fleet;
  fleet.reserve(config.tenants);  // stable addresses: the queue holds raw ptrs
  common::SplitMix64 seeder(config.seed);
  for (std::size_t i = 0; i < config.tenants; ++i) {
    fleet.emplace_back(static_cast<std::uint64_t>(i), seeder.next(),
                       config.tenant, *client, arena, metrics);
  }
  // First wakeups staggered uniformly across the ramp window.
  for (std::size_t i = 0; i < config.tenants; ++i) {
    const common::SimDuration at =
        config.tenants <= 1
            ? 0
            : static_cast<common::SimDuration>(
                  static_cast<double>(config.ramp) * static_cast<double>(i) /
                  static_cast<double>(config.tenants));
    queue.schedule_at(at, &fleet[i]);
  }

  // --- Failure campaign -------------------------------------------------
  std::optional<FailureInjector> injector;
  if (config.campaign.enabled) {
    const CampaignConfig& c = config.campaign;
    injector.emplace(registry, queue);
    if (!c.outage_providers.empty()) {
      injector->schedule_outage(c.outage_providers, c.outage_at,
                                c.outage_duration);
    }
    if (!c.brownout_providers.empty()) {
      injector->schedule_brownout(c.brownout_providers, c.brownout_at,
                                  c.brownout_duration, c.brownout_scale);
    }
    if (!c.lost_provider.empty()) {
      injector->schedule_permanent_loss(c.lost_provider, c.lost_at);
    }
    // Consistency updates (update-log replay) run inline at the restore
    // instant, scoped under the reserved repair flow so the traffic is
    // fair-queued and the run stays a deterministic event timeline.
    injector->set_restore_listener(
        [&client](const std::string& name, common::SimDuration at) {
          common::VirtualScope scope({at, kRepairFlowId, 1.0});
          client->on_provider_restored(name);
        });
  }

  // --- Flight recorder --------------------------------------------------
  std::optional<TimelineSampler> sampler;
  if (config.timeline.enabled) {
    sampler.emplace(config.timeline, metrics, registry, config.tenants);
    sampler->start(queue);
  }

  {
    // Trace only the measured run; setup traffic above emits no spans.
    std::optional<obs::TraceScope> tracing;
    if (config.trace != nullptr) tracing.emplace(config.trace);
    queue.run();
  }

  // --- Cache drain ------------------------------------------------------
  // Flush dirty write-back data at the end of virtual time, directly (no
  // queue events: events_dispatched stays pinned to the tenant workload).
  // Whatever cannot land — e.g. every replica target permanently lost —
  // is the lazy-fsync durability cost and is accounted as lost.
  std::uint64_t cache_drain_flushed = 0;
  if (config.cache.enabled) {
    common::VirtualScope scope({metrics.last_completion, kRepairFlowId, 1.0});
    cache_drain_flushed = client->flush_cache().flushed_entries;
  }

  // --- Report -----------------------------------------------------------
  ScaleoutReport r;
  r.scheme = config.scheme;
  r.seed = config.seed;
  r.tenants = config.tenants;
  r.ops_ok = metrics.ops_ok;
  r.ops_failed = metrics.ops_failed;
  r.events_dispatched = queue.dispatched();
  for (const auto& provider : registry.all()) {
    const cloud::OpCounters c = provider->counters();
    r.provider_ops += c.total_ops();
    r.provider_throttled += c.throttled;
    if (provider->congestion_enabled()) {
      r.peak_queue_depth =
          std::max(r.peak_queue_depth, provider->congestion_stats().peak_depth);
    }
  }
  r.virtual_seconds = common::to_seconds(metrics.last_completion);
  r.throughput_ops_per_vs =
      r.virtual_seconds > 0
          ? static_cast<double>(r.ops_ok) / r.virtual_seconds
          : 0.0;
  const std::size_t n_lat = metrics.latency_ms.total();
  r.mean_ms = n_lat ? (metrics.put_ms.sum() + metrics.get_ms.sum()) /
                          static_cast<double>(n_lat)
                    : 0.0;
  r.p50_ms = metrics.latency_ms.percentile(50.0);
  r.p90_ms = metrics.latency_ms.percentile(90.0);
  r.p99_ms = metrics.latency_ms.percentile(99.0);
  r.p999_ms = metrics.latency_ms.percentile(99.9);
  r.put_mean_ms = metrics.put_ms.mean();
  r.get_mean_ms = metrics.get_ms.mean();
  r.meta_stats = metrics.meta_stats;

  r.retries = metrics.retries;
  const std::uint64_t ops_total = r.ops_ok + r.ops_failed;
  r.retry_amplification =
      ops_total ? static_cast<double>(ops_total + r.retries) /
                      static_cast<double>(ops_total)
                : 1.0;
  r.goodput_ops_per_vs = r.virtual_seconds > 0
                             ? static_cast<double>(r.ops_ok) /
                                   r.virtual_seconds
                             : 0.0;
  if (injector.has_value()) {
    r.failure_events = injector->log().size();
    const common::SimDuration lifted = injector->last_transient_end();
    if (lifted > 0 && metrics.last_disruption_felt > lifted) {
      r.recovery_virtual_seconds =
          common::to_seconds(metrics.last_disruption_felt - lifted);
    }
  }
  for (const auto& provider : registry.all()) {
    if (provider->permanently_failed() && provider->online()) {
      r.provider_resurrected = 1;
    }
  }
  if (sampler.has_value()) {
    r.timeline = sampler->rows();
    r.timeline_providers = sampler->providers();
    r.timeline_interval_vs = sampler->interval_vs();
  }
  if (cache::ClientCache* cc = client->client_cache()) {
    // Anything still dirty after the drain could not be made durable.
    (void)cc->discard_all_dirty();
    const cache::CacheStats cs = cc->stats_snapshot();
    r.cache_absorbed = cs.absorbed_writes;
    r.cache_coalesced = cs.coalesced_writes;
    r.cache_flush_batches = cs.flush_batches;
    r.cache_flushed_entries = cs.flushed_entries;
    r.cache_read_hits = cs.read_hits;
    r.cache_dirty_hits = cs.dirty_hits;
    r.cache_flush_failures = cs.flush_failures;
    r.cache_drain_flushed = cache_drain_flushed;
    r.cache_dirty_lost_entries = cs.dirty_lost_entries;
    r.cache_dirty_lost_bytes = cs.dirty_lost_bytes;
  }

  const std::uint64_t rss_after = current_rss_bytes();
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  r.rss_bytes = rss_after;
  r.rss_delta_bytes = rss_after > rss_before ? rss_after - rss_before : 0;
  r.bytes_per_tenant =
      config.tenants
          ? static_cast<double>(r.rss_delta_bytes) /
                static_cast<double>(config.tenants)
          : 0.0;
  return r;
}

ScaleoutConfig standard_campaign_config(std::string scheme,
                                        std::size_t tenants,
                                        std::uint64_t seed) {
  ScaleoutConfig config;
  config.scheme = std::move(scheme);
  config.tenants = tenants;
  config.seed = seed;

  // Tight provider capacity: the ramp alone drives the fair queue to its
  // depth cap, so the campaign exercises real 429s, not just outages.
  config.congestion.channels = 8;
  config.congestion.per_op_service_ms = 2.0;
  config.congestion.service_mbps = 200.0;
  config.congestion.max_queue_depth = 64;
  config.ramp = 10 * common::kSecond;

  config.tenant.ops = 16;
  config.tenant.write_ratio = 0.25;
  config.tenant.object_bytes = 4096;
  config.tenant.mean_think = 2 * common::kSecond;

  // Tenant-level response: generous attempt budget with a jittered capped
  // ladder, so ops started inside the 8 s outage keep backing off until
  // the restore event lands instead of giving up mid-disruption.
  config.tenant.retry.max_attempts = 64;
  config.tenant.retry.backoff_ms = 50.0;
  config.tenant.retry.backoff_multiplier = 2.0;
  config.tenant.retry.max_backoff_ms = 2'000.0;
  config.tenant.retry.retry_unavailable = true;
  config.tenant.retry.retry_throttled = true;
  config.tenant.retry.jitter_seed = seed ^ 0xeb5493553f6cf38dull;

  // Session-level response: short jittered 429 ladder inside CloudClient,
  // absorbing transient fair-queue rejections before they ever surface.
  config.client_retry.max_attempts = 4;
  config.client_retry.backoff_ms = 25.0;
  config.client_retry.backoff_multiplier = 2.0;
  config.client_retry.max_backoff_ms = 500.0;
  config.client_retry.retry_throttled = true;
  config.client_retry.jitter_seed = seed ^ 0xc2b2ae3d27d4eb4full;

  // The scripted disruptions. WindowsAzure + Aliyun are the two
  // performance-oriented providers HyRD's replication targets, so the
  // correlated outage takes out every replica of the small-file tier at
  // once; Aliyun is later destroyed outright (store wiped).
  config.campaign.enabled = true;
  config.campaign.outage_providers = {"WindowsAzure", "Aliyun"};
  config.campaign.outage_at = 12 * common::kSecond;
  config.campaign.outage_duration = 8 * common::kSecond;
  config.campaign.brownout_providers = {"AmazonS3"};
  config.campaign.brownout_at = 24 * common::kSecond;
  config.campaign.brownout_duration = 8 * common::kSecond;
  config.campaign.brownout_scale = 8.0;
  config.campaign.lost_provider = "Aliyun";
  config.campaign.lost_at = 36 * common::kSecond;

  // Campaign runs always sample the timeline: the phases above only mean
  // something as transitions in the series.
  config.timeline.enabled = true;
  return config;
}

std::string report_to_json(const ScaleoutReport& r, bool include_env) {
  std::string out = "{";
  out += "\"scheme\":\"" + r.scheme + "\",";
  append_field(out, "seed", r.seed);
  append_field(out, "tenants", static_cast<std::uint64_t>(r.tenants));
  append_field(out, "ops_ok", r.ops_ok);
  append_field(out, "ops_failed", r.ops_failed);
  append_field(out, "events_dispatched", r.events_dispatched);
  append_field(out, "provider_ops", r.provider_ops);
  append_field(out, "provider_throttled", r.provider_throttled);
  append_field(out, "peak_queue_depth",
               static_cast<std::uint64_t>(r.peak_queue_depth));
  append_field(out, "virtual_seconds", r.virtual_seconds);
  append_field(out, "throughput_ops_per_vs", r.throughput_ops_per_vs);
  append_field(out, "mean_ms", r.mean_ms);
  append_field(out, "p50_ms", r.p50_ms);
  append_field(out, "p90_ms", r.p90_ms);
  append_field(out, "p99_ms", r.p99_ms);
  append_field(out, "p999_ms", r.p999_ms);
  append_field(out, "put_mean_ms", r.put_mean_ms);
  append_field(out, "get_mean_ms", r.get_mean_ms);
  append_field(out, "meta_stats", r.meta_stats);
  append_field(out, "retries", r.retries);
  append_field(out, "retry_amplification", r.retry_amplification);
  append_field(out, "goodput_ops_per_vs", r.goodput_ops_per_vs);
  append_field(out, "failure_events", r.failure_events);
  append_field(out, "recovery_virtual_seconds", r.recovery_virtual_seconds);
  append_field(out, "provider_resurrected", r.provider_resurrected);
  append_field(out, "cache_absorbed", r.cache_absorbed);
  append_field(out, "cache_coalesced", r.cache_coalesced);
  append_field(out, "cache_flush_batches", r.cache_flush_batches);
  append_field(out, "cache_flushed_entries", r.cache_flushed_entries);
  append_field(out, "cache_read_hits", r.cache_read_hits);
  append_field(out, "cache_dirty_hits", r.cache_dirty_hits);
  append_field(out, "cache_flush_failures", r.cache_flush_failures);
  append_field(out, "cache_drain_flushed", r.cache_drain_flushed);
  append_field(out, "cache_dirty_lost_entries", r.cache_dirty_lost_entries);
  append_field(out, "cache_dirty_lost_bytes", r.cache_dirty_lost_bytes);
  if (include_env) {
    append_field(out, "wall_ms", r.wall_ms);
    append_field(out, "rss_bytes", r.rss_bytes);
    append_field(out, "rss_delta_bytes", r.rss_delta_bytes);
    append_field(out, "bytes_per_tenant", r.bytes_per_tenant);
  }
  out.back() = '}';  // replace the trailing comma
  return out;
}

}  // namespace hyrd::sim
