// The scale-out experiment harness: builds a fleet of simulated providers
// (with congestion enabled), one shared StorageClient for the scheme under
// test, and N closed-loop tenants on the discrete-event queue; runs the
// event loop to completion and reports throughput / tail latency / memory.
//
// Shared between bench_scaleout (the sweep driver) and the integration
// tests (determinism: same seed => byte-identical report JSON), so the
// JSON serialization lives here, split into a deterministic core and
// environment-dependent extras (wall time, RSS) that reproducible runs
// exclude.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.h"
#include "cloud/congestion.h"
#include "obs/trace.h"
#include "sim/tenant.h"
#include "sim/timeline.h"

namespace hyrd::sim {

/// A scripted disruption campaign layered onto a scale-out run: one
/// correlated multi-provider outage, one brownout, and one permanent
/// provider loss, all dispatched as FailureInjector events on the tenant
/// queue. Empty provider lists / names disable the corresponding phase.
struct CampaignConfig {
  bool enabled = false;

  std::vector<std::string> outage_providers;  // flip offline together
  common::SimDuration outage_at = 12 * common::kSecond;
  common::SimDuration outage_duration = 8 * common::kSecond;

  std::vector<std::string> brownout_providers;
  common::SimDuration brownout_at = 24 * common::kSecond;
  common::SimDuration brownout_duration = 8 * common::kSecond;
  double brownout_scale = 8.0;

  std::string lost_provider;  // destroyed (store wiped); "" = none
  common::SimDuration lost_at = 36 * common::kSecond;
};

struct ScaleoutConfig {
  /// Scheme under test: "HyRD", "DuraCloud" (replicated), or "RACS" (RS).
  std::string scheme = "HyRD";
  std::size_t tenants = 1000;
  std::uint64_t seed = 42;
  TenantConfig tenant;

  /// Provider-side capacity model, applied to every provider of the fleet.
  cloud::CongestionParams congestion;
  bool congestion_enabled = true;

  /// Tenants wake for their first op uniformly staggered across this
  /// window, so the fleet ramps instead of stampeding at t=0.
  common::SimDuration ramp = 30 * common::kSecond;

  /// Shared payload arena size (tenant puts slice windows out of it).
  std::size_t arena_bytes = 1u << 20;

  /// Session-level (CloudClient) retry policy for every cloud op the scheme
  /// issues. Default: the legacy 3-attempt deterministic ladder.
  gcs::RetryPolicy client_retry = {};

  /// Scripted disruptions (outage / brownout / permanent loss) delivered as
  /// events on the same queue the tenants run on.
  CampaignConfig campaign;

  /// Time-series sampler (sim/timeline.h). Off by default: its tick events
  /// count toward events_dispatched, which the plain-run determinism
  /// contract pins. standard_campaign_config() enables it.
  TimelineConfig timeline;

  /// When set, per-op trace spans from every layer are recorded here for
  /// the duration of the measured run (setup traffic is not traced).
  obs::TraceRecorder* trace = nullptr;

  /// Client cache (write-back group commit + read-through). Disabled by
  /// default: the plain-run determinism pins require the uncached paths
  /// byte-identical. When enabled, the run drains the cache at the end
  /// (no queue events — events_dispatched is unchanged) and accounts any
  /// undrainable dirty data as lost.
  cache::CacheConfig cache;
};

struct ScaleoutReport {
  // --- Deterministic core (stable across identical-seed runs) ---
  std::string scheme;
  std::uint64_t seed = 0;
  std::size_t tenants = 0;
  std::uint64_t ops_ok = 0;
  std::uint64_t ops_failed = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t provider_ops = 0;     // fleet-wide, incl. fan-out
  std::uint64_t provider_throttled = 0;  // 429s at the congestion cap
  std::size_t peak_queue_depth = 0;   // max over providers
  double virtual_seconds = 0;         // fleet makespan in virtual time
  double throughput_ops_per_vs = 0;   // ok client ops per virtual second
  double mean_ms = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double put_mean_ms = 0;
  double get_mean_ms = 0;
  /// Client-side metadata stats issued (tenant.stat_ratio traffic): served
  /// by the sharded MetadataStore, never reaching a provider.
  std::uint64_t meta_stats = 0;

  // --- Failure-response accounting (deterministic; campaign-meaningful) ---
  std::uint64_t retries = 0;          // tenant attempts beyond the first
  double retry_amplification = 1.0;   // (ops + retries) / ops
  double goodput_ops_per_vs = 0;      // ok client ops per virtual second
  std::uint64_t failure_events = 0;   // applied injector transitions
  /// Virtual seconds between the last transient disruption's end and the
  /// last failed attempt the fleet saw — 0 when the fleet recovered before
  /// (or exactly when) the disruption lifted, or when nothing was injected.
  double recovery_virtual_seconds = 0;
  /// 1 if any permanently-failed provider ended the run online — the
  /// resurrection bug this PR fixes; must stay 0.
  std::uint64_t provider_resurrected = 0;

  // --- Client cache accounting (deterministic; zero when disabled) ---
  std::uint64_t cache_absorbed = 0;        // writes absorbed by write-back
  std::uint64_t cache_coalesced = 0;       // absorbed overwrites of dirty paths
  std::uint64_t cache_flush_batches = 0;   // group commits issued
  std::uint64_t cache_flushed_entries = 0; // entries written via group commit
  std::uint64_t cache_read_hits = 0;       // read-cache hits
  std::uint64_t cache_dirty_hits = 0;      // reads served from dirty data
  std::uint64_t cache_flush_failures = 0;  // entries restored after failures
  std::uint64_t cache_drain_flushed = 0;   // entries flushed by the end drain
  std::uint64_t cache_dirty_lost_entries = 0;  // unflushable at end of run
  std::uint64_t cache_dirty_lost_bytes = 0;

  // --- Timeline (deterministic; serialized by timeline_to_json, not
  // --- report_to_json, so the report JSON bytes are unchanged) ---
  std::vector<TimelineRow> timeline;
  std::vector<std::string> timeline_providers;
  double timeline_interval_vs = 0;

  // --- Environment-dependent (excluded from stable JSON) ---
  double wall_ms = 0;             // real time for the whole point
  std::uint64_t rss_bytes = 0;    // process RSS after the run
  std::uint64_t rss_delta_bytes = 0;  // growth across the run
  double bytes_per_tenant = 0;    // rss_delta / tenants
};

/// Runs one experiment point. Deterministic given (config, seed): the
/// event loop is single-threaded and every RNG stream derives from
/// config.seed. (The session pool still exists for erasure encode overlap,
/// but compute tasks draw no randomness.)
ScaleoutReport run_scaleout(const ScaleoutConfig& config);

/// The standard E4 failure campaign against the standard four providers:
/// tight congestion (so throttling is real), jittered tenant + client
/// retries, a correlated two-provider outage (the two performance-oriented
/// providers HyRD replicates to), a brownout on AmazonS3, and permanent
/// loss of Aliyun. Deterministic per (scheme, tenants, seed).
ScaleoutConfig standard_campaign_config(std::string scheme,
                                        std::size_t tenants,
                                        std::uint64_t seed);

/// Serializes a report as one JSON object with sorted, fixed keys.
/// `include_env` adds the wall-clock/RSS fields; reproducibility checks
/// pass false and compare bytes.
std::string report_to_json(const ScaleoutReport& report, bool include_env);

/// Current process resident set in bytes (0 where unsupported).
std::uint64_t current_rss_bytes();

}  // namespace hyrd::sim
