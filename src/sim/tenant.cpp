#include "sim/tenant.h"

#include <cmath>

#include "common/virtual_time.h"

namespace hyrd::sim {

common::Buffer Tenant::draw_payload() {
  // A random-offset window into the shared arena: unique-enough content,
  // zero allocation, zero copy (the store keeps the slice by refbump).
  const std::uint64_t span = arena_.size() - config_.object_bytes;
  const std::uint64_t offset = span == 0 ? 0 : rng_() % span;
  return arena_.slice(offset, config_.object_bytes);
}

common::SimDuration Tenant::draw_think() {
  return static_cast<common::SimDuration>(
      static_cast<double>(config_.mean_think) * rng_.exponential(1.0));
}

void Tenant::on_event(EventQueue& queue, common::SimDuration now) {
  // Everything issued from this step carries (now, id, weight): AsyncBatch
  // switches to inline execution and SimProvider's fair queue sees the
  // arrival instant and the flow identity.
  common::VirtualScope scope({now, id_, config_.weight});

  const bool is_put = !has_object_ || rng_.chance(config_.write_ratio);

  common::SimDuration latency = 0;
  bool ok = false;
  if (is_put) {
    client_.put_async(path_, draw_payload(), [&](dist::WriteResult r) {
      latency = r.latency;
      ok = r.status.is_ok();
    });
    if (ok) has_object_ = true;
  } else {
    client_.get_async(path_, [&](dist::ReadResult r) {
      latency = r.latency;
      ok = r.status.is_ok();
    });
  }

  ++ops_done_;
  metrics_.note_op(is_put, ok, latency, now + latency);

  if (ops_done_ >= config_.ops) {
    ++metrics_.tenants_finished;
    return;  // no further events: this tenant's lifecycle is complete
  }
  queue.schedule_at(now + latency + draw_think(), this);
}

}  // namespace hyrd::sim
