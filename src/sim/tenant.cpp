#include "sim/tenant.h"

#include <cmath>

#include "common/virtual_time.h"
#include "obs/trace.h"

namespace hyrd::sim {

common::Buffer Tenant::draw_payload() {
  // A random-offset window into the shared arena: unique-enough content,
  // zero allocation, zero copy (the store keeps the slice by refbump).
  const std::uint64_t span = arena_.size() - config_.object_bytes;
  const std::uint64_t offset = span == 0 ? 0 : rng_() % span;
  return arena_.slice(offset, config_.object_bytes);
}

common::SimDuration Tenant::draw_think() {
  return static_cast<common::SimDuration>(
      static_cast<double>(config_.mean_think) * rng_.exponential(1.0));
}

void Tenant::on_event(EventQueue& queue, common::SimDuration now) {
  // Everything issued from this step carries (now, id, weight): AsyncBatch
  // switches to inline execution and SimProvider's fair queue sees the
  // arrival instant and the flow identity.
  common::VirtualScope scope({now, id_, config_.weight});

  // Metadata traffic: a stat is answered from the client-resident sharded
  // store — one lock-striped shard lookup, no provider op, zero virtual
  // latency. Guarded so the draw never happens at the default ratio of 0
  // and default runs keep their exact RNG streams.
  if (attempt_ == 0 && config_.stat_ratio > 0 && has_object_ &&
      rng_.chance(config_.stat_ratio)) {
    ++metrics_.ops_started;
    ++metrics_.meta_stats;
    const bool found = client_.stat(path_).has_value();
    metrics_.note_op(/*is_put=*/false, found, 0, now);
    ++ops_done_;
    if (ops_done_ >= config_.ops) {
      ++metrics_.tenants_finished;
      return;
    }
    queue.schedule_at(now + draw_think(), this);
    return;
  }

  // A retry wakeup re-issues the same op kind; a fresh op draws one.
  const bool is_put = attempt_ > 0
                          ? retry_is_put_
                          : !has_object_ || rng_.chance(config_.write_ratio);
  if (attempt_ == 0) ++metrics_.ops_started;
  ++attempt_;

  common::SimDuration latency = 0;
  common::Status status;
  if (is_put) {
    client_.put_async(path_, draw_payload(), [&](dist::WriteResult r) {
      latency = r.latency;
      status = r.status;
    });
  } else {
    client_.get_async(path_, [&](dist::ReadResult r) {
      latency = r.latency;
      status = r.status;
    });
  }
  const bool ok = status.is_ok();
  op_spent_ += latency;

  if (obs::trace_active()) {
    obs::TraceSpan span;
    span.name = is_put ? "put" : "get";
    span.cat = "tenant";
    span.tid = id_;
    span.ts = now;
    span.dur = latency;
    span.arg("attempt", static_cast<long long>(attempt_)).arg("ok", ok ? 1 : 0);
    obs::emit(std::move(span));
  }

  // Back off and resume: a retryable failure (throttle 429, outage) does
  // not end the op — the tenant schedules its next attempt as an event at
  // now + latency + backoff, so the whole fleet's retry pressure is paced
  // by the policy's jittered ladder instead of stampeding the fair queue,
  // and failure-injector recoveries fire in between.
  if (!ok && config_.retry.retryable(status.code()) &&
      attempt_ < static_cast<std::uint32_t>(config_.retry.max_attempts)) {
    const common::SimDuration backoff = config_.retry.backoff_before(
        static_cast<int>(attempt_),
        id_ ^ static_cast<std::uint64_t>(now));
    if (!config_.retry.over_deadline(op_spent_, backoff)) {
      retry_is_put_ = is_put;
      op_spent_ += backoff;
      metrics_.note_retry(now + latency);
      queue.schedule_at(now + latency + backoff, this);
      return;  // op still in flight; ops_done_ unchanged
    }
  }

  if (ok && is_put) has_object_ = true;
  ++ops_done_;
  // The op's client-visible latency includes every attempt and backoff.
  metrics_.note_op(is_put, ok, op_spent_, now + latency);
  attempt_ = 0;
  op_spent_ = 0;

  if (ops_done_ >= config_.ops) {
    ++metrics_.tenants_finished;
    return;  // no further events: this tenant's lifecycle is complete
  }
  queue.schedule_at(now + latency + draw_think(), this);
}

}  // namespace hyrd::sim
