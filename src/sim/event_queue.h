// Discrete-event core of the scale-out engine: a binary heap of events
// keyed on virtual nanoseconds, dispatched strictly in (time, submission)
// order on one OS thread.
//
// This replaces "concurrency = OS threads" with "concurrency = pending
// events": a simulated tenant is an EventHandler whose next wakeup sits in
// this heap, costing tens of bytes instead of a thread stack. The loop
// pops the earliest event, advances the virtual clock to it (never
// backwards — monotonicity is asserted), and steps the handler; the
// handler issues client ops under a common::VirtualScope, learns their
// virtual latency immediately (providers *compute* time, nothing sleeps),
// and schedules its own next wakeup. The shape is vitastor's
// event-loop-per-OSD turned inside out: one loop, many cheap actors.
//
// Ordering: events with equal timestamps dispatch in schedule() order
// (a monotone sequence number breaks ties), so runs are reproducible.
//
// Cancellation: every scheduled event owns an atomic cancel flag.
// cancel(id) marks it; the dispatcher skips marked events, and while a
// handler runs, its event's flag is installed as the thread's
// cloud::CancelScope — so provider-level cooperative cancellation (the
// same mechanism AsyncBatch stragglers use) composes with event-level
// cancellation without new machinery.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace hyrd::sim {

class EventQueue;

/// Something that can be woken at a virtual instant. Handlers are borrowed,
/// never owned: the caller keeps them alive until their events have fired
/// or been cancelled.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(EventQueue& queue, common::SimDuration now) = 0;
};

/// Identifies one scheduled (not yet dispatched) event. Never reused.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Current virtual time: the timestamp of the latest dispatched event.
  [[nodiscard]] common::SimDuration now() const { return now_; }

  [[nodiscard]] std::size_t pending() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }

  /// Schedules `handler` at virtual time `when`. Times in the past are
  /// clamped to now(): virtual time never runs backwards.
  EventId schedule_at(common::SimDuration when, EventHandler* handler);

  /// Schedules `handler` `delay` from now (negative delays clamp to 0).
  EventId schedule_in(common::SimDuration delay, EventHandler* handler);

  /// Cancels a pending event. Returns false when the id is unknown,
  /// already dispatched, or already cancelled. The handler is not invoked.
  bool cancel(EventId id);

  /// Dispatches the earliest pending event, skipping cancelled ones.
  /// Returns false when nothing was dispatched (queue empty or all
  /// remaining events cancelled).
  bool step();

  /// Runs until the queue drains or `max_events` were dispatched.
  /// Returns the number of events dispatched.
  std::uint64_t run(std::uint64_t max_events =
                        std::numeric_limits<std::uint64_t>::max());

 private:
  struct HeapItem {
    common::SimDuration when;
    EventId id;  // monotone: smaller id == scheduled earlier
    friend bool operator>(const HeapItem& a, const HeapItem& b) {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };
  struct Entry {
    EventHandler* handler;
    std::atomic<bool> cancelled{false};
  };

  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  // Node-based so &entry.cancelled stays valid across rehash while a
  // handler scheduled from inside on_event() grows the map.
  std::unordered_map<EventId, Entry> entries_;
  common::SimDuration now_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEvent
  std::uint64_t dispatched_ = 0;
};

}  // namespace hyrd::sim
