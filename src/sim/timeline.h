// Time-series export: the third leg of the flight recorder (DESIGN.md §13).
//
// A TimelineSampler is an EventHandler that reschedules itself on the same
// EventQueue the tenants run on, snapshotting the fleet every `interval` of
// *virtual* time. Each tick closes one window: deltas of the cumulative
// FleetMetrics and provider counters become windowed goodput, failure rate,
// retry amplification, and p50/p99 (from the latency-histogram count delta),
// plus instantaneous in-flight ops and per-provider fair-queue depth /
// online state. Because the sampler runs inside the deterministic event
// loop and reads only virtual-time state, the emitted series is
// byte-identical across same-seed runs — the campaign determinism test pins
// exactly that.
//
// The knee, the outage trough, the brownout shoulder, and the recovery
// slope of an E4 campaign — invisible in end-of-run aggregates — are rows
// here, and timeline_recovery_seconds() turns the recovery slope into a
// single assertable number for CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/registry.h"
#include "common/clock.h"
#include "sim/event_queue.h"
#include "sim/tenant.h"

namespace hyrd::sim {

struct TimelineConfig {
  /// Off by default: sampler events change events_dispatched, and the
  /// plain-run determinism contract pins that count. Campaign configs
  /// (standard_campaign_config) turn it on.
  bool enabled = false;
  common::SimDuration interval = 250 * common::kMillisecond;
};

/// One closed window of the run. `_w` suffix = windowed (delta over this
/// interval); everything else is instantaneous at the window's end.
struct TimelineRow {
  double t_vs = 0;  // window end, virtual seconds

  std::uint64_t ops_ok_w = 0;
  std::uint64_t ops_failed_w = 0;
  std::uint64_t retries_w = 0;
  std::uint64_t throttled_w = 0;  // provider-side 429s this window
  double goodput_ops_per_vs = 0;  // ops_ok_w / interval
  double retry_amplification_w = 1.0;
  double p50_ms_w = 0;  // over ops completed this window
  double p99_ms_w = 0;
  std::uint64_t in_flight = 0;  // ops started minus ops resolved

  // Parallel to TimelineSampler::providers() / the "providers" JSON array.
  std::vector<std::size_t> provider_queue_depth;
  std::vector<std::uint8_t> provider_online;
  std::vector<std::uint64_t> provider_throttled_w;
};

class TimelineSampler final : public EventHandler {
 public:
  TimelineSampler(TimelineConfig config, const FleetMetrics& metrics,
                  const cloud::CloudRegistry& registry, std::size_t fleet_size);

  /// Schedules the first tick. No-op when the config is disabled.
  void start(EventQueue& queue);

  void on_event(EventQueue& queue, common::SimDuration now) override;

  [[nodiscard]] const std::vector<TimelineRow>& rows() const { return rows_; }
  [[nodiscard]] const std::vector<std::string>& providers() const {
    return provider_names_;
  }
  [[nodiscard]] double interval_vs() const {
    return common::to_seconds(config_.interval);
  }

 private:
  void sample(common::SimDuration now);

  TimelineConfig config_;
  const FleetMetrics& metrics_;
  const cloud::CloudRegistry& registry_;
  const std::size_t fleet_size_;
  std::vector<std::string> provider_names_;

  // Cumulative values at the previous tick (window deltas).
  std::uint64_t prev_ops_ok_ = 0;
  std::uint64_t prev_ops_failed_ = 0;
  std::uint64_t prev_retries_ = 0;
  std::vector<std::uint64_t> prev_provider_throttled_;
  std::vector<std::size_t> prev_latency_counts_;

  std::vector<TimelineRow> rows_;
};

/// Serializes a sampled timeline as one JSON object:
///   {"interval_vs":..,"providers":[..],"rows":[{..},..]}
/// Fixed key order, %.6f doubles — byte-stable for identical rows.
std::string timeline_to_json(const std::vector<TimelineRow>& rows,
                             const std::vector<std::string>& providers,
                             double interval_vs);

/// Recovery time read off the timeline (not end-of-run totals): baseline =
/// mean goodput over rows ending in [baseline_from_vs, baseline_to_vs);
/// the fleet has recovered at the first row at/after `after_vs` that opens
/// a run of >= 2 consecutive rows with goodput >= fraction * baseline.
/// Returns that row's time minus after_vs (>= 0), or -1 when the timeline
/// never recovers (or the baseline window is empty/zero).
double timeline_recovery_seconds(const std::vector<TimelineRow>& rows,
                                 double baseline_from_vs,
                                 double baseline_to_vs, double after_vs,
                                 double fraction);

}  // namespace hyrd::sim
