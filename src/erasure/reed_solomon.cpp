#include "erasure/reed_solomon.h"

#include <cassert>

#include "erasure/gf256.h"

namespace hyrd::erasure {

ReedSolomon::ReedSolomon(std::size_t k, std::size_t m)
    : k_(k), m_(m), generator_(Matrix::rs_generator(k, m)) {
  assert(k >= 1 && m >= 1 && k + m <= 256);
}

common::Result<std::vector<common::Bytes>> ReedSolomon::encode(
    std::span<const common::Bytes> data) const {
  if (data.size() != k_) {
    return common::invalid_argument("encode expects exactly k data shards");
  }
  const std::size_t shard_size = data[0].size();
  std::vector<common::ByteSpan> views(data.begin(), data.end());
  std::vector<common::Bytes> parity(m_, common::Bytes(shard_size, 0));
  std::vector<common::MutByteSpan> parity_views(parity.begin(), parity.end());
  if (auto st = encode_into(views, parity_views); !st.is_ok()) return st;
  return parity;
}

common::Status ReedSolomon::encode_into(
    std::span<const common::ByteSpan> data,
    std::span<const common::MutByteSpan> parity) const {
  if (data.size() != k_ || parity.size() != m_) {
    return common::invalid_argument("encode expects k data + m parity shards");
  }
  const std::size_t shard_size = data[0].size();
  for (const auto& d : data) {
    if (d.size() != shard_size) {
      return common::invalid_argument("data shards must be equally sized");
    }
  }
  for (const auto& p : parity) {
    if (p.size() != shard_size) {
      return common::invalid_argument("parity shards must match data size");
    }
  }
  const auto& gf = GF256::instance();
  for (std::size_t p = 0; p < m_; ++p) {
    gf.mul_add_region_multi(parity[p], data, generator_.row(k_ + p));
  }
  return common::Status::ok();
}

common::Status ReedSolomon::reconstruct(
    std::vector<std::optional<common::Bytes>>& shards) const {
  if (shards.size() != k_ + m_) {
    return common::invalid_argument("reconstruct expects k+m shard slots");
  }

  std::vector<std::size_t> present;
  std::size_t shard_size = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].has_value()) {
      if (present.empty()) {
        shard_size = shards[i]->size();
      } else if (shards[i]->size() != shard_size) {
        return common::invalid_argument("present shards differ in size");
      }
      present.push_back(i);
    }
  }
  if (present.size() < k_) {
    return common::data_loss("fewer than k shards present");
  }

  bool any_data_missing = false;
  for (std::size_t i = 0; i < k_; ++i) {
    if (!shards[i].has_value()) any_data_missing = true;
  }

  const auto& gf = GF256::instance();

  if (any_data_missing) {
    // Solve for the data vector using the first k present shards:
    // selected_rows * data = present_shards  =>  data = inv(rows) * shards.
    std::vector<std::size_t> rows(present.begin(), present.begin() + k_);
    auto inv = generator_.select_rows(rows).inverted();
    if (!inv.is_ok()) {
      return common::internal_error("generator submatrix not invertible");
    }
    const Matrix& decode = inv.value();

    std::vector<common::ByteSpan> srcs;
    srcs.reserve(k_);
    for (std::size_t s = 0; s < k_; ++s) srcs.emplace_back(*shards[rows[s]]);
    // Only solve for the shards that are actually missing; present data
    // shards are already correct and skipping them skips k region passes.
    for (std::size_t d = 0; d < k_; ++d) {
      if (shards[d].has_value()) continue;
      common::Bytes out(shard_size, 0);
      gf.mul_add_region_multi(out, srcs, decode.row(d));
      shards[d] = std::move(out);
    }
  }

  // All data shards now exist; recompute any missing parity directly.
  for (std::size_t p = 0; p < m_; ++p) {
    if (shards[k_ + p].has_value()) continue;
    common::Bytes out(shard_size, 0);
    std::vector<common::ByteSpan> srcs;
    srcs.reserve(k_);
    for (std::size_t d = 0; d < k_; ++d) srcs.emplace_back(*shards[d]);
    gf.mul_add_region_multi(out, srcs, generator_.row(k_ + p));
    shards[k_ + p] = std::move(out);
  }
  return common::Status::ok();
}

bool ReedSolomon::verify(std::span<const common::Bytes> shards) const {
  if (shards.size() != k_ + m_) return false;
  const std::size_t shard_size = shards[0].size();
  for (const auto& s : shards) {
    if (s.size() != shard_size) return false;
  }
  auto parity = encode(shards.subspan(0, k_));
  if (!parity.is_ok()) return false;
  for (std::size_t p = 0; p < m_; ++p) {
    if (parity.value()[p] != shards[k_ + p]) return false;
  }
  return true;
}

common::Result<std::vector<common::Bytes>> ReedSolomon::parity_delta(
    std::size_t data_index, common::ByteSpan old_data,
    common::ByteSpan new_data) const {
  if (data_index >= k_) {
    return common::invalid_argument("data_index out of range");
  }
  if (old_data.size() != new_data.size()) {
    return common::invalid_argument("old/new shard sizes differ");
  }
  const auto& gf = GF256::instance();
  common::Bytes diff(old_data.size());
  for (std::size_t i = 0; i < diff.size(); ++i) {
    diff[i] = old_data[i] ^ new_data[i];
  }
  std::vector<common::Bytes> deltas(m_, common::Bytes(diff.size(), 0));
  for (std::size_t p = 0; p < m_; ++p) {
    gf.mul_region(deltas[p], diff, generator_.at(k_ + p, data_index));
  }
  return deltas;
}

}  // namespace hyrd::erasure
