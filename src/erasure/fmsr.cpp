#include "erasure/fmsr.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/checksum.h"
#include "erasure/gf256.h"

namespace hyrd::erasure {

namespace {
constexpr int kMaxDraws = 64;  // MDS retry budget per encode/repair
}

Fmsr::Fmsr(std::size_t n, std::size_t k) : n_(n), k_(k) {
  assert(n > k && k >= 1 && n * (n - k) <= 256);
}

Matrix Fmsr::random_matrix(std::size_t rows, std::size_t cols,
                           common::Xoshiro256& rng) const {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m.at(r, c) = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
  }
  return m;
}

bool Fmsr::mds_ok(const Matrix& coefficients) const {
  // Every k-subset of nodes contributes k*(n-k) = native_chunks() rows;
  // the object is decodable iff that square system is invertible.
  const std::size_t cpn = chunks_per_node();
  std::vector<std::size_t> nodes(n_);
  for (std::size_t i = 0; i < n_; ++i) nodes[i] = i;

  std::vector<bool> pick(n_, false);
  std::fill(pick.begin(), pick.begin() + static_cast<std::ptrdiff_t>(k_),
            true);
  // Iterate all C(n, k) node subsets via prev_permutation on the mask.
  do {
    std::vector<std::size_t> rows;
    for (std::size_t node = 0; node < n_; ++node) {
      if (!pick[node]) continue;
      for (std::size_t c = 0; c < cpn; ++c) {
        rows.push_back(node * cpn + c);
      }
    }
    if (!coefficients.select_rows(rows).inverted().is_ok()) return false;
  } while (std::prev_permutation(pick.begin(), pick.end()));
  return true;
}

Fmsr::Encoded Fmsr::encode(common::ByteSpan object,
                           common::Xoshiro256& rng) const {
  const auto& gf = GF256::instance();
  Encoded out;
  out.object_size = object.size();
  out.object_crc = common::crc32c(object);

  const std::size_t native = native_chunks();
  const std::uint64_t size = std::max<std::uint64_t>(object.size(), 1);
  out.chunk_size = static_cast<std::size_t>((size + native - 1) / native);

  // Split into zero-padded native chunks.
  std::vector<common::Bytes> natives;
  natives.reserve(native);
  for (std::size_t i = 0; i < native; ++i) {
    common::Bytes chunk(out.chunk_size, 0);
    const std::size_t offset = i * out.chunk_size;
    if (offset < object.size()) {
      const std::size_t take =
          std::min(out.chunk_size, object.size() - offset);
      std::memcpy(chunk.data(), object.data() + offset, take);
    }
    natives.push_back(std::move(chunk));
  }

  // Draw coefficient matrices until the code is MDS.
  for (int attempt = 0; attempt < kMaxDraws; ++attempt) {
    Matrix coeffs = random_matrix(total_chunks(), native, rng);
    if (!mds_ok(coeffs)) continue;
    out.coefficients = coeffs;
    break;
  }
  assert(out.coefficients.rows() == total_chunks() &&
         "no MDS coefficient draw found");

  // Compute the coded chunks.
  out.chunks.assign(total_chunks(), common::Bytes(out.chunk_size, 0));
  for (std::size_t c = 0; c < total_chunks(); ++c) {
    for (std::size_t j = 0; j < native; ++j) {
      gf.mul_add_region(out.chunks[c], natives[j],
                        out.coefficients.at(c, j));
    }
  }
  return out;
}

common::Result<common::Bytes> Fmsr::decode(
    const Matrix& coefficients, const std::vector<std::size_t>& chunk_indices,
    const std::vector<common::Bytes>& chunks, std::uint64_t object_size,
    std::uint32_t object_crc) const {
  const std::size_t native = native_chunks();
  if (chunk_indices.size() != native || chunks.size() != native) {
    return common::invalid_argument("decode needs exactly k(n-k) chunks");
  }
  const std::size_t chunk_size = chunks[0].size();
  for (const auto& c : chunks) {
    if (c.size() != chunk_size) {
      return common::invalid_argument("chunk sizes differ");
    }
  }

  auto inv = coefficients.select_rows(chunk_indices).inverted();
  if (!inv.is_ok()) {
    return common::data_loss("chunk subset not decodable (non-MDS subset)");
  }
  const auto& gf = GF256::instance();
  const Matrix& dec = inv.value();

  common::Bytes object;
  object.reserve(object_size);
  common::Bytes native_chunk(chunk_size, 0);
  for (std::size_t j = 0; j < native && object.size() < object_size; ++j) {
    std::fill(native_chunk.begin(), native_chunk.end(), 0);
    for (std::size_t i = 0; i < native; ++i) {
      gf.mul_add_region(native_chunk, chunks[i], dec.at(j, i));
    }
    const std::size_t remaining =
        static_cast<std::size_t>(object_size) - object.size();
    const std::size_t take = std::min(chunk_size, remaining);
    object.insert(object.end(), native_chunk.begin(),
                  native_chunk.begin() + static_cast<std::ptrdiff_t>(take));
  }
  if (common::crc32c(object) != object_crc) {
    return common::data_loss("object CRC mismatch after FMSR decode");
  }
  return object;
}

common::Result<Fmsr::RepairPlan> Fmsr::plan_repair(
    const Matrix& coefficients, std::size_t failed_node,
    common::Xoshiro256& rng) const {
  if (failed_node >= n_) {
    return common::invalid_argument("bad node index");
  }
  const std::size_t cpn = chunks_per_node();
  const std::size_t native = native_chunks();

  // Survivor node list, in node order.
  std::vector<std::size_t> survivors;
  for (std::size_t node = 0; node < n_; ++node) {
    if (node != failed_node) survivors.push_back(node);
  }

  for (int attempt = 0; attempt < kMaxDraws; ++attempt) {
    // Draw a chunk selection (one chunk per survivor) and a mix; a fixed
    // selection may have no MDS-preserving mix, so both are searched.
    std::vector<std::size_t> selection;
    selection.reserve(survivors.size());
    for (std::size_t node : survivors) {
      selection.push_back(node * cpn + rng.uniform_int(0, cpn - 1));
    }
    const Matrix survivor_rows = coefficients.select_rows(selection);
    const Matrix mix = random_matrix(cpn, n_ - 1, rng);
    const Matrix new_rows = mix.mul(survivor_rows);  // cpn x native

    Matrix candidate = coefficients;
    for (std::size_t r = 0; r < cpn; ++r) {
      for (std::size_t c = 0; c < native; ++c) {
        candidate.at(failed_node * cpn + r, c) = new_rows.at(r, c);
      }
    }
    if (!mds_ok(candidate)) continue;

    RepairPlan plan;
    plan.failed_node = failed_node;
    plan.survivor_chunk_indices = std::move(selection);
    plan.mix = mix;
    plan.new_coefficients = std::move(candidate);
    return plan;
  }
  return common::internal_error("no MDS-preserving repair draw found");
}

std::vector<common::Bytes> Fmsr::execute_repair(
    const RepairPlan& plan,
    const std::vector<common::Bytes>& survivor_chunks) const {
  assert(survivor_chunks.size() == n_ - 1);
  const std::size_t cpn = chunks_per_node();
  const std::size_t chunk_size = survivor_chunks[0].size();
  const auto& gf = GF256::instance();
  std::vector<common::Bytes> out(cpn, common::Bytes(chunk_size, 0));
  for (std::size_t r = 0; r < cpn; ++r) {
    for (std::size_t s = 0; s < n_ - 1; ++s) {
      gf.mul_add_region(out[r], survivor_chunks[s], plan.mix.at(r, s));
    }
  }
  return out;
}

}  // namespace hyrd::erasure
