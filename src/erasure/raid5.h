// RAID5-style single-parity XOR codec: the erasure geometry the paper's
// prototype and RACS comparison use (k data + 1 parity).
//
// Kept separate from ReedSolomon because the XOR-only fast path is the code
// most updates run through, and because RAID5 delta-parity (new_p = old_p ^
// old_d ^ new_d) is the canonical statement of the 2-read/2-write small
// update the paper analyzes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::erasure {

class Raid5 {
 public:
  explicit Raid5(std::size_t k);

  [[nodiscard]] std::size_t data_shards() const { return k_; }
  [[nodiscard]] std::size_t total_shards() const { return k_ + 1; }

  /// XOR parity across the k data shards.
  [[nodiscard]] common::Result<common::Bytes> encode(
      std::span<const common::Bytes> data) const;

  /// Fills in at most one missing shard (data or parity) in place.
  [[nodiscard]] common::Status reconstruct(
      std::vector<std::optional<common::Bytes>>& shards) const;

  /// Read-modify-write parity: new_parity = old_parity ^ old_data ^ new_data.
  [[nodiscard]] static common::Bytes delta_parity(common::ByteSpan old_parity,
                                                  common::ByteSpan old_data,
                                                  common::ByteSpan new_data);

  [[nodiscard]] bool verify(std::span<const common::Bytes> shards) const;

 private:
  std::size_t k_;
};

}  // namespace hyrd::erasure
