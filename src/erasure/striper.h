// Object striping: splits a byte object into k equally sized data shards
// (zero padded), pairs them with parity from a codec, and reassembles the
// original object from any k surviving shards.
//
// A StripeSet is what the distribution layer actually ships to providers:
// shard i of an object goes to provider (placement[i]).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/checksum.h"
#include "common/status.h"
#include "erasure/reed_solomon.h"

namespace hyrd::erasure {

/// Geometry of an erasure-coded object.
struct StripeGeometry {
  std::size_t k = 3;  // data shards
  std::size_t m = 1;  // parity shards (m=1 => RAID5 per the paper)

  [[nodiscard]] std::size_t total() const { return k + m; }
  /// Storage expansion factor n/k (paper §II-B: a rate r=k/n code costs 1/r).
  [[nodiscard]] double expansion() const {
    return static_cast<double>(total()) / static_cast<double>(k);
  }
};

struct StripeSet {
  StripeGeometry geometry;
  std::uint64_t object_size = 0;  // pre-padding logical size
  std::size_t shard_size = 0;
  /// k data shards then m parity shards — O(1) slices of one arena
  /// allocation (encode packs data + parity contiguously, then slices).
  std::vector<common::Buffer> shards;
  std::uint32_t object_crc = 0;       // CRC32C of the original object
};

class Striper {
 public:
  explicit Striper(StripeGeometry geometry);

  [[nodiscard]] const StripeGeometry& geometry() const { return geometry_; }
  [[nodiscard]] const ReedSolomon& codec() const { return codec_; }

  /// Splits + encodes an object into one arena allocation sliced
  /// per-shard. Objects smaller than k bytes still work (shards are zero
  /// padded); empty objects produce 1-byte shards so every provider slot
  /// stores a real fragment.
  [[nodiscard]] StripeSet encode(common::ByteSpan object) const;

  /// Reassembles the original object from a full shard set. When the data
  /// shards are adjacent views of one block (the common case: slices of
  /// the writer's arena read back from the store), this is O(1) — no
  /// gather-copy at all; otherwise the k shards gather into one fresh
  /// allocation.
  [[nodiscard]] common::Result<common::Buffer> decode(
      const StripeSet& set) const;

  /// Reassembly straight from read-path fragments (any of the `total()`
  /// slots may be missing). With all k data shards present this is
  /// decode()'s zero-copy/gather path; otherwise missing shards are
  /// reconstructed first (any k suffice). CRC-checks the object.
  [[nodiscard]] common::Result<common::Buffer> assemble(
      std::uint64_t object_size, std::uint32_t crc,
      std::vector<std::optional<common::Buffer>> shards) const;

  /// Degraded decode: reconstructs missing shards first (any k suffice),
  /// then reassembles and CRC-checks the object.
  [[nodiscard]] common::Result<common::Buffer> decode_degraded(
      StripeGeometry geometry, std::uint64_t object_size, std::uint32_t crc,
      std::vector<std::optional<common::Bytes>> shards) const;

  /// Shard size implied by an object size under this geometry.
  [[nodiscard]] std::size_t shard_size_for(std::uint64_t object_size) const;

 private:
  StripeGeometry geometry_;
  ReedSolomon codec_;
};

}  // namespace hyrd::erasure
