#include "erasure/raid5.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hyrd::erasure {

namespace {

void xor_into(common::MutByteSpan dst, common::ByteSpan src) {
  assert(dst.size() == src.size());
  std::uint8_t* d = dst.data();
  const std::uint8_t* s = src.data();
  std::size_t n = dst.size();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a;
    std::uint64_t b;
    std::memcpy(&a, d + i, 8);
    std::memcpy(&b, s + i, 8);
    a ^= b;
    std::memcpy(d + i, &a, 8);
  }
  for (; i < n; ++i) d[i] ^= s[i];
}

// XOR all shards into dst, chunked so the dst slice stays in L1 across
// the whole accumulation instead of being streamed k times from memory.
void xor_accumulate(common::MutByteSpan dst,
                    std::span<const common::Bytes> shards) {
  constexpr std::size_t kChunk = 8 * 1024;
  const std::size_t n = dst.size();
  for (std::size_t off = 0; off < n; off += kChunk) {
    const std::size_t len = std::min(kChunk, n - off);
    for (const auto& s : shards) {
      xor_into(dst.subspan(off, len),
               common::ByteSpan(s).subspan(off, len));
    }
  }
}

}  // namespace

Raid5::Raid5(std::size_t k) : k_(k) { assert(k >= 1); }

common::Result<common::Bytes> Raid5::encode(
    std::span<const common::Bytes> data) const {
  if (data.size() != k_) {
    return common::invalid_argument("RAID5 encode expects k data shards");
  }
  const std::size_t shard_size = data[0].size();
  for (const auto& d : data) {
    if (d.size() != shard_size) {
      return common::invalid_argument("data shards must be equally sized");
    }
  }
  common::Bytes parity(shard_size, 0);
  xor_accumulate(parity, data);
  return parity;
}

common::Status Raid5::reconstruct(
    std::vector<std::optional<common::Bytes>>& shards) const {
  if (shards.size() != k_ + 1) {
    return common::invalid_argument("RAID5 reconstruct expects k+1 slots");
  }
  std::size_t missing = shards.size();
  std::size_t missing_count = 0;
  std::size_t shard_size = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (!shards[i].has_value()) {
      missing = i;
      ++missing_count;
    } else {
      shard_size = shards[i]->size();
    }
  }
  if (missing_count == 0) return common::Status::ok();
  if (missing_count > 1) {
    return common::data_loss("RAID5 tolerates a single missing shard");
  }
  common::Bytes out(shard_size, 0);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (i == missing) continue;
    if (shards[i]->size() != shard_size) {
      return common::invalid_argument("present shards differ in size");
    }
    xor_into(out, *shards[i]);
  }
  shards[missing] = std::move(out);
  return common::Status::ok();
}

common::Bytes Raid5::delta_parity(common::ByteSpan old_parity,
                                  common::ByteSpan old_data,
                                  common::ByteSpan new_data) {
  assert(old_parity.size() == old_data.size() &&
         old_data.size() == new_data.size());
  common::Bytes out(old_parity.begin(), old_parity.end());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= old_data[i] ^ new_data[i];
  }
  return out;
}

bool Raid5::verify(std::span<const common::Bytes> shards) const {
  if (shards.size() != k_ + 1) return false;
  auto parity = encode(shards.subspan(0, k_));
  return parity.is_ok() && parity.value() == shards[k_];
}

}  // namespace hyrd::erasure
