#include "erasure/striper.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/copy_meter.h"

namespace hyrd::erasure {

Striper::Striper(StripeGeometry geometry)
    : geometry_(geometry), codec_(geometry.k, geometry.m) {}

std::size_t Striper::shard_size_for(std::uint64_t object_size) const {
  const std::uint64_t k = geometry_.k;
  const std::uint64_t size = std::max<std::uint64_t>(object_size, 1);
  return static_cast<std::size_t>((size + k - 1) / k);
}

StripeSet Striper::encode(common::ByteSpan object) const {
  StripeSet set;
  set.geometry = geometry_;
  set.object_size = object.size();
  set.shard_size = shard_size_for(object.size());
  set.object_crc = common::crc32c(object);

  // One arena for the whole stripe: [k data shards | m parity shards],
  // zero-initialised so the tail shard is already padded. Parity is
  // encoded straight into its arena region, then the arena is frozen and
  // sliced per shard — every shard is a view, not an allocation.
  const std::size_t total = geometry_.total();
  common::MutableBuffer arena(total * set.shard_size);
  arena.write(0, object);

  std::vector<common::ByteSpan> data_views(geometry_.k);
  for (std::size_t i = 0; i < geometry_.k; ++i) {
    data_views[i] = arena.span(i * set.shard_size, set.shard_size);
  }
  std::vector<common::MutByteSpan> parity_views(geometry_.m);
  for (std::size_t p = 0; p < geometry_.m; ++p) {
    parity_views[p] = arena.span((geometry_.k + p) * set.shard_size,
                                 set.shard_size);
  }
  const auto st = codec_.encode_into(data_views, parity_views);
  assert(st.is_ok());
  (void)st;

  common::Buffer frozen = std::move(arena).freeze();
  set.shards.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    set.shards.push_back(frozen.slice(i * set.shard_size, set.shard_size));
  }
  return set;
}

common::Result<common::Buffer> Striper::decode(const StripeSet& set) const {
  if (set.shards.size() != geometry_.total()) {
    return common::invalid_argument("stripe set has wrong shard count");
  }
  const std::span<const common::Buffer> data_shards(set.shards.data(),
                                                    geometry_.k);
  common::Buffer object;
  if (auto joined = common::Buffer::join_contiguous(
          data_shards, static_cast<std::size_t>(set.object_size))) {
    // Fast path: the data shards are adjacent views of one block (slices
    // of an encode arena, or fragments a store handed back by reference) —
    // reassembly is a refbump.
    object = *std::move(joined);
  } else {
    common::MutableBuffer gather(static_cast<std::size_t>(set.object_size));
    std::size_t filled = 0;
    for (std::size_t i = 0;
         i < geometry_.k && filled < set.object_size; ++i) {
      const std::size_t remaining =
          static_cast<std::size_t>(set.object_size) - filled;
      const std::size_t take = std::min(set.shards[i].size(), remaining);
      gather.write(filled, set.shards[i].span().first(take));
      filled += take;
    }
    object = std::move(gather).freeze();
  }
  // 0 is the "digest unknown" sentinel (e.g. after an in-place RMW update,
  // which invalidates the whole-object CRC without recomputing it).
  if (set.object_crc != 0 && common::crc32c(object) != set.object_crc) {
    return common::data_loss("object CRC mismatch after reassembly");
  }
  return object;
}

common::Result<common::Buffer> Striper::assemble(
    std::uint64_t object_size, std::uint32_t crc,
    std::vector<std::optional<common::Buffer>> shards) const {
  if (shards.size() != geometry_.total()) {
    return common::invalid_argument("wrong fragment slot count");
  }
  bool have_all_data = true;
  for (std::size_t i = 0; i < geometry_.k; ++i) {
    if (!shards[i].has_value()) {
      have_all_data = false;
      break;
    }
  }
  StripeSet set;
  set.geometry = geometry_;
  set.object_size = object_size;
  set.object_crc = crc;
  if (have_all_data) {
    set.shard_size = shards[0]->size();
    set.shards.reserve(shards.size());
    for (auto& s : shards) {
      // Parity slots may be absent on this path; decode() only touches the
      // first k, so fill gaps with empty placeholders.
      set.shards.push_back(s.has_value() ? *std::move(s) : common::Buffer());
    }
    return decode(set);
  }
  // Degraded: reconstruction mutates shards in place, so the codec works
  // on owned vectors (each survivor is copied out of its shared block).
  std::vector<std::optional<common::Bytes>> owned(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].has_value()) owned[i] = std::move(*shards[i]).into_bytes();
  }
  return decode_degraded(geometry_, object_size, crc, std::move(owned));
}

common::Result<common::Buffer> Striper::decode_degraded(
    StripeGeometry geometry, std::uint64_t object_size, std::uint32_t crc,
    std::vector<std::optional<common::Bytes>> shards) const {
  if (geometry.k != geometry_.k || geometry.m != geometry_.m) {
    return common::invalid_argument("geometry mismatch");
  }
  if (auto st = codec_.reconstruct(shards); !st.is_ok()) {
    return st;
  }
  StripeSet set;
  set.geometry = geometry;
  set.object_size = object_size;
  set.object_crc = crc;
  set.shards.reserve(shards.size());
  for (auto& s : shards) {
    set.shards.push_back(common::Buffer::from(std::move(*s)));
  }
  set.shard_size = set.shards[0].size();
  return decode(set);
}

}  // namespace hyrd::erasure
