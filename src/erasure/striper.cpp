#include "erasure/striper.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hyrd::erasure {

Striper::Striper(StripeGeometry geometry)
    : geometry_(geometry), codec_(geometry.k, geometry.m) {}

std::size_t Striper::shard_size_for(std::uint64_t object_size) const {
  const std::uint64_t k = geometry_.k;
  const std::uint64_t size = std::max<std::uint64_t>(object_size, 1);
  return static_cast<std::size_t>((size + k - 1) / k);
}

StripeSet Striper::encode(common::ByteSpan object) const {
  StripeSet set;
  set.geometry = geometry_;
  set.object_size = object.size();
  set.shard_size = shard_size_for(object.size());
  set.object_crc = common::crc32c(object);

  set.shards.reserve(geometry_.total());
  for (std::size_t i = 0; i < geometry_.k; ++i) {
    common::Bytes shard(set.shard_size, 0);
    const std::size_t offset = i * set.shard_size;
    if (offset < object.size()) {
      const std::size_t take = std::min(set.shard_size, object.size() - offset);
      std::memcpy(shard.data(), object.data() + offset, take);
    }
    set.shards.push_back(std::move(shard));
  }

  auto parity = codec_.encode(
      std::span<const common::Bytes>(set.shards.data(), geometry_.k));
  assert(parity.is_ok());
  for (auto& p : parity.value()) set.shards.push_back(std::move(p));
  return set;
}

common::Result<common::Bytes> Striper::decode(const StripeSet& set) const {
  if (set.shards.size() != geometry_.total()) {
    return common::invalid_argument("stripe set has wrong shard count");
  }
  common::Bytes object;
  object.reserve(set.object_size);
  for (std::size_t i = 0; i < geometry_.k && object.size() < set.object_size;
       ++i) {
    const std::size_t remaining =
        static_cast<std::size_t>(set.object_size) - object.size();
    const std::size_t take = std::min(set.shards[i].size(), remaining);
    object.insert(object.end(), set.shards[i].begin(),
                  set.shards[i].begin() + static_cast<std::ptrdiff_t>(take));
  }
  // 0 is the "digest unknown" sentinel (e.g. after an in-place RMW update,
  // which invalidates the whole-object CRC without recomputing it).
  if (set.object_crc != 0 && common::crc32c(object) != set.object_crc) {
    return common::data_loss("object CRC mismatch after reassembly");
  }
  return object;
}

common::Result<common::Bytes> Striper::decode_degraded(
    StripeGeometry geometry, std::uint64_t object_size, std::uint32_t crc,
    std::vector<std::optional<common::Bytes>> shards) const {
  if (geometry.k != geometry_.k || geometry.m != geometry_.m) {
    return common::invalid_argument("geometry mismatch");
  }
  if (auto st = codec_.reconstruct(shards); !st.is_ok()) {
    return st;
  }
  StripeSet set;
  set.geometry = geometry;
  set.object_size = object_size;
  set.object_crc = crc;
  set.shards.reserve(shards.size());
  for (auto& s : shards) set.shards.push_back(std::move(*s));
  set.shard_size = set.shards[0].size();
  return decode(set);
}

}  // namespace hyrd::erasure
