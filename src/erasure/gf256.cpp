#include "erasure/gf256.h"

#include <cassert>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HYRD_GF256_X86 1
#endif

namespace hyrd::erasure {

namespace {

constexpr unsigned kPrimPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1

inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

inline void store64(std::uint8_t* p, std::uint64_t w) {
  std::memcpy(p, &w, sizeof(w));
}

// Every kernel has the same shape: dst/src pointers, a byte count, and the
// 16-entry low/high nibble product tables of one coefficient.
using RegionFn = void (*)(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t n, const std::uint8_t* lo,
                          const std::uint8_t* hi);

inline std::uint8_t nib_mul(const std::uint8_t* lo, const std::uint8_t* hi,
                            std::uint8_t v) {
  return static_cast<std::uint8_t>(lo[v & 0xF] ^ hi[v >> 4]);
}

// ---- Portable wide-word kernels: 8 bytes per uint64 load/store step ----

void mul_add_portable(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t n, const std::uint8_t* lo,
                      const std::uint8_t* hi) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t s = load64(src + i);
    std::uint64_t r = 0;
    for (unsigned b = 0; b < 64; b += 8) {
      const auto v = static_cast<std::uint8_t>(s >> b);
      r |= static_cast<std::uint64_t>(nib_mul(lo, hi, v)) << b;
    }
    store64(dst + i, load64(dst + i) ^ r);
  }
  for (; i < n; ++i) dst[i] ^= nib_mul(lo, hi, src[i]);
}

void mul_portable(std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
                  const std::uint8_t* lo, const std::uint8_t* hi) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t s = load64(src + i);
    std::uint64_t r = 0;
    for (unsigned b = 0; b < 64; b += 8) {
      const auto v = static_cast<std::uint8_t>(s >> b);
      r |= static_cast<std::uint64_t>(nib_mul(lo, hi, v)) << b;
    }
    store64(dst + i, r);
  }
  for (; i < n; ++i) dst[i] = nib_mul(lo, hi, src[i]);
}

#ifdef HYRD_GF256_X86

// ---- SSSE3: PSHUFB does 16 nibble lookups per instruction ----

__attribute__((target("ssse3"))) void mul_add_ssse3(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t n,
    const std::uint8_t* lo, const std::uint8_t* hi) {
  const __m128i tlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo));
  const __m128i thi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i pl = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    d = _mm_xor_si128(d, _mm_xor_si128(pl, ph));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  for (; i < n; ++i) dst[i] ^= nib_mul(lo, hi, src[i]);
}

__attribute__((target("ssse3"))) void mul_ssse3(std::uint8_t* dst,
                                                const std::uint8_t* src,
                                                std::size_t n,
                                                const std::uint8_t* lo,
                                                const std::uint8_t* hi) {
  const __m128i tlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo));
  const __m128i thi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi));
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i pl = _mm_shuffle_epi8(tlo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi64(s, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(pl, ph));
  }
  for (; i < n; ++i) dst[i] = nib_mul(lo, hi, src[i]);
}

// ---- AVX2: the same shuffle on 32-byte lanes, unrolled to 64 B/step ----

__attribute__((target("avx2"))) void mul_add_avx2(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::size_t n,
                                                  const std::uint8_t* lo,
                                                  const std::uint8_t* hi) {
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i p0 = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(s0, mask)),
        _mm256_shuffle_epi8(thi,
                            _mm256_and_si256(_mm256_srli_epi64(s0, 4), mask)));
    const __m256i p1 = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(s1, mask)),
        _mm256_shuffle_epi8(thi,
                            _mm256_and_si256(_mm256_srli_epi64(s1, 4), mask)));
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, p0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, p1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(thi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, p));
  }
  for (; i < n; ++i) dst[i] ^= nib_mul(lo, hi, src[i]);
}

__attribute__((target("avx2"))) void mul_avx2(std::uint8_t* dst,
                                              const std::uint8_t* src,
                                              std::size_t n,
                                              const std::uint8_t* lo,
                                              const std::uint8_t* hi) {
  const __m256i tlo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo)));
  const __m256i thi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi)));
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i p = _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(s, mask)),
        _mm256_shuffle_epi8(thi,
                            _mm256_and_si256(_mm256_srli_epi64(s, 4), mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), p);
  }
  for (; i < n; ++i) dst[i] = nib_mul(lo, hi, src[i]);
}

#endif  // HYRD_GF256_X86

struct KernelSet {
  RegionFn mul_add;
  RegionFn mul;
  std::string_view name;
};

const KernelSet& kernels() {
  static const KernelSet ks = [] {
#ifdef HYRD_GF256_X86
    if (__builtin_cpu_supports("avx2")) {
      return KernelSet{mul_add_avx2, mul_avx2, "avx2"};
    }
    if (__builtin_cpu_supports("ssse3")) {
      return KernelSet{mul_add_ssse3, mul_ssse3, "ssse3"};
    }
#endif
    return KernelSet{mul_add_portable, mul_portable, "portable64"};
  }();
  return ks;
}

// dst ^= src, 8 bytes per step (the c == 1 fast path; also cheap enough
// that the compiler vectorizes it further at -O3).
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store64(dst + i, load64(dst + i) ^ load64(src + i));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace

const GF256& GF256::instance() {
  static const GF256 gf;
  return gf;
}

GF256::GF256() {
  // Generate exp/log tables from the generator element 2.
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100u) x ^= kPrimPoly;
  }
  for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = 0;  // never read; mul() guards zero operands

  for (unsigned c = 0; c < 256; ++c) {
    for (unsigned v = 0; v < 16; ++v) {
      nib_lo_[c][v] = mul(static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(v));
      nib_hi_[c][v] = mul(static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(v << 4));
    }
  }
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) const {
  assert(b != 0 && "GF256 division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + 255 - log_[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) const {
  assert(a != 0 && "GF256 inverse of zero");
  return exp_[255 - log_[a]];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned n) const {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const unsigned e = (static_cast<unsigned>(log_[a]) * n) % 255;
  return exp_[e];
}

std::string_view GF256::region_kernel_name() { return kernels().name; }

void GF256::mul_add_region(common::MutByteSpan dst, common::ByteSpan src,
                           std::uint8_t c) const {
  assert(dst.size() == src.size());
  if (c == 0 || dst.empty()) return;
  if (c == 1) {
    xor_region(dst.data(), src.data(), dst.size());
    return;
  }
  kernels().mul_add(dst.data(), src.data(), dst.size(), nib_lo_[c].data(),
                    nib_hi_[c].data());
}

void GF256::mul_region(common::MutByteSpan dst, common::ByteSpan src,
                       std::uint8_t c) const {
  assert(dst.size() == src.size());
  if (dst.empty()) return;
  if (c == 0) {
    std::memset(dst.data(), 0, dst.size());
    return;
  }
  if (c == 1) {
    std::memmove(dst.data(), src.data(), dst.size());
    return;
  }
  kernels().mul(dst.data(), src.data(), dst.size(), nib_lo_[c].data(),
                nib_hi_[c].data());
}

void GF256::mul_add_region_multi(common::MutByteSpan dst,
                                 std::span<const common::ByteSpan> srcs,
                                 const std::uint8_t* coeffs) const {
  // Chunk so the dst slice stays hot in L1 while every source is folded
  // in — one pass over dst per chunk instead of one per source.
  constexpr std::size_t kChunk = 8 * 1024;
  const std::size_t n = dst.size();
  for (std::size_t off = 0; off < n; off += kChunk) {
    const std::size_t len = std::min(kChunk, n - off);
    auto d = dst.subspan(off, len);
    for (std::size_t j = 0; j < srcs.size(); ++j) {
      assert(srcs[j].size() == n);
      mul_add_region(d, srcs[j].subspan(off, len), coeffs[j]);
    }
  }
}

void GF256::mul_add_region_scalar(common::MutByteSpan dst, common::ByteSpan src,
                                  std::uint8_t c) const {
  assert(dst.size() == src.size());
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  // The seed algorithm: build the coefficient's 256-entry product row,
  // then one table lookup per byte.
  std::array<std::uint8_t, 256> row;
  for (unsigned v = 0; v < 256; ++v) {
    row[v] = mul(c, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

void GF256::mul_region_scalar(common::MutByteSpan dst, common::ByteSpan src,
                              std::uint8_t c) const {
  assert(dst.size() == src.size());
  std::array<std::uint8_t, 256> row;
  for (unsigned v = 0; v < 256; ++v) {
    row[v] = mul(c, static_cast<std::uint8_t>(v));
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = row[src[i]];
}

}  // namespace hyrd::erasure
