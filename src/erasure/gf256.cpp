#include "erasure/gf256.h"

#include <cassert>

namespace hyrd::erasure {

namespace {
constexpr unsigned kPrimPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1
}

const GF256& GF256::instance() {
  static const GF256 gf;
  return gf;
}

GF256::GF256() {
  // Generate exp/log tables from the generator element 2.
  unsigned x = 1;
  for (unsigned i = 0; i < 255; ++i) {
    exp_[i] = static_cast<std::uint8_t>(x);
    log_[x] = static_cast<std::uint16_t>(i);
    x <<= 1;
    if (x & 0x100u) x ^= kPrimPoly;
  }
  for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
  log_[0] = 0;  // never read; mul() guards zero operands

  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      mul_table_[a][b] =
          (a == 0 || b == 0)
              ? 0
              : exp_[log_[static_cast<std::uint8_t>(a)] +
                     log_[static_cast<std::uint8_t>(b)]];
    }
  }
}

std::uint8_t GF256::div(std::uint8_t a, std::uint8_t b) const {
  assert(b != 0 && "GF256 division by zero");
  if (a == 0) return 0;
  return exp_[log_[a] + 255 - log_[b]];
}

std::uint8_t GF256::inv(std::uint8_t a) const {
  assert(a != 0 && "GF256 inverse of zero");
  return exp_[255 - log_[a]];
}

std::uint8_t GF256::pow(std::uint8_t a, unsigned n) const {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const unsigned e = (static_cast<unsigned>(log_[a]) * n) % 255;
  return exp_[e];
}

void GF256::mul_add_region(common::MutByteSpan dst, common::ByteSpan src,
                           std::uint8_t c) const {
  assert(dst.size() == src.size());
  if (c == 0) return;
  const auto& row = mul_table_[c];
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
    return;
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= row[src[i]];
}

void GF256::mul_region(common::MutByteSpan dst, common::ByteSpan src,
                       std::uint8_t c) const {
  assert(dst.size() == src.size());
  const auto& row = mul_table_[c];
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = row[src[i]];
}

}  // namespace hyrd::erasure
