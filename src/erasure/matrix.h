// Dense matrices over GF(2^8): the linear-algebra core of Reed–Solomon.
// Supports multiplication, Gauss–Jordan inversion, row extraction, and the
// Cauchy / extended-Vandermonde constructions used to build coding matrices.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace hyrd::erasure {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  std::uint8_t& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] std::uint8_t at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::uint8_t* row(std::size_t r) const {
    return data_.data() + r * cols_;
  }

  static Matrix identity(std::size_t n);

  /// Cauchy matrix: element (i,j) = 1/(x_i + y_j) with x_i = i + cols,
  /// y_j = j. Any square submatrix of a Cauchy matrix is invertible, which
  /// makes it a safe parity-generator construction for any (k, m) geometry.
  static Matrix cauchy(std::size_t rows, std::size_t cols);

  /// Systematic encoding matrix for an RS(k, m) code: the top k rows are
  /// identity, the bottom m rows come from a Cauchy construction.
  static Matrix rs_generator(std::size_t k, std::size_t m);

  [[nodiscard]] Matrix mul(const Matrix& other) const;

  /// Builds a matrix from the given subset of this matrix's rows.
  [[nodiscard]] Matrix select_rows(const std::vector<std::size_t>& rows) const;

  /// Gauss–Jordan inversion. Fails iff the matrix is singular.
  [[nodiscard]] common::Result<Matrix> inverted() const;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint8_t> data_;
};

}  // namespace hyrd::erasure
