#include "erasure/matrix.h"

#include <cassert>

#include "erasure/gf256.h"

namespace hyrd::erasure {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

Matrix Matrix::cauchy(std::size_t rows, std::size_t cols) {
  assert(rows + cols <= 256 && "Cauchy construction exceeds GF(2^8) elements");
  const auto& gf = GF256::instance();
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const auto xi = static_cast<std::uint8_t>(i + cols);
      const auto yj = static_cast<std::uint8_t>(j);
      m.at(i, j) = gf.inv(gf.add(xi, yj));
    }
  }
  return m;
}

Matrix Matrix::rs_generator(std::size_t k, std::size_t m) {
  Matrix gen(k + m, k);
  for (std::size_t i = 0; i < k; ++i) gen.at(i, i) = 1;
  if (m == 1) {
    // Single parity: the all-ones row is a valid generator (any k of the
    // k+1 rows are independent) and makes the parity plain XOR — exactly
    // RAID5, and ~30x faster than a general GF row.
    for (std::size_t j = 0; j < k; ++j) gen.at(k, j) = 1;
    return gen;
  }
  const Matrix parity = cauchy(m, k);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      gen.at(k + i, j) = parity.at(i, j);
    }
  }
  return gen;
}

Matrix Matrix::mul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  const auto& gf = GF256::instance();
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < other.cols_; ++j) {
      std::uint8_t acc = 0;
      for (std::size_t t = 0; t < cols_; ++t) {
        acc ^= gf.mul(at(i, t), other.at(t, j));
      }
      out.at(i, j) = acc;
    }
  }
  return out;
}

Matrix Matrix::select_rows(const std::vector<std::size_t>& rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < rows_);
    for (std::size_t j = 0; j < cols_; ++j) {
      out.at(i, j) = at(rows[i], j);
    }
  }
  return out;
}

common::Result<Matrix> Matrix::inverted() const {
  assert(rows_ == cols_);
  const auto& gf = GF256::instance();
  const std::size_t n = rows_;
  Matrix work = *this;
  Matrix inv = identity(n);

  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot row.
    std::size_t pivot = col;
    while (pivot < n && work.at(pivot, col) == 0) ++pivot;
    if (pivot == n) {
      return common::Status(common::StatusCode::kInvalidArgument,
                            "singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(work.at(pivot, j), work.at(col, j));
        std::swap(inv.at(pivot, j), inv.at(col, j));
      }
    }
    // Scale pivot row to 1.
    const std::uint8_t scale = gf.inv(work.at(col, col));
    if (scale != 1) {
      for (std::size_t j = 0; j < n; ++j) {
        work.at(col, j) = gf.mul(work.at(col, j), scale);
        inv.at(col, j) = gf.mul(inv.at(col, j), scale);
      }
    }
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const std::uint8_t factor = work.at(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        work.at(r, j) ^= gf.mul(factor, work.at(col, j));
        inv.at(r, j) ^= gf.mul(factor, inv.at(col, j));
      }
    }
  }
  return inv;
}

}  // namespace hyrd::erasure
