// Systematic Reed–Solomon erasure codec over GF(2^8).
//
// RS(k, m): k data shards + m parity shards; any k of the k+m shards
// reconstruct the original data. RAID5 (the paper's case study) is the
// special case m = 1, for which hyrd::erasure::Raid5 provides a dedicated
// XOR fast path; this class handles arbitrary geometries.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "erasure/matrix.h"

namespace hyrd::erasure {

class ReedSolomon {
 public:
  /// Requires 1 <= k, 1 <= m, k + m <= 256.
  ReedSolomon(std::size_t k, std::size_t m);

  [[nodiscard]] std::size_t data_shards() const { return k_; }
  [[nodiscard]] std::size_t parity_shards() const { return m_; }
  [[nodiscard]] std::size_t total_shards() const { return k_ + m_; }

  /// Computes m parity shards from k equally sized data shards.
  [[nodiscard]] common::Result<std::vector<common::Bytes>> encode(
      std::span<const common::Bytes> data) const;

  /// Allocation-free encode into caller-provided parity buffers (which
  /// must be zero-filled and sized like the data shards). The pipelined
  /// write path uses this with reused scratch buffers, and chunk-parallel
  /// callers may pass sub-ranges of every shard: parity is positional.
  [[nodiscard]] common::Status encode_into(
      std::span<const common::ByteSpan> data,
      std::span<const common::MutByteSpan> parity) const;

  /// Fills in missing shards in place. `shards` holds k+m entries in code
  /// order (data first, parity after); std::nullopt marks a missing shard.
  /// Fails with kDataLoss if fewer than k shards are present.
  [[nodiscard]] common::Status reconstruct(
      std::vector<std::optional<common::Bytes>>& shards) const;

  /// True iff the parity shards are consistent with the data shards.
  [[nodiscard]] bool verify(std::span<const common::Bytes> shards) const;

  /// Incremental parity: given one data shard's old and new contents,
  /// returns the deltas to XOR-merge into each parity shard. This is the
  /// read-modify-write small-update path whose cost the paper's Table I
  /// quantifies (2 reads + 2 writes for RAID5).
  [[nodiscard]] common::Result<std::vector<common::Bytes>> parity_delta(
      std::size_t data_index, common::ByteSpan old_data,
      common::ByteSpan new_data) const;

 private:
  std::size_t k_;
  std::size_t m_;
  Matrix generator_;  // (k+m) x k systematic generator
};

}  // namespace hyrd::erasure
