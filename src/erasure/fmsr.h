// Functional Minimum-Storage Regenerating code (F-MSR) — the coding layer
// of NCCloud (Hu et al., FAST'12), the fourth system in the paper's
// Table I.
//
// F-MSR(n, k) splits an object into k(n−k) native chunks and stores
// n−k *coded* chunks (random linear combinations over GF(2^8)) on each of
// n nodes. Properties:
//   * MDS: the chunks of any k nodes reconstruct the object
//     (same 1/k-rate storage overhead as RS);
//   * regenerating repair: a failed node is rebuilt by downloading ONE
//     chunk from each of the n−1 survivors — for (4,2), 0.75x the object
//     size instead of the 1.0x a conventional erasure code reads. This is
//     the repair-bandwidth saving Table I credits NCCloud for
//     ("Recovery: Moderate", "Cost: Low").
//
// Repairs are *functional*: the replacement chunks are new random
// combinations, not copies, so the coefficient matrix evolves; every
// encode/repair verifies the MDS property before committing (and retries
// with fresh randomness when the draw is singular).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "erasure/matrix.h"

namespace hyrd::erasure {

class Fmsr {
 public:
  /// NCCloud's configuration is (n=4, k=2); any n > k >= 1 with
  /// n(n-k) <= 256 works here.
  explicit Fmsr(std::size_t n = 4, std::size_t k = 2);

  [[nodiscard]] std::size_t nodes() const { return n_; }
  [[nodiscard]] std::size_t data_nodes() const { return k_; }
  [[nodiscard]] std::size_t chunks_per_node() const { return n_ - k_; }
  [[nodiscard]] std::size_t native_chunks() const { return k_ * (n_ - k_); }
  [[nodiscard]] std::size_t total_chunks() const { return n_ * (n_ - k_); }

  /// One encoded object: the coded chunks plus the coefficient matrix
  /// (total_chunks x native_chunks) expressing each coded chunk in terms
  /// of the native chunks. Chunk i lives on node i / chunks_per_node().
  struct Encoded {
    std::uint64_t object_size = 0;
    std::size_t chunk_size = 0;
    Matrix coefficients;
    std::vector<common::Bytes> chunks;
    std::uint32_t object_crc = 0;
  };

  /// Encodes with coefficients drawn from `rng` (retried until MDS).
  [[nodiscard]] Encoded encode(common::ByteSpan object,
                               common::Xoshiro256& rng) const;

  /// Reconstructs the object from the chunks held by any k nodes.
  /// `chunk_indices[i]` is the global index of `chunks[i]`; exactly
  /// native_chunks() of them are required.
  [[nodiscard]] common::Result<common::Bytes> decode(
      const Matrix& coefficients,
      const std::vector<std::size_t>& chunk_indices,
      const std::vector<common::Bytes>& chunks, std::uint64_t object_size,
      std::uint32_t object_crc) const;

  /// Functional repair, planned before any data moves — exactly how the
  /// NCCloud proxy works: from the coefficient matrix alone, choose WHICH
  /// chunk each survivor should send and the random mix that regenerates
  /// the failed node's chunks, verifying the result stays MDS (a fixed
  /// selection may admit no MDS-preserving mix, so selection is part of
  /// the search). Then download only the planned n-1 chunks and execute.
  struct RepairPlan {
    std::size_t failed_node = 0;
    std::vector<std::size_t> survivor_chunk_indices;  // n-1 global indices
    Matrix mix;               // chunks_per_node() x (n-1)
    Matrix new_coefficients;  // full matrix after the repair
  };
  [[nodiscard]] common::Result<RepairPlan> plan_repair(
      const Matrix& coefficients, std::size_t failed_node,
      common::Xoshiro256& rng) const;

  /// Computes the replacement chunks from the downloaded survivor chunks
  /// (in the plan's order).
  [[nodiscard]] std::vector<common::Bytes> execute_repair(
      const RepairPlan& plan,
      const std::vector<common::Bytes>& survivor_chunks) const;

  /// MDS check: every k-subset of nodes yields an invertible system.
  [[nodiscard]] bool mds_ok(const Matrix& coefficients) const;

 private:
  [[nodiscard]] Matrix random_matrix(std::size_t rows, std::size_t cols,
                                     common::Xoshiro256& rng) const;

  std::size_t n_;
  std::size_t k_;
};

}  // namespace hyrd::erasure
