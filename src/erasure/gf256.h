// GF(2^8) arithmetic over the AES polynomial x^8+x^4+x^3+x^2+1 (0x11D is the
// common erasure-coding choice; we use 0x11D as in Jerasure/ISA-L).
//
// Tables are built once at static-init time; all hot paths are table lookups
// plus an optional region operation (dst ^= c * src over a whole buffer)
// that the Reed–Solomon encoder uses.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace hyrd::erasure {

class GF256 {
 public:
  /// Singleton table set (immutable after construction).
  static const GF256& instance();

  [[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }
  [[nodiscard]] std::uint8_t sub(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }

  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// Division; b must be nonzero.
  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const;

  /// Multiplicative inverse; a must be nonzero.
  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const;

  /// a^n for n >= 0.
  [[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned n) const;

  /// dst[i] ^= c * src[i] for the whole region (the encode/decode kernel).
  void mul_add_region(common::MutByteSpan dst, common::ByteSpan src,
                      std::uint8_t c) const;

  /// dst[i] = c * src[i].
  void mul_region(common::MutByteSpan dst, common::ByteSpan src,
                  std::uint8_t c) const;

 private:
  GF256();

  // exp_ is doubled so mul() can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint16_t, 256> log_{};
  // Per-coefficient 256-entry product tables for fast region ops.
  std::array<std::array<std::uint8_t, 256>, 256> mul_table_{};
};

}  // namespace hyrd::erasure
