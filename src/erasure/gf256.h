// GF(2^8) arithmetic over the polynomial x^8+x^4+x^3+x^2+1 (0x11D, the
// common erasure-coding choice, as in Jerasure/ISA-L).
//
// Scalar ops are exp/log table lookups. The region kernels (dst ^= c * src
// over a whole buffer — the Reed–Solomon encode/decode inner loop) use
// split low/high-nibble product tables: 16 bytes per nibble half, 32 bytes
// per coefficient, exactly the layout a PSHUFB-style shuffle consumes.
// At run time the widest available kernel is selected once: AVX2 (32 B per
// step), SSSE3 (16 B), or a portable std::uint64_t path (8 B). A scalar
// reference implementation is retained for property tests.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/bytes.h"

namespace hyrd::erasure {

class GF256 {
 public:
  /// Singleton table set (immutable after construction).
  static const GF256& instance();

  [[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }
  [[nodiscard]] std::uint8_t sub(std::uint8_t a, std::uint8_t b) const {
    return a ^ b;
  }

  [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  /// Division; b must be nonzero.
  [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const;

  /// Multiplicative inverse; a must be nonzero.
  [[nodiscard]] std::uint8_t inv(std::uint8_t a) const;

  /// a^n for n >= 0.
  [[nodiscard]] std::uint8_t pow(std::uint8_t a, unsigned n) const;

  /// dst[i] ^= c * src[i] for the whole region (the encode/decode kernel).
  void mul_add_region(common::MutByteSpan dst, common::ByteSpan src,
                      std::uint8_t c) const;

  /// dst[i] = c * src[i].
  void mul_region(common::MutByteSpan dst, common::ByteSpan src,
                  std::uint8_t c) const;

  /// Fused multi-source kernel: dst[i] ^= XOR_j coeffs[j] * srcs[j][i].
  /// Processes the region in L1-sized chunks so dst is read/written once
  /// per chunk instead of once per source — the encode path for a whole
  /// parity row in a single pass over memory.
  void mul_add_region_multi(common::MutByteSpan dst,
                            std::span<const common::ByteSpan> srcs,
                            const std::uint8_t* coeffs) const;

  // Scalar reference kernels: the seed's per-byte product-table algorithm,
  // retained so property tests can check the wide kernels byte for byte.
  void mul_add_region_scalar(common::MutByteSpan dst, common::ByteSpan src,
                             std::uint8_t c) const;
  void mul_region_scalar(common::MutByteSpan dst, common::ByteSpan src,
                         std::uint8_t c) const;

  /// Name of the region kernel selected at run time ("avx2", "ssse3",
  /// or "portable64") — for bench labels and diagnostics.
  [[nodiscard]] static std::string_view region_kernel_name();

 private:
  GF256();

  // exp_ is doubled so mul() can skip the mod-255 reduction.
  std::array<std::uint8_t, 512> exp_{};
  std::array<std::uint16_t, 256> log_{};
  // Split-nibble product tables: nib_lo_[c][x] = c*x, nib_hi_[c][x] = c*(x<<4)
  // for x in [0,16). 8 KiB total (vs the seed's 64 KiB full product table),
  // L1-resident, and directly loadable as shuffle control data.
  alignas(16) std::array<std::array<std::uint8_t, 16>, 256> nib_lo_{};
  alignas(16) std::array<std::array<std::uint8_t, 16>, 256> nib_hi_{};
};

}  // namespace hyrd::erasure
