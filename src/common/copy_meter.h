// Process-wide accounting of physical payload copies.
//
// The zero-copy data plane (common/buffer.h) is only honest if we can
// measure it: every site that physically memcpys payload bytes — deep
// Buffer copies, copy-on-write forks, stripe tail padding, degraded-read
// gathers — reports the byte count here. Benches diff the counter around a
// workload to report "bytes memcpy'd per op" (see bench_client_micro's
// --json databus mode and EXPERIMENTS.md E2).
//
// The counter is a relaxed atomic: it is a statistic, not a
// synchronization point, and the hot path must not pay for ordering.
#pragma once

#include <atomic>
#include <cstdint>

namespace hyrd::common {

namespace internal {
inline std::atomic<std::uint64_t> g_bytes_copied{0};
}  // namespace internal

/// Records `n` physically copied payload bytes.
inline void count_copied_bytes(std::uint64_t n) {
  internal::g_bytes_copied.fetch_add(n, std::memory_order_relaxed);
}

/// Total payload bytes physically copied since process start (or the last
/// reset). Monotone except for reset_copied_bytes().
inline std::uint64_t copied_bytes() {
  return internal::g_bytes_copied.load(std::memory_order_relaxed);
}

/// Zeroes the counter (benches only; races with in-flight ops are benign).
inline void reset_copied_bytes() {
  internal::g_bytes_copied.store(0, std::memory_order_relaxed);
}

}  // namespace hyrd::common
