// Process-wide accounting of physical payload copies.
//
// The zero-copy data plane (common/buffer.h) is only honest if we can
// measure it: every site that physically memcpys payload bytes — deep
// Buffer copies, copy-on-write forks, stripe tail padding, degraded-read
// gathers — reports the byte count here. Benches diff the counter around a
// workload to report "bytes memcpy'd per op" (see bench_client_micro's
// --json databus mode and EXPERIMENTS.md E2).
//
// Since the flight-recorder PR this is a thin veneer over the standard
// metrics plane: the bytes land in the `common.bytes_copied` counter of
// obs::MetricsRegistry::global(), so memcpy accounting shows up in the same
// snapshot/export as every other metric instead of a parallel mechanism.
// The update cost is unchanged — one relaxed fetch_add on a padded cell —
// and, like every registry counter, it compiles out (reads 0) under
// -DHYRD_OBS_METRICS=OFF.
#pragma once

#include <cstdint>

#include "obs/metrics.h"

namespace hyrd::common {

namespace internal {
inline const obs::Counter& copy_counter() {
  static const obs::Counter counter =
      obs::MetricsRegistry::global().counter("common.bytes_copied");
  return counter;
}
}  // namespace internal

/// Records `n` physically copied payload bytes.
inline void count_copied_bytes(std::uint64_t n) {
  internal::copy_counter().add(n);
}

/// Total payload bytes physically copied since process start (or the last
/// reset). Monotone except for reset_copied_bytes().
inline std::uint64_t copied_bytes() {
  return internal::copy_counter().value();
}

/// Zeroes the counter (benches only; races with in-flight ops are benign).
inline void reset_copied_bytes() { internal::copy_counter().reset(); }

}  // namespace hyrd::common
