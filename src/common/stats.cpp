#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace hyrd::common {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Samples::percentile(double p) {
  if (values_.empty()) return 0.0;
  if (sorted_prefix_ < values_.size()) {
    const auto mid = values_.begin() +
                     static_cast<std::ptrdiff_t>(sorted_prefix_);
    std::sort(mid, values_.end());
    std::inplace_merge(values_.begin(), mid, values_.end());
    sorted_prefix_ = values_.size();
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

LogHistogram::LogHistogram(double base, double growth, std::size_t buckets)
    : base_(base), growth_(growth), counts_(buckets, 0) {}

LogHistogram::LogHistogram(double base, double growth,
                           std::vector<std::size_t> counts)
    : base_(base), growth_(growth), counts_(std::move(counts)) {
  for (std::size_t c : counts_) total_ += c;
}

std::size_t LogHistogram::bucket_index(double x, double base, double growth,
                                       std::size_t buckets) {
  std::size_t idx = 0;
  double bound = base;
  while (idx + 1 < buckets && x >= bound) {
    bound *= growth;
    ++idx;
  }
  return idx;
}

void LogHistogram::add(double x) {
  ++counts_[bucket_index(x, base_, growth_, counts_.size())];
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.counts_.size() != counts_.size() || other.base_ != base_ ||
      other.growth_ != growth_) {
    return;  // geometry mismatch: refuse rather than mis-bucket
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

double LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the percentile sample (1-based, nearest-rank).
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(total_ - 1) + 1.0);
  std::size_t cum = 0;
  double lo = 0.0;
  double hi = base_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (cum + counts_[i] >= rank) {
      const double frac = counts_[i] == 0
                              ? 1.0
                              : static_cast<double>(rank - cum) /
                                    static_cast<double>(counts_[i]);
      return lo + frac * (hi - lo);
    }
    cum += counts_[i];
    lo = hi;
    hi *= growth_;
  }
  return lo;  // everything landed in the (unbounded) last bucket
}

std::string LogHistogram::render(std::size_t width) const {
  std::string out;
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  double lo = 0.0;
  double hi = base_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%9.2f, %9.2f) %8zu ", lo, hi,
                  counts_[i]);
    out += label;
    const std::size_t bar = counts_[i] * width / peak;
    out.append(bar, '#');
    out.push_back('\n');
    lo = hi;
    hi *= growth_;
  }
  return out;
}

}  // namespace hyrd::common
