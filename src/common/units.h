// Size and money units used throughout the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace hyrd::common {

inline constexpr std::uint64_t KiB = 1024ull;
inline constexpr std::uint64_t MiB = 1024ull * KiB;
inline constexpr std::uint64_t GiB = 1024ull * MiB;
inline constexpr std::uint64_t TiB = 1024ull * GiB;

// Decimal units (cloud pricing is quoted per decimal GB).
inline constexpr std::uint64_t KB = 1000ull;
inline constexpr std::uint64_t MB = 1000ull * KB;
inline constexpr std::uint64_t GB = 1000ull * MB;
inline constexpr std::uint64_t TB = 1000ull * GB;

/// Formats a byte count with a binary suffix ("12.0 MiB").
inline std::string format_bytes(std::uint64_t n) {
  const char* suffix = "B";
  double v = static_cast<double>(n);
  if (n >= TiB) {
    v /= static_cast<double>(TiB);
    suffix = "TiB";
  } else if (n >= GiB) {
    v /= static_cast<double>(GiB);
    suffix = "GiB";
  } else if (n >= MiB) {
    v /= static_cast<double>(MiB);
    suffix = "MiB";
  } else if (n >= KiB) {
    v /= static_cast<double>(KiB);
    suffix = "KiB";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, suffix);
  return buf;
}

/// Formats US dollars ("$12.34").
inline std::string format_usd(double dollars) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "$%.2f", dollars);
  return buf;
}

}  // namespace hyrd::common
