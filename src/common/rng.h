// Deterministic random number generation.
//
// Every stochastic component (latency jitter, workload generators, failure
// injection) draws from its own xoshiro256** stream seeded via SplitMix64,
// so independent subsystems never perturb each other's sequences and every
// experiment is reproducible from a single printed seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace hyrd::common {

/// SplitMix64: seeds the main generator; also a fine standalone mixer.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive). Debiased via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Standard normal via Box–Muller (no cached spare: keeps stream simple).
  double normal();

  /// Lognormal with the given log-space mean and stddev.
  double lognormal(double mu, double sigma);

  /// Exponential with the given rate.
  double exponential(double rate);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child stream (e.g. one per provider).
  Xoshiro256 fork() {
    Xoshiro256 child(0);
    for (auto& s : child.state_) s = (*this)();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace hyrd::common
