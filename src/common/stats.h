// Streaming statistics: Welford mean/stddev, reservoir percentiles, and a
// log-scaled latency histogram. These feed every bench table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hyrd::common {

/// Numerically stable running mean / variance (Welford).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps every sample (bounded workloads) and answers percentile queries.
/// A percentile query after N appended samples sorts only the unsorted tail
/// and merges it into the already-sorted prefix, so alternating add/query
/// costs O(tail log tail + n) per query instead of re-sorting everything.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double percentile(double p);  // p in [0,100]
  [[nodiscard]] double median() { return percentile(50.0); }

 private:
  std::vector<double> values_;
  std::size_t sorted_prefix_ = 0;  // values_[0, sorted_prefix_) is sorted
};

/// Histogram with logarithmically spaced buckets; renders ASCII bars.
class LogHistogram {
 public:
  /// Buckets: [0, base), [base, base*growth), ... up to `buckets` buckets.
  LogHistogram(double base, double growth, std::size_t buckets);

  /// Adopts pre-merged bucket counts (same geometry semantics as above).
  /// Used by obs::Histogram::snapshot to turn sharded atomic cells into a
  /// plain histogram, and by the timeline sampler for window deltas.
  LogHistogram(double base, double growth, std::vector<std::size_t> counts);

  void add(double x);

  /// The bucket `add(x)` would increment, for a histogram with this
  /// geometry. Exposed so sharded external storage (obs::Histogram) uses
  /// the exact same bucketing and merge-of-shards == single-stream holds.
  [[nodiscard]] static std::size_t bucket_index(double x, double base,
                                                double growth,
                                                std::size_t buckets);

  /// Element-wise accumulate of a same-geometry histogram (per-thread
  /// shard reduction). Geometries must match exactly.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double base() const { return base_; }
  [[nodiscard]] double growth() const { return growth_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::string render(std::size_t width = 40) const;

  /// Approximate percentile (p in [0,100]): the sample's bucket is found
  /// by cumulative count and the value interpolated linearly inside it.
  /// O(buckets) time, O(1) memory per sample — this is what lets the
  /// scale-out bench report p99 over millions of ops without retaining
  /// them. Error is bounded by one bucket's width (growth factor).
  [[nodiscard]] double percentile(double p) const;

 private:
  double base_;
  double growth_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace hyrd::common
