// Virtual-time issue context: the seam between the discrete-event
// scale-out engine (sim/) and the provider/middleware layers below it.
//
// The single-client stack never needed to tell a provider *when* (in
// virtual time) a request arrives — every call was its own isolated round
// and latency composed purely client-side. Once 10^5+ tenants share the
// fleet, arrival time matters: SimProvider's congestion queue
// (cloud/congestion.h) turns "requests per virtual second" into queueing
// delay, and that requires each op to carry its virtual arrival instant
// and the identity/weight of the tenant issuing it.
//
// The context travels like cloud::CancelScope does: a thread-local scope
// the event loop installs around a tenant step. gcsapi::AsyncBatch
// captures the active context at construction; when one is present it
// (a) executes each submitted op inline on the calling thread instead of
// bouncing it through the session thread pool — the whole client stack
// becomes a deterministic, allocation-light state machine step — and
// (b) re-installs the scope with now advanced by the op's start_offset so
// failover chains and hedges arrive at the provider at the right instant.
//
// No scope installed (every pre-existing code path) means no behavior
// change anywhere: providers skip congestion accounting and AsyncBatch
// keeps its threaded dispatch.
#pragma once

#include <cstdint>
#include <optional>

#include "common/clock.h"

namespace hyrd::common {

/// Who is issuing, and at what virtual instant.
struct VirtualContext {
  SimDuration now = 0;        // absolute virtual arrival time
  std::uint64_t tenant = 0;   // fair-queuing flow id
  double weight = 1.0;        // fair-queuing share (>0; bigger = more)
};

/// RAII thread-local installer, nestable (an AsyncBatch re-installs with
/// an advanced `now` around each inline op).
class VirtualScope {
 public:
  explicit VirtualScope(VirtualContext ctx) : ctx_(ctx), prev_(current_) {
    current_ = this;
  }
  ~VirtualScope() { current_ = prev_; }

  VirtualScope(const VirtualScope&) = delete;
  VirtualScope& operator=(const VirtualScope&) = delete;

  /// The innermost active context on this thread, if any.
  [[nodiscard]] static const VirtualContext* current() {
    return current_ != nullptr ? &current_->ctx_ : nullptr;
  }

  /// Copy of the active context (for capture across an object's lifetime).
  [[nodiscard]] static std::optional<VirtualContext> snapshot() {
    if (current_ == nullptr) return std::nullopt;
    return current_->ctx_;
  }

 private:
  VirtualContext ctx_;
  VirtualScope* prev_;
  inline static thread_local VirtualScope* current_ = nullptr;
};

}  // namespace hyrd::common
