// Ref-counted immutable byte buffer with O(1) slicing — the unit the
// zero-copy data plane moves (IOBuf-style: shared control block plus an
// offset/length view).
//
// Ownership model (DESIGN.md §9):
//  * A Buffer is an immutable *view* of a heap block shared by refcount.
//    slice() is O(1): it bumps the refcount and narrows the view; no byte
//    moves. Copying/moving a Buffer never copies payload.
//  * Nobody mutates bytes reachable through a Buffer. The only mutation
//    escape hatch is into_bytes()/to_bytes(), which hands the caller an
//    owned std::vector — stolen in O(1) when the Buffer is the sole owner
//    of its whole block, deep-copied (copy-on-write fork) otherwise.
//  * borrow() wraps foreign memory without owning it — the bridge from the
//    legacy ByteSpan entry points. A borrowed Buffer must not outlive the
//    memory it views; anything that stores a Buffer calls own(), which is
//    a refbump for owning buffers and a deep copy only for borrowed ones.
//  * MutableBuffer is the write-side arena: build bytes in place once
//    (e.g. all stripe shards of an object), freeze() into an immutable
//    Buffer, then slice per-fragment.
//
// Every deep copy is reported to the copy meter, so benches can prove the
// plane is as zero-copy as it claims.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>

#include "common/bytes.h"
#include "common/copy_meter.h"

namespace hyrd::common {

class Buffer {
 public:
  /// Empty buffer (owning, trivially; size() == 0).
  Buffer() = default;

  /// Deep copy of `data` into a fresh block (counted by the copy meter).
  static Buffer copy(ByteSpan data) {
    if (data.empty()) return Buffer();
    count_copied_bytes(data.size());
    auto block = std::make_shared<Bytes>(data.begin(), data.end());
    const std::uint8_t* ptr = block->data();
    return Buffer(std::move(block), ptr, data.size());
  }

  /// Adopts an existing vector without copying.
  static Buffer from(Bytes&& data) {
    if (data.empty()) return Buffer();
    auto block = std::make_shared<Bytes>(std::move(data));
    const std::uint8_t* ptr = block->data();
    const std::size_t len = block->size();
    return Buffer(std::move(block), ptr, len);
  }

  /// Deep copy of text (tests / metadata convenience).
  static Buffer of(std::string_view text) {
    return copy(ByteSpan(reinterpret_cast<const std::uint8_t*>(text.data()),
                         text.size()));
  }

  /// Non-owning view of foreign memory. The caller guarantees `data`
  /// outlives every use of the returned Buffer; durable sinks must call
  /// own() before keeping it.
  static Buffer borrow(ByteSpan data) {
    return Buffer(nullptr, data.data(), data.size());
  }

  [[nodiscard]] std::size_t size() const { return len_; }
  [[nodiscard]] bool empty() const { return len_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const { return ptr_; }
  [[nodiscard]] const std::uint8_t* begin() const { return ptr_; }
  [[nodiscard]] const std::uint8_t* end() const { return ptr_ + len_; }
  const std::uint8_t& operator[](std::size_t i) const { return ptr_[i]; }

  [[nodiscard]] ByteSpan span() const { return ByteSpan(ptr_, len_); }
  operator ByteSpan() const { return span(); }  // NOLINT(google-explicit-constructor)

  /// O(1) sub-view sharing the same block. [offset, offset+length) must lie
  /// within the buffer.
  [[nodiscard]] Buffer slice(std::size_t offset, std::size_t length) const {
    assert(offset <= len_ && length <= len_ - offset);
    return Buffer(block_, ptr_ + offset, length);
  }

  /// O(1) prefix view (n is clamped to size()).
  [[nodiscard]] Buffer first(std::size_t n) const {
    return slice(0, std::min(n, len_));
  }

  /// False only for borrow()ed views of foreign memory.
  [[nodiscard]] bool owning() const { return block_ != nullptr || len_ == 0; }

  /// A Buffer safe to store durably: refbump when already owning, deep copy
  /// (counted) when borrowed.
  [[nodiscard]] Buffer own() const& { return owning() ? *this : copy(span()); }
  [[nodiscard]] Buffer own() && {
    return owning() ? std::move(*this) : copy(span());
  }

  /// Number of Buffer views sharing this block (0 for empty/borrowed).
  [[nodiscard]] long use_count() const {
    return block_ ? block_.use_count() : 0;
  }

  /// True when the two views alias the same underlying block.
  [[nodiscard]] bool same_block(const Buffer& other) const {
    return block_ != nullptr && block_ == other.block_;
  }

  /// Owned copy of the bytes (always a deep copy, counted).
  [[nodiscard]] Bytes to_bytes() const {
    count_copied_bytes(len_);
    return Bytes(begin(), end());
  }

  /// Consumes the buffer into an owned vector. O(1) steal when this view is
  /// the sole owner of its entire block; otherwise a copy-on-write fork
  /// (deep copy, counted) so other views keep their snapshot.
  [[nodiscard]] Bytes into_bytes() && {
    if (block_ && block_.use_count() == 1 && ptr_ == block_->data() &&
        len_ == block_->size()) {
      Bytes out = std::move(*block_);
      block_.reset();
      ptr_ = nullptr;
      len_ = 0;
      return out;
    }
    Bytes out = to_bytes();
    *this = Buffer();
    return out;
  }

  /// If `parts` are adjacent views of one block (in order, no gaps), returns
  /// an O(1) Buffer spanning the first `total_len` bytes of the run;
  /// std::nullopt otherwise. The decode fast path: fragments read back from
  /// a store that kept slices of the writer's arena reassemble for free.
  static std::optional<Buffer> join_contiguous(std::span<const Buffer> parts,
                                               std::size_t total_len) {
    if (parts.empty()) return std::nullopt;
    if (!parts.front().block_) return std::nullopt;
    std::size_t run = parts.front().len_;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (!parts[i].same_block(parts.front())) return std::nullopt;
      if (parts[i].ptr_ != parts.front().ptr_ + run) return std::nullopt;
      run += parts[i].len_;
    }
    if (total_len > run) return std::nullopt;
    return Buffer(parts.front().block_, parts.front().ptr_, total_len);
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.len_ == b.len_ &&
           (a.ptr_ == b.ptr_ || std::equal(a.begin(), a.end(), b.begin()));
  }
  friend bool operator==(const Buffer& a, const Bytes& b) {
    return a.len_ == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  friend class MutableBuffer;

  Buffer(std::shared_ptr<Bytes> block, const std::uint8_t* ptr,
         std::size_t len)
      : block_(std::move(block)), ptr_(ptr), len_(len) {}

  std::shared_ptr<Bytes> block_;
  const std::uint8_t* ptr_ = nullptr;
  std::size_t len_ = 0;
};

/// Write-side arena: a uniquely-owned zero-initialised block the producer
/// fills in place, then freeze()s into an immutable Buffer to slice out.
class MutableBuffer {
 public:
  explicit MutableBuffer(std::size_t size)
      : block_(std::make_shared<Bytes>(size, std::uint8_t{0})) {}

  [[nodiscard]] std::size_t size() const { return block_->size(); }
  [[nodiscard]] std::uint8_t* data() { return block_->data(); }
  [[nodiscard]] MutByteSpan span() { return MutByteSpan(*block_); }
  [[nodiscard]] MutByteSpan span(std::size_t offset, std::size_t length) {
    assert(offset <= block_->size() && length <= block_->size() - offset);
    return MutByteSpan(block_->data() + offset, length);
  }

  /// Copies `src` into the arena at `offset` (counted).
  void write(std::size_t offset, ByteSpan src) {
    assert(offset <= block_->size() && src.size() <= block_->size() - offset);
    if (src.empty()) return;
    count_copied_bytes(src.size());
    std::memcpy(block_->data() + offset, src.data(), src.size());
  }

  /// Seals the arena. The MutableBuffer is spent afterwards. Writers may
  /// keep MutByteSpans taken *before* freeze() and fill disjoint regions
  /// that no Buffer view has been sliced over yet (the erasure write path
  /// does this for parity, which is encoded after the data fragments are
  /// already in flight).
  [[nodiscard]] Buffer freeze() && {
    const std::uint8_t* ptr = block_->data();
    const std::size_t len = block_->size();
    return Buffer(std::move(block_), ptr, len);
  }

 private:
  std::shared_ptr<Bytes> block_;
};

/// Overflow-safe range containment: true iff [offset, offset+length) lies
/// within [0, size). Written without `offset + length`, which wraps for
/// huge offsets and falsely passes `> size` checks.
constexpr bool range_within(std::uint64_t offset, std::uint64_t length,
                            std::uint64_t size) {
  return offset <= size && length <= size - offset;
}

}  // namespace hyrd::common
