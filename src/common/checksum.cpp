#include "common/checksum.h"

#include <bit>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define HYRD_CRC_X86 1
#endif

namespace hyrd::common {
namespace {

// Slicing-by-8 CRC-32C: table[0] is the classic bitwise-derived table,
// table[t][b] extends it so eight input bytes fold into the running CRC
// with eight independent lookups per 64-bit load.
struct Crc32cTables {
  std::uint32_t t[8][256];
};

Crc32cTables make_crc32c_tables() {
  Crc32cTables tables{};
  constexpr std::uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41 reflected
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int slice = 1; slice < 8; ++slice) {
      crc = (crc >> 8) ^ tables.t[0][crc & 0xFFu];
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

const Crc32cTables kCrc = make_crc32c_tables();

std::uint32_t crc32c_sw(std::uint32_t crc, const std::uint8_t* p,
                        std::size_t n) {
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    w ^= crc;
    crc = kCrc.t[7][w & 0xFF] ^ kCrc.t[6][(w >> 8) & 0xFF] ^
          kCrc.t[5][(w >> 16) & 0xFF] ^ kCrc.t[4][(w >> 24) & 0xFF] ^
          kCrc.t[3][(w >> 32) & 0xFF] ^ kCrc.t[2][(w >> 40) & 0xFF] ^
          kCrc.t[1][(w >> 48) & 0xFF] ^ kCrc.t[0][w >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kCrc.t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

#ifdef HYRD_CRC_X86
// SSE4.2 CRC32 instruction: 8 bytes per cycle-ish, same polynomial.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(std::uint32_t crc,
                                                          const std::uint8_t* p,
                                                          std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  while (n-- > 0) c32 = _mm_crc32_u8(c32, *p++);
  return c32;
}
#endif

using CrcFn = std::uint32_t (*)(std::uint32_t, const std::uint8_t*,
                                std::size_t);

CrcFn pick_crc32c() {
#ifdef HYRD_CRC_X86
  if (__builtin_cpu_supports("sse4.2")) return crc32c_hw;
#endif
  return crc32c_sw;
}

const CrcFn kCrcImpl = pick_crc32c();

constexpr std::array<std::uint32_t, 64> kSha256K = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

}  // namespace

std::uint32_t crc32c(ByteSpan data, std::uint32_t seed) {
  return ~kCrcImpl(~seed, data.data(), data.size());
}

std::uint32_t crc32c_reference(ByteSpan data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (std::uint8_t b : data) {
    crc = (crc >> 8) ^ kCrc.t[0][(crc ^ b) & 0xFFu];
  }
  return ~crc;
}

std::uint64_t fnv1a(ByteSpan data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string Sha256Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Sha256::Sha256() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
}

void Sha256::process_blocks(const std::uint8_t* block, std::size_t count) {
  // Keep the working variables in locals across the whole run of blocks;
  // state_ is read once and written once per call, not per block.
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (std::size_t blk = 0; blk < count; ++blk, block += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<std::uint32_t>(block[i * 4]) << 24) |
             (static_cast<std::uint32_t>(block[i * 4 + 1]) << 16) |
             (static_cast<std::uint32_t>(block[i * 4 + 2]) << 8) |
             static_cast<std::uint32_t>(block[i * 4 + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 = std::rotr(w[i - 15], 7) ^
                               std::rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 = std::rotr(w[i - 2], 17) ^
                               std::rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t ta = a, tb = b, tc = c, td = d;
    std::uint32_t te = e, tf = f, tg = g, th = h;
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 =
          std::rotr(te, 6) ^ std::rotr(te, 11) ^ std::rotr(te, 25);
      const std::uint32_t ch = (te & tf) ^ (~te & tg);
      const std::uint32_t temp1 = th + s1 + ch + kSha256K[i] + w[i];
      const std::uint32_t s0 =
          std::rotr(ta, 2) ^ std::rotr(ta, 13) ^ std::rotr(ta, 22);
      const std::uint32_t maj = (ta & tb) ^ (ta & tc) ^ (tb & tc);
      const std::uint32_t temp2 = s0 + maj;
      th = tg;
      tg = tf;
      tf = te;
      te = td + temp1;
      td = tc;
      tc = tb;
      tb = ta;
      ta = temp1 + temp2;
    }
    a += ta;
    b += tb;
    c += tc;
    d += td;
    e += te;
    f += tf;
    g += tg;
    h += th;
  }
  state_[0] = a;
  state_[1] = b;
  state_[2] = c;
  state_[3] = d;
  state_[4] = e;
  state_[5] = f;
  state_[6] = g;
  state_[7] = h;
}

void Sha256::update(ByteSpan data) {
  bit_len_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t need = 64 - buffer_len_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_blocks(buffer_.data(), 1);
      buffer_len_ = 0;
    }
  }
  if (offset + 64 <= data.size()) {
    const std::size_t nblocks = (data.size() - offset) / 64;
    process_blocks(data.data() + offset, nblocks);
    offset += nblocks * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finalize() {
  // Append 0x80, pad with zeros, then the 64-bit big-endian length.
  std::array<std::uint8_t, 72> pad{};
  pad[0] = 0x80;
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len = (rem < 56) ? 56 - rem : 120 - rem;
  std::array<std::uint8_t, 8> len_be{};
  for (int i = 0; i < 8; ++i) {
    len_be[7 - i] = static_cast<std::uint8_t>(bit_len_ >> (i * 8));
  }
  update(ByteSpan(pad.data(), pad_len));
  update(ByteSpan(len_be.data(), len_be.size()));

  Sha256Digest d;
  for (int i = 0; i < 8; ++i) {
    d.bytes[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    d.bytes[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    d.bytes[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    d.bytes[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return d;
}

}  // namespace hyrd::common
