// Checksums and digests used for object integrity.
//
// - CRC32C guards individual fragments (fast, per-op).
// - FNV-1a keys internal hash maps.
// - SHA-256 fingerprints whole objects so reconstruction paths can be
//   verified end to end (and powers the future-work dedup extension).
// All implemented from scratch; no external crypto dependency.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace hyrd::common {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41). Slicing-by-8 software
/// path, upgraded at run time to the SSE4.2 CRC32 instruction when the
/// host supports it. Chaining property: crc32c(a+b) == crc32c(b, crc32c(a)).
std::uint32_t crc32c(ByteSpan data, std::uint32_t seed = 0);

/// Bytewise single-table CRC-32C (the seed implementation), retained as
/// the reference the wide-word paths are property-tested against.
std::uint32_t crc32c_reference(ByteSpan data, std::uint32_t seed = 0);

/// FNV-1a 64-bit hash.
constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a(ByteSpan data);

/// SHA-256 digest.
struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Sha256Digest&, const Sha256Digest&) = default;
  [[nodiscard]] std::string hex() const;
};

class Sha256 {
 public:
  Sha256();
  void update(ByteSpan data);
  [[nodiscard]] Sha256Digest finalize();

  static Sha256Digest digest(ByteSpan data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  /// Compresses `count` consecutive 64-byte blocks, keeping the working
  /// state in registers across the whole run.
  void process_blocks(const std::uint8_t* block, std::size_t count);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::uint64_t bit_len_ = 0;
  std::size_t buffer_len_ = 0;
};

}  // namespace hyrd::common
