// Virtual time for deterministic latency simulation.
//
// The simulator never sleeps: providers *compute* how long an operation
// would take and the client aggregates those durations (sum for sequential
// steps, max for parallel fan-out). SimClock just accumulates elapsed
// virtual nanoseconds so a workload run can report wall-clock-like totals
// reproducibly.
#pragma once

#include <cstdint>

namespace hyrd::common {

/// Virtual duration in nanoseconds. Signed, so deltas compose safely.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

inline constexpr double to_ms(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
inline constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
inline constexpr SimDuration from_ms(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

/// Monotonic virtual clock.
class SimClock {
 public:
  [[nodiscard]] SimDuration now() const { return now_; }

  /// Advances the clock; negative deltas are clamped to zero.
  void advance(SimDuration delta) {
    if (delta > 0) now_ += delta;
  }

  void reset() { now_ = 0; }

 private:
  SimDuration now_ = 0;
};

}  // namespace hyrd::common
