// Minimal Status / Result error-handling vocabulary.
//
// HyRD runs long simulated workloads where throwing on every unavailable
// provider would dominate cost; recoverable conditions (outage, missing key)
// travel as values, programmer errors assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace hyrd::common {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // object or container does not exist
  kUnavailable,     // provider in outage
  kInvalidArgument, // malformed request
  kAlreadyExists,   // container creation collision
  kDataLoss,        // too many fragments missing to reconstruct
  kFailedPrecondition,
  kInternal,
  kCancelled,       // op abandoned by the client (straggler past early ack)
  kResourceExhausted,  // provider over capacity; request throttled (429)
};

/// Human-readable code name (stable; used in logs and test assertions).
constexpr std::string_view status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s(status_code_name(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status not_found(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status unavailable(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status invalid_argument(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status already_exists(std::string msg) {
  return {StatusCode::kAlreadyExists, std::move(msg)};
}
inline Status data_loss(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status failed_precondition(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status internal_error(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}
inline Status cancelled(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
inline Status resource_exhausted(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}

/// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : var_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Result(Status status) : var_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(var_).is_ok() &&
           "Result constructed from OK status must carry a value");
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(var_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(var_);
  }

  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return std::get<T>(var_);
  }
  [[nodiscard]] T& value() & {
    assert(is_ok());
    return std::get<T>(var_);
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::get<T>(std::move(var_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? std::get<T>(var_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> var_;
};

}  // namespace hyrd::common
