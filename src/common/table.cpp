#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace hyrd::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

std::string Table::render_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) line += ',';
      line += escape(c < cells.size() ? cells[c] : "");
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace hyrd::common
