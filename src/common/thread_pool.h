// Fixed-size thread pool used to issue requests to multiple simulated cloud
// providers concurrently (the access parallelism HyRD exploits for large
// files). Latencies themselves are virtual, but running fan-out on real
// threads exercises the same synchronization structure a networked client
// would have and keeps big workloads fast.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hyrd::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Schedules `fn`; the returned future completes with its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Indices are dispatched in contiguous chunks (a few per worker), so
  /// per-index scheduling overhead is amortized; fn must therefore not
  /// assume each index runs as its own task. n == 0 returns immediately.
  /// If fn throws, every chunk still runs to completion (the pool is never
  /// deadlocked or left running detached work) and the first exception is
  /// rethrown to the caller; later indices may or may not have executed.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hyrd::common
