#include "common/thread_pool.h"

namespace hyrd::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    // No point bouncing a single index through the queue.
    fn(0);
    return;
  }
  // One task per index is pure queue/packaged_task overhead once the body
  // is cheap (byte-level work over many indices). Chunk into a few
  // contiguous blocks per worker: scheduling cost becomes O(threads)
  // while load balancing keeps 4 blocks per worker to absorb skew.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    futs.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  // Every chunk captures `fn` by reference, so this frame must outlive all
  // of them: drain every future — even after one throws — before leaving,
  // then rethrow the first failure. Bailing out on the first get() would
  // both dangle `fn` for the still-running chunks and leave their tasks
  // racing a destroyed stack frame.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace hyrd::common
