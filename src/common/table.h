// ASCII table rendering for bench output. Every reproduced paper table or
// figure series is printed through this so rows line up and can be diffed.
#pragma once

#include <string>
#include <vector>

namespace hyrd::common {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  [[nodiscard]] std::string render() const;

  /// RFC-4180-style CSV (quotes cells containing commas/quotes/newlines),
  /// for piping bench output into plotting scripts.
  [[nodiscard]] std::string render_csv() const;

  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hyrd::common
