// Byte-buffer primitives shared across the library.
//
// A `Bytes` value is the unit of everything HyRD moves: file contents,
// erasure fragments, serialized metadata blocks. We deliberately use a plain
// std::vector<uint8_t> so buffers interoperate with std::span views without
// any wrapper tax.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/copy_meter.h"

namespace hyrd::common {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutByteSpan = std::span<std::uint8_t>;

/// Builds a buffer from a string literal / std::string contents.
inline Bytes bytes_of(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Interprets a buffer as text (for tests and debugging only).
inline std::string to_string(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Deterministic patterned payload: byte i = f(seed, i). Useful for building
/// large test objects without storing them twice.
inline Bytes patterned(std::size_t size, std::uint64_t seed = 0) {
  Bytes out(size);
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 0xbf58476d1ce4e5b9ull;
  for (std::size_t i = 0; i < size; ++i) {
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    out[i] = static_cast<std::uint8_t>((x >> 32) ^ i);
  }
  return out;
}

/// Hex dump of a (prefix of a) buffer, for diagnostics.
inline std::string to_hex(ByteSpan b, std::size_t max_bytes = 32) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  const std::size_t n = b.size() < max_bytes ? b.size() : max_bytes;
  out.reserve(n * 2 + 3);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[b[i] >> 4]);
    out.push_back(kDigits[b[i] & 0xF]);
  }
  if (n < b.size()) out += "...";
  return out;
}

/// Concatenates buffers (used when reassembling striped objects).
inline Bytes concat(std::span<const Bytes> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  count_copied_bytes(total);
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace hyrd::common
