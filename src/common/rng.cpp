#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace hyrd::common {

std::uint64_t Xoshiro256::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  if (lo >= hi) return lo;
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return (*this)();  // full 64-bit range
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - range) % range;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return lo + r % range;
  }
}

double Xoshiro256::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Xoshiro256::exponential(double rate) {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

}  // namespace hyrd::common
