// MultiCloudSession: the fan-out half of the GCS-API middleware.
//
// Owns one CloudClient per provider and a thread pool. The parallel_*
// primitives below are thin adapters over the completion-ordered engine
// (gcsapi/async_batch.h) with the original wait-for-all contract: a batch
// completes when its slowest member does (latency = max), a sequential
// chain sums. Schemes that want first-k / hedged / early-ack aggregation
// build an AsyncBatch directly.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/registry.h"
#include "common/thread_pool.h"
#include "gcsapi/client.h"

namespace hyrd::gcs {

/// One unit of a parallel batch: which client, and what to run on it.
struct BatchPut {
  std::size_t client_index;
  cloud::ObjectKey key;
  common::ByteSpan data;
};

struct BatchGet {
  std::size_t client_index;
  cloud::ObjectKey key;
};

struct BatchRangeGet {
  std::size_t client_index;
  cloud::ObjectKey key;
  std::uint64_t offset;
  std::uint64_t length;
};

struct BatchRangePut {
  std::size_t client_index;
  cloud::ObjectKey key;
  std::uint64_t offset;
  common::ByteSpan data;
};

class MultiCloudSession {
 public:
  MultiCloudSession(cloud::CloudRegistry& registry, RetryPolicy policy = {},
                    std::size_t threads = 8);

  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] CloudClient& client(std::size_t i) { return *clients_[i]; }
  [[nodiscard]] const CloudClient& client(std::size_t i) const {
    return *clients_[i];
  }

  /// Index of the client for a named provider; npos when missing.
  /// O(1): the name → index map is built at construction (the fleet is
  /// immutable afterwards) — erasure reads resolve every fragment slot
  /// through this.
  [[nodiscard]] std::size_t index_of(const std::string& provider_name) const;

  /// The session's worker pool. Schemes use it to overlap client-side
  /// compute (stripe encode, fragment CRCs) with in-flight transfers.
  [[nodiscard]] common::ThreadPool& pool() { return pool_; }

  /// Creates `container` on every provider (idempotent).
  common::Status ensure_container_everywhere(const std::string& container);

  /// Issues all puts concurrently. Returns per-op results in input order;
  /// `batch_latency` (if non-null) receives the max latency.
  std::vector<cloud::OpResult> parallel_put(std::span<const BatchPut> ops,
                                            common::SimDuration* batch_latency);

  /// Issues all gets concurrently; same aggregation contract.
  std::vector<cloud::GetResult> parallel_get(std::span<const BatchGet> ops,
                                             common::SimDuration* batch_latency);

  /// Range variants with the same aggregation contract.
  std::vector<cloud::GetResult> parallel_get_range(
      std::span<const BatchRangeGet> ops, common::SimDuration* batch_latency);
  std::vector<cloud::OpResult> parallel_put_range(
      std::span<const BatchRangePut> ops, common::SimDuration* batch_latency);

  /// Removes the same key from the given clients concurrently.
  std::vector<cloud::OpResult> parallel_remove(
      const std::vector<std::size_t>& client_indices,
      const cloud::ObjectKey& key, common::SimDuration* batch_latency);

 private:
  std::vector<std::unique_ptr<CloudClient>> clients_;
  std::unordered_map<std::string, std::size_t> index_by_name_;
  common::ThreadPool pool_;
};

}  // namespace hyrd::gcs
