#include "gcsapi/session.h"

#include <algorithm>
#include <utility>

#include "gcsapi/async_batch.h"

namespace hyrd::gcs {

MultiCloudSession::MultiCloudSession(cloud::CloudRegistry& registry,
                                     RetryPolicy policy, std::size_t threads)
    : pool_(threads) {
  clients_.reserve(registry.size());
  for (const auto& p : registry.all()) {
    clients_.push_back(std::make_unique<CloudClient>(p.get(), policy));
    index_by_name_.emplace(clients_.back()->provider_name(),
                           clients_.size() - 1);
  }
}

std::size_t MultiCloudSession::index_of(
    const std::string& provider_name) const {
  const auto it = index_by_name_.find(provider_name);
  return it == index_by_name_.end() ? static_cast<std::size_t>(-1)
                                    : it->second;
}

common::Status MultiCloudSession::ensure_container_everywhere(
    const std::string& container) {
  for (auto& c : clients_) {
    auto r = c->ensure_container(container);
    if (!r.ok() &&
        r.status.code() != common::StatusCode::kUnavailable) {
      return r.status;
    }
  }
  return common::Status::ok();
}

namespace {

/// The one submit/aggregate core behind every parallel_* adapter: build a
/// CloudOp per input, run the batch, await all (max-over-arrivals — the
/// legacy contract), and slice results back into input order. ResultT is
/// OpResult for write-side ops and GetResult for reads.
template <typename ResultT, typename Ops, typename MakeOp>
std::vector<ResultT> run_parallel(MultiCloudSession& session, const Ops& ops,
                                  MakeOp&& make,
                                  common::SimDuration* batch_latency) {
  AsyncBatch batch(session);
  for (const auto& op : ops) batch.submit(make(op));
  BatchStats stats;
  auto completions = batch.await_all(&stats);
  std::vector<ResultT> results(completions.size());
  for (auto& c : completions) {
    if constexpr (std::is_same_v<ResultT, cloud::GetResult>) {
      results[c.op_index] = std::move(c.result);
    } else {
      results[c.op_index] =
          static_cast<cloud::OpResult&&>(std::move(c.result));
    }
  }
  if (batch_latency != nullptr) *batch_latency = stats.latency;
  return results;
}

}  // namespace

std::vector<cloud::OpResult> MultiCloudSession::parallel_put(
    std::span<const BatchPut> ops, common::SimDuration* batch_latency) {
  return run_parallel<cloud::OpResult>(
      *this, ops,
      [](const BatchPut& op) {
        return CloudOp::put(op.client_index, op.key, op.data);
      },
      batch_latency);
}

std::vector<cloud::GetResult> MultiCloudSession::parallel_get(
    std::span<const BatchGet> ops, common::SimDuration* batch_latency) {
  return run_parallel<cloud::GetResult>(
      *this, ops,
      [](const BatchGet& op) { return CloudOp::get(op.client_index, op.key); },
      batch_latency);
}

std::vector<cloud::GetResult> MultiCloudSession::parallel_get_range(
    std::span<const BatchRangeGet> ops, common::SimDuration* batch_latency) {
  return run_parallel<cloud::GetResult>(
      *this, ops,
      [](const BatchRangeGet& op) {
        return CloudOp::get_range(op.client_index, op.key, op.offset,
                                  op.length);
      },
      batch_latency);
}

std::vector<cloud::OpResult> MultiCloudSession::parallel_put_range(
    std::span<const BatchRangePut> ops, common::SimDuration* batch_latency) {
  return run_parallel<cloud::OpResult>(
      *this, ops,
      [](const BatchRangePut& op) {
        return CloudOp::put_range(op.client_index, op.key, op.offset, op.data);
      },
      batch_latency);
}

std::vector<cloud::OpResult> MultiCloudSession::parallel_remove(
    const std::vector<std::size_t>& client_indices,
    const cloud::ObjectKey& key, common::SimDuration* batch_latency) {
  return run_parallel<cloud::OpResult>(
      *this, client_indices,
      [&key](std::size_t client) { return CloudOp::remove(client, key); },
      batch_latency);
}

}  // namespace hyrd::gcs
