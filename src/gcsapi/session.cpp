#include "gcsapi/session.h"

#include <algorithm>

namespace hyrd::gcs {

MultiCloudSession::MultiCloudSession(cloud::CloudRegistry& registry,
                                     RetryPolicy policy, std::size_t threads)
    : pool_(threads) {
  clients_.reserve(registry.size());
  for (const auto& p : registry.all()) {
    clients_.push_back(std::make_unique<CloudClient>(p.get(), policy));
    index_by_name_.emplace(clients_.back()->provider_name(),
                           clients_.size() - 1);
  }
}

std::size_t MultiCloudSession::index_of(
    const std::string& provider_name) const {
  const auto it = index_by_name_.find(provider_name);
  return it == index_by_name_.end() ? static_cast<std::size_t>(-1)
                                    : it->second;
}

common::Status MultiCloudSession::ensure_container_everywhere(
    const std::string& container) {
  for (auto& c : clients_) {
    auto r = c->ensure_container(container);
    if (!r.ok() &&
        r.status.code() != common::StatusCode::kUnavailable) {
      return r.status;
    }
  }
  return common::Status::ok();
}

std::vector<cloud::OpResult> MultiCloudSession::parallel_put(
    std::span<const BatchPut> ops, common::SimDuration* batch_latency) {
  std::vector<cloud::OpResult> results(ops.size());
  pool_.parallel_for(ops.size(), [&](std::size_t i) {
    results[i] = clients_[ops[i].client_index]->put(ops[i].key, ops[i].data);
  });
  if (batch_latency != nullptr) {
    common::SimDuration max_lat = 0;
    for (const auto& r : results) max_lat = std::max(max_lat, r.latency);
    *batch_latency = max_lat;
  }
  return results;
}

std::vector<cloud::GetResult> MultiCloudSession::parallel_get(
    std::span<const BatchGet> ops, common::SimDuration* batch_latency) {
  std::vector<cloud::GetResult> results(ops.size());
  pool_.parallel_for(ops.size(), [&](std::size_t i) {
    results[i] = clients_[ops[i].client_index]->get(ops[i].key);
  });
  if (batch_latency != nullptr) {
    common::SimDuration max_lat = 0;
    for (const auto& r : results) max_lat = std::max(max_lat, r.latency);
    *batch_latency = max_lat;
  }
  return results;
}

std::vector<cloud::GetResult> MultiCloudSession::parallel_get_range(
    std::span<const BatchRangeGet> ops, common::SimDuration* batch_latency) {
  std::vector<cloud::GetResult> results(ops.size());
  pool_.parallel_for(ops.size(), [&](std::size_t i) {
    results[i] = clients_[ops[i].client_index]->get_range(
        ops[i].key, ops[i].offset, ops[i].length);
  });
  if (batch_latency != nullptr) {
    common::SimDuration max_lat = 0;
    for (const auto& r : results) max_lat = std::max(max_lat, r.latency);
    *batch_latency = max_lat;
  }
  return results;
}

std::vector<cloud::OpResult> MultiCloudSession::parallel_put_range(
    std::span<const BatchRangePut> ops, common::SimDuration* batch_latency) {
  std::vector<cloud::OpResult> results(ops.size());
  pool_.parallel_for(ops.size(), [&](std::size_t i) {
    results[i] = clients_[ops[i].client_index]->put_range(
        ops[i].key, ops[i].offset, ops[i].data);
  });
  if (batch_latency != nullptr) {
    common::SimDuration max_lat = 0;
    for (const auto& r : results) max_lat = std::max(max_lat, r.latency);
    *batch_latency = max_lat;
  }
  return results;
}

std::vector<cloud::OpResult> MultiCloudSession::parallel_remove(
    const std::vector<std::size_t>& client_indices,
    const cloud::ObjectKey& key, common::SimDuration* batch_latency) {
  std::vector<cloud::OpResult> results(client_indices.size());
  pool_.parallel_for(client_indices.size(), [&](std::size_t i) {
    results[i] = clients_[client_indices[i]]->remove(key);
  });
  if (batch_latency != nullptr) {
    common::SimDuration max_lat = 0;
    for (const auto& r : results) max_lat = std::max(max_lat, r.latency);
    *batch_latency = max_lat;
  }
  return results;
}

}  // namespace hyrd::gcs
