// CloudClient: the per-provider half of the GCS-API middleware.
//
// Every call is encoded to the RESTful wire format, round-tripped through
// the codec (asserting the middleware boundary is lossless), executed
// against the provider, and retried under a RetryPolicy. Latencies of all
// attempts — including backoff — accumulate into the reported latency, in
// virtual time.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "cloud/provider.h"
#include "gcsapi/rest_codec.h"
#include "gcsapi/retry.h"

namespace hyrd::gcs {

/// One completed middleware operation (for audits and debugging).
struct OpTraceEntry {
  std::string provider;
  cloud::OpKind op;
  std::string key;
  std::uint64_t bytes = 0;
  common::SimDuration latency = 0;
  common::StatusCode status = common::StatusCode::kOk;
  int attempts = 1;
};

class CloudClient {
 public:
  CloudClient(cloud::SimProvider* provider, RetryPolicy policy = {});

  [[nodiscard]] const std::string& provider_name() const {
    return provider_->name();
  }
  [[nodiscard]] cloud::SimProvider* provider() const { return provider_; }

  cloud::OpResult create(const std::string& container);
  cloud::OpResult put(const cloud::ObjectKey& key, common::Buffer data);
  cloud::OpResult put(const cloud::ObjectKey& key, common::ByteSpan data) {
    return put(key, common::Buffer::borrow(data));
  }
  cloud::GetResult get(const cloud::ObjectKey& key);
  cloud::OpResult remove(const cloud::ObjectKey& key);
  cloud::ListResult list(const std::string& container);

  /// Range GET (RFC 7233 Range header) / block-overwrite PUT.
  cloud::GetResult get_range(const cloud::ObjectKey& key, std::uint64_t offset,
                             std::uint64_t length);
  cloud::OpResult put_range(const cloud::ObjectKey& key, std::uint64_t offset,
                            common::Buffer data);
  cloud::OpResult put_range(const cloud::ObjectKey& key, std::uint64_t offset,
                            common::ByteSpan data) {
    return put_range(key, offset, common::Buffer::borrow(data));
  }

  /// Creates the container if it does not exist yet (idempotent setup).
  cloud::OpResult ensure_container(const std::string& container);

  /// Most recent operations, newest last (bounded ring).
  [[nodiscard]] std::vector<OpTraceEntry> recent_ops() const;
  void set_trace_capacity(std::size_t n);

 private:
  /// Encodes the request *envelope* -> wire -> decode, asserting round-trip
  /// fidelity, then executes with retries. The payload itself travels by
  /// reference (scatter-gather style: a real client writev()s the body
  /// after the header block, it does not splice it into the header buffer),
  /// so this middleware hop copies zero payload bytes; full body round-trip
  /// fidelity is covered by rest_codec_test. The returned result carries
  /// total latency.
  template <typename ResultT, typename ExecFn>
  ResultT run(cloud::OpKind op, const cloud::ObjectKey& key, ExecFn&& exec);

  void record_trace(OpTraceEntry entry);

  cloud::SimProvider* provider_;
  RetryPolicy policy_;
  mutable std::mutex trace_mu_;
  std::deque<OpTraceEntry> trace_;
  std::size_t trace_capacity_ = 256;
};

}  // namespace hyrd::gcs
