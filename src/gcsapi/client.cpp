#include "gcsapi/client.h"

#include <cassert>
#include <optional>

#include "cloud/cancel.h"
#include "common/checksum.h"
#include "common/virtual_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyrd::gcs {

namespace {

// Retry-loop metrics, registered once. `attempts - ops` is the retry
// amplification the timeline sampler windows over.
struct ClientMetrics {
  obs::Counter ops = obs::MetricsRegistry::global().counter("gcs.ops");
  obs::Counter attempts =
      obs::MetricsRegistry::global().counter("gcs.attempts");
  obs::Counter retries = obs::MetricsRegistry::global().counter("gcs.retries");
  obs::Counter backoff_ns =
      obs::MetricsRegistry::global().counter("gcs.backoff_ns");
};

ClientMetrics& client_metrics() {
  static ClientMetrics m;
  return m;
}

}  // namespace

CloudClient::CloudClient(cloud::SimProvider* provider, RetryPolicy policy)
    : provider_(provider), policy_(policy) {
  assert(provider_ != nullptr);
}

template <typename ResultT, typename ExecFn>
ResultT CloudClient::run(cloud::OpKind op, const cloud::ObjectKey& key,
                         ExecFn&& exec) {
  // Round-trip the envelope through the RESTful boundary: the method, path
  // and headers we execute are what a real HTTP deployment would have
  // decoded on the wire. The payload is attached by reference (see the
  // declaration comment), so no body bytes pass through the codec here.
  const RestRequest encoded = encode_op(op, key, {});
  auto parsed = parse_request(serialize(encoded));
  assert(parsed.is_ok() && "REST serialization must round-trip");
  auto decoded = decode_op(parsed.value());
  assert(decoded.is_ok() && decoded.value().op == op &&
         decoded.value().key == key && "REST op must round-trip");
  (void)decoded;

  // Retry loop. Under a VirtualScope (discrete-event traffic) every attempt
  // past the first re-installs the scope with `now` advanced by everything
  // already charged to the op — attempt latencies plus backoff — so a retry
  // *arrives later* at the provider's fair queue instead of replaying the
  // original virtual instant (which would find the same backlog and be
  // re-throttled forever).
  const std::optional<common::VirtualContext> base =
      common::VirtualScope::snapshot();
  const std::uint64_t decorrelate =
      common::fnv1a(std::string_view(key.str())) ^
      (base ? base->tenant ^ static_cast<std::uint64_t>(base->now) : 0);

  ResultT result;
  common::SimDuration total_latency = 0;
  common::SimDuration backoff_total = 0;
  int attempt = 0;
  for (;;) {
    ++attempt;
    if (base && attempt > 1) {
      common::VirtualScope advanced(
          {base->now + total_latency, base->tenant, base->weight});
      result = exec();
    } else {
      result = exec();
    }
    total_latency += result.latency;
    if (result.ok() || !policy_.retryable(result.status.code()) ||
        attempt >= policy_.max_attempts) {
      break;
    }
    // A cancelled op (AsyncBatch straggler teardown, cancelled event) must
    // not burn backoff budget on a result nobody is waiting for.
    if (cloud::CancelScope::cancelled()) break;
    const common::SimDuration backoff =
        policy_.backoff_before(attempt, decorrelate);
    if (policy_.over_deadline(total_latency, backoff)) break;
    total_latency += backoff;
    backoff_total += backoff;
  }
  result.latency = total_latency;

  client_metrics().ops.inc();
  client_metrics().attempts.add(static_cast<std::uint64_t>(attempt));
  if (attempt > 1) {
    client_metrics().retries.add(static_cast<std::uint64_t>(attempt - 1));
  }
  if (backoff_total > 0) {
    client_metrics().backoff_ns.add(static_cast<std::uint64_t>(backoff_total));
  }
  if (obs::trace_active()) {
    obs::TraceSpan span;
    span.name = cloud::op_kind_name(op).data();  // string_view over a literal
    span.cat = "cloud";
    span.tid = base ? base->tenant : 0;
    span.ts = base ? base->now : 0;
    span.dur = total_latency;
    span.detail = provider_->name();
    span.arg("attempts", attempt)
        .arg("status", static_cast<long long>(result.status.code()))
        .arg("bytes", static_cast<long long>(result.bytes_transferred))
        .arg("backoff_ns", static_cast<long long>(backoff_total));
    obs::emit(std::move(span));
  }

  record_trace({.provider = provider_->name(),
                .op = op,
                .key = key.str(),
                .bytes = result.bytes_transferred,
                .latency = total_latency,
                .status = result.status.code(),
                .attempts = attempt});
  return result;
}

cloud::OpResult CloudClient::create(const std::string& container) {
  const cloud::ObjectKey key{container, ""};
  return run<cloud::OpResult>(cloud::OpKind::kCreate, key,
                              [&] { return provider_->create(container); });
}

cloud::OpResult CloudClient::put(const cloud::ObjectKey& key,
                                 common::Buffer data) {
  return run<cloud::OpResult>(cloud::OpKind::kPut, key,
                              [&] { return provider_->put(key, data); });
}

cloud::GetResult CloudClient::get(const cloud::ObjectKey& key) {
  return run<cloud::GetResult>(cloud::OpKind::kGet, key,
                               [&] { return provider_->get(key); });
}

cloud::OpResult CloudClient::remove(const cloud::ObjectKey& key) {
  return run<cloud::OpResult>(cloud::OpKind::kRemove, key,
                              [&] { return provider_->remove(key); });
}

cloud::ListResult CloudClient::list(const std::string& container) {
  const cloud::ObjectKey key{container, ""};
  return run<cloud::ListResult>(cloud::OpKind::kList, key,
                                [&] { return provider_->list(container); });
}

cloud::GetResult CloudClient::get_range(const cloud::ObjectKey& key,
                                        std::uint64_t offset,
                                        std::uint64_t length) {
  return run<cloud::GetResult>(cloud::OpKind::kGet, key, [&] {
    return provider_->get_range(key, offset, length);
  });
}

cloud::OpResult CloudClient::put_range(const cloud::ObjectKey& key,
                                       std::uint64_t offset,
                                       common::Buffer data) {
  return run<cloud::OpResult>(cloud::OpKind::kPut, key, [&] {
    return provider_->put_range(key, offset, data);
  });
}

cloud::OpResult CloudClient::ensure_container(const std::string& container) {
  cloud::OpResult r = create(container);
  if (r.status.code() == common::StatusCode::kAlreadyExists) {
    r.status = common::Status::ok();
  }
  return r;
}

std::vector<OpTraceEntry> CloudClient::recent_ops() const {
  std::lock_guard lock(trace_mu_);
  return {trace_.begin(), trace_.end()};
}

void CloudClient::set_trace_capacity(std::size_t n) {
  std::lock_guard lock(trace_mu_);
  trace_capacity_ = n;
  while (trace_.size() > trace_capacity_) trace_.pop_front();
}

void CloudClient::record_trace(OpTraceEntry entry) {
  std::lock_guard lock(trace_mu_);
  trace_.push_back(std::move(entry));
  while (trace_.size() > trace_capacity_) trace_.pop_front();
}

}  // namespace hyrd::gcs
