// RESTful wire representation of the five GCS-API functions.
//
// The paper's prototype drives every provider through RESTful APIs over
// RFC 2616 HTTP. We reproduce that boundary faithfully: each GCS-API call
// is encoded as an HTTP/1.1-style message, and the client round-trips every
// operation through this codec before it reaches the simulated provider —
// so the system-level interface is exactly the one a real deployment has.
//
// Mapping (container = URL's first path segment):
//   Create  ->  PUT    /container
//   Put     ->  PUT    /container/name   (body = object bytes)
//   Get     ->  GET    /container/name
//   Remove  ->  DELETE /container/name
//   List    ->  GET    /container?list
#pragma once

#include <map>
#include <string>

#include "cloud/object_store.h"
#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::gcs {

struct RestRequest {
  std::string method;  // GET / PUT / DELETE
  std::string path;    // /container[/name][?list]
  std::map<std::string, std::string> headers;
  common::Bytes body;

  friend bool operator==(const RestRequest&, const RestRequest&) = default;
};

struct RestResponse {
  int status_code = 200;
  std::map<std::string, std::string> headers;
  common::Bytes body;
};

/// Builds the request message for one GCS-API operation.
RestRequest encode_op(cloud::OpKind op, const cloud::ObjectKey& key,
                      common::ByteSpan body);

/// Inverse of encode_op: recovers (op, key) from a request. Fails on
/// malformed method/path combinations.
struct DecodedOp {
  cloud::OpKind op;
  cloud::ObjectKey key;
};
common::Result<DecodedOp> decode_op(const RestRequest& request);

/// Serializes a request to HTTP/1.1 wire text (headers + binary body).
common::Bytes serialize(const RestRequest& request);

/// Parses wire text back into a request. Fails on malformed messages.
common::Result<RestRequest> parse_request(common::ByteSpan wire);

/// Maps a Status onto an HTTP status code and back (provider edge).
int status_to_http(const common::Status& status);
common::Status http_to_status(int code, const std::string& message);

}  // namespace hyrd::gcs
