#include "gcsapi/async_batch.h"

#include <algorithm>
#include <chrono>

#include "cloud/cancel.h"
#include "gcsapi/session.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyrd::gcs {

namespace {

bool default_usable(const CloudCompletion& c) { return c.ok(); }

struct BatchMetrics {
  obs::Counter ops = obs::MetricsRegistry::global().counter("gcs.batch.ops");
  obs::Counter cancelled =
      obs::MetricsRegistry::global().counter("gcs.batch.cancelled");
};

BatchMetrics& batch_metrics() {
  static BatchMetrics m;
  return m;
}

constexpr const char* batch_op_name(CloudOp::Kind kind) {
  switch (kind) {
    case CloudOp::Kind::kPut: return "put";
    case CloudOp::Kind::kGet: return "get";
    case CloudOp::Kind::kGetRange: return "get_range";
    case CloudOp::Kind::kPutRange: return "put_range";
    case CloudOp::Kind::kRemove: return "remove";
  }
  return "?";
}

}  // namespace

AsyncBatch::~AsyncBatch() {
  cancel_remaining();
  std::unique_lock lock(mu_);
  wait_all_resolved(lock);
}

std::size_t AsyncBatch::submit(CloudOp op) {
  std::size_t index;
  {
    std::lock_guard lock(mu_);
    ops_.emplace_back();
    index = ops_.size() - 1;
    ops_.back().op = std::move(op);
  }
  if (sim_ctx_.has_value()) {
    // Discrete-event mode: execute now, on this thread. The op's virtual
    // arrival is already encoded via start_offset, so running it at submit
    // time changes nothing about virtual-time aggregation — it removes the
    // thread handoff, which is what makes a tenant step O(bytes of state)
    // instead of O(pool round trips).
    run_op(index);
  } else {
    session_.pool().submit([this, index] { run_op(index); });
  }
  return index;
}

std::size_t AsyncBatch::submitted() const {
  std::lock_guard lock(mu_);
  return ops_.size();
}

std::size_t AsyncBatch::pending() const {
  std::lock_guard lock(mu_);
  return ops_.size() - resolved_count_;
}

void AsyncBatch::run_op(std::size_t index) {
  OpRec* rec;
  {
    std::lock_guard lock(mu_);
    rec = &ops_[index];  // deque: stable across later submits
  }
  cloud::GetResult result;
  if (rec->cancel.load(std::memory_order_acquire)) {
    // Torn down before dispatch: the request never left the middleware, so
    // the provider sees nothing (no counter, no billing, no latency draw).
    result.status = common::cancelled("torn down before dispatch");
  } else {
    cloud::CancelScope scope(&rec->cancel);
    // In inline mode the provider must see this op's virtual arrival, not
    // the batch epoch: late submissions (failover retries, hedges) reach
    // the congestion queue at epoch + start_offset, exactly when the
    // legacy sum-of-latencies accounting says the request went out.
    std::optional<common::VirtualScope> arrival;
    if (sim_ctx_.has_value()) {
      common::VirtualContext ctx = *sim_ctx_;
      ctx.now += rec->op.start_offset;
      arrival.emplace(ctx);
    }
    CloudClient& client = session_.client(rec->op.client_index);
    switch (rec->op.kind) {
      case CloudOp::Kind::kPut:
        static_cast<cloud::OpResult&>(result) =
            client.put(rec->op.key, rec->op.data);
        break;
      case CloudOp::Kind::kGet:
        result = client.get(rec->op.key);
        break;
      case CloudOp::Kind::kGetRange:
        result = client.get_range(rec->op.key, rec->op.offset, rec->op.length);
        break;
      case CloudOp::Kind::kPutRange:
        static_cast<cloud::OpResult&>(result) =
            client.put_range(rec->op.key, rec->op.offset, rec->op.data);
        break;
      case CloudOp::Kind::kRemove:
        static_cast<cloud::OpResult&>(result) = client.remove(rec->op.key);
        break;
    }
  }
  const bool cancelled =
      result.status.code() == common::StatusCode::kCancelled;
  batch_metrics().ops.inc();
  if (cancelled) batch_metrics().cancelled.inc();
  if (obs::trace_active()) {
    obs::TraceSpan span;
    span.name = batch_op_name(rec->op.kind);
    span.cat = "batch";
    span.tid = sim_ctx_.has_value() ? sim_ctx_->tenant : 0;
    span.ts = (sim_ctx_.has_value() ? sim_ctx_->now : 0) + rec->op.start_offset;
    span.dur = result.latency;
    span.arg("op_index", static_cast<long long>(index))
        .arg("client", static_cast<long long>(rec->op.client_index))
        .arg("cancelled", cancelled ? 1 : 0);
    obs::emit(std::move(span));
  }
  {
    std::lock_guard lock(mu_);
    rec->completion.op_index = index;
    rec->completion.arrival = rec->op.start_offset + result.latency;
    rec->completion.result = std::move(result);
    rec->completion.cancelled = cancelled;
    rec->resolved = true;
    ready_.push_back(index);
    ++resolved_count_;
    // Notify under the lock: once the last op resolves, a waiter (possibly
    // the destructor) may tear the batch down the moment it can re-acquire
    // mu_ — notifying after unlock would touch a condvar that can already
    // be destroyed.
    cv_.notify_all();
  }
}

std::optional<CloudCompletion> AsyncBatch::next() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] {
    return !ready_.empty() || resolved_count_ == ops_.size();
  });
  if (ready_.empty()) return std::nullopt;  // everything delivered
  const std::size_t index = ready_.front();
  ready_.pop_front();
  ops_[index].delivered = true;
  return std::move(ops_[index].completion);
}

std::optional<CloudCompletion> AsyncBatch::next_for(int timeout_ms) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !ready_.empty() || resolved_count_ == ops_.size();
  });
  if (ready_.empty()) return std::nullopt;  // timed out, or all delivered
  const std::size_t index = ready_.front();
  ready_.pop_front();
  ops_[index].delivered = true;
  return std::move(ops_[index].completion);
}

void AsyncBatch::cancel_remaining() {
  std::lock_guard lock(mu_);
  for (auto& rec : ops_) {
    if (!rec.resolved) rec.cancel.store(true, std::memory_order_release);
  }
}

void AsyncBatch::wait_all_resolved(std::unique_lock<std::mutex>& lock) {
  cv_.wait(lock, [&] { return resolved_count_ == ops_.size(); });
}

std::vector<CloudCompletion> AsyncBatch::snapshot_locked() {
  // Payloads are moved out and everything counts as delivered: await_* is
  // terminal for the ops submitted so far, so a later next() only sees ops
  // submitted after it. Trivial fields (arrival, status code, flags)
  // survive the move, so stats stay queryable.
  std::vector<CloudCompletion> out;
  out.reserve(ops_.size());
  for (auto& rec : ops_) {
    rec.delivered = true;
    out.push_back(std::move(rec.completion));
  }
  ready_.clear();
  return out;
}

void AsyncBatch::fill_stats_locked(BatchStats* stats,
                                   common::SimDuration latency) const {
  if (stats == nullptr) return;
  stats->latency = latency;
  stats->completed = resolved_count_;
  stats->max_latency = 0;
  stats->succeeded = 0;
  stats->cancelled = 0;
  for (const auto& rec : ops_) {
    if (rec.completion.cancelled) {
      ++stats->cancelled;
      continue;
    }
    stats->max_latency = std::max(stats->max_latency, rec.completion.arrival);
    if (rec.completion.result.status.is_ok()) ++stats->succeeded;
  }
}

std::vector<CloudCompletion> AsyncBatch::await_all(BatchStats* stats) {
  std::unique_lock lock(mu_);
  wait_all_resolved(lock);
  common::SimDuration latency = 0;
  for (const auto& rec : ops_) {
    if (!rec.completion.cancelled) {
      latency = std::max(latency, rec.completion.arrival);
    }
  }
  fill_stats_locked(stats, latency);
  return snapshot_locked();
}

std::vector<CloudCompletion> AsyncBatch::await_first(std::size_t need,
                                                     BatchStats* stats,
                                                     UsableFn usable) {
  if (!usable) usable = default_usable;
  std::unique_lock lock(mu_);
  const auto usable_count = [&] {
    std::size_t n = 0;
    for (const auto& rec : ops_) {
      if (rec.resolved && usable(rec.completion)) ++n;
    }
    return n;
  };
  cv_.wait(lock, [&] {
    return usable_count() >= need || resolved_count_ == ops_.size();
  });
  // Enough usable responses virtually in hand (or nothing left to wait
  // for): the remaining in-flight tail is pure cost. Tear it down, then
  // drain so no task outlives this call.
  for (auto& rec : ops_) {
    if (!rec.resolved) rec.cancel.store(true, std::memory_order_release);
  }
  wait_all_resolved(lock);

  std::vector<common::SimDuration> arrivals;
  common::SimDuration max_arrival = 0;
  for (const auto& rec : ops_) {
    if (rec.completion.cancelled) continue;
    max_arrival = std::max(max_arrival, rec.completion.arrival);
    if (usable(rec.completion)) arrivals.push_back(rec.completion.arrival);
  }
  common::SimDuration latency = max_arrival;  // fallback: not enough usable
  if (need > 0 && arrivals.size() >= need) {
    std::nth_element(arrivals.begin(), arrivals.begin() + (need - 1),
                     arrivals.end());
    latency = arrivals[need - 1];
  }
  fill_stats_locked(stats, latency);
  return snapshot_locked();
}

std::vector<CloudCompletion> AsyncBatch::await_ack(AckPolicy policy,
                                                   BatchStats* stats,
                                                   std::size_t quorum) {
  // Writes are never torn down: every replica/fragment must land (or fail
  // and be logged) regardless of when the caller is acked.
  std::unique_lock lock(mu_);
  wait_all_resolved(lock);

  std::vector<common::SimDuration> successes;
  common::SimDuration max_arrival = 0;
  for (const auto& rec : ops_) {
    if (rec.completion.cancelled) continue;
    max_arrival = std::max(max_arrival, rec.completion.arrival);
    if (rec.completion.result.status.is_ok()) {
      successes.push_back(rec.completion.arrival);
    }
  }
  std::size_t need = 0;
  switch (policy) {
    case AckPolicy::kAll: need = 0; break;  // 0 = max semantics
    case AckPolicy::kFirstSuccess: need = 1; break;
    case AckPolicy::kQuorum: need = std::max<std::size_t>(quorum, 1); break;
  }
  common::SimDuration latency = max_arrival;
  if (need > 0 && successes.size() >= need) {
    std::nth_element(successes.begin(), successes.begin() + (need - 1),
                     successes.end());
    latency = successes[need - 1];
  }
  fill_stats_locked(stats, latency);
  return snapshot_locked();
}

}  // namespace hyrd::gcs
