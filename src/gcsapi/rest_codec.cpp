#include "gcsapi/rest_codec.h"

#include <charconv>
#include <cstring>

#include "common/copy_meter.h"

namespace hyrd::gcs {

namespace {

constexpr std::string_view kCrlf = "\r\n";

std::string percent_escape(const std::string& s) {
  static constexpr char kDigits[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    const bool safe = std::isalnum(c) || c == '-' || c == '_' || c == '.' ||
                      c == '~';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kDigits[c >> 4]);
      out.push_back(kDigits[c & 0xF]);
    }
  }
  return out;
}

common::Result<std::string> percent_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out.push_back(s[i]);
      continue;
    }
    if (i + 2 >= s.size()) {
      return common::invalid_argument("truncated percent escape");
    }
    auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      return -1;
    };
    const int hi = hex(s[i + 1]);
    const int lo = hex(s[i + 2]);
    if (hi < 0 || lo < 0) {
      return common::invalid_argument("bad percent escape");
    }
    out.push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return out;
}

}  // namespace

RestRequest encode_op(cloud::OpKind op, const cloud::ObjectKey& key,
                      common::ByteSpan body) {
  RestRequest req;
  const std::string container = percent_escape(key.container);
  const std::string name = percent_escape(key.name);
  switch (op) {
    case cloud::OpKind::kCreate:
      req.method = "PUT";
      req.path = "/" + container;
      break;
    case cloud::OpKind::kPut:
      req.method = "PUT";
      req.path = "/" + container + "/" + name;
      common::count_copied_bytes(body.size());
      req.body.assign(body.begin(), body.end());
      break;
    case cloud::OpKind::kGet:
      req.method = "GET";
      req.path = "/" + container + "/" + name;
      break;
    case cloud::OpKind::kRemove:
      req.method = "DELETE";
      req.path = "/" + container + "/" + name;
      break;
    case cloud::OpKind::kList:
      req.method = "GET";
      req.path = "/" + container + "?list";
      break;
  }
  req.headers["Content-Length"] = std::to_string(req.body.size());
  req.headers["Host"] = "gcs-api.local";
  return req;
}

common::Result<DecodedOp> decode_op(const RestRequest& request) {
  if (request.path.empty() || request.path[0] != '/') {
    return common::invalid_argument("path must start with '/'");
  }
  std::string_view path(request.path);
  path.remove_prefix(1);

  bool list_query = false;
  if (const auto q = path.find('?'); q != std::string_view::npos) {
    list_query = path.substr(q + 1) == "list";
    if (!list_query) {
      return common::invalid_argument("unknown query string");
    }
    path = path.substr(0, q);
  }

  const auto slash = path.find('/');
  std::string_view container_esc =
      slash == std::string_view::npos ? path : path.substr(0, slash);
  std::string_view name_esc =
      slash == std::string_view::npos ? std::string_view{} : path.substr(slash + 1);

  auto container = percent_unescape(container_esc);
  if (!container.is_ok()) return container.status();
  auto name = percent_unescape(name_esc);
  if (!name.is_ok()) return name.status();
  if (container.value().empty()) {
    return common::invalid_argument("empty container in path");
  }

  DecodedOp out;
  out.key = {container.value(), name.value()};

  if (request.method == "PUT") {
    out.op = name.value().empty() ? cloud::OpKind::kCreate : cloud::OpKind::kPut;
  } else if (request.method == "GET") {
    if (list_query) {
      out.op = cloud::OpKind::kList;
    } else if (name.value().empty()) {
      return common::invalid_argument("GET on container requires ?list");
    } else {
      out.op = cloud::OpKind::kGet;
    }
  } else if (request.method == "DELETE") {
    if (name.value().empty()) {
      return common::invalid_argument("DELETE requires an object name");
    }
    out.op = cloud::OpKind::kRemove;
  } else {
    return common::invalid_argument("unsupported method: " + request.method);
  }
  return out;
}

common::Bytes serialize(const RestRequest& request) {
  std::string head = request.method + " " + request.path + " HTTP/1.1";
  head += kCrlf;
  for (const auto& [k, v] : request.headers) {
    head += k + ": " + v;
    head += kCrlf;
  }
  head += kCrlf;
  common::Bytes out(head.begin(), head.end());
  common::count_copied_bytes(request.body.size());
  out.insert(out.end(), request.body.begin(), request.body.end());
  return out;
}

common::Result<RestRequest> parse_request(common::ByteSpan wire) {
  const std::string_view text(reinterpret_cast<const char*>(wire.data()),
                              wire.size());
  const auto header_end = text.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return common::invalid_argument("missing header terminator");
  }
  std::string_view head = text.substr(0, header_end);

  RestRequest req;
  std::size_t line_start = 0;
  bool first = true;
  while (line_start <= head.size()) {
    auto line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    std::string_view line = head.substr(line_start, line_end - line_start);
    if (first) {
      const auto sp1 = line.find(' ');
      const auto sp2 = line.rfind(' ');
      if (sp1 == std::string_view::npos || sp2 == sp1) {
        return common::invalid_argument("malformed request line");
      }
      if (line.substr(sp2 + 1) != "HTTP/1.1") {
        return common::invalid_argument("unsupported HTTP version");
      }
      req.method = std::string(line.substr(0, sp1));
      req.path = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      first = false;
    } else if (!line.empty()) {
      const auto colon = line.find(": ");
      if (colon == std::string_view::npos) {
        return common::invalid_argument("malformed header line");
      }
      req.headers[std::string(line.substr(0, colon))] =
          std::string(line.substr(colon + 2));
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }

  const std::size_t body_start = header_end + 4;
  common::count_copied_bytes(wire.size() - body_start);
  req.body.assign(wire.begin() + static_cast<std::ptrdiff_t>(body_start),
                  wire.end());

  // Validate Content-Length if present.
  if (auto it = req.headers.find("Content-Length"); it != req.headers.end()) {
    std::size_t declared = 0;
    const auto& v = it->second;
    auto [p, ec] = std::from_chars(v.data(), v.data() + v.size(), declared);
    if (ec != std::errc{} || p != v.data() + v.size()) {
      return common::invalid_argument("bad Content-Length");
    }
    if (declared != req.body.size()) {
      return common::invalid_argument("Content-Length mismatch");
    }
  }
  return req;
}

int status_to_http(const common::Status& status) {
  switch (status.code()) {
    case common::StatusCode::kOk: return 200;
    case common::StatusCode::kNotFound: return 404;
    case common::StatusCode::kUnavailable: return 503;
    case common::StatusCode::kInvalidArgument: return 400;
    case common::StatusCode::kAlreadyExists: return 409;
    case common::StatusCode::kDataLoss: return 500;
    case common::StatusCode::kFailedPrecondition: return 412;
    case common::StatusCode::kInternal: return 500;
    case common::StatusCode::kCancelled: return 499;  // client closed request
    case common::StatusCode::kResourceExhausted: return 429;  // throttled
  }
  return 500;
}

common::Status http_to_status(int code, const std::string& message) {
  switch (code) {
    case 200: return common::Status::ok();
    case 404: return common::not_found(message);
    case 503: return common::unavailable(message);
    case 400: return common::invalid_argument(message);
    case 409: return common::already_exists(message);
    case 412: return common::failed_precondition(message);
    case 429: return common::resource_exhausted(message);
    case 499: return common::cancelled(message);
    default: return common::internal_error(message);
  }
}

}  // namespace hyrd::gcs
