// AsyncBatch: the completion-ordered async engine under the GCS-API layer.
//
// The legacy `parallel_*` primitives are blocking fan-outs whose virtual
// latency is the max over every member — correct for "wait for all", but a
// redundancy scheme rarely needs all: RS(k,m) reads need the fastest k
// shards, a replicated read needs one good replica, and an early-ack write
// needs the first (or quorum-th) durable copy. AsyncBatch submits each op to
// the session pool individually and lets the caller aggregate by *order
// statistic* instead of max:
//
//   arrival(op) = op.start_offset + result.latency      (virtual time)
//
//   await_all    latency = max arrival over non-cancelled ops (legacy
//                semantics; the `parallel_*` adapters are built on this)
//   await_first  completes once `need` usable ops landed, cancels the
//                stragglers, latency = need-th smallest usable arrival
//   await_ack    write-side: every op still runs to real completion
//                (durability + failure logging preserved); only the *ack*
//                latency is the order statistic chosen by AckPolicy
//
// `start_offset` is the op's virtual submit time relative to the batch
// epoch. Late submissions model sequential failover and phase-2 repair
// rounds: submitting a retry at offset = (failed op's arrival) makes
// max-over-arrivals reproduce the legacy sum-of-latencies chain exactly.
//
// Cancellation is cooperative (see cloud/cancel.h): each op owns a flag the
// pool task installs as a CancelScope; SimProvider aborts at its next check
// and the op resolves with StatusCode::kCancelled, zero latency, and no
// billing. Ops cancelled before dispatch never reach the provider at all.
// The destructor cancels and then joins every outstanding task, so a batch
// never leaks pool work or lets a task outlive the buffers its ops span.
//
// Inline (discrete-event) mode: when the batch is constructed under a
// common::VirtualScope — i.e. the caller is a tenant state machine being
// stepped by the sim/ event loop — submit() executes the op synchronously
// on the calling thread instead of dispatching it to the session pool,
// with the scope re-installed at now + start_offset so SimProvider's
// congestion queue sees the correct virtual arrival. Virtual-time
// aggregation is unchanged (arrivals and order statistics are computed
// identically); what changes is the real-time shape: every await_* and
// next() returns without blocking, so a single OS thread can step through
// millions of tenants' batches deterministically. Two semantic deltas,
// both deliberate: real-stall hedges (next_for) never fire — a
// single-threaded simulation has no wedged threads — and stragglers that
// an await_first would have torn down mid-flight have already completed,
// so they are billed as completed requests rather than cancelled ones.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "cloud/object_store.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/virtual_time.h"

#include <atomic>
#include <condition_variable>

namespace hyrd::gcs {

class MultiCloudSession;

/// When a multi-target write reports completion to its caller.
enum class AckPolicy {
  kAll,           // ack at the slowest target (legacy max; default)
  kFirstSuccess,  // ack at the first durable copy; rest land in background
  kQuorum,        // ack at the quorum-th durable copy (DepSky-style)
};

/// One operation in a batch. Build with the static factories.
struct CloudOp {
  enum class Kind { kPut, kGet, kGetRange, kPutRange, kRemove };

  Kind kind = Kind::kGet;
  std::size_t client_index = 0;
  cloud::ObjectKey key;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  // Puts only. An owning Buffer keeps the payload alive for the batch's
  // lifetime (refbump, zero-copy). The ByteSpan factory overloads wrap a
  // borrow()ed view: that memory must outlive the batch, as before.
  common::Buffer data{};
  common::SimDuration start_offset = 0;

  static CloudOp put(std::size_t client, cloud::ObjectKey key,
                     common::Buffer data, common::SimDuration start = 0) {
    return {Kind::kPut, client, std::move(key), 0, 0, std::move(data), start};
  }
  static CloudOp put(std::size_t client, cloud::ObjectKey key,
                     common::ByteSpan data, common::SimDuration start = 0) {
    return put(client, std::move(key), common::Buffer::borrow(data), start);
  }
  static CloudOp get(std::size_t client, cloud::ObjectKey key,
                     common::SimDuration start = 0) {
    return {Kind::kGet, client, std::move(key), 0, 0, {}, start};
  }
  static CloudOp get_range(std::size_t client, cloud::ObjectKey key,
                           std::uint64_t offset, std::uint64_t length,
                           common::SimDuration start = 0) {
    return {Kind::kGetRange, client, std::move(key), offset, length, {}, start};
  }
  static CloudOp put_range(std::size_t client, cloud::ObjectKey key,
                           std::uint64_t offset, common::Buffer data,
                           common::SimDuration start = 0) {
    return {Kind::kPutRange, client, std::move(key), offset, 0,
            std::move(data), start};
  }
  static CloudOp put_range(std::size_t client, cloud::ObjectKey key,
                           std::uint64_t offset, common::ByteSpan data,
                           common::SimDuration start = 0) {
    return put_range(client, std::move(key), offset,
                     common::Buffer::borrow(data), start);
  }
  static CloudOp remove(std::size_t client, cloud::ObjectKey key,
                        common::SimDuration start = 0) {
    return {Kind::kRemove, client, std::move(key), 0, 0, {}, start};
  }
};

/// A resolved op. `result` is the full GetResult; for non-GET kinds the
/// data member is empty and callers slice the OpResult base.
struct CloudCompletion {
  std::size_t op_index = 0;
  cloud::GetResult result;
  common::SimDuration arrival = 0;  // start_offset + result.latency
  bool cancelled = false;           // torn down (pre- or mid-dispatch)

  [[nodiscard]] bool ok() const { return !cancelled && result.status.is_ok(); }
};

/// Aggregate accounting for one await_* call.
struct BatchStats {
  common::SimDuration latency = 0;      // what the caller is charged
  common::SimDuration max_latency = 0;  // what await_all would have charged
  std::size_t completed = 0;            // ops that resolved (incl. failures)
  std::size_t succeeded = 0;
  std::size_t cancelled = 0;

  /// Virtual time early completion shaved off versus waiting for the tail.
  /// Lower bound: cancelled stragglers never report an arrival at all.
  [[nodiscard]] common::SimDuration saved() const {
    return max_latency > latency ? max_latency - latency : 0;
  }
};

class AsyncBatch {
 public:
  /// Captures the active VirtualScope (if any) as the batch's virtual
  /// epoch: all ops of one batch belong to the client call that created
  /// it, at that call's virtual instant.
  explicit AsyncBatch(MultiCloudSession& session)
      : session_(session), sim_ctx_(common::VirtualScope::snapshot()) {}
  ~AsyncBatch();  // cancels stragglers and joins every task

  /// True when ops run inline on the submitting thread (discrete-event
  /// mode) instead of on the session pool.
  [[nodiscard]] bool inline_mode() const { return sim_ctx_.has_value(); }

  AsyncBatch(const AsyncBatch&) = delete;
  AsyncBatch& operator=(const AsyncBatch&) = delete;

  /// Schedules `op` on the session pool; returns its op_index. Late
  /// submission (after earlier ops resolved, or after cancel_remaining)
  /// is allowed — new ops are not affected by prior cancellations.
  std::size_t submit(CloudOp op);

  [[nodiscard]] std::size_t submitted() const;
  [[nodiscard]] std::size_t pending() const;  // submitted - resolved

  /// Next not-yet-delivered completion in real resolution order; blocks
  /// until one resolves. nullopt when every submitted op was delivered.
  std::optional<CloudCompletion> next();

  /// As next(), but gives up after `timeout_ms` of real (wall-clock) time
  /// — the scheme layer's "is this request *really* stalled?" probe.
  std::optional<CloudCompletion> next_for(int timeout_ms);

  /// Flags every unresolved op cancelled. Undispatched ops resolve
  /// immediately; in-flight ops resolve at the provider's next check.
  void cancel_remaining();

  using UsableFn = std::function<bool(const CloudCompletion&)>;

  /// Waits for all ops. Latency = max arrival over non-cancelled ops
  /// (failures included — identical to the legacy parallel_* contract).
  /// Returns completions indexed by op_index.
  std::vector<CloudCompletion> await_all(BatchStats* stats = nullptr);

  /// Waits until `need` completions satisfying `usable` (default: ok())
  /// have resolved — or everything resolved — then cancels and drains the
  /// stragglers. Latency = need-th smallest usable arrival; falls back to
  /// await_all's max when fewer than `need` usable ops exist.
  std::vector<CloudCompletion> await_first(std::size_t need,
                                           BatchStats* stats = nullptr,
                                           UsableFn usable = {});

  /// Write-side aggregation: every op runs to real completion (durability
  /// and failure logging are never sacrificed); only the *ack* latency is
  /// the policy's order statistic over successful arrivals. kQuorum uses
  /// `quorum` as the rank; kAll is await_all.
  std::vector<CloudCompletion> await_ack(AckPolicy policy,
                                         BatchStats* stats = nullptr,
                                         std::size_t quorum = 0);

 private:
  struct OpRec {
    CloudOp op;
    std::atomic<bool> cancel{false};
    bool resolved = false;
    bool delivered = false;
    CloudCompletion completion;
  };

  void run_op(std::size_t index);
  void wait_all_resolved(std::unique_lock<std::mutex>& lock);
  std::vector<CloudCompletion> snapshot_locked();
  void fill_stats_locked(BatchStats* stats, common::SimDuration latency) const;

  MultiCloudSession& session_;
  const std::optional<common::VirtualContext> sim_ctx_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<OpRec> ops_;  // deque: stable addresses across submit()
  std::deque<std::size_t> ready_;  // resolved, not yet delivered via next()
  std::size_t resolved_count_ = 0;
};

}  // namespace hyrd::gcs
