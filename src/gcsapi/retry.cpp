#include "gcsapi/retry.h"

#include <algorithm>

#include "common/rng.h"

namespace hyrd::gcs {

bool RetryPolicy::retryable(common::StatusCode code) const {
  switch (code) {
    case common::StatusCode::kInternal:
      return true;  // transient server fault: always worth one more try
    case common::StatusCode::kUnavailable:
      return retry_unavailable;
    case common::StatusCode::kResourceExhausted:
      return retry_throttled;
    default:
      // kOk never reaches here; everything else (kNotFound, kInvalidArgument,
      // kAlreadyExists, kDataLoss, kFailedPrecondition, kCancelled) is
      // deterministic — retrying cannot change the outcome.
      return false;
  }
}

common::SimDuration RetryPolicy::backoff_before(
    int attempt, std::uint64_t decorrelate) const {
  if (attempt < 1) attempt = 1;
  double ladder = backoff_ms;
  for (int i = 1; i < attempt; ++i) {
    ladder *= backoff_multiplier;
    if (max_backoff_ms > 0 && ladder >= max_backoff_ms) {
      ladder = max_backoff_ms;
      break;
    }
  }
  if (max_backoff_ms > 0) ladder = std::min(ladder, max_backoff_ms);
  if (jitter_seed != 0) {
    // Full jitter (AWS style): U[0, ladder). Stateless: one SplitMix64 draw
    // from (seed, flow, attempt), so no shared RNG stream exists to race on
    // and same-seed runs reproduce the exact sequence.
    common::SplitMix64 mix(jitter_seed ^
                           (decorrelate * 0x9e3779b97f4a7c15ull) ^
                           (static_cast<std::uint64_t>(attempt) << 56));
    const double u =
        static_cast<double>(mix.next() >> 11) * 0x1.0p-53;  // [0, 1)
    ladder *= u;
  }
  return common::from_ms(ladder);
}

bool RetryPolicy::over_deadline(common::SimDuration spent,
                                common::SimDuration next_backoff) const {
  if (deadline_ms <= 0.0) return false;
  return spent + next_backoff > common::from_ms(deadline_ms);
}

}  // namespace hyrd::gcs
