// RetryPolicy: the client-side failure-response contract of the GCS-API
// middleware.
//
// The paper's availability argument (§III) assumes clients *ride through*
// provider throttling and transient outages rather than surfacing them.
// This policy encodes how: per-status-code retryability (throttle 429s are
// retryable by default; outages opt-in because they are usually long),
// capped exponential backoff with optional seeded full jitter (so a fleet
// of same-phase tenants decorrelates instead of producing synchronized
// retry storms), and a total virtual-time deadline budget.
//
// Determinism: jitter is *stateless* — each backoff is a pure function of
// (jitter_seed, decorrelation key, attempt), so concurrent clients never
// race on a shared RNG stream and a same-seed run reproduces byte-identical
// backoff sequences. jitter_seed == 0 disables jitter entirely, preserving
// the legacy deterministic 50/100/200 ms ladder.
//
// Two consumers:
//   - CloudClient::run (gcsapi/client.cpp): the blocking variant. Backoff
//     accrues as virtual latency; under a common::VirtualScope each attempt
//     re-installs the scope with `now` advanced past the previous attempt's
//     latency + backoff, so a retried request *arrives later* at the
//     provider's fair queue instead of hammering the same virtual instant.
//   - sim::Tenant (sim/tenant.cpp): the non-blocking variant. A failed op
//     schedules the retry as a sim::EventQueue event at now + backoff, so
//     the event loop interleaves other tenants — and failure-injector
//     events (outage ends, brownout recoveries) — between attempts.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/status.h"

namespace hyrd::gcs {

struct RetryPolicy {
  int max_attempts = 3;          // total tries (1 = no retry)
  double backoff_ms = 50.0;      // initial backoff
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 5'000.0;  // exponential ladder cap
  bool retry_unavailable = false;  // outages are usually long; off by default
  bool retry_throttled = true;     // 429s are short by design; on by default
  /// Total virtual-time budget (attempt latencies + backoffs) after which
  /// no further retry is attempted. 0 = unlimited.
  double deadline_ms = 0.0;
  /// Non-zero enables full jitter: backoff ~ U[0, ladder). Mixed with the
  /// caller's decorrelation key so equal-phase flows spread out.
  std::uint64_t jitter_seed = 0;

  [[nodiscard]] static RetryPolicy none() { return {.max_attempts = 1}; }

  /// Whether an attempt that failed with `code` may be retried under this
  /// policy. Attempt counts and the deadline budget are enforced by the
  /// caller; this is pure classification.
  [[nodiscard]] bool retryable(common::StatusCode code) const;

  /// Backoff before attempt `attempt + 1` (i.e. after the `attempt`-th try,
  /// 1-based): the capped exponential ladder, full-jittered when
  /// jitter_seed != 0. `decorrelate` identifies the flow (tenant id, key
  /// hash, virtual arrival — anything that separates same-phase callers).
  [[nodiscard]] common::SimDuration backoff_before(
      int attempt, std::uint64_t decorrelate) const;

  /// True when `spent` (total virtual time already charged to the op)
  /// plus `next_backoff` would exceed the deadline budget.
  [[nodiscard]] bool over_deadline(common::SimDuration spent,
                                   common::SimDuration next_backoff) const;
};

}  // namespace hyrd::gcs
