#include "core/evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/bytes.h"

namespace hyrd::core {

namespace {

std::vector<std::size_t> sorted_indices(
    const std::vector<ProviderEvaluation>& evals,
    double (*key)(const ProviderEvaluation&)) {
  std::vector<std::size_t> order(evals.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return key(evals[a]) < key(evals[b]);
  });
  std::vector<std::size_t> out;
  out.reserve(order.size());
  for (std::size_t i : order) out.push_back(evals[i].client_index);
  return out;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

std::vector<std::size_t> EvaluationReport::performance_order() const {
  return sorted_indices(providers,
                        [](const ProviderEvaluation& e) { return e.mean_read_ms; });
}

std::vector<std::size_t> EvaluationReport::cost_order() const {
  return sorted_indices(providers,
                        [](const ProviderEvaluation& e) { return e.cost_score; });
}

EvaluationReport CostPerfEvaluator::evaluate(
    gcs::MultiCloudSession& session) const {
  EvaluationReport report;
  const common::Bytes payload =
      common::patterned(config_.evaluator_probe_size, /*seed=*/42);

  for (std::size_t i = 0; i < session.client_count(); ++i) {
    auto& client = session.client(i);
    ProviderEvaluation eval;
    eval.provider = client.provider_name();
    eval.client_index = i;

    const auto& prices = client.provider()->config().prices;
    eval.cost_score = prices.storage_gb_month + prices.data_out_gb;

    if (!client.provider()->online()) {
      eval.mean_read_ms = std::numeric_limits<double>::infinity();
      eval.mean_write_ms = std::numeric_limits<double>::infinity();
      report.providers.push_back(std::move(eval));
      continue;
    }

    auto ensure = client.ensure_container(config_.probe_container);
    report.probe_latency += ensure.latency;

    double read_ms = 0.0;
    double write_ms = 0.0;
    std::size_t completed = 0;
    for (std::size_t p = 0; p < config_.evaluator_probes; ++p) {
      const cloud::ObjectKey key{config_.probe_container,
                                 "probe-" + std::to_string(p)};
      auto put = client.put(key, payload);
      report.probe_latency += put.latency;
      if (!put.ok()) continue;
      auto get = client.get(key);
      report.probe_latency += get.latency;
      if (!get.ok()) continue;
      write_ms += common::to_ms(put.latency);
      read_ms += common::to_ms(get.latency);
      ++completed;
      auto rm = client.remove(key);
      report.probe_latency += rm.latency;
    }
    if (completed > 0) {
      eval.mean_read_ms = read_ms / static_cast<double>(completed);
      eval.mean_write_ms = write_ms / static_cast<double>(completed);
    } else {
      eval.mean_read_ms = std::numeric_limits<double>::infinity();
      eval.mean_write_ms = std::numeric_limits<double>::infinity();
    }
    report.providers.push_back(std::move(eval));
  }

  // Categorize against the fleet medians. Performance-oriented: measured
  // read latency at or below the median. Cost-oriented: cheap to *serve*
  // (storage+egress score <= median) or cheap to *store* (Table II's
  // criterion, "storage capacity price is lower" — this is what makes
  // Amazon S3 cost-oriented despite its egress price). A provider can be
  // both (the paper's Aliyun).
  std::vector<double> lat;
  std::vector<double> serve_cost;
  std::vector<double> storage_cost;
  for (std::size_t i = 0; i < report.providers.size(); ++i) {
    const auto& e = report.providers[i];
    if (std::isfinite(e.mean_read_ms)) lat.push_back(e.mean_read_ms);
    serve_cost.push_back(e.cost_score);
    storage_cost.push_back(
        session.client(i).provider()->config().prices.storage_gb_month);
  }
  const double lat_median = median_of(lat);
  const double serve_median = median_of(serve_cost);
  const double storage_median = median_of(storage_cost);
  for (std::size_t i = 0; i < report.providers.size(); ++i) {
    auto& e = report.providers[i];
    const double storage =
        session.client(i).provider()->config().prices.storage_gb_month;
    e.category.performance_oriented = e.mean_read_ms <= lat_median;
    e.category.cost_oriented =
        e.cost_score <= serve_median || storage <= storage_median;
  }
  return report;
}

}  // namespace hyrd::core
