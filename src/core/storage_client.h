// StorageClient: the uniform client-facing API every evaluated scheme
// implements — HyRD and the three baselines (RACS, DuraCloud, single
// cloud). Benchmarks drive all schemes through this interface so their
// latency/cost numbers are directly comparable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/checksum.h"

#include "common/stats.h"
#include "dist/scheme.h"
#include "gcsapi/session.h"
#include "metadata/metadata_store.h"
#include "metadata/update_log.h"

namespace hyrd::core {

/// Per-client operation statistics (virtual milliseconds).
struct ClientStats {
  common::RunningStat put_ms;
  common::RunningStat get_ms;
  common::RunningStat update_ms;
  common::RunningStat remove_ms;
  std::uint64_t degraded_reads = 0;
  std::uint64_t failed_ops = 0;

  [[nodiscard]] double mean_op_ms() const {
    const double n = static_cast<double>(put_ms.count() + get_ms.count() +
                                         update_ms.count() + remove_ms.count());
    if (n == 0) return 0.0;
    return (put_ms.sum() + get_ms.sum() + update_ms.sum() + remove_ms.sum()) / n;
  }
};

class StorageClient {
 public:
  virtual ~StorageClient() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Writes (or overwrites) the file at `path`. The Buffer overload is the
  /// zero-copy entry point: the payload travels by reference all the way to
  /// the stores (schemes slice it, they never duplicate it). The ByteSpan
  /// overload borrows the caller's memory for the (synchronous) call.
  dist::WriteResult put(const std::string& path, common::Buffer data) {
    const std::lock_guard lock(path_write_mu(path));
    return do_put(path, std::move(data));
  }
  dist::WriteResult put(const std::string& path, common::ByteSpan data) {
    const std::lock_guard lock(path_write_mu(path));
    return do_put(path, common::Buffer::borrow(data));
  }

  /// Reads the whole file.
  virtual dist::ReadResult get(const std::string& path) = 0;

  /// In-place update of [offset, offset+data.size()); must not grow the
  /// file. This is the operation whose cost separates replication from
  /// erasure coding (paper §II-B write amplification).
  virtual dist::WriteResult update(const std::string& path,
                                   std::uint64_t offset,
                                   common::ByteSpan data) = 0;

  virtual dist::RemoveResult remove(const std::string& path) = 0;

  // --- Async-issue path (the continuation seam the discrete-event engine
  // drives; see sim/). The contract is completion-ordered, not
  // thread-ordered: `done` receives the finished result exactly once, and
  // the call itself never blocks on wall-clock waits when issued under a
  // common::VirtualScope — every AsyncBatch the schemes build inside
  // detects the scope and runs its ops inline, so the whole operation is
  // one deterministic state-machine step whose cost is CPU work, not
  // thread round trips. Without a scope these are plain synchronous calls
  // with a callback, so non-sim callers can share code with the engine.
  void put_async(const std::string& path, common::Buffer data,
                 std::function<void(dist::WriteResult)> done) {
    dist::WriteResult result;
    {
      const std::lock_guard lock(path_write_mu(path));
      result = do_put(path, std::move(data));
    }
    done(std::move(result));
  }
  void get_async(const std::string& path,
                 std::function<void(dist::ReadResult)> done) {
    done(get(path));
  }
  void remove_async(const std::string& path,
                    std::function<void(dist::RemoveResult)> done) {
    done(remove(path));
  }

  /// Client-side metadata lookup (served from the in-memory store; the
  /// paper loads metadata blocks into client memory before file access).
  [[nodiscard]] virtual std::optional<meta::FileMeta> stat(
      const std::string& path) const = 0;

  [[nodiscard]] virtual std::vector<std::string> list() const = 0;

  /// Notification that a provider finished an outage and is back online;
  /// schemes with update logs run their consistency update now. Returns
  /// the virtual time the resync took.
  virtual common::SimDuration on_provider_restored(
      const std::string& provider) = 0;

  [[nodiscard]] ClientStats stats_snapshot() const;
  void reset_stats();

 protected:
  virtual dist::WriteResult do_put(const std::string& path,
                                   common::Buffer data) = 0;

  /// Overwrites of one path are serialized end-to-end (fragment writes,
  /// metadata upsert, metadata persist). Without this, two concurrent
  /// writers can land on the scheme's replicas in different orders —
  /// object names are path-derived, not versioned — leaving one replica's
  /// bytes disagreeing with the winning metadata CRC, which a later
  /// degraded read (other replicas offline) surfaces as data loss.
  /// Striped so distinct paths keep their write parallelism. Clients with
  /// a sharded MetadataStore override this to fold the stripes into the
  /// keyspace-routed shard layout (one stripe set per shard), so write
  /// ordering and metadata ownership agree on which shard a path lives in.
  [[nodiscard]] virtual std::mutex& path_write_mu(const std::string& path) {
    return path_write_mu_[common::fnv1a(std::string_view(path)) %
                          kPathWriteLocks];
  }

  void note_put(common::SimDuration latency, bool ok);
  void note_get(common::SimDuration latency, bool ok, bool degraded);
  void note_update(common::SimDuration latency, bool ok);
  void note_remove(common::SimDuration latency, bool ok);

 private:
  static constexpr std::size_t kPathWriteLocks = 64;
  std::array<std::mutex, kPathWriteLocks> path_write_mu_;
  mutable std::mutex stats_mu_;
  ClientStats stats_;
};

/// Shared plumbing for concrete clients: session + metadata store +
/// update log + deterministic metadata-block naming.
class StorageClientBase : public StorageClient {
 public:
  [[nodiscard]] std::optional<meta::FileMeta> stat(
      const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list() const override;

  [[nodiscard]] const meta::MetadataStore& metadata() const { return store_; }
  [[nodiscard]] const meta::UpdateLog& update_log() const { return log_; }

  /// Synthetic logical path used in the update log for a directory's
  /// metadata block.
  static std::string meta_block_path(const std::string& dir);
  /// Provider-side object name for a directory's metadata block.
  static std::string meta_block_object_name(const std::string& dir);
  /// True if `path` is a synthetic metadata-block path; returns the dir.
  static std::optional<std::string> parse_meta_block_path(
      const std::string& path);

 protected:
  explicit StorageClientBase(gcs::MultiCloudSession& session)
      : session_(session) {
    log_.bind_keyspace(&store_.keyspace());
  }

  /// Same-path write ordering routed through the store's keyspace: the
  /// stripe lives on the shard that owns the path's directory.
  [[nodiscard]] std::mutex& path_write_mu(const std::string& path) override {
    return store_.write_order_mu(path);
  }

  gcs::MultiCloudSession& session_;
  meta::MetadataStore store_;
  meta::UpdateLog log_;
};

}  // namespace hyrd::core
