// StorageClient: the uniform client-facing API every evaluated scheme
// implements — HyRD and the three baselines (RACS, DuraCloud, single
// cloud). Benchmarks drive all schemes through this interface so their
// latency/cost numbers are directly comparable.
//
// Every public operation is a non-virtual interface (NVI) over the
// scheme's do_* hook. The NVI layer owns two cross-cutting concerns:
//  * same-path write ordering (striped path_write_mu, see below), and
//  * the optional client cache (cache::ClientCache): small replicated
//    PUTs are absorbed into a bounded write-back FIFO and flushed in
//    group-commit batches; GETs consult the dirty set and a segmented-LRU
//    read cache before touching a provider. Disabled (the default) the
//    NVI paths collapse to the pre-cache behavior exactly.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/client_cache.h"
#include "common/checksum.h"

#include "common/stats.h"
#include "dist/scheme.h"
#include "gcsapi/session.h"
#include "metadata/metadata_store.h"
#include "metadata/update_log.h"

namespace hyrd::core {

/// Per-client operation statistics (virtual milliseconds).
struct ClientStats {
  common::RunningStat put_ms;
  common::RunningStat get_ms;
  common::RunningStat update_ms;
  common::RunningStat remove_ms;
  std::uint64_t degraded_reads = 0;
  std::uint64_t failed_ops = 0;

  [[nodiscard]] double mean_op_ms() const {
    const double n = static_cast<double>(put_ms.count() + get_ms.count() +
                                         update_ms.count() + remove_ms.count());
    if (n == 0) return 0.0;
    return (put_ms.sum() + get_ms.sum() + update_ms.sum() + remove_ms.sum()) / n;
  }
};

class StorageClient {
 public:
  virtual ~StorageClient() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Writes (or overwrites) the file at `path`. The Buffer overload is the
  /// zero-copy entry point: the payload travels by reference all the way to
  /// the stores (schemes slice it, they never duplicate it). The ByteSpan
  /// overload borrows the caller's memory for the (synchronous) call.
  /// With the write-back cache active, small writes are absorbed (latency
  /// = 0 unless this write trips a watermark, in which case the group
  /// flush is charged to it — the lazy-fsync stall).
  dist::WriteResult put(const std::string& path, common::Buffer data);
  dist::WriteResult put(const std::string& path, common::ByteSpan data) {
    return put(path, common::Buffer::borrow(data));
  }

  /// Reads the whole file. Dirty (unflushed) paths are served from the
  /// cache by default (they are the newest version) or flushed first when
  /// the flush-on-read coherence rule is configured; clean paths consult
  /// the read cache before the remote scheme.
  dist::ReadResult get(const std::string& path);

  /// In-place update of [offset, offset+data.size()); must not grow the
  /// file. This is the operation whose cost separates replication from
  /// erasure coding (paper §II-B write amplification). A dirty path is
  /// flushed first (updates patch remote state, so the base version must
  /// exist remotely).
  dist::WriteResult update(const std::string& path, std::uint64_t offset,
                           common::ByteSpan data);

  dist::RemoveResult remove(const std::string& path);

  // --- Async-issue path (the continuation seam the discrete-event engine
  // drives; see sim/). The contract is completion-ordered, not
  // thread-ordered: `done` receives the finished result exactly once, and
  // the call itself never blocks on wall-clock waits when issued under a
  // common::VirtualScope — every AsyncBatch the schemes build inside
  // detects the scope and runs its ops inline, so the whole operation is
  // one deterministic state-machine step whose cost is CPU work, not
  // thread round trips. Without a scope these are plain synchronous calls
  // with a callback, so non-sim callers can share code with the engine.
  void put_async(const std::string& path, common::Buffer data,
                 std::function<void(dist::WriteResult)> done) {
    done(put(path, std::move(data)));
  }
  void get_async(const std::string& path,
                 std::function<void(dist::ReadResult)> done) {
    done(get(path));
  }
  void remove_async(const std::string& path,
                    std::function<void(dist::RemoveResult)> done) {
    done(remove(path));
  }

  /// Client-side metadata lookup (served from the in-memory store; the
  /// paper loads metadata blocks into client memory before file access).
  [[nodiscard]] virtual std::optional<meta::FileMeta> stat(
      const std::string& path) const = 0;

  [[nodiscard]] virtual std::vector<std::string> list() const = 0;

  /// Notification that a provider finished an outage and is back online;
  /// schemes with update logs run their consistency update now. Returns
  /// the virtual time the resync took.
  virtual common::SimDuration on_provider_restored(
      const std::string& provider) = 0;

  // --- Client cache control ---

  /// Installs (config.enabled) or removes (!config.enabled) the cache.
  /// Callers must drain (flush_cache) before reconfiguring a live cache;
  /// a dirty entry present at removal is silently dropped.
  void configure_cache(const cache::CacheConfig& config);
  [[nodiscard]] cache::ClientCache* client_cache() { return cache_.get(); }
  [[nodiscard]] const cache::ClientCache* client_cache() const {
    return cache_.get();
  }

  struct CacheDrainReport {
    common::SimDuration latency = 0;   // sum over group-commit rounds
    std::uint64_t flushed_entries = 0;
    std::uint64_t flushed_bytes = 0;
    // Entries that could not be flushed (providers unreachable); they
    // remain dirty — the caller decides to retry later or account them
    // as lost via client_cache()->discard_all_dirty().
    std::uint64_t remaining_entries = 0;
    std::uint64_t remaining_bytes = 0;
  };

  /// Explicit flush/drain: group-commits every dirty entry, one batch at
  /// a time, attempting each entry once. Call before shutdown and before
  /// reading stats that must include all writes.
  CacheDrainReport flush_cache();

  [[nodiscard]] ClientStats stats_snapshot() const;
  void reset_stats();

 protected:
  virtual dist::WriteResult do_put(const std::string& path,
                                   common::Buffer data) = 0;
  virtual dist::ReadResult do_get(const std::string& path) = 0;
  virtual dist::WriteResult do_update(const std::string& path,
                                      std::uint64_t offset,
                                      common::ByteSpan data) = 0;
  virtual dist::RemoveResult do_remove(const std::string& path) = 0;

  /// Writes at or above this size bypass the write-back cache (they are
  /// the scheme's large/erasure traffic). Schemes with a size classifier
  /// override this to keep absorption aligned with classification; the
  /// cache's own max_object_bytes cap applies in addition.
  [[nodiscard]] virtual std::uint64_t write_back_threshold() const {
    return UINT64_MAX;
  }

  /// Read-cache hit notification (data served with zero provider I/O).
  /// `hits` counts lookups since insertion; HyRD drives hot promotion off
  /// it instead of the raw per-path read-count map.
  virtual void on_cache_hit(const std::string& path,
                            const common::Buffer& data, std::uint32_t hits) {
    (void)path;
    (void)data;
    (void)hits;
  }

  /// True when `path` exists remotely (its metadata is known). Lets the
  /// NVI remove() short-circuit removal of a never-flushed object.
  [[nodiscard]] virtual bool has_remote(const std::string& path) const {
    (void)path;
    return true;
  }

  /// Hook for schemes to wire the adaptive-threshold cost model into a
  /// freshly configured cache (see cache::CostModel). Default: none.
  virtual void wire_adaptive(cache::ClientCache& cache) { (void)cache; }

  struct FlushResult {
    common::SimDuration latency = 0;
    std::size_t flushed = 0;
    std::uint64_t flushed_bytes = 0;
    std::vector<cache::DirtyEntry> failed;  // restored to the dirty set
  };

  /// Writes a group of dirty entries out. The caller already holds every
  /// involved path-write stripe. The default issues one do_put per entry
  /// and charges the *slowest* entry's latency: under a VirtualScope all
  /// entries are issued at the same virtual instant, so the batch
  /// overlaps into one round trip — exactly the group-commit model.
  /// Schemes override to batch harder (HyRD: one AsyncBatch for the
  /// whole group per provider, see ReplicationScheme::write_many).
  virtual FlushResult flush_entries(std::vector<cache::DirtyEntry> entries);

  /// Overwrites of one path are serialized end-to-end (fragment writes,
  /// metadata upsert, metadata persist). Without this, two concurrent
  /// writers can land on the scheme's replicas in different orders —
  /// object names are path-derived, not versioned — leaving one replica's
  /// bytes disagreeing with the winning metadata CRC, which a later
  /// degraded read (other replicas offline) surfaces as data loss.
  /// Striped so distinct paths keep their write parallelism. Clients with
  /// a sharded MetadataStore override this to fold the stripes into the
  /// keyspace-routed shard layout (one stripe set per shard), so write
  /// ordering and metadata ownership agree on which shard a path lives in.
  [[nodiscard]] virtual std::mutex& path_write_mu(const std::string& path) {
    return path_write_mu_[common::fnv1a(std::string_view(path)) %
                          kPathWriteLocks];
  }

  void note_put(common::SimDuration latency, bool ok);
  void note_get(common::SimDuration latency, bool ok, bool degraded);
  void note_update(common::SimDuration latency, bool ok);
  void note_remove(common::SimDuration latency, bool ok);

 private:
  [[nodiscard]] bool should_absorb(std::uint64_t size) const;
  dist::WriteResult absorb_put(const std::string& path, common::Buffer data);
  /// Locks the involved stripes in address order, flushes, restores
  /// failures. Returns the flush result.
  FlushResult run_flush_group(std::vector<cache::DirtyEntry> entries,
                              bool forced);
  /// Takes one group from the cache under flush_mu_ and flushes it.
  FlushResult run_flush_group(bool forced);
  /// Coherence flush of a single dirty path (read/update/remove paths).
  common::SimDuration flush_path(const std::string& path);

  static constexpr std::size_t kPathWriteLocks = 64;
  std::array<std::mutex, kPathWriteLocks> path_write_mu_;
  mutable std::mutex stats_mu_;
  ClientStats stats_;
  std::unique_ptr<cache::ClientCache> cache_;
  /// Serializes flush rounds: take-order must equal flush-order so a
  /// path's older incarnation can never land after a newer one.
  std::mutex flush_mu_;
};

/// Shared plumbing for concrete clients: session + metadata store +
/// update log + deterministic metadata-block naming.
class StorageClientBase : public StorageClient {
 public:
  [[nodiscard]] std::optional<meta::FileMeta> stat(
      const std::string& path) const override;
  [[nodiscard]] std::vector<std::string> list() const override;

  [[nodiscard]] const meta::MetadataStore& metadata() const { return store_; }
  [[nodiscard]] const meta::UpdateLog& update_log() const { return log_; }

  /// Synthetic logical path used in the update log for a directory's
  /// metadata block.
  static std::string meta_block_path(const std::string& dir);
  /// Provider-side object name for a directory's metadata block.
  static std::string meta_block_object_name(const std::string& dir);
  /// True if `path` is a synthetic metadata-block path; returns the dir.
  static std::optional<std::string> parse_meta_block_path(
      const std::string& path);

 protected:
  explicit StorageClientBase(gcs::MultiCloudSession& session)
      : session_(session) {
    log_.bind_keyspace(&store_.keyspace());
  }

  /// Same-path write ordering routed through the store's keyspace: the
  /// stripe lives on the shard that owns the path's directory.
  [[nodiscard]] std::mutex& path_write_mu(const std::string& path) override {
    return store_.write_order_mu(path);
  }

  [[nodiscard]] bool has_remote(const std::string& path) const override {
    return store_.lookup(path).has_value();
  }

  gcs::MultiCloudSession& session_;
  meta::MetadataStore store_;
  meta::UpdateLog log_;
};

}  // namespace hyrd::core
