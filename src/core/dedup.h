// Whole-file deduplication index — the paper's first future-work item
// (§VI): "we will apply data deduplication in the HyRD module to eliminate
// the redundant data and reduce the total data transferred over the
// network" (cf. the authors' POD, IPDPS'14).
//
// Design: content-addressed by SHA-256. When a put's digest matches an
// already-stored file, no data moves — the new path aliases the canonical
// file's fragments and only metadata is written. Aliases are broken
// copy-on-write: overwriting or updating an alias gives it private
// fragments first. The index is client-side state (rebuildable by
// re-reading content), exactly where the paper places the dedup engine.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "common/checksum.h"
#include "metadata/file_meta.h"

namespace hyrd::core {

class DedupIndex {
 public:
  struct Stats {
    std::uint64_t unique_files = 0;
    std::uint64_t alias_files = 0;       // current paths sharing content
    std::uint64_t bytes_deduplicated = 0;  // upload bytes avoided so far
  };

  /// Looks up a digest; returns the canonical file's meta if this exact
  /// content is already stored.
  [[nodiscard]] std::optional<meta::FileMeta> find(
      const common::Sha256Digest& digest) const;

  /// Registers `path` as the canonical holder of `digest`.
  void add_canonical(const common::Sha256Digest& digest,
                     const meta::FileMeta& meta);

  /// Registers `path` as an alias of an existing digest; records the
  /// avoided upload volume.
  void add_alias(const common::Sha256Digest& digest, const std::string& path,
                 std::uint64_t bytes_saved);

  /// Unlinks `path` from whatever digest it referenced. Returns true if
  /// the underlying fragments are now unreferenced (caller should delete
  /// them), false if other paths still share them (caller must keep them).
  bool unlink(const std::string& path);

  /// Number of paths (canonical + aliases) referencing `path`'s content.
  [[nodiscard]] std::size_t ref_count(const std::string& path) const;

  /// True if `path` shares fragments with at least one other path.
  [[nodiscard]] bool is_shared(const std::string& path) const {
    return ref_count(path) > 1;
  }

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Entry {
    meta::FileMeta canonical;
    std::set<std::string> paths;  // every path referencing this content
  };

  struct DigestHash {
    std::size_t operator()(const common::Sha256Digest& d) const {
      std::size_t h = 0;
      std::memcpy(&h, d.bytes.data(), sizeof(h));
      return h;
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<common::Sha256Digest, Entry, DigestHash> by_digest_;
  std::unordered_map<std::string, common::Sha256Digest> by_path_;
  std::uint64_t bytes_deduplicated_ = 0;
};

}  // namespace hyrd::core
