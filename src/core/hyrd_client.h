// HyRDClient: the paper's primary contribution, assembled.
//
// Composes the three functional modules of Figure 1 — Workload Monitor,
// Request Dispatcher (the put/get/update/remove logic below), and Cost &
// Performance Evaluator — over the GCS-API middleware:
//
//   * file-system metadata + small files -> replicated (level 2 default)
//     on the measured-fastest, performance-oriented providers;
//   * large files (>= 1 MB threshold)    -> erasure-coded (RAID5 default)
//     with data fragments on the cheapest-to-serve providers and parity on
//     the most expensive slot;
//   * outages -> writes proceed and are logged; reads reconstruct
//     on demand; provider return triggers log-driven consistency update.
#pragma once

#include <unordered_map>

#include "core/config.h"
#include "core/dedup.h"
#include "core/evaluator.h"
#include "core/storage_client.h"
#include "core/workload_monitor.h"
#include "dist/erasure_scheme.h"
#include "dist/recovery.h"
#include "dist/replication.h"

namespace hyrd::core {

class HyRDClient final : public StorageClientBase {
 public:
  /// Creates containers everywhere and runs the evaluator probes (their
  /// virtual time and cost are charged: the paper's Evaluation module
  /// "directly interacts with the individual cloud storage providers").
  HyRDClient(gcs::MultiCloudSession& session, HyRDConfig config = {});

  [[nodiscard]] std::string name() const override { return "HyRD"; }

  dist::WriteResult do_put(const std::string& path,
                           common::Buffer data) override;
  dist::ReadResult do_get(const std::string& path) override;
  dist::WriteResult do_update(const std::string& path, std::uint64_t offset,
                           common::ByteSpan data) override;
  dist::RemoveResult do_remove(const std::string& path) override;
  common::SimDuration on_provider_restored(const std::string& provider) override;

  // --- Introspection (tests, benches, examples) ---
  [[nodiscard]] const HyRDConfig& config() const { return config_; }
  [[nodiscard]] const EvaluationReport& evaluation() const { return eval_; }
  [[nodiscard]] const WorkloadMonitor& monitor() const { return monitor_; }
  [[nodiscard]] const std::vector<std::size_t>& replica_targets() const {
    return replica_targets_;
  }
  [[nodiscard]] const std::vector<std::size_t>& shard_slots() const {
    return shard_slots_;
  }
  [[nodiscard]] bool has_hot_copy(const std::string& path) const;
  [[nodiscard]] const DedupIndex& dedup() const { return dedup_; }

  /// Rebuilds the client-side metadata store from the replicated metadata
  /// blocks in the cloud (client machine loss / restart scenario).
  common::Status rebuild_metadata_from_cloud();

 protected:
  /// Absorption stays aligned with classification: only writes the
  /// dispatcher would replicate are write-back candidates.
  [[nodiscard]] std::uint64_t write_back_threshold() const override {
    return monitor_.threshold();
  }

  /// Group commit: replicated-eligible entries flush through ONE
  /// AsyncBatch (ReplicationScheme::write_many) with one metadata-block
  /// persist per distinct directory; entries needing the full dispatcher
  /// (dedup, redundancy-kind change, hot copies, adaptive reclassification
  /// to large) fall back to do_put.
  FlushResult flush_entries(std::vector<cache::DirtyEntry> entries) override;

  /// Read-cache residency drives hot promotion for erasure-coded files:
  /// the cached bytes are promoted with zero extra read amplification.
  void on_cache_hit(const std::string& path, const common::Buffer& data,
                    std::uint32_t hits) override;

  /// Wires the providers' latency models + storage-overhead factors into
  /// the cache's adaptive-threshold controller.
  void wire_adaptive(cache::ClientCache& cache) override;

 private:
  /// Serializes and replicates `dir`'s metadata block; logs unreachable
  /// replicas. Returns the (parallel) write latency.
  common::SimDuration persist_metadata(const std::string& dir);

  /// Appends kPut log records for fragments of `m` on providers in
  /// `unreachable`.
  void log_unreachable_fragments(const std::vector<std::string>& unreachable,
                                 const std::string& container,
                                 const meta::FileMeta& m);

  void drop_hot_copy(const std::string& path, bool remove_remote);

  /// Dedup-aware put: aliases duplicate content, writes unique content
  /// under content-addressed fragment names.
  dist::WriteResult put_dedup(const std::string& path,
                              const common::Buffer& data,
                              DataClass cls);

  /// Releases `path`'s previous incarnation: unlinks it from the dedup
  /// index and deletes its fragments iff nothing else references them.
  /// Returns the virtual time spent.
  common::SimDuration release_previous(const std::string& path,
                                       const meta::FileMeta& prev);

  HyRDConfig config_;
  DedupIndex dedup_;
  WorkloadMonitor monitor_;
  EvaluationReport eval_;
  dist::ReplicationScheme data_replication_;
  dist::ReplicationScheme meta_replication_;
  dist::ErasureScheme erasure_;
  dist::RecoveryManager recovery_;
  std::vector<std::size_t> replica_targets_;  // perf-ordered, size = level
  std::vector<std::size_t> shard_slots_;      // cost-ordered, size = k+m

  mutable std::mutex hot_mu_;
  std::unordered_map<std::string, meta::FragmentLocation> hot_copies_;
};

}  // namespace hyrd::core
