#include "core/availability.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace hyrd::core {

double k_of_n_availability(std::span<const double> probs, std::size_t k) {
  const std::size_t n = probs.size();
  assert(n <= 24 && "state enumeration limited to small fleets");
  double total = 0.0;
  for (std::uint32_t state = 0; state < (1u << n); ++state) {
    const auto up = static_cast<std::size_t>(std::popcount(state));
    if (up < k) continue;
    double prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      prob *= (state & (1u << i)) ? probs[i] : (1.0 - probs[i]);
    }
    total += prob;
  }
  return total;
}

SchemeAvailability analytic_availability(double p) {
  SchemeAvailability a;
  const std::vector<double> two(2, p);
  const std::vector<double> three(3, p);
  const std::vector<double> four(4, p);
  a.single = p;
  a.duracloud = k_of_n_availability(two, 1);
  a.racs = k_of_n_availability(four, 3);
  a.hyrd_small = k_of_n_availability(two, 1);
  a.hyrd_large = k_of_n_availability(three, 2);
  return a;
}

double nines(double availability) {
  if (availability >= 1.0) return 16.0;  // beyond double resolution
  if (availability <= 0.0) return 0.0;
  return -std::log10(1.0 - availability);
}

AvailabilityMeasurement measure_read_availability(
    cloud::CloudRegistry& registry, StorageClient& client,
    const std::vector<std::string>& paths, double provider_availability,
    std::size_t trials, std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  AvailabilityMeasurement result;
  result.trials = trials;

  for (std::size_t t = 0; t < trials; ++t) {
    for (const auto& p : registry.all()) {
      p->set_online(rng.chance(provider_availability));
    }
    bool all_readable = true;
    for (const auto& path : paths) {
      if (!client.get(path).status.is_ok()) {
        all_readable = false;
        break;
      }
    }
    if (all_readable) ++result.successes;
  }

  for (const auto& p : registry.all()) p->set_online(true);
  return result;
}

}  // namespace hyrd::core
