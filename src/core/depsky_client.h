// DepSkyClient: a simplified DepSky baseline (Bessani et al., EuroSys'11)
// — the fourth related system in the paper's Table I.
//
// DepSky replicates data on every cloud and uses Byzantine quorums: with
// n = 4 clouds and f = 1 tolerated faults, a write completes when
// n - f = 3 clouds acknowledge, and a read is served from any verified
// replica. We model the quorum-latency semantics (a write costs the
// 3rd-fastest acknowledgment, not the slowest) and full 4x replication's
// storage bill; the cryptographic machinery (signatures, secret sharing)
// is out of scope — Table I's axes are redundancy, recovery, performance
// and cost, all of which this model reproduces.
#pragma once

#include "core/storage_client.h"
#include "dist/erasure_scheme.h"
#include "dist/recovery.h"
#include "dist/replication.h"

namespace hyrd::core {

class DepSkyClient final : public StorageClientBase {
 public:
  explicit DepSkyClient(gcs::MultiCloudSession& session,
                        std::size_t faults_tolerated = 1,
                        std::string data_container = "depsky-data");

  [[nodiscard]] std::string name() const override { return "DepSky"; }
  [[nodiscard]] std::size_t quorum() const { return quorum_; }

  dist::WriteResult do_put(const std::string& path,
                           common::Buffer data) override;
  dist::ReadResult do_get(const std::string& path) override;
  dist::WriteResult do_update(const std::string& path, std::uint64_t offset,
                           common::ByteSpan data) override;
  dist::RemoveResult do_remove(const std::string& path) override;
  common::SimDuration on_provider_restored(const std::string& provider) override;

 private:
  dist::WriteResult write_object(const std::string& path,
                                 common::Buffer data);
  common::SimDuration persist_metadata(const std::string& dir);

  std::string container_;
  std::size_t quorum_;
  dist::ReplicationScheme replication_;  // read path + RecoveryManager
  dist::ErasureScheme erasure_;          // RecoveryManager wiring only
  dist::RecoveryManager recovery_;
  std::vector<std::size_t> all_targets_;
};

}  // namespace hyrd::core
