#include "core/nccloud_client.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <set>

#include "common/checksum.h"
#include "common/copy_meter.h"
#include "dist/scheme.h"

namespace hyrd::core {

NCCloudClient::NCCloudClient(gcs::MultiCloudSession& session,
                             std::uint64_t seed, std::string data_container)
    : StorageClientBase(session),
      container_(std::move(data_container)),
      code_(session.client_count(), 2),
      rng_(seed) {
  (void)session_.ensure_container_everywhere(container_);
}

std::string NCCloudClient::chunk_name(const std::string& path,
                                      std::size_t index) const {
  return dist::fragment_object_name(path, 'f', index);
}

dist::WriteResult NCCloudClient::write_object(const std::string& path,
                                              common::Buffer data) {
  dist::WriteResult result;

  erasure::Fmsr::Encoded enc;
  {
    std::lock_guard lock(coeff_mu_);
    enc = code_.encode(data, rng_);
  }

  const std::size_t cpn = code_.chunks_per_node();
  gcs::AsyncBatch batch(session_);
  for (std::size_t c = 0; c < code_.total_chunks(); ++c) {
    batch.submit(gcs::CloudOp::put(c / cpn, {container_, chunk_name(path, c)},
                                   common::ByteSpan(enc.chunks[c])));
  }
  gcs::BatchStats stats;
  auto puts = batch.await_all(&stats);
  result.latency = stats.latency;

  // A node "landed" when all its chunks did; need >= k nodes for the
  // object to be decodable.
  std::size_t landed_nodes = 0;
  for (std::size_t node = 0; node < code_.nodes(); ++node) {
    bool ok = true;
    for (std::size_t c = 0; c < cpn; ++c) {
      ok = ok && puts[node * cpn + c].ok();
    }
    if (ok) ++landed_nodes;
  }
  if (landed_nodes < code_.data_nodes()) {
    result.status = common::unavailable("fewer than k nodes reachable");
    return result;
  }

  meta::FileMeta m;
  m.path = path;
  m.size = data.size();
  m.redundancy = meta::RedundancyKind::kErasure;
  m.crc = enc.object_crc;
  m.stripe_k = static_cast<std::uint32_t>(code_.data_nodes());
  m.stripe_m = static_cast<std::uint32_t>(code_.nodes() - code_.data_nodes());
  m.shard_size = enc.chunk_size;
  for (std::size_t c = 0; c < code_.total_chunks(); ++c) {
    m.locations.push_back(
        {session_.client(c / cpn).provider_name(), chunk_name(path, c)});
    m.fragment_crcs.push_back(common::crc32c(enc.chunks[c]));
    if (!puts[c].ok()) {
      log_.append(session_.client(c / cpn).provider_name(), container_, path,
                  chunk_name(path, c), meta::LogAction::kPut);
    }
  }
  store_.upsert_versioned(m);
  {
    std::lock_guard lock(coeff_mu_);
    coefficients_[path] = enc.coefficients;
  }
  result.status = common::Status::ok();
  result.meta = std::move(m);
  return result;
}

common::SimDuration NCCloudClient::persist_metadata(const std::string& dir) {
  // Metadata blocks are small and latency-critical; NCCloud's proxy keeps
  // them replicated on every cloud.
  const common::Bytes block = store_.serialize_directory(dir);
  const std::string object = meta_block_object_name(dir);
  gcs::AsyncBatch batch(session_);
  for (std::size_t i = 0; i < session_.client_count(); ++i) {
    batch.submit(
        gcs::CloudOp::put(i, {container_, object}, common::ByteSpan(block)));
  }
  gcs::BatchStats stats;
  auto results = batch.await_all(&stats);
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) {
      log_.append(session_.client(i).provider_name(), container_,
                  meta_block_path(dir), object, meta::LogAction::kPut);
    }
  }
  return stats.latency;
}

dist::WriteResult NCCloudClient::do_put(const std::string& path,
                                        common::Buffer data) {
  dist::WriteResult result = write_object(path, std::move(data));
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult NCCloudClient::do_get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }
  erasure::Matrix coeffs;
  {
    std::lock_guard lock(coeff_mu_);
    auto it = coefficients_.find(path);
    if (it == coefficients_.end()) {
      result.status = common::internal_error("missing coefficients for " +
                                             path);
      note_get(0, false, false);
      return result;
    }
    coeffs = it->second;
  }

  // Choose k nodes: online, expected-fastest first; on failure walk
  // through the remaining pairs.
  const std::size_t cpn = code_.chunks_per_node();
  std::vector<std::size_t> nodes(code_.nodes());
  std::iota(nodes.begin(), nodes.end(), 0);
  const auto order = dist::order_by_expected_read_latency(
      session_, nodes, m->shard_size * cpn);

  std::vector<std::size_t> preferred;
  std::vector<std::size_t> fallback;
  for (std::size_t node : order) {
    (session_.client(node).provider()->online() ? preferred : fallback)
        .push_back(node);
    if (!session_.client(node).provider()->online()) result.degraded = true;
  }
  preferred.insert(preferred.end(), fallback.begin(), fallback.end());

  // Try node subsets of size k in preference order (lexicographic over
  // the ranked list — at n=4, k=2 that is at most 6 pairs).
  for (std::size_t a = 0; a < preferred.size(); ++a) {
    for (std::size_t b = a + 1; b < preferred.size(); ++b) {
      const std::vector<std::size_t> pick = {preferred[a], preferred[b]};
      std::vector<gcs::BatchGet> batch;
      std::vector<std::size_t> indices;
      for (std::size_t node : pick) {
        for (std::size_t c = 0; c < cpn; ++c) {
          const std::size_t idx = node * cpn + c;
          batch.push_back({node, {container_, m->locations[idx].object_name}});
          indices.push_back(idx);
        }
      }
      common::SimDuration batch_latency = 0;
      auto gets = session_.parallel_get(batch, &batch_latency);
      result.latency += batch_latency;

      std::vector<common::Bytes> chunks;
      bool ok = true;
      for (std::size_t j = 0; j < gets.size(); ++j) {
        if (!gets[j].ok() ||
            (m->fragment_crcs[indices[j]] != 0 &&
             common::crc32c(gets[j].data) != m->fragment_crcs[indices[j]])) {
          ok = false;
          break;
        }
        chunks.push_back(std::move(gets[j].data).into_bytes());
      }
      if (!ok) {
        result.degraded = true;
        continue;
      }
      auto decoded = code_.decode(coeffs, indices, chunks, m->size, m->crc);
      if (!decoded.is_ok()) {
        result.degraded = true;
        continue;
      }
      result.status = common::Status::ok();
      result.data = common::Buffer::from(std::move(decoded).value());
      note_get(result.latency, true, result.degraded);
      return result;
    }
  }
  result.status = common::data_loss("no decodable node pair for " + path);
  note_get(result.latency, false, true);
  return result;
}

dist::WriteResult NCCloudClient::do_update(const std::string& path,
                                        std::uint64_t offset,
                                        common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  if (!common::range_within(offset, data.size(), m->size)) {
    result.status = common::invalid_argument("update must not grow the file");
    note_update(0, false);
    return result;
  }

  // F-MSR has no partial-update path: read, patch, re-encode everything
  // (Table I: "Low for small updates").
  auto whole = do_get(path);
  if (!whole.status.is_ok()) {
    result.status = whole.status;
    result.latency = whole.latency;
    note_update(result.latency, false);
    return result;
  }
  common::Bytes patched = std::move(whole.data).into_bytes();
  common::count_copied_bytes(data.size());
  std::memcpy(patched.data() + offset, data.data(), data.size());
  result = write_object(path, common::Buffer::from(std::move(patched)));
  result.latency += whole.latency;
  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(m->directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult NCCloudClient::do_remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }
  const std::size_t cpn = code_.chunks_per_node();
  common::SimDuration max_latency = 0;
  for (std::size_t c = 0; c < m->locations.size(); ++c) {
    auto r = session_.client(c / cpn).remove(
        {container_, m->locations[c].object_name});
    max_latency = std::max(max_latency, r.latency);
    if (!r.ok() && r.status.code() == common::StatusCode::kUnavailable) {
      log_.append(m->locations[c].provider, container_, path,
                  m->locations[c].object_name, meta::LogAction::kRemove);
      result.unreachable_providers.push_back(m->locations[c].provider);
    }
  }
  store_.erase(path);
  {
    std::lock_guard lock(coeff_mu_);
    coefficients_.erase(path);
  }
  result.latency = max_latency;
  result.status = common::Status::ok();
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, true);
  return result;
}

common::SimDuration NCCloudClient::on_provider_restored(
    const std::string& provider) {
  const std::size_t node = session_.index_of(provider);
  if (node == static_cast<std::size_t>(-1)) return 0;
  common::SimDuration latency = 0;
  const std::size_t cpn = code_.chunks_per_node();

  const auto pending = log_.pending_for(provider);
  std::uint64_t max_seq = 0;
  // Collect the distinct data paths needing repair; metadata blocks are
  // regenerated directly.
  std::set<std::string> repair_paths;
  for (const auto& rec : pending) {
    max_seq = std::max(max_seq, rec.seq);
    if (auto dir = parse_meta_block_path(rec.path); dir.has_value()) {
      const common::Bytes block = store_.serialize_directory(*dir);
      auto r = session_.client(node).put({container_, rec.object_name},
                                         block);
      latency += r.latency;
      continue;
    }
    if (rec.action == meta::LogAction::kRemove) {
      auto r = session_.client(node).remove({container_, rec.object_name});
      latency += r.latency;
      continue;
    }
    repair_paths.insert(rec.path);
  }

  for (const auto& path : repair_paths) {
    const auto m = store_.lookup(path);
    if (!m.has_value()) continue;  // deleted meanwhile
    erasure::Matrix coeffs;
    {
      std::lock_guard lock(coeff_mu_);
      auto it = coefficients_.find(path);
      if (it == coefficients_.end()) continue;
      coeffs = it->second;
    }

    // Plan the functional repair, download exactly the planned chunks
    // (one per survivor — the NCCloud bandwidth saving), regenerate, push.
    erasure::Fmsr::RepairPlan plan;
    {
      std::lock_guard lock(coeff_mu_);
      auto planned = code_.plan_repair(coeffs, node, rng_);
      if (!planned.is_ok()) continue;
      plan = std::move(planned).value();
    }
    std::vector<gcs::BatchGet> batch;
    for (std::size_t idx : plan.survivor_chunk_indices) {
      batch.push_back(
          {idx / cpn, {container_, m->locations[idx].object_name}});
    }
    common::SimDuration batch_latency = 0;
    auto gets = session_.parallel_get(batch, &batch_latency);
    latency += batch_latency;
    std::vector<common::Bytes> survivor_chunks;
    bool ok = true;
    for (auto& g : gets) {
      if (!g.ok()) {
        ok = false;
        break;
      }
      survivor_chunks.push_back(std::move(g.data).into_bytes());
    }
    if (!ok) continue;

    const auto new_chunks = code_.execute_repair(plan, survivor_chunks);
    meta::FileMeta updated = *m;
    common::SimDuration push_latency = 0;
    for (std::size_t c = 0; c < cpn; ++c) {
      const std::size_t idx = node * cpn + c;
      auto r = session_.client(node).put(
          {container_, m->locations[idx].object_name}, new_chunks[c]);
      push_latency = std::max(push_latency, r.latency);
      updated.fragment_crcs[idx] = common::crc32c(new_chunks[c]);
    }
    latency += push_latency;
    store_.upsert(updated);
    {
      std::lock_guard lock(coeff_mu_);
      coefficients_[path] = plan.new_coefficients;
    }
  }
  log_.truncate(provider, max_seq);
  return latency;
}

}  // namespace hyrd::core
