#include "core/racs_client.h"

#include <cstring>

#include "common/checksum.h"

namespace hyrd::core {

RACSClient::RACSClient(gcs::MultiCloudSession& session,
                       erasure::StripeGeometry geometry,
                       std::string data_container)
    : StorageClientBase(session),
      container_(std::move(data_container)),
      // RACS has no evaluator tracking provider availability; degraded
      // reads discover the outage per request (two-round reconstruction).
      erasure_(container_, geometry, /*outage_aware=*/false),
      replication_(container_),
      recovery_(session, store_, log_, replication_, erasure_) {
  (void)session_.ensure_container_everywhere(container_);
}

std::vector<std::size_t> RACSClient::slots_for(const std::string& path) const {
  const std::size_t n = session_.client_count();
  const std::size_t start =
      static_cast<std::size_t>(common::fnv1a(std::string_view(path))) % n;
  std::vector<std::size_t> out;
  out.reserve(erasure_.geometry().total());
  for (std::size_t i = 0; i < erasure_.geometry().total(); ++i) {
    out.push_back((start + i) % n);
  }
  return out;
}

dist::WriteResult RACSClient::write_object(const std::string& path,
                                           common::Buffer data) {
  const auto prev = store_.lookup(path);
  std::vector<std::string> unreachable;
  // Reuse the previous placement on overwrite so fragments stay put.
  std::vector<std::size_t> slots;
  if (prev.has_value()) {
    for (const auto& loc : prev->locations) {
      slots.push_back(session_.index_of(loc.provider));
    }
  } else {
    slots = slots_for(path);
  }

  dist::WriteResult result =
      erasure_.write(session_, path, std::move(data), slots, &unreachable);
  if (!result.status.is_ok()) return result;

  store_.upsert_versioned(result.meta);
  for (const auto& provider : unreachable) {
    for (const auto& loc : result.meta.locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kPut);
      }
    }
  }
  return result;
}

common::SimDuration RACSClient::persist_metadata(const std::string& dir) {
  // RACS has no small-file special case: the directory block is striped
  // like any other object, through the synthetic-file path so recovery
  // can rebuild its fragments.
  auto r = write_object(meta_block_path(dir),
                        common::Buffer::from(store_.serialize_directory(dir)));
  return r.latency;
}

dist::WriteResult RACSClient::do_put(const std::string& path,
                                     common::Buffer data) {
  dist::WriteResult result = write_object(path, std::move(data));
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult RACSClient::do_get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }
  result = erasure_.read(session_, *m);
  note_get(result.latency, result.status.is_ok(), result.degraded);
  return result;
}

dist::WriteResult RACSClient::do_update(const std::string& path,
                                     std::uint64_t offset,
                                     common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  std::vector<std::string> unreachable;
  result = erasure_.update_range(session_, *m, offset, data, nullptr,
                                 &unreachable);
  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  store_.upsert_versioned(result.meta);
  for (const auto& provider : unreachable) {
    for (const auto& loc : result.meta.locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kPut);
      }
    }
  }
  result.latency += persist_metadata(m->directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult RACSClient::do_remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }
  result = erasure_.remove(session_, *m);
  for (const auto& provider : result.unreachable_providers) {
    for (const auto& loc : m->locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kRemove);
      }
    }
  }
  store_.erase(path);
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, result.status.is_ok());
  return result;
}

common::SimDuration RACSClient::on_provider_restored(
    const std::string& provider) {
  return recovery_.resync(provider).latency;
}

}  // namespace hyrd::core
