// CostPerfEvaluator: HyRD's third functional module (paper §III-B).
//
// Evaluates every cloud provider on two axes — measured access latency
// (by issuing real probe operations through the GCS-API middleware, as the
// paper's Evaluation module does) and published prices (Table II) — then
// categorizes providers as performance-oriented, cost-oriented, or both,
// and hands the Request Dispatcher its placement orders.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/pricing.h"
#include "common/clock.h"
#include "core/config.h"
#include "gcsapi/session.h"

namespace hyrd::core {

struct ProviderEvaluation {
  std::string provider;
  std::size_t client_index = 0;
  double mean_read_ms = 0.0;
  double mean_write_ms = 0.0;
  double cost_score = 0.0;  // $/GB: storage + egress (read-heavy proxy)
  cloud::ProviderCategory category;
};

struct EvaluationReport {
  std::vector<ProviderEvaluation> providers;  // session client order
  common::SimDuration probe_latency = 0;      // virtual time spent probing

  /// Client indices sorted fastest-first (measured read latency).
  [[nodiscard]] std::vector<std::size_t> performance_order() const;
  /// Client indices sorted cheapest-first (cost score).
  [[nodiscard]] std::vector<std::size_t> cost_order() const;
};

class CostPerfEvaluator {
 public:
  explicit CostPerfEvaluator(const HyRDConfig& config) : config_(config) {}

  /// Probes every provider (`evaluator_probes` GET+PUT pairs of
  /// `evaluator_probe_size` bytes on the probe container) and combines the
  /// measurements with the price schedules. Providers currently offline
  /// get +inf latency and fall to the back of the performance order.
  EvaluationReport evaluate(gcs::MultiCloudSession& session) const;

 private:
  HyRDConfig config_;
};

}  // namespace hyrd::core
