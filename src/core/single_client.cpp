#include "core/single_client.h"

#include <cassert>
#include <cstring>

namespace hyrd::core {

SingleCloudClient::SingleCloudClient(gcs::MultiCloudSession& session,
                                     std::string provider,
                                     std::string data_container)
    : StorageClientBase(session),
      provider_(std::move(provider)),
      container_(std::move(data_container)),
      replication_(container_),
      erasure_(container_, {.k = 3, .m = 1}),
      recovery_(session, store_, log_, replication_, erasure_) {
  const std::size_t idx = session_.index_of(provider_);
  assert(idx != static_cast<std::size_t>(-1) && "unknown provider");
  target_ = {idx};
  (void)session_.client(idx).ensure_container(container_);
}

dist::WriteResult SingleCloudClient::write_object(const std::string& path,
                                                  common::Buffer data) {
  dist::WriteResult result =
      replication_.write(session_, path, std::move(data), target_, nullptr);
  if (!result.status.is_ok()) return result;
  store_.upsert_versioned(result.meta);
  return result;
}

common::SimDuration SingleCloudClient::persist_metadata(
    const std::string& dir) {
  auto r = write_object(meta_block_path(dir),
                        common::Buffer::from(store_.serialize_directory(dir)));
  return r.latency;
}

dist::WriteResult SingleCloudClient::do_put(const std::string& path,
                                            common::Buffer data) {
  dist::WriteResult result = write_object(path, std::move(data));
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult SingleCloudClient::do_get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }
  result = replication_.read(session_, *m);
  note_get(result.latency, result.status.is_ok(), result.degraded);
  return result;
}

dist::WriteResult SingleCloudClient::do_update(const std::string& path,
                                            std::uint64_t offset,
                                            common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  if (!common::range_within(offset, data.size(), m->size)) {
    result.status = common::invalid_argument("update must not grow the file");
    note_update(0, false);
    return result;
  }

  if (offset == 0 && data.size() == m->size) {
    result = write_object(path, common::Buffer::borrow(data));
  } else {
    result = replication_.update_range(session_, *m, offset, data, nullptr);
    if (result.status.is_ok()) store_.upsert_versioned(result.meta);
  }
  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(m->directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult SingleCloudClient::do_remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }
  result = replication_.remove(session_, *m);
  store_.erase(path);
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, result.status.is_ok());
  return result;
}

common::SimDuration SingleCloudClient::on_provider_restored(
    const std::string& provider) {
  // With a single copy there is nothing to resync from: writes during the
  // outage failed outright. Replay whatever (empty) log we have.
  return recovery_.resync(provider).latency;
}

}  // namespace hyrd::core
