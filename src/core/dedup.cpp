#include "core/dedup.h"

namespace hyrd::core {

std::optional<meta::FileMeta> DedupIndex::find(
    const common::Sha256Digest& digest) const {
  std::lock_guard lock(mu_);
  auto it = by_digest_.find(digest);
  if (it == by_digest_.end()) return std::nullopt;
  return it->second.canonical;
}

void DedupIndex::add_canonical(const common::Sha256Digest& digest,
                               const meta::FileMeta& meta) {
  std::lock_guard lock(mu_);
  auto& entry = by_digest_[digest];
  entry.canonical = meta;
  entry.paths.insert(meta.path);
  by_path_[meta.path] = digest;
}

void DedupIndex::add_alias(const common::Sha256Digest& digest,
                           const std::string& path,
                           std::uint64_t bytes_saved) {
  std::lock_guard lock(mu_);
  auto it = by_digest_.find(digest);
  if (it == by_digest_.end()) return;
  it->second.paths.insert(path);
  by_path_[path] = digest;
  bytes_deduplicated_ += bytes_saved;
}

bool DedupIndex::unlink(const std::string& path) {
  std::lock_guard lock(mu_);
  auto p = by_path_.find(path);
  if (p == by_path_.end()) return true;  // untracked: caller owns fragments
  auto d = by_digest_.find(p->second);
  by_path_.erase(p);
  if (d == by_digest_.end()) return true;
  d->second.paths.erase(path);
  if (d->second.paths.empty()) {
    by_digest_.erase(d);
    return true;  // last reference gone
  }
  return false;  // still shared
}

std::size_t DedupIndex::ref_count(const std::string& path) const {
  std::lock_guard lock(mu_);
  auto p = by_path_.find(path);
  if (p == by_path_.end()) return 0;
  auto d = by_digest_.find(p->second);
  return d == by_digest_.end() ? 0 : d->second.paths.size();
}

DedupIndex::Stats DedupIndex::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.unique_files = by_digest_.size();
  std::uint64_t refs = 0;
  for (const auto& [digest, entry] : by_digest_) refs += entry.paths.size();
  s.alias_files = refs - by_digest_.size();
  s.bytes_deduplicated = bytes_deduplicated_;
  return s;
}

void DedupIndex::clear() {
  std::lock_guard lock(mu_);
  by_digest_.clear();
  by_path_.clear();
  bytes_deduplicated_ = 0;
}

}  // namespace hyrd::core
