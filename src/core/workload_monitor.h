// WorkloadMonitor: HyRD's first functional module (paper §III-B) —
// classifies incoming writes as file-system metadata, small files, or
// large files, and tracks per-class traffic plus per-file read frequency
// (feeding the hot-large-file promotion of Fig. 2).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/config.h"

namespace hyrd::core {

enum class DataClass : std::uint8_t {
  kMetadata = 0,
  kSmallFile = 1,
  kLargeFile = 2,
};

constexpr std::string_view data_class_name(DataClass c) {
  switch (c) {
    case DataClass::kMetadata: return "metadata";
    case DataClass::kSmallFile: return "small-file";
    case DataClass::kLargeFile: return "large-file";
  }
  return "?";
}

struct ClassStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
};

class WorkloadMonitor {
 public:
  /// `read_tracker_cap` bounds the per-path read-count map: when the map
  /// reaches the cap, all counts are halved and zeroed paths dropped
  /// (cheap decay), then cold survivors evicted until under the cap again.
  explicit WorkloadMonitor(std::uint64_t large_file_threshold,
                           std::size_t read_tracker_cap = 65536)
      : threshold_(large_file_threshold), read_tracker_cap_(read_tracker_cap) {}

  /// threshold_ is a relaxed atomic: classify_file runs on every write
  /// hot path while the adaptive controller calls set_threshold online;
  /// classification only needs *some* recent value, not an ordering.
  [[nodiscard]] std::uint64_t threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }
  void set_threshold(std::uint64_t t) {
    threshold_.store(t, std::memory_order_relaxed);
  }

  /// Classification is by size alone (workload independent, §III-A):
  /// files at or above the threshold are large, the rest small. Metadata
  /// is classified by the caller (it knows what it is writing).
  [[nodiscard]] DataClass classify_file(std::uint64_t size) const {
    return size >= threshold_.load(std::memory_order_relaxed)
               ? DataClass::kLargeFile
               : DataClass::kSmallFile;
  }

  void record_write(DataClass c, std::uint64_t bytes);
  void record_read(DataClass c, std::uint64_t bytes);

  /// Bumps and returns the read count of `path` (promotion heuristic).
  std::uint32_t bump_read_count(const std::string& path);
  void forget(const std::string& path);

  [[nodiscard]] ClassStats stats(DataClass c) const;
  [[nodiscard]] std::size_t read_tracker_size() const;
  [[nodiscard]] std::size_t read_tracker_cap() const {
    return read_tracker_cap_;
  }

 private:
  std::atomic<std::uint64_t> threshold_;
  const std::size_t read_tracker_cap_;
  mutable std::mutex mu_;
  ClassStats per_class_[3];
  std::unordered_map<std::string, std::uint32_t> read_counts_;
};

}  // namespace hyrd::core
