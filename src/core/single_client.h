// SingleCloudClient: everything on one provider, no redundancy — the
// baseline Fig. 6 normalizes against (Amazon S3) and the configuration
// whose outage behaviour motivates the whole paper: when the provider is
// down, the service is simply unavailable.
#pragma once

#include "core/storage_client.h"
#include "dist/erasure_scheme.h"
#include "dist/recovery.h"
#include "dist/replication.h"

namespace hyrd::core {

class SingleCloudClient final : public StorageClientBase {
 public:
  SingleCloudClient(gcs::MultiCloudSession& session, std::string provider,
                    std::string data_container = "single-data");

  [[nodiscard]] std::string name() const override {
    return "Single(" + provider_ + ")";
  }
  [[nodiscard]] const std::string& provider() const { return provider_; }

  /// Engine knobs (see gcsapi/async_batch.h). With a single replica the
  /// hedge can never fire, but the knob keeps fleet setup uniform.
  void set_hedge(dist::HedgePolicy p) { replication_.set_hedge(p); }

  dist::WriteResult do_put(const std::string& path,
                           common::Buffer data) override;
  dist::ReadResult do_get(const std::string& path) override;
  dist::WriteResult do_update(const std::string& path, std::uint64_t offset,
                           common::ByteSpan data) override;
  dist::RemoveResult do_remove(const std::string& path) override;
  common::SimDuration on_provider_restored(const std::string& provider) override;

 private:
  dist::WriteResult write_object(const std::string& path,
                                 common::Buffer data);
  common::SimDuration persist_metadata(const std::string& dir);

  std::string provider_;
  std::string container_;
  dist::ReplicationScheme replication_;  // degenerate level-1 replication
  dist::ErasureScheme erasure_;          // RecoveryManager wiring only
  dist::RecoveryManager recovery_;
  std::vector<std::size_t> target_;
};

}  // namespace hyrd::core
