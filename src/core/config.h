// HyRD configuration knobs (paper §III-C design choices).
#pragma once

#include <cstdint>

#include "dist/erasure_scheme.h"
#include "dist/replication.h"
#include "erasure/striper.h"

namespace hyrd::core {

struct HyRDConfig {
  /// File-size threshold separating small (replicated) from large
  /// (erasure-coded) files. The paper's sensitivity study picks 1 MB.
  std::uint64_t large_file_threshold = 1u << 20;

  /// Replication level for metadata and small files. The paper picks 2:
  /// two concurrent cloud outages are extremely rare, and higher levels
  /// cost space and write latency. Configurable per user requirements.
  std::size_t replication_level = 2;

  /// Erasure geometry for large files. The paper's HyRD places large
  /// files on the *cost-oriented* providers only (S3, Aliyun, Rackspace
  /// in the standard fleet) with RAID5 redundancy — three slots, so
  /// k=2, m=1. (RACS, by contrast, stripes k=3+1 over all four clouds.)
  erasure::StripeGeometry geometry{.k = 2, .m = 1};

  /// Optional Fig. 2 optimization: promote frequently read large files to
  /// a full copy on the fastest performance-oriented provider.
  bool hot_promotion_enabled = false;
  std::uint32_t hot_promotion_reads = 4;  // reads before promotion

  /// Optional §VI future-work extension: whole-file deduplication.
  /// Duplicate content is aliased (metadata-only write, no data moved);
  /// fragments are content-addressed and reference-counted; updates to
  /// shared content are copy-on-write. Off by default — the paper notes
  /// client-side dedup "needs careful design considerations" (it costs a
  /// SHA-256 per write and turns in-place updates into full rewrites).
  bool dedup_enabled = false;

  /// Number of probe operations the Cost & Performance Evaluator issues
  /// per provider when measuring access latency.
  std::size_t evaluator_probes = 5;
  std::uint64_t evaluator_probe_size = 256 * 1024;

  /// Provider-side container names.
  const char* data_container = "hyrd-data";
  const char* meta_container = "hyrd-meta";
  const char* probe_container = "hyrd-probe";

  // --- Completion-ordered I/O engine knobs (gcsapi/async_batch.h) ---
  // Defaults reproduce the synchronous wait-for-all semantics exactly;
  // the aggressive settings trade extra requests / background completion
  // for tail latency, as quantified in EXPERIMENTS.md.

  /// Ack policy for replicated and erasure writes/removes. kAll completes
  /// at the slowest target; early-ack policies report at the first durable
  /// replica (or stripe) while the rest land in the background of the same
  /// call, reconciled through the UpdateLog.
  gcs::AckPolicy write_ack = gcs::AckPolicy::kAll;

  /// Erasure read strategy: kPreferredK bills exactly k GETs per normal
  /// read (the paper's cost model); kFastestK requests all reachable
  /// fragments and completes at the k-th fastest usable one.
  dist::ErasureReadStrategy erasure_read_strategy =
      dist::ErasureReadStrategy::kPreferredK;

  /// Hedged-replica-read policy (conservative by default: hedges fire
  /// only under genuine brownouts or real stalls, never under baseline
  /// jitter, so normal-path request counts are unchanged).
  dist::HedgePolicy hedge{};
};

}  // namespace hyrd::core
