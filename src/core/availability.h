// Storage-availability analysis: the paper's title claim, quantified.
//
// Analytic model: providers fail independently; a configuration is
// available when enough of its fragment holders are up — any 1 of r for
// replication, any k of n for erasure. Exact probabilities come from
// enumerating provider states (fleets are small).
//
// Monte Carlo: the same question asked of the *real* client stack — sample
// provider up/down states, attempt actual reads through a StorageClient,
// and count successes. Agreement between the two validates that the
// implementation's degraded-read machinery delivers the redundancy the
// math promises.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "cloud/registry.h"
#include "core/storage_client.h"

namespace hyrd::core {

/// P[at least k of the slots are up], slots failing independently with
/// per-slot availability probs[i]. Exact, by state enumeration (n <= 24).
double k_of_n_availability(std::span<const double> probs, std::size_t k);

/// Replication over the given replica holders: any 1 of r.
inline double replication_availability(std::span<const double> probs) {
  return k_of_n_availability(probs, 1);
}

/// Analytic read availability of each scheme on the standard fleet, all
/// providers sharing availability `p`.
struct SchemeAvailability {
  double single;          // one provider
  double duracloud;       // 1 of 2
  double racs;            // 3 of 4 (RAID5 over all clouds)
  double hyrd_small;      // 1 of 2 (replicas on perf providers)
  double hyrd_large;      // 2 of 3 (RAID5 over cost-oriented trio)

  /// Access-weighted HyRD availability (the paper: small files take most
  /// accesses).
  [[nodiscard]] double hyrd_overall(double small_access_share) const {
    return small_access_share * hyrd_small +
           (1.0 - small_access_share) * hyrd_large;
  }
};
SchemeAvailability analytic_availability(double p);

/// Converts availability to "nines" (0.999 -> 3.0).
double nines(double availability);

/// Monte Carlo measurement against a live client: for each trial, every
/// provider is up with probability `provider_availability`; the trial
/// succeeds iff every path in `paths` reads back successfully. Providers
/// are restored to online afterwards.
struct AvailabilityMeasurement {
  std::size_t trials = 0;
  std::size_t successes = 0;
  [[nodiscard]] double availability() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};
AvailabilityMeasurement measure_read_availability(
    cloud::CloudRegistry& registry, StorageClient& client,
    const std::vector<std::string>& paths, double provider_availability,
    std::size_t trials, std::uint64_t seed);

}  // namespace hyrd::core
