#include "core/hyrd_client.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>
#include <optional>

#include "common/checksum.h"
#include "common/copy_meter.h"
#include "gcsapi/async_batch.h"

namespace hyrd::core {

HyRDClient::HyRDClient(gcs::MultiCloudSession& session, HyRDConfig config)
    : StorageClientBase(session),
      config_(config),
      monitor_(config.large_file_threshold),
      data_replication_(config.data_container),
      meta_replication_(config.meta_container),
      erasure_(config.data_container, config.geometry),
      recovery_(session, store_, log_, data_replication_, erasure_) {
  // Wire the engine knobs through to the schemes. Defaults reproduce the
  // synchronous wait-for-all semantics; aggressive settings enable
  // first-k erasure reads, hedged replica reads, and early-ack writes.
  data_replication_.set_write_ack(config_.write_ack);
  data_replication_.set_hedge(config_.hedge);
  meta_replication_.set_write_ack(config_.write_ack);
  meta_replication_.set_hedge(config_.hedge);
  erasure_.set_write_ack(config_.write_ack);
  erasure_.set_read_strategy(config_.erasure_read_strategy);

  (void)session_.ensure_container_everywhere(config_.data_container);
  (void)session_.ensure_container_everywhere(config_.meta_container);

  CostPerfEvaluator evaluator(config_);
  eval_ = evaluator.evaluate(session_);

  const auto perf = eval_.performance_order();
  const std::size_t level =
      std::min(config_.replication_level, perf.size());
  replica_targets_.assign(perf.begin(),
                          perf.begin() + static_cast<std::ptrdiff_t>(level));

  // Erasure slots: large files go to the *cost-oriented* providers
  // (Fig. 2), cheapest-to-serve first, so data fragments sit where reads
  // are cheap and parity lands on the most expensive slot. If the
  // geometry needs more slots than there are cost-oriented providers,
  // fall back to the remaining providers in cost order.
  const auto cost = eval_.cost_order();
  std::vector<std::size_t> pool;
  for (std::size_t idx : cost) {
    for (const auto& e : eval_.providers) {
      if (e.client_index == idx && e.category.cost_oriented) {
        pool.push_back(idx);
      }
    }
  }
  for (std::size_t idx : cost) {
    if (std::find(pool.begin(), pool.end(), idx) == pool.end()) {
      pool.push_back(idx);
    }
  }
  const std::size_t slots = std::min(config_.geometry.total(), pool.size());
  shard_slots_.assign(pool.begin(),
                      pool.begin() + static_cast<std::ptrdiff_t>(slots));
  assert(shard_slots_.size() == config_.geometry.total() &&
         "need at least k+m providers for the configured geometry");

  recovery_.set_block_regenerator(
      [this](const std::string& path) -> std::optional<common::Bytes> {
        auto dir = parse_meta_block_path(path);
        if (!dir.has_value()) return std::nullopt;
        return store_.serialize_directory(*dir);
      });
}

common::SimDuration HyRDClient::persist_metadata(const std::string& dir) {
  const common::Bytes block = store_.serialize_directory(dir);
  const std::string object = meta_block_object_name(dir);
  monitor_.record_write(DataClass::kMetadata, block.size());

  // Metadata replicas honor the configured ack policy; every put still
  // runs to completion here, so a failure behind an early ack is logged
  // exactly as it would be under wait-for-all.
  gcs::AsyncBatch batch(session_);
  for (std::size_t target : replica_targets_) {
    batch.submit(gcs::CloudOp::put(target, {config_.meta_container, object},
                                   common::ByteSpan(block)));
  }
  gcs::BatchStats stats;
  auto completions =
      config_.write_ack == gcs::AckPolicy::kAll
          ? batch.await_all(&stats)
          : batch.await_ack(config_.write_ack, &stats,
                            replica_targets_.size() / 2 + 1);
  for (const auto& c : completions) {
    if (!c.ok()) {
      log_.append(
          session_.client(replica_targets_[c.op_index]).provider_name(),
          config_.meta_container, meta_block_path(dir), object,
          meta::LogAction::kPut);
    }
  }
  return stats.latency;
}

void HyRDClient::log_unreachable_fragments(
    const std::vector<std::string>& unreachable, const std::string& container,
    const meta::FileMeta& m) {
  for (const auto& provider : unreachable) {
    for (const auto& loc : m.locations) {
      if (loc.provider == provider) {
        log_.append(provider, container, m.path, loc.object_name,
                    meta::LogAction::kPut);
      }
    }
  }
}

void HyRDClient::drop_hot_copy(const std::string& path, bool remove_remote) {
  meta::FragmentLocation loc;
  {
    std::lock_guard lock(hot_mu_);
    auto it = hot_copies_.find(path);
    if (it == hot_copies_.end()) return;
    loc = it->second;
    hot_copies_.erase(it);
  }
  if (remove_remote) {
    const std::size_t idx = session_.index_of(loc.provider);
    if (idx != static_cast<std::size_t>(-1)) {
      (void)session_.client(idx).remove(
          {config_.data_container, loc.object_name});
    }
  }
  monitor_.forget(path);
}

bool HyRDClient::has_hot_copy(const std::string& path) const {
  std::lock_guard lock(hot_mu_);
  return hot_copies_.contains(path);
}

common::SimDuration HyRDClient::release_previous(const std::string& path,
                                                 const meta::FileMeta& prev) {
  common::SimDuration latency = 0;
  const bool last_ref = dedup_.unlink(path);
  if (last_ref) {
    auto rm = prev.redundancy == meta::RedundancyKind::kReplicated
                  ? data_replication_.remove(session_, prev)
                  : erasure_.remove(session_, prev);
    latency += rm.latency;
    for (const auto& provider : rm.unreachable_providers) {
      for (const auto& loc : prev.locations) {
        if (loc.provider == provider) {
          log_.append(provider, config_.data_container, prev.path,
                      loc.object_name, meta::LogAction::kRemove);
        }
      }
    }
  }
  drop_hot_copy(path, /*remove_remote=*/last_ref);
  return latency;
}

dist::WriteResult HyRDClient::put_dedup(const std::string& path,
                                        const common::Buffer& data,
                                        DataClass cls) {
  const auto digest = common::Sha256::digest(data);
  const auto prev = store_.lookup(path);
  dist::WriteResult result;

  const auto canonical = dedup_.find(digest);
  if (canonical.has_value() && canonical->size == data.size()) {
    // Duplicate content: alias the existing fragments; only metadata moves.
    meta::FileMeta alias = *canonical;
    alias.path = path;
    if (prev.has_value()) result.latency += release_previous(path, *prev);
    store_.upsert_versioned(alias);
    dedup_.add_alias(digest, path, data.size());
    result.status = common::Status::ok();
    result.meta = std::move(alias);
    result.latency += persist_metadata(result.meta.directory());
    return result;
  }

  // Unique content: write fragments under content-addressed names so
  // future aliases can share them and overwrites never clobber shared
  // fragments.
  const std::string cas_path = "cas:" + digest.hex();
  std::vector<std::string> unreachable;
  if (cls == DataClass::kSmallFile) {
    result = data_replication_.write(session_, cas_path, data,
                                     replica_targets_, &unreachable);
  } else {
    result = erasure_.write(session_, cas_path, data, shard_slots_,
                            &unreachable);
  }
  if (!result.status.is_ok()) return result;
  result.meta.path = path;
  if (prev.has_value()) result.latency += release_previous(path, *prev);
  store_.upsert_versioned(result.meta);
  log_unreachable_fragments(unreachable, config_.data_container, result.meta);
  dedup_.add_canonical(digest, result.meta);
  result.latency += persist_metadata(result.meta.directory());
  return result;
}

dist::WriteResult HyRDClient::do_put(const std::string& path,
                                     common::Buffer data) {
  const DataClass cls = monitor_.classify_file(data.size());
  monitor_.record_write(cls, data.size());
  if (config_.dedup_enabled) {
    auto result = put_dedup(path, data, cls);
    note_put(result.latency, result.status.is_ok());
    return result;
  }
  const auto prev = store_.lookup(path);

  std::vector<std::string> unreachable;
  dist::WriteResult result;
  if (cls == DataClass::kSmallFile) {
    result = data_replication_.write(session_, path, std::move(data),
                                     replica_targets_, &unreachable);
  } else {
    result = erasure_.write(session_, path, std::move(data), shard_slots_,
                            &unreachable);
  }
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }

  // A file that crossed the size threshold changes redundancy kind; the
  // old fragments use a different name suffix and must be removed.
  if (prev.has_value() && prev->redundancy != result.meta.redundancy) {
    auto rm = prev->redundancy == meta::RedundancyKind::kReplicated
                  ? data_replication_.remove(session_, *prev)
                  : erasure_.remove(session_, *prev);
    result.latency += rm.latency;
    for (const auto& provider : rm.unreachable_providers) {
      for (const auto& loc : prev->locations) {
        if (loc.provider == provider) {
          log_.append(provider, config_.data_container, prev->path,
                      loc.object_name, meta::LogAction::kRemove);
        }
      }
    }
  }

  store_.upsert_versioned(result.meta);
  log_unreachable_fragments(unreachable, config_.data_container, result.meta);
  drop_hot_copy(path, /*remove_remote=*/true);

  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult HyRDClient::do_get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }

  if (m->redundancy == meta::RedundancyKind::kReplicated) {
    monitor_.record_read(DataClass::kSmallFile, m->size);
    result = data_replication_.read(session_, *m);
    note_get(result.latency, result.status.is_ok(), result.degraded);
    return result;
  }

  monitor_.record_read(DataClass::kLargeFile, m->size);

  // Hot-copy fast path (Fig. 2): frequently read large files may also
  // live fully on a performance-oriented provider. The dispatcher serves
  // from the hot copy only when that is expected to beat the stripe —
  // always the case when a data-slot provider is in outage (the stripe
  // would need reconstruction), sometimes the case for latency alone.
  // Snapshot the hot-copy record under the lock, then drop it: the latency
  // scan and (especially) the remote get must not serialize other clients'
  // hot-copy bookkeeping behind this read's cloud I/O.
  std::optional<meta::FragmentLocation> hot;
  {
    std::lock_guard lock(hot_mu_);
    auto it = hot_copies_.find(path);
    if (it != hot_copies_.end()) hot = it->second;
  }
  if (hot.has_value()) {
    const std::size_t idx = session_.index_of(hot->provider);
    bool use_hot = idx != static_cast<std::size_t>(-1) &&
                   session_.client(idx).provider()->online();
    if (use_hot) {
      // Expected stripe latency over the k fragments the read would
      // actually fetch (online slots, data first, parity filling in for
      // degraded slots) — compared with a full-size hot-copy read.
      std::size_t online_slots = 0;
      common::SimDuration stripe_expected = 0;
      for (std::size_t i = 0;
           i < m->locations.size() && online_slots < m->stripe_k; ++i) {
        const std::size_t slot = session_.index_of(m->locations[i].provider);
        if (slot == static_cast<std::size_t>(-1) ||
            !session_.client(slot).provider()->online()) {
          continue;
        }
        ++online_slots;
        stripe_expected = std::max(
            stripe_expected,
            session_.client(slot).provider()->latency_model().expected(
                cloud::OpKind::kGet, m->shard_size));
      }
      const bool stripe_unreachable = online_slots < m->stripe_k;
      const common::SimDuration hot_expected =
          session_.client(idx).provider()->latency_model().expected(
              cloud::OpKind::kGet, m->size);
      use_hot = stripe_unreachable || hot_expected < stripe_expected;
    }
    if (use_hot) {
      auto get = session_.client(idx).get(
          {config_.data_container, hot->object_name});
      if (get.ok() && common::crc32c(get.data) == m->crc) {
        result.status = common::Status::ok();
        result.latency = get.latency;
        result.data = std::move(get.data);
        note_get(result.latency, true, false);
        return result;
      }
      // Hot copy unreachable or stale: fall through to the stripe.
      result.latency += get.latency;
    }
  }

  auto stripe_read = erasure_.read(session_, *m);
  stripe_read.latency += result.latency;
  result = std::move(stripe_read);

  if (result.status.is_ok() && config_.hot_promotion_enabled) {
    const std::uint32_t reads = monitor_.bump_read_count(path);
    if (reads >= config_.hot_promotion_reads && !has_hot_copy(path) &&
        !replica_targets_.empty()) {
      // Background promotion: not charged to this read's latency.
      const std::size_t target = replica_targets_.front();
      const std::string object = dist::fragment_object_name(path, 'h', 0);
      auto putr = session_.client(target).put(
          {config_.data_container, object}, result.data);
      if (putr.ok()) {
        std::lock_guard lock(hot_mu_);
        hot_copies_[path] = {session_.client(target).provider_name(), object};
      }
    }
  }

  note_get(result.latency, result.status.is_ok(), result.degraded);
  return result;
}

dist::WriteResult HyRDClient::do_update(const std::string& path,
                                     std::uint64_t offset,
                                     common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  if (!common::range_within(offset, data.size(), m->size)) {
    result.status = common::invalid_argument("update must not grow the file");
    note_update(0, false);
    return result;
  }

  if (config_.dedup_enabled) {
    // Copy-on-write: dedup must hash the full new content, and shared
    // fragments may never be patched in place. This is the cost the paper
    // warns about ("applying data deduplication in HyRD is not easy").
    dist::ReadResult whole =
        m->redundancy == meta::RedundancyKind::kReplicated
            ? data_replication_.read(session_, *m)
            : erasure_.read(session_, *m);
    if (!whole.status.is_ok()) {
      result.status = whole.status;
      result.latency = whole.latency;
      note_update(result.latency, false);
      return result;
    }
    common::Bytes patched = std::move(whole.data).into_bytes();
    common::count_copied_bytes(data.size());
    std::memcpy(patched.data() + offset, data.data(), data.size());
    monitor_.record_write(monitor_.classify_file(patched.size()), data.size());
    const common::Buffer next = common::Buffer::from(std::move(patched));
    result = put_dedup(path, next, monitor_.classify_file(next.size()));
    result.latency += whole.latency;
    note_update(result.latency, result.status.is_ok());
    return result;
  }

  std::vector<std::string> unreachable;
  if (m->redundancy == meta::RedundancyKind::kReplicated) {
    monitor_.record_write(DataClass::kSmallFile, data.size());
    if (offset == 0 && data.size() == m->size) {
      // Whole-file overwrite: replication needs no read at all.
      result = data_replication_.write(session_, path, data, replica_targets_,
                                       &unreachable);
    } else {
      // Partial update under replication: block writes only, zero reads
      // (the paper's §II-B contrast with erasure coding's 2R+2W).
      result = data_replication_.update_range(session_, *m, offset, data,
                                              &unreachable);
    }
  } else {
    monitor_.record_write(DataClass::kLargeFile, data.size());
    result = erasure_.update_range(session_, *m, offset, data, nullptr,
                                   &unreachable);
  }

  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  store_.upsert_versioned(result.meta);
  log_unreachable_fragments(unreachable, config_.data_container, result.meta);
  drop_hot_copy(path, /*remove_remote=*/true);
  result.latency += persist_metadata(result.meta.directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult HyRDClient::do_remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }

  // Under dedup, fragments are deleted only when the last path
  // referencing the content goes away.
  const bool delete_fragments =
      !config_.dedup_enabled || dedup_.unlink(path);
  if (delete_fragments) {
    result = m->redundancy == meta::RedundancyKind::kReplicated
                 ? data_replication_.remove(session_, *m)
                 : erasure_.remove(session_, *m);
    for (const auto& provider : result.unreachable_providers) {
      for (const auto& loc : m->locations) {
        if (loc.provider == provider) {
          log_.append(provider, config_.data_container, path, loc.object_name,
                      meta::LogAction::kRemove);
        }
      }
    }
  } else {
    result.status = common::Status::ok();
  }
  store_.erase(path);
  drop_hot_copy(path, /*remove_remote=*/delete_fragments);
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, result.status.is_ok());
  return result;
}

StorageClient::FlushResult HyRDClient::flush_entries(
    std::vector<cache::DirtyEntry> entries) {
  FlushResult out;
  // Partition: the common case (plain replicated small write, no dedup,
  // no redundancy-kind change, no hot copy) batches into one group
  // commit; everything else takes the full dispatcher per entry.
  std::vector<cache::DirtyEntry> fallback;
  std::vector<dist::ReplicationScheme::GroupWrite> group;
  std::vector<cache::DirtyEntry> group_entries;
  for (auto& e : entries) {
    const bool small =
        monitor_.classify_file(e.data.size()) == DataClass::kSmallFile;
    const auto prev = store_.lookup(e.path);
    const bool kind_change =
        prev.has_value() &&
        prev->redundancy != meta::RedundancyKind::kReplicated;
    if (config_.dedup_enabled || !small || kind_change ||
        has_hot_copy(e.path)) {
      fallback.push_back(std::move(e));
      continue;
    }
    monitor_.record_write(DataClass::kSmallFile, e.data.size());
    group.push_back({e.path, e.data});  // refbump; entry kept for restore
    group_entries.push_back(std::move(e));
  }

  if (!group.empty()) {
    auto results = data_replication_.write_many(session_, std::move(group),
                                                replica_targets_);
    std::set<std::string> dirs;  // sorted: deterministic persist order
    for (std::size_t i = 0; i < results.size(); ++i) {
      auto& r = results[i].result;
      if (r.status.is_ok()) {
        store_.upsert_versioned(r.meta);
        log_unreachable_fragments(results[i].unreachable,
                                  config_.data_container, r.meta);
        dirs.insert(r.meta.directory());
        ++out.flushed;
        out.flushed_bytes += group_entries[i].data.size();
        out.latency = std::max(out.latency, r.latency);
        note_put(r.latency, true);
      } else {
        note_put(r.latency, false);
        out.failed.push_back(std::move(group_entries[i]));
      }
    }
    // One metadata-block persist per distinct directory for the whole
    // group — the second half of the group-commit saving (N absorbed
    // writes to one directory pay one replicated block write, not N).
    common::SimDuration meta_latency = 0;
    for (const auto& dir : dirs) {
      meta_latency = std::max(meta_latency, persist_metadata(dir));
    }
    out.latency += meta_latency;
  }

  if (!fallback.empty()) {
    auto fb = StorageClient::flush_entries(std::move(fallback));
    out.latency = std::max(out.latency, fb.latency);
    out.flushed += fb.flushed;
    out.flushed_bytes += fb.flushed_bytes;
    for (auto& e : fb.failed) out.failed.push_back(std::move(e));
  }
  return out;
}

void HyRDClient::on_cache_hit(const std::string& path,
                              const common::Buffer& data,
                              std::uint32_t hits) {
  if (!config_.hot_promotion_enabled || replica_targets_.empty()) return;
  const auto m = store_.lookup(path);
  if (!m.has_value() || m->redundancy != meta::RedundancyKind::kErasure) {
    return;
  }
  monitor_.record_read(DataClass::kLargeFile, m->size);
  if (hits < config_.hot_promotion_reads || has_hot_copy(path)) return;
  // Promote from the cached bytes: unlike the stripe-read promotion in
  // do_get, this costs zero extra read amplification. Background write,
  // not charged to the serving read.
  const std::size_t target = replica_targets_.front();
  const std::string object = dist::fragment_object_name(path, 'h', 0);
  auto putr =
      session_.client(target).put({config_.data_container, object}, data);
  if (putr.ok()) {
    std::lock_guard lock(hot_mu_);
    hot_copies_[path] = {session_.client(target).provider_name(), object};
  }
}

void HyRDClient::wire_adaptive(cache::ClientCache& cache) {
  if (!cache.config().adaptive.enabled) return;
  const double space_weight = cache.config().adaptive.space_weight;
  // Read/write mix observed so far (defaults to write-only): the modeled
  // per-object cost is one write plus `mix` reads.
  const auto read_mix = [this]() -> double {
    const auto small = monitor_.stats(DataClass::kSmallFile);
    const auto large = monitor_.stats(DataClass::kLargeFile);
    const std::uint64_t writes = small.writes + large.writes;
    const std::uint64_t reads = small.reads + large.reads;
    if (writes == 0) return 0.0;
    return static_cast<double>(reads) / static_cast<double>(writes);
  };

  cache::CostModel model;
  // Replicated: parallel fan-out writes the full object everywhere
  // (latency = slowest target), reads come from the fastest replica.
  // The storage-overhead factor (level× for replication, (k+m)/k for the
  // stripe) scales the cost by 1 + w·(overhead−1): the §III-C
  // cost/performance trade-off in one dimensionless knob.
  model.replicated_cost = [this, space_weight,
                           read_mix](std::uint64_t bytes) -> double {
    common::SimDuration put_ns = 0;
    common::SimDuration get_ns = 0;
    bool first = true;
    for (std::size_t idx : replica_targets_) {
      const auto& lm = session_.client(idx).provider()->latency_model();
      put_ns = std::max(put_ns, lm.expected(cloud::OpKind::kPut, bytes));
      const auto g = lm.expected(cloud::OpKind::kGet, bytes);
      get_ns = first ? g : std::min(get_ns, g);
      first = false;
    }
    const double latency = common::to_ms(put_ns) +
                           read_mix() * common::to_ms(get_ns);
    const double overhead = static_cast<double>(config_.replication_level);
    return latency * (1.0 + space_weight * (overhead - 1.0));
  };
  // Erasure: writes fan shard_size = ceil(bytes/k) to every slot; reads
  // collect the k data shards (slowest of the first k slots).
  model.erasure_cost = [this, space_weight,
                        read_mix](std::uint64_t bytes) -> double {
    const std::size_t k = config_.geometry.k;
    const std::uint64_t shard = (bytes + k - 1) / k;
    common::SimDuration put_ns = 0;
    common::SimDuration get_ns = 0;
    for (std::size_t i = 0; i < shard_slots_.size(); ++i) {
      const auto& lm =
          session_.client(shard_slots_[i]).provider()->latency_model();
      put_ns = std::max(put_ns, lm.expected(cloud::OpKind::kPut, shard));
      if (i < k) {
        get_ns = std::max(get_ns, lm.expected(cloud::OpKind::kGet, shard));
      }
    }
    const double latency = common::to_ms(put_ns) +
                           read_mix() * common::to_ms(get_ns);
    const double overhead = config_.geometry.expansion();
    return latency * (1.0 + space_weight * (overhead - 1.0));
  };
  cache.wire_adaptive(std::move(model),
                      [this](std::uint64_t t) { monitor_.set_threshold(t); },
                      monitor_.threshold());
}

common::SimDuration HyRDClient::on_provider_restored(
    const std::string& provider) {
  auto report = recovery_.resync(provider);
  return report.latency;
}

common::Status HyRDClient::rebuild_metadata_from_cloud() {
  store_.clear();
  // List the metadata container on each replica target (fastest first)
  // and load every block found.
  for (std::size_t target : replica_targets_) {
    auto& client = session_.client(target);
    auto listing = client.list(config_.meta_container);
    if (!listing.ok()) continue;
    bool all_ok = true;
    for (const auto& name : listing.names) {
      auto block = client.get({config_.meta_container, name});
      if (!block.ok()) {
        all_ok = false;
        continue;
      }
      if (auto st = store_.load_directory_block(block.data); !st.is_ok()) {
        return st;
      }
    }
    if (all_ok) return common::Status::ok();
  }
  return common::unavailable("no metadata replica fully readable");
}

}  // namespace hyrd::core
