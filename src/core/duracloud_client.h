// DuraCloudClient: the DuraCloud baseline — full replication of every
// object (any size, plus metadata blocks) across a fixed pair of
// providers, kept synchronized. Simple and outage-proof, but it doubles
// storage and bandwidth for large files, which is exactly the cost the
// paper's Fig. 4 shows dominating.
#pragma once

#include "core/storage_client.h"
#include "dist/erasure_scheme.h"
#include "dist/recovery.h"
#include "dist/replication.h"

namespace hyrd::core {

class DuraCloudClient final : public StorageClientBase {
 public:
  /// `providers` is the replication pair (or more). Defaults to the two
  /// performance-oriented providers of the standard fleet.
  explicit DuraCloudClient(
      gcs::MultiCloudSession& session,
      std::vector<std::string> providers = {"WindowsAzure", "Aliyun"},
      std::string data_container = "duracloud-data");

  [[nodiscard]] std::string name() const override { return "DuraCloud"; }

  dist::WriteResult do_put(const std::string& path,
                           common::Buffer data) override;
  dist::ReadResult do_get(const std::string& path) override;
  dist::WriteResult do_update(const std::string& path, std::uint64_t offset,
                           common::ByteSpan data) override;
  dist::RemoveResult do_remove(const std::string& path) override;
  common::SimDuration on_provider_restored(const std::string& provider) override;

  [[nodiscard]] const std::vector<std::size_t>& replica_targets() const {
    return targets_;
  }

  /// Engine knobs (see gcsapi/async_batch.h); defaults match the legacy
  /// synchronous semantics.
  void set_hedge(dist::HedgePolicy p) { replication_.set_hedge(p); }
  void set_write_ack(gcs::AckPolicy ack) { replication_.set_write_ack(ack); }

 private:
  dist::WriteResult write_object(const std::string& path,
                                 common::Buffer data);
  common::SimDuration persist_metadata(const std::string& dir);

  std::string container_;
  dist::ReplicationScheme replication_;
  dist::ErasureScheme erasure_;  // unused; RecoveryManager wiring only
  dist::RecoveryManager recovery_;
  std::vector<std::size_t> targets_;
};

}  // namespace hyrd::core
