#include "core/depsky_client.h"

#include <algorithm>
#include <numeric>

#include "common/checksum.h"
#include "dist/scheme.h"

namespace hyrd::core {

DepSkyClient::DepSkyClient(gcs::MultiCloudSession& session,
                           std::size_t faults_tolerated,
                           std::string data_container)
    : StorageClientBase(session),
      container_(std::move(data_container)),
      quorum_(session.client_count() - faults_tolerated),
      replication_(container_),
      erasure_(container_, {.k = 3, .m = 1}),
      recovery_(session, store_, log_, replication_, erasure_) {
  all_targets_.resize(session_.client_count());
  std::iota(all_targets_.begin(), all_targets_.end(), 0);
  (void)session_.ensure_container_everywhere(container_);
}

common::Result<common::SimDuration> DepSkyClient::quorum_latency(
    std::span<const cloud::OpResult> results) const {
  std::vector<common::SimDuration> acks;
  for (const auto& r : results) {
    if (r.ok()) acks.push_back(r.latency);
  }
  if (acks.size() < quorum_) {
    return common::unavailable("quorum unreachable (" +
                               std::to_string(acks.size()) + "/" +
                               std::to_string(quorum_) + " acks)");
  }
  std::nth_element(acks.begin(),
                   acks.begin() + static_cast<std::ptrdiff_t>(quorum_ - 1),
                   acks.end());
  return acks[quorum_ - 1];
}

dist::WriteResult DepSkyClient::write_object(const std::string& path,
                                             common::ByteSpan data) {
  dist::WriteResult result;
  const auto prev = store_.lookup(path);

  std::vector<gcs::BatchPut> batch;
  std::vector<cloud::ObjectKey> keys;
  for (std::size_t i = 0; i < all_targets_.size(); ++i) {
    keys.push_back({container_, dist::fragment_object_name(path, 'q', i)});
    batch.push_back({all_targets_[i], keys.back(), data});
  }
  auto puts = session_.parallel_put(batch, nullptr);

  auto latency = quorum_latency(puts);
  if (!latency.is_ok()) {
    result.status = latency.status();
    // The client still waited for the failures to time out.
    for (const auto& p : puts) result.latency = std::max(result.latency, p.latency);
    return result;
  }
  result.latency = latency.value();

  meta::FileMeta m;
  m.path = path;
  m.size = data.size();
  m.redundancy = meta::RedundancyKind::kReplicated;
  m.crc = common::crc32c(data);
  m.version = prev.has_value() ? prev->version + 1 : 1;
  for (std::size_t i = 0; i < puts.size(); ++i) {
    m.locations.push_back(
        {session_.client(all_targets_[i]).provider_name(), keys[i].name});
    if (!puts[i].ok()) {
      log_.append(session_.client(all_targets_[i]).provider_name(),
                  container_, path, keys[i].name, meta::LogAction::kPut);
    }
  }
  store_.upsert(m);
  result.status = common::Status::ok();
  result.meta = std::move(m);
  return result;
}

common::SimDuration DepSkyClient::persist_metadata(const std::string& dir) {
  const common::Bytes block = store_.serialize_directory(dir);
  auto r = write_object(meta_block_path(dir), block);
  return r.latency;
}

dist::WriteResult DepSkyClient::put(const std::string& path,
                                    common::ByteSpan data) {
  dist::WriteResult result = write_object(path, data);
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult DepSkyClient::get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }
  result = replication_.read(session_, *m);
  note_get(result.latency, result.status.is_ok(), result.degraded);
  return result;
}

dist::WriteResult DepSkyClient::update(const std::string& path,
                                       std::uint64_t offset,
                                       common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  if (offset + data.size() > m->size) {
    result.status = common::invalid_argument("update must not grow the file");
    note_update(0, false);
    return result;
  }

  if (offset == 0 && data.size() == m->size) {
    result = write_object(path, data);
  } else {
    // Quorum block write.
    std::vector<gcs::BatchRangePut> batch;
    for (std::size_t i = 0; i < m->locations.size(); ++i) {
      const std::size_t idx = session_.index_of(m->locations[i].provider);
      if (idx == static_cast<std::size_t>(-1)) continue;
      batch.push_back(
          {idx, {container_, m->locations[i].object_name}, offset, data});
    }
    auto puts = session_.parallel_put_range(batch, nullptr);
    auto latency = quorum_latency(puts);
    if (!latency.is_ok()) {
      result.status = latency.status();
      note_update(result.latency, false);
      return result;
    }
    result.latency = latency.value();
    result.status = common::Status::ok();
    result.meta = *m;
    result.meta.version = m->version + 1;
    result.meta.crc = 0;
    for (std::size_t i = 0; i < puts.size(); ++i) {
      if (!puts[i].ok()) {
        log_.append(m->locations[i].provider, container_, path,
                    m->locations[i].object_name, meta::LogAction::kPut);
      }
    }
    store_.upsert(result.meta);
  }
  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(m->directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult DepSkyClient::remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }
  result = replication_.remove(session_, *m);
  for (const auto& provider : result.unreachable_providers) {
    for (const auto& loc : m->locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kRemove);
      }
    }
  }
  store_.erase(path);
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, result.status.is_ok());
  return result;
}

common::SimDuration DepSkyClient::on_provider_restored(
    const std::string& provider) {
  return recovery_.resync(provider).latency;
}

}  // namespace hyrd::core
