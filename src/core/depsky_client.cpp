#include "core/depsky_client.h"

#include <algorithm>
#include <numeric>

#include "common/checksum.h"
#include "dist/scheme.h"
#include "gcsapi/async_batch.h"

namespace hyrd::core {

DepSkyClient::DepSkyClient(gcs::MultiCloudSession& session,
                           std::size_t faults_tolerated,
                           std::string data_container)
    : StorageClientBase(session),
      container_(std::move(data_container)),
      quorum_(session.client_count() - faults_tolerated),
      replication_(container_),
      erasure_(container_, {.k = 3, .m = 1}),
      recovery_(session, store_, log_, replication_, erasure_) {
  all_targets_.resize(session_.client_count());
  std::iota(all_targets_.begin(), all_targets_.end(), 0);
  (void)session_.ensure_container_everywhere(container_);
}

dist::WriteResult DepSkyClient::write_object(const std::string& path,
                                             common::Buffer data) {
  dist::WriteResult result;

  // DepSky's quorum write is the engine's kQuorum ack policy verbatim: a
  // write completes at the quorum_-th fastest acknowledgment, and every
  // put still runs to completion so failures are observed and logged.
  gcs::AsyncBatch batch(session_);
  std::vector<cloud::ObjectKey> keys;
  for (std::size_t i = 0; i < all_targets_.size(); ++i) {
    keys.push_back({container_, dist::fragment_object_name(path, 'q', i)});
    batch.submit(gcs::CloudOp::put(all_targets_[i], keys.back(), data));
  }
  gcs::BatchStats stats;
  auto puts = batch.await_ack(gcs::AckPolicy::kQuorum, &stats, quorum_);

  if (stats.succeeded < quorum_) {
    result.status = common::unavailable(
        "quorum unreachable (" + std::to_string(stats.succeeded) + "/" +
        std::to_string(quorum_) + " acks)");
    // The client still waited for the failures to time out.
    result.latency = stats.max_latency;
    return result;
  }
  result.latency = stats.latency;

  meta::FileMeta m;
  m.path = path;
  m.size = data.size();
  m.redundancy = meta::RedundancyKind::kReplicated;
  m.crc = common::crc32c(data);
  for (std::size_t i = 0; i < puts.size(); ++i) {
    m.locations.push_back(
        {session_.client(all_targets_[i]).provider_name(), keys[i].name});
    if (!puts[i].ok()) {
      log_.append(session_.client(all_targets_[i]).provider_name(),
                  container_, path, keys[i].name, meta::LogAction::kPut);
    }
  }
  store_.upsert_versioned(m);
  result.status = common::Status::ok();
  result.meta = std::move(m);
  return result;
}

common::SimDuration DepSkyClient::persist_metadata(const std::string& dir) {
  auto r = write_object(meta_block_path(dir),
                        common::Buffer::from(store_.serialize_directory(dir)));
  return r.latency;
}

dist::WriteResult DepSkyClient::do_put(const std::string& path,
                                       common::Buffer data) {
  dist::WriteResult result = write_object(path, std::move(data));
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult DepSkyClient::do_get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }
  result = replication_.read(session_, *m);
  note_get(result.latency, result.status.is_ok(), result.degraded);
  return result;
}

dist::WriteResult DepSkyClient::do_update(const std::string& path,
                                       std::uint64_t offset,
                                       common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  if (!common::range_within(offset, data.size(), m->size)) {
    result.status = common::invalid_argument("update must not grow the file");
    note_update(0, false);
    return result;
  }

  if (offset == 0 && data.size() == m->size) {
    result = write_object(path, common::Buffer::borrow(data));
  } else {
    // Quorum block write, same engine path as write_object.
    gcs::AsyncBatch batch(session_);
    std::vector<const meta::FragmentLocation*> locs;
    for (std::size_t i = 0; i < m->locations.size(); ++i) {
      const std::size_t idx = session_.index_of(m->locations[i].provider);
      if (idx == static_cast<std::size_t>(-1)) continue;
      batch.submit(gcs::CloudOp::put_range(
          idx, {container_, m->locations[i].object_name}, offset, data));
      locs.push_back(&m->locations[i]);
    }
    gcs::BatchStats stats;
    auto puts = batch.await_ack(gcs::AckPolicy::kQuorum, &stats, quorum_);
    if (stats.succeeded < quorum_) {
      result.status = common::unavailable(
          "quorum unreachable (" + std::to_string(stats.succeeded) + "/" +
          std::to_string(quorum_) + " acks)");
      note_update(result.latency, false);
      return result;
    }
    result.latency = stats.latency;
    result.status = common::Status::ok();
    result.meta = *m;
    result.meta.crc = 0;
    for (std::size_t i = 0; i < puts.size(); ++i) {
      if (!puts[i].ok()) {
        log_.append(locs[i]->provider, container_, path, locs[i]->object_name,
                    meta::LogAction::kPut);
      }
    }
    store_.upsert_versioned(result.meta);
  }
  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(m->directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult DepSkyClient::do_remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }
  result = replication_.remove(session_, *m);
  for (const auto& provider : result.unreachable_providers) {
    for (const auto& loc : m->locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kRemove);
      }
    }
  }
  store_.erase(path);
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, result.status.is_ok());
  return result;
}

common::SimDuration DepSkyClient::on_provider_restored(
    const std::string& provider) {
  return recovery_.resync(provider).latency;
}

}  // namespace hyrd::core
