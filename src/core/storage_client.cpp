#include "core/storage_client.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/virtual_time.h"
#include "obs/trace.h"

namespace hyrd::core {

namespace {
constexpr std::string_view kMetaPathPrefix = "//meta/";

void emit_flush_span(common::SimDuration dur, std::size_t attempted,
                     std::size_t flushed, bool forced) {
  if (!obs::trace_active()) return;
  obs::TraceSpan span;
  span.name = "cache_flush";
  span.cat = "cache";
  if (const auto base = common::VirtualScope::snapshot()) {
    span.tid = base->tenant;
    span.ts = base->now;
  }
  span.dur = dur;
  span.arg("entries", static_cast<long long>(attempted));
  span.arg("flushed", static_cast<long long>(flushed));
  span.arg("forced", forced ? 1 : 0);
  obs::emit(std::move(span));
}
}  // namespace

// --- Cache-aware NVI layer ---

bool StorageClient::should_absorb(std::uint64_t size) const {
  return cache_ != nullptr && cache_->write_back_active() &&
         size <= cache_->config().max_object_bytes &&
         size < write_back_threshold();
}

dist::WriteResult StorageClient::put(const std::string& path,
                                     common::Buffer data) {
  if (cache_ != nullptr) cache_->observe_write(data.size());
  if (should_absorb(data.size())) return absorb_put(path, std::move(data));
  dist::WriteResult result;
  {
    const std::lock_guard lock(path_write_mu(path));
    // A large write supersedes any still-dirty small incarnation of the
    // path (it was never observable remotely) and stales the read copy.
    if (cache_ != nullptr && cache_->config().enabled) cache_->invalidate(path);
    result = do_put(path, std::move(data));
  }
  return result;
}

dist::WriteResult StorageClient::absorb_put(const std::string& path,
                                            common::Buffer data) {
  const std::uint64_t size = data.size();
  cache::ClientCache::AbsorbOutcome outcome;
  {
    // Same-path ordering with in-flight flushes/writes; own() because a
    // borrowed span dies with the caller while the dirty entry lives on.
    const std::lock_guard lock(path_write_mu(path));
    outcome = cache_->absorb(path, std::move(data).own());
  }
  dist::WriteResult result;
  result.status = common::Status::ok();
  result.meta.path = path;
  result.meta.size = size;
  result.meta.redundancy = meta::RedundancyKind::kReplicated;
  if (outcome.need_flush) {
    // Lazy fsync: the watermark write pays for the whole group commit.
    result.latency = run_flush_group(/*forced=*/false).latency;
  }
  return result;
}

dist::ReadResult StorageClient::get(const std::string& path) {
  if (cache_ != nullptr && cache_->config().enabled) {
    if (cache_->write_back_active()) {
      if (cache_->config().serve_dirty_reads) {
        if (auto dirty = cache_->dirty_lookup(path)) {
          dist::ReadResult result;
          result.status = common::Status::ok();
          result.data = std::move(*dirty);
          note_get(0, true, false);
          return result;
        }
      } else {
        // Flush-on-read coherence: the remote GET below must observe the
        // absorbed bytes.
        (void)flush_path(path);
      }
    }
    if (auto hit = cache_->read_lookup(path)) {
      note_get(0, true, false);
      on_cache_hit(path, hit->data, hit->hits);
      dist::ReadResult result;
      result.status = common::Status::ok();
      result.data = std::move(hit->data);
      return result;
    }
  }
  auto result = do_get(path);
  if (cache_ != nullptr && result.status.is_ok()) {
    cache_->read_insert(path, result.data);
  }
  return result;
}

dist::WriteResult StorageClient::update(const std::string& path,
                                        std::uint64_t offset,
                                        common::ByteSpan data) {
  common::SimDuration coherence = 0;
  if (cache_ != nullptr && cache_->config().enabled) {
    // Updates patch remote state in place, so the base version must exist
    // remotely first; the read copy is stale either way.
    coherence = flush_path(path);
    cache_->invalidate_read(path);
  }
  auto result = do_update(path, offset, data);
  result.latency += coherence;
  return result;
}

dist::RemoveResult StorageClient::remove(const std::string& path) {
  if (cache_ != nullptr && cache_->config().enabled) {
    const bool was_dirty = cache_->drop_dirty(path);
    cache_->invalidate_read(path);
    if (was_dirty && !has_remote(path)) {
      // The object never reached a provider: dropping the dirty entry IS
      // the removal.
      dist::RemoveResult result;
      result.status = common::Status::ok();
      note_remove(0, true);
      return result;
    }
  }
  return do_remove(path);
}

void StorageClient::configure_cache(const cache::CacheConfig& config) {
  if (!config.enabled) {
    cache_.reset();
    return;
  }
  cache_ = std::make_unique<cache::ClientCache>(config);
  wire_adaptive(*cache_);
}

StorageClient::FlushResult StorageClient::flush_entries(
    std::vector<cache::DirtyEntry> entries) {
  FlushResult out;
  for (auto& e : entries) {
    common::Buffer payload = e.data;  // refbump: survives a failed do_put
    auto r = do_put(e.path, std::move(e.data));
    // All entries are issued at the same virtual instant, so the batch
    // overlaps into (at most) the slowest round trip.
    out.latency = std::max(out.latency, r.latency);
    if (r.status.is_ok()) {
      ++out.flushed;
      out.flushed_bytes += payload.size();
    } else {
      e.data = std::move(payload);
      out.failed.push_back(std::move(e));
    }
  }
  return out;
}

StorageClient::FlushResult StorageClient::run_flush_group(
    std::vector<cache::DirtyEntry> entries, bool forced) {
  FlushResult out;
  if (entries.empty()) return out;
  const std::size_t attempted = entries.size();

  // Lock every involved path stripe in address order (stripes are shared
  // across paths: dedup, then a global order so concurrent flushes and
  // put()s never deadlock).
  std::vector<std::mutex*> stripes;
  stripes.reserve(entries.size());
  for (const auto& e : entries) stripes.push_back(&path_write_mu(e.path));
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  for (auto* mu : stripes) mu->lock();
  out = flush_entries(std::move(entries));
  for (auto rit = stripes.rbegin(); rit != stripes.rend(); ++rit) {
    (*rit)->unlock();
  }

  cache_->note_flush_batch(out.flushed, out.flushed_bytes, forced);
  emit_flush_span(out.latency, attempted, out.flushed, forced);
  if (!out.failed.empty()) cache_->restore_dirty(std::move(out.failed));
  return out;
}

StorageClient::FlushResult StorageClient::run_flush_group(bool forced) {
  // One flush at a time: take-order must equal flush-order, or two
  // overlapping groups could land an older incarnation of a path after a
  // newer one (stale data winning the metadata CRC).
  const std::lock_guard lock(flush_mu_);
  return run_flush_group(cache_->take_flush_group(), forced);
}

common::SimDuration StorageClient::flush_path(const std::string& path) {
  if (cache_ == nullptr || !cache_->write_back_active()) return 0;
  const std::lock_guard lock(flush_mu_);
  auto entry = cache_->take_dirty(path);
  if (!entry.has_value()) return 0;
  std::vector<cache::DirtyEntry> one;
  one.push_back(std::move(*entry));
  return run_flush_group(std::move(one), /*forced=*/true).latency;
}

StorageClient::CacheDrainReport StorageClient::flush_cache() {
  CacheDrainReport report;
  if (cache_ == nullptr || !cache_->write_back_active()) return report;
  for (;;) {
    auto r = run_flush_group(/*forced=*/false);
    if (r.flushed == 0 && r.failed.empty()) break;  // drained
    report.latency += r.latency;
    report.flushed_entries += r.flushed;
    report.flushed_bytes += r.flushed_bytes;
    // failed entries were restored; if nothing landed this round, no
    // provider is reachable — stop instead of spinning.
    if (r.flushed == 0) break;
  }
  report.remaining_entries = cache_->dirty_entries();
  report.remaining_bytes = cache_->dirty_bytes();
  return report;
}

// --- Stats ---

ClientStats StorageClient::stats_snapshot() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void StorageClient::reset_stats() {
  std::lock_guard lock(stats_mu_);
  stats_ = ClientStats{};
}

void StorageClient::note_put(common::SimDuration latency, bool ok) {
  std::lock_guard lock(stats_mu_);
  stats_.put_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
}

void StorageClient::note_get(common::SimDuration latency, bool ok,
                             bool degraded) {
  std::lock_guard lock(stats_mu_);
  stats_.get_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
  if (degraded) ++stats_.degraded_reads;
}

void StorageClient::note_update(common::SimDuration latency, bool ok) {
  std::lock_guard lock(stats_mu_);
  stats_.update_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
}

void StorageClient::note_remove(common::SimDuration latency, bool ok) {
  std::lock_guard lock(stats_mu_);
  stats_.remove_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
}

// --- StorageClientBase ---

std::optional<meta::FileMeta> StorageClientBase::stat(
    const std::string& path) const {
  // A dirty (absorbed, unflushed) path is visible to stat with its newest
  // size/CRC: the cache is the freshest version of the object.
  if (const auto* c = client_cache();
      c != nullptr && c->write_back_active()) {
    if (auto dirty = c->dirty_peek(path)) {
      meta::FileMeta m;
      m.path = path;
      m.size = dirty->size();
      m.redundancy = meta::RedundancyKind::kReplicated;
      m.crc = common::crc32c(*dirty);
      const auto stored = store_.lookup(path);
      m.version = stored.has_value() ? stored->version + 1 : 1;
      return m;
    }
  }
  return store_.lookup(path);
}

std::vector<std::string> StorageClientBase::list() const {
  // Synthetic metadata-block entries (used by schemes that persist their
  // directory blocks through the normal write path) are not user files.
  std::vector<std::string> out;
  for (auto& p : store_.all_paths()) {
    if (!p.starts_with(kMetaPathPrefix)) out.push_back(std::move(p));
  }
  if (const auto* c = client_cache();
      c != nullptr && c->write_back_active()) {
    for (auto& p : c->dirty_paths()) {
      if (std::find(out.begin(), out.end(), p) == out.end()) {
        out.push_back(std::move(p));
      }
    }
  }
  return out;
}

std::string StorageClientBase::meta_block_path(const std::string& dir) {
  return std::string(kMetaPathPrefix) + dir;
}

std::string StorageClientBase::meta_block_object_name(const std::string& dir) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "md.%016llx",
                static_cast<unsigned long long>(
                    common::fnv1a(std::string_view(dir))));
  return buf;
}

std::optional<std::string> StorageClientBase::parse_meta_block_path(
    const std::string& path) {
  if (path.starts_with(kMetaPathPrefix)) {
    return path.substr(kMetaPathPrefix.size());
  }
  return std::nullopt;
}

}  // namespace hyrd::core
