#include "core/storage_client.h"

#include "common/checksum.h"

namespace hyrd::core {

namespace {
constexpr std::string_view kMetaPathPrefix = "//meta/";
}

ClientStats StorageClient::stats_snapshot() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

void StorageClient::reset_stats() {
  std::lock_guard lock(stats_mu_);
  stats_ = ClientStats{};
}

void StorageClient::note_put(common::SimDuration latency, bool ok) {
  std::lock_guard lock(stats_mu_);
  stats_.put_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
}

void StorageClient::note_get(common::SimDuration latency, bool ok,
                             bool degraded) {
  std::lock_guard lock(stats_mu_);
  stats_.get_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
  if (degraded) ++stats_.degraded_reads;
}

void StorageClient::note_update(common::SimDuration latency, bool ok) {
  std::lock_guard lock(stats_mu_);
  stats_.update_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
}

void StorageClient::note_remove(common::SimDuration latency, bool ok) {
  std::lock_guard lock(stats_mu_);
  stats_.remove_ms.add(common::to_ms(latency));
  if (!ok) ++stats_.failed_ops;
}

std::optional<meta::FileMeta> StorageClientBase::stat(
    const std::string& path) const {
  return store_.lookup(path);
}

std::vector<std::string> StorageClientBase::list() const {
  // Synthetic metadata-block entries (used by schemes that persist their
  // directory blocks through the normal write path) are not user files.
  std::vector<std::string> out;
  for (auto& p : store_.all_paths()) {
    if (!p.starts_with(kMetaPathPrefix)) out.push_back(std::move(p));
  }
  return out;
}

std::string StorageClientBase::meta_block_path(const std::string& dir) {
  return std::string(kMetaPathPrefix) + dir;
}

std::string StorageClientBase::meta_block_object_name(const std::string& dir) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "md.%016llx",
                static_cast<unsigned long long>(
                    common::fnv1a(std::string_view(dir))));
  return buf;
}

std::optional<std::string> StorageClientBase::parse_meta_block_path(
    const std::string& path) {
  if (path.starts_with(kMetaPathPrefix)) {
    return path.substr(kMetaPathPrefix.size());
  }
  return std::nullopt;
}

}  // namespace hyrd::core
