#include "core/duracloud_client.h"

#include <cassert>
#include <cstring>

namespace hyrd::core {

DuraCloudClient::DuraCloudClient(gcs::MultiCloudSession& session,
                                 std::vector<std::string> providers,
                                 std::string data_container)
    : StorageClientBase(session),
      container_(std::move(data_container)),
      // DuraCloud keeps copies synchronized: a write completes only after
      // every copy is confirmed in turn (sequential), which is why the
      // paper sees its latency *improve* when one provider is down.
      replication_(container_, dist::ReplicaWriteMode::kSequential),
      erasure_(container_, {.k = 3, .m = 1}),
      recovery_(session, store_, log_, replication_, erasure_) {
  for (const auto& name : providers) {
    const std::size_t idx = session_.index_of(name);
    assert(idx != static_cast<std::size_t>(-1) && "unknown provider");
    targets_.push_back(idx);
  }
  (void)session_.ensure_container_everywhere(container_);
}

dist::WriteResult DuraCloudClient::write_object(const std::string& path,
                                                common::Buffer data) {
  std::vector<std::string> unreachable;
  dist::WriteResult result =
      replication_.write(session_, path, std::move(data), targets_,
                         &unreachable);
  if (!result.status.is_ok()) return result;
  store_.upsert_versioned(result.meta);
  for (const auto& provider : unreachable) {
    for (const auto& loc : result.meta.locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kPut);
      }
    }
  }
  return result;
}

common::SimDuration DuraCloudClient::persist_metadata(const std::string& dir) {
  auto r = write_object(meta_block_path(dir),
                        common::Buffer::from(store_.serialize_directory(dir)));
  return r.latency;
}

dist::WriteResult DuraCloudClient::do_put(const std::string& path,
                                          common::Buffer data) {
  dist::WriteResult result = write_object(path, std::move(data));
  if (!result.status.is_ok()) {
    note_put(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(result.meta.directory());
  note_put(result.latency, true);
  return result;
}

dist::ReadResult DuraCloudClient::do_get(const std::string& path) {
  dist::ReadResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_get(0, false, false);
    return result;
  }
  result = replication_.read(session_, *m);
  note_get(result.latency, result.status.is_ok(), result.degraded);
  return result;
}

dist::WriteResult DuraCloudClient::do_update(const std::string& path,
                                          std::uint64_t offset,
                                          common::ByteSpan data) {
  dist::WriteResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_update(0, false);
    return result;
  }
  if (!common::range_within(offset, data.size(), m->size)) {
    result.status = common::invalid_argument("update must not grow the file");
    note_update(0, false);
    return result;
  }

  if (offset == 0 && data.size() == m->size) {
    result = write_object(path, common::Buffer::borrow(data));
  } else {
    std::vector<std::string> unreachable;
    result = replication_.update_range(session_, *m, offset, data,
                                       &unreachable);
    if (result.status.is_ok()) {
      store_.upsert_versioned(result.meta);
      for (const auto& provider : unreachable) {
        for (const auto& loc : result.meta.locations) {
          if (loc.provider == provider) {
            log_.append(provider, container_, path, loc.object_name,
                        meta::LogAction::kPut);
          }
        }
      }
    }
  }
  if (!result.status.is_ok()) {
    note_update(result.latency, false);
    return result;
  }
  result.latency += persist_metadata(m->directory());
  note_update(result.latency, true);
  return result;
}

dist::RemoveResult DuraCloudClient::do_remove(const std::string& path) {
  dist::RemoveResult result;
  const auto m = store_.lookup(path);
  if (!m.has_value()) {
    result.status = common::not_found("no such file: " + path);
    note_remove(0, false);
    return result;
  }
  result = replication_.remove(session_, *m);
  for (const auto& provider : result.unreachable_providers) {
    for (const auto& loc : m->locations) {
      if (loc.provider == provider) {
        log_.append(provider, container_, path, loc.object_name,
                    meta::LogAction::kRemove);
      }
    }
  }
  store_.erase(path);
  result.latency += persist_metadata(m->directory());
  note_remove(result.latency, result.status.is_ok());
  return result;
}

common::SimDuration DuraCloudClient::on_provider_restored(
    const std::string& provider) {
  return recovery_.resync(provider).latency;
}

}  // namespace hyrd::core
