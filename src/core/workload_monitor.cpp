#include "core/workload_monitor.h"

namespace hyrd::core {

void WorkloadMonitor::record_write(DataClass c, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  auto& s = per_class_[static_cast<std::size_t>(c)];
  ++s.writes;
  s.bytes_written += bytes;
}

void WorkloadMonitor::record_read(DataClass c, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  auto& s = per_class_[static_cast<std::size_t>(c)];
  ++s.reads;
  s.bytes_read += bytes;
}

std::uint32_t WorkloadMonitor::bump_read_count(const std::string& path) {
  std::lock_guard lock(mu_);
  return ++read_counts_[path];
}

void WorkloadMonitor::forget(const std::string& path) {
  std::lock_guard lock(mu_);
  read_counts_.erase(path);
}

ClassStats WorkloadMonitor::stats(DataClass c) const {
  std::lock_guard lock(mu_);
  return per_class_[static_cast<std::size_t>(c)];
}

}  // namespace hyrd::core
