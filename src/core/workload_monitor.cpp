#include "core/workload_monitor.h"

namespace hyrd::core {

void WorkloadMonitor::record_write(DataClass c, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  auto& s = per_class_[static_cast<std::size_t>(c)];
  ++s.writes;
  s.bytes_written += bytes;
}

void WorkloadMonitor::record_read(DataClass c, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  auto& s = per_class_[static_cast<std::size_t>(c)];
  ++s.reads;
  s.bytes_read += bytes;
}

std::uint32_t WorkloadMonitor::bump_read_count(const std::string& path) {
  std::lock_guard lock(mu_);
  // Bound the tracker before inserting a new path: across a 10^6-tenant
  // run the per-path map would otherwise grow without limit. Halving all
  // counts and dropping zeros is an exponential decay — hot paths keep
  // (half) their score, one-touch paths vanish; if the map is still over
  // the cap (everything hot), evict arbitrary entries — losing a count
  // only delays a promotion by a few reads.
  if (!read_counts_.contains(path) && read_tracker_cap_ > 0 &&
      read_counts_.size() >= read_tracker_cap_) {
    for (auto it = read_counts_.begin(); it != read_counts_.end();) {
      it->second >>= 1;
      it = it->second == 0 ? read_counts_.erase(it) : std::next(it);
    }
    while (read_counts_.size() >= read_tracker_cap_) {
      read_counts_.erase(read_counts_.begin());
    }
  }
  return ++read_counts_[path];
}

void WorkloadMonitor::forget(const std::string& path) {
  std::lock_guard lock(mu_);
  read_counts_.erase(path);
}

ClassStats WorkloadMonitor::stats(DataClass c) const {
  std::lock_guard lock(mu_);
  return per_class_[static_cast<std::size_t>(c)];
}

std::size_t WorkloadMonitor::read_tracker_size() const {
  std::lock_guard lock(mu_);
  return read_counts_.size();
}

}  // namespace hyrd::core
