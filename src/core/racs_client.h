// RACSClient: the RACS baseline (Abu-Libdeh et al., SoCC'10) — RAID-like
// erasure striping of *all* data, regardless of size or type, across every
// provider. Parity placement rotates per object (classic RAID5), derived
// deterministically from the path hash so overwrites reuse their slots.
//
// This is the scheme the paper's §II-B critiques: small updates pay the
// read-modify-write penalty, and reading metadata or a small file during
// an outage touches every surviving provider to reconstruct.
#pragma once

#include "core/storage_client.h"
#include "dist/erasure_scheme.h"
#include "dist/recovery.h"
#include "dist/replication.h"
#include "erasure/striper.h"

namespace hyrd::core {

class RACSClient final : public StorageClientBase {
 public:
  explicit RACSClient(gcs::MultiCloudSession& session,
                      erasure::StripeGeometry geometry = {.k = 3, .m = 1},
                      std::string data_container = "racs-data");

  [[nodiscard]] std::string name() const override { return "RACS"; }

  dist::WriteResult do_put(const std::string& path,
                           common::Buffer data) override;
  dist::ReadResult do_get(const std::string& path) override;
  dist::WriteResult do_update(const std::string& path, std::uint64_t offset,
                           common::ByteSpan data) override;
  dist::RemoveResult do_remove(const std::string& path) override;
  common::SimDuration on_provider_restored(const std::string& provider) override;

  [[nodiscard]] const erasure::StripeGeometry& geometry() const {
    return erasure_.geometry();
  }

  /// Engine knobs (see gcsapi/async_batch.h); defaults match the legacy
  /// synchronous semantics.
  void set_read_strategy(dist::ErasureReadStrategy s) {
    erasure_.set_read_strategy(s);
  }
  void set_write_ack(gcs::AckPolicy ack) {
    erasure_.set_write_ack(ack);
    replication_.set_write_ack(ack);
  }

 private:
  /// Slot assignment for one object: rotation start = hash(path) mod n.
  [[nodiscard]] std::vector<std::size_t> slots_for(const std::string& path) const;

  /// Stripes one object (data or metadata block), maintaining meta/log.
  dist::WriteResult write_object(const std::string& path,
                                 common::Buffer data);

  common::SimDuration persist_metadata(const std::string& dir);

  std::string container_;
  dist::ErasureScheme erasure_;
  dist::ReplicationScheme replication_;  // only for RecoveryManager wiring
  dist::RecoveryManager recovery_;
};

}  // namespace hyrd::core
