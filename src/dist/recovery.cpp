#include "dist/recovery.h"

#include <algorithm>

namespace hyrd::dist {

RecoveryReport RecoveryManager::resync(const std::string& provider) {
  RecoveryReport report;
  const std::size_t client_idx = session_.index_of(provider);
  if (client_idx == static_cast<std::size_t>(-1)) {
    report.status = common::invalid_argument("unknown provider: " + provider);
    return report;
  }
  if (!session_.client(client_idx).provider()->online()) {
    report.status = common::failed_precondition(provider + " still offline");
    return report;
  }

  auto& client = session_.client(client_idx);
  const auto pending = log_.pending_for(provider);
  std::uint64_t max_seq = 0;

  for (const auto& rec : pending) {
    max_seq = std::max(max_seq, rec.seq);

    if (rec.action == meta::LogAction::kRemove) {
      auto r = client.remove({rec.container, rec.object_name});
      report.latency += r.latency;
      // NotFound is fine: the object never reached the provider.
      if (r.ok() || r.status.code() == common::StatusCode::kNotFound) {
        ++report.removes_applied;
      } else {
        report.status = r.status;
        return report;
      }
      continue;
    }

    // Synthetic objects (metadata-directory blocks) are regenerated from
    // client state rather than fetched from surviving fragments.
    if (regenerator_) {
      if (auto bytes = regenerator_(rec.path); bytes.has_value()) {
        auto r = client.put({rec.container, rec.object_name}, *bytes);
        report.latency += r.latency;
        if (!r.ok()) {
          report.status = r.status;
          return report;
        }
        report.bytes_pushed += bytes->size();
        ++report.objects_repushed;
        continue;
      }
    }

    auto meta = store_.lookup(rec.path);
    if (!meta.has_value()) {
      // File was deleted after the logged write; drop the stale object.
      auto r = client.remove({rec.container, rec.object_name});
      report.latency += r.latency;
      ++report.skipped;
      continue;
    }

    if (meta->redundancy == meta::RedundancyKind::kReplicated) {
      auto whole = replication_.read(session_, *meta);
      report.latency += whole.latency;
      if (!whole.status.is_ok()) {
        report.status = whole.status;
        return report;
      }
      auto r = client.put({rec.container, rec.object_name}, whole.data);
      report.latency += r.latency;
      if (!r.ok()) {
        report.status = r.status;
        return report;
      }
      report.bytes_pushed += whole.data.size();
      ++report.objects_repushed;
    } else {
      common::SimDuration rebuild_latency = 0;
      auto fragments = erasure_.rebuild_fragments_for(session_, *meta,
                                                      provider,
                                                      &rebuild_latency);
      report.latency += rebuild_latency;
      if (!fragments.is_ok()) {
        report.status = fragments.status();
        return report;
      }
      for (auto& [object_name, bytes] : fragments.value()) {
        auto r = client.put({rec.container, object_name}, bytes);
        report.latency += r.latency;
        if (!r.ok()) {
          report.status = r.status;
          return report;
        }
        report.bytes_pushed += bytes.size();
        ++report.objects_repushed;
      }
    }
  }

  log_.truncate(provider, max_seq);
  report.status = common::Status::ok();
  return report;
}

}  // namespace hyrd::dist
