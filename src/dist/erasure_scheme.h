// ErasureScheme: striped erasure-coded distribution (RAID5/RS) across
// providers — the layout RACS applies to everything and HyRD applies to
// large files.
//
// Read path economics (the heart of the paper's §II-B analysis):
//  * normal read      — k parallel sub-transfers of size/k: latency is the
//    slowest provider's transfer of 1/k of the object (parallelism win);
//  * degraded read    — any k of k+m fragments, reconstruct (extra traffic);
//  * small update     — read-modify-write: (1+m) reads + (1+m) writes
//    (2R + 2W for RAID5), the write-amplification cost HyRD avoids by
//    replicating small files.
#pragma once

#include "dist/scheme.h"
#include "erasure/striper.h"

namespace hyrd::dist {

/// How a stripe read picks its k fragments.
///
/// kPreferredK (default) issues exactly k requests to the preferred (data)
/// slots and pays a second round only on surprises — the paper's cost
/// model: a normal read bills exactly k GETs. kFastestK requests all
/// reachable fragments and completes at the k-th fastest usable response,
/// cancelling the stragglers — latency becomes the k-th order statistic of
/// n instead of the max of k, at the price of up to m extra GET requests.
enum class ErasureReadStrategy { kPreferredK, kFastestK };

class ErasureScheme {
 public:
  /// `outage_aware`: when true, reads consult provider availability and
  /// fetch k reachable fragments in a single parallel round (HyRD's Cost &
  /// Performance Evaluator tracks outage state). When false, reads probe
  /// the data fragments first and only then fetch parity — the two-round
  /// degraded path a tracker-less client (RACS) pays during an outage.
  ErasureScheme(std::string container, erasure::StripeGeometry geometry,
                bool outage_aware = true)
      : container_(std::move(container)),
        striper_(geometry),
        outage_aware_(outage_aware) {}

  [[nodiscard]] const std::string& container() const { return container_; }
  [[nodiscard]] const erasure::StripeGeometry& geometry() const {
    return striper_.geometry();
  }

  void set_read_strategy(ErasureReadStrategy s) { read_strategy_ = s; }
  [[nodiscard]] ErasureReadStrategy read_strategy() const {
    return read_strategy_;
  }

  /// Write/remove ack policy. kAll (default) keeps the legacy contract:
  /// latency = slowest fragment. Early-ack policies report at the first
  /// durable *stripe* (the k-th fragment success) while the remaining
  /// fragments land in the background of the same call; failures are
  /// still observed and reported via `unreachable`.
  void set_write_ack(gcs::AckPolicy ack) { write_ack_ = ack; }
  [[nodiscard]] gcs::AckPolicy write_ack() const { return write_ack_; }

  /// Stripes `data` into k+m fragments and puts fragment i on
  /// shard_clients[i], all in parallel. Requires exactly k+m targets.
  /// Succeeds if at least k fragments land (the stripe is then decodable);
  /// unreachable providers are reported for update logging.
  ///
  /// Zero-copy: full data shards are O(1) slices of `data`; only the
  /// padded tail shard and the parity shards live in a single side arena
  /// sliced per fragment.
  WriteResult write(gcs::MultiCloudSession& session, const std::string& path,
                    common::Buffer data,
                    const std::vector<std::size_t>& shard_clients,
                    std::vector<std::string>* unreachable = nullptr) const;

  /// Legacy span adapter (no copy: the write is synchronous, so a borrowed
  /// view is safe for its duration).
  WriteResult write(gcs::MultiCloudSession& session, const std::string& path,
                    common::ByteSpan data,
                    const std::vector<std::size_t>& shard_clients,
                    std::vector<std::string>* unreachable = nullptr) const {
    return write(session, path, common::Buffer::borrow(data), shard_clients,
                 unreachable);
  }

  /// Normal path: parallel-fetch the k data fragments and reassemble.
  /// Degraded path (some fragment unreachable): fetch survivors including
  /// parity and reconstruct.
  ReadResult read(gcs::MultiCloudSession& session,
                  const meta::FileMeta& meta) const;

  /// In-place range update. If the range lies within a single data
  /// fragment, uses the read-modify-write path ((1+m) reads, (1+m)
  /// writes). Otherwise falls back to read-whole + re-stripe. Returns the
  /// updated meta. `rmw_used` (optional) reports which path ran.
  WriteResult update_range(gcs::MultiCloudSession& session,
                           const meta::FileMeta& meta, std::uint64_t offset,
                           common::ByteSpan new_bytes, bool* rmw_used = nullptr,
                           std::vector<std::string>* unreachable = nullptr) const;

  /// Removes all fragments concurrently.
  RemoveResult remove(gcs::MultiCloudSession& session,
                      const meta::FileMeta& meta) const;

  /// Rebuilds the fragments of `meta` that live on `provider` from the
  /// surviving fragments (degraded fetch + re-encode). Returns pairs of
  /// (object_name, fragment buffer) ready to be pushed back.
  common::Result<std::vector<std::pair<std::string, common::Buffer>>>
  rebuild_fragments_for(gcs::MultiCloudSession& session,
                        const meta::FileMeta& meta,
                        const std::string& provider,
                        common::SimDuration* latency = nullptr) const;

 private:
  std::string container_;
  erasure::Striper striper_;
  bool outage_aware_;
  ErasureReadStrategy read_strategy_ = ErasureReadStrategy::kPreferredK;
  gcs::AckPolicy write_ack_ = gcs::AckPolicy::kAll;
};

}  // namespace hyrd::dist
