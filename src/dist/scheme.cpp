#include "dist/scheme.h"

#include <algorithm>

#include "common/checksum.h"

namespace hyrd::dist {

std::string fragment_object_name(const std::string& path, char suffix,
                                 std::size_t index) {
  // Hash the path for a flat, provider-safe namespace; keep a readable tail.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx.%c%zu",
                static_cast<unsigned long long>(
                    common::fnv1a(std::string_view(path))),
                suffix, index);
  return buf;
}

std::vector<std::size_t> order_by_expected_read_latency(
    const gcs::MultiCloudSession& session,
    const std::vector<std::size_t>& clients, std::uint64_t size) {
  std::vector<std::pair<common::SimDuration, std::size_t>> ranked;
  ranked.reserve(clients.size());
  for (std::size_t c : clients) {
    const auto& model = session.client(c).provider()->latency_model();
    ranked.emplace_back(model.expected(cloud::OpKind::kGet, size), c);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::size_t> out;
  out.reserve(ranked.size());
  for (const auto& [lat, c] : ranked) out.push_back(c);
  return out;
}

}  // namespace hyrd::dist
