#include "dist/scheme.h"

#include <algorithm>

#include "common/checksum.h"

namespace hyrd::dist {

std::string fragment_object_name(const std::string& path, char suffix,
                                 std::size_t index) {
  // Hash the path for a flat, provider-safe namespace; keep a readable tail.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx.%c%zu",
                static_cast<unsigned long long>(
                    common::fnv1a(std::string_view(path))),
                suffix, index);
  return buf;
}

std::vector<std::size_t> order_by_expected_read_latency(
    const gcs::MultiCloudSession& session,
    const std::vector<std::size_t>& clients, std::uint64_t size) {
  std::vector<std::pair<common::SimDuration, std::size_t>> ranked;
  ranked.reserve(clients.size());
  for (std::size_t c : clients) {
    const auto& model = session.client(c).provider()->latency_model();
    ranked.emplace_back(model.expected(cloud::OpKind::kGet, size), c);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::size_t> out;
  out.reserve(ranked.size());
  for (const auto& [lat, c] : ranked) out.push_back(c);
  return out;
}

RemoveResult remove_fragments(gcs::MultiCloudSession& session,
                              const std::string& container,
                              const meta::FileMeta& meta,
                              gcs::AckPolicy ack) {
  RemoveResult result;
  gcs::AsyncBatch batch(session);
  std::vector<const std::string*> providers;  // op_index -> provider name
  for (const auto& loc : meta.locations) {
    const std::size_t idx = session.index_of(loc.provider);
    if (idx == static_cast<std::size_t>(-1)) {
      result.unreachable_providers.push_back(loc.provider);
      continue;
    }
    batch.submit(gcs::CloudOp::remove(idx, {container, loc.object_name}));
    providers.push_back(&loc.provider);
  }

  gcs::BatchStats stats;
  if (ack == gcs::AckPolicy::kAll) {
    auto completions = batch.await_all(&stats);
    for (const auto& c : completions) {
      if (!c.ok() &&
          c.result.status.code() == common::StatusCode::kUnavailable) {
        result.unreachable_providers.push_back(*providers[c.op_index]);
      }
    }
  } else {
    const std::size_t need =
        ack == gcs::AckPolicy::kFirstSuccess ? 1 : providers.size() / 2 + 1;
    auto completions = batch.await_first(need, &stats);
    for (const auto& c : completions) {
      // Anything short of a confirmed remove must be replayed on resync.
      // kNotFound means the fragment is already gone — nothing to replay.
      if (!c.ok() &&
          c.result.status.code() != common::StatusCode::kNotFound) {
        result.unreachable_providers.push_back(*providers[c.op_index]);
      }
    }
  }
  result.latency = stats.latency;
  result.status = common::Status::ok();
  return result;
}

}  // namespace hyrd::dist
