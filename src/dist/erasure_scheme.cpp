#include "dist/erasure_scheme.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <future>

#include "common/checksum.h"
#include "common/copy_meter.h"
#include "common/virtual_time.h"
#include "erasure/raid5.h"
#include "erasure/reed_solomon.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyrd::dist {

namespace {

// Encode/CRC phase accounting: bytes run through the GF encoder and the
// checksummer per stripe write, visible next to the upload counters in the
// same registry export.
struct StripeMetrics {
  obs::Counter encode_bytes =
      obs::MetricsRegistry::global().counter("scheme.encode_bytes");
  obs::Counter crc_bytes =
      obs::MetricsRegistry::global().counter("scheme.crc_bytes");
};

StripeMetrics& stripe_metrics() {
  static StripeMetrics m;
  return m;
}

/// Scheme-level span stamped with the issuing tenant's virtual context.
void emit_stripe_span(const char* name, common::SimDuration dur,
                      std::initializer_list<obs::TraceSpan::Arg> args) {
  if (!obs::trace_active()) return;
  obs::TraceSpan span;
  span.name = name;
  span.cat = "scheme";
  if (const auto base = common::VirtualScope::snapshot()) {
    span.tid = base->tenant;
    span.ts = base->now;
  }
  span.dur = dur;
  for (const auto& a : args) span.arg(a.key, a.value);
  obs::emit(std::move(span));
}

/// Maps each fragment slot of `meta` to its session client index; -1 when
/// the provider is not in the session.
std::vector<std::size_t> slot_clients(const gcs::MultiCloudSession& session,
                                      const meta::FileMeta& meta) {
  std::vector<std::size_t> out;
  out.reserve(meta.locations.size());
  for (const auto& loc : meta.locations) {
    out.push_back(session.index_of(loc.provider));
  }
  return out;
}

/// True if fragment `slot` of `meta` passes its integrity check (or no
/// digest is recorded for it).
bool fragment_intact(const meta::FileMeta& meta, std::size_t slot,
                     common::ByteSpan fragment) {
  if (slot >= meta.fragment_crcs.size()) return true;   // no digest recorded
  if (meta.fragment_crcs[slot] == 0) return true;       // digest unknown
  return common::crc32c(fragment) == meta.fragment_crcs[slot];
}

}  // namespace

WriteResult ErasureScheme::write(gcs::MultiCloudSession& session,
                                 const std::string& path, common::Buffer data,
                                 const std::vector<std::size_t>& shard_clients,
                                 std::vector<std::string>* unreachable) const {
  WriteResult result;
  const auto& geom = striper_.geometry();
  if (shard_clients.size() != geom.total()) {
    result.status =
        common::invalid_argument("erasure write needs exactly k+m targets");
    return result;
  }

  const std::size_t total = geom.total();
  const std::size_t shard_size = striper_.shard_size_for(data.size());

  // Fragment plan: every full data shard is an O(1) slice of `data` (the
  // store keeps it by refbump — no memcpy anywhere on its way down); only
  // a shard that crosses or sits past EOF needs padding. The padded tail
  // and the m parity shards live in one side arena, sliced per fragment.
  std::vector<common::Buffer> fragments(total);
  std::vector<common::ByteSpan> data_views(geom.k);
  std::vector<std::size_t> pad_slots;
  for (std::size_t i = 0; i < geom.k; ++i) {
    const std::size_t offset = i * shard_size;
    const std::size_t avail = offset < data.size() ? data.size() - offset : 0;
    if (avail >= shard_size) {
      fragments[i] = data.slice(offset, shard_size);
      data_views[i] = fragments[i];
    } else {
      pad_slots.push_back(i);
    }
  }

  common::MutableBuffer arena((pad_slots.size() + geom.m) * shard_size);
  for (std::size_t j = 0; j < pad_slots.size(); ++j) {
    const std::size_t offset = pad_slots[j] * shard_size;
    const std::size_t avail = offset < data.size() ? data.size() - offset : 0;
    if (avail > 0) {
      arena.write(j * shard_size, data.span().subspan(offset, avail));
    }
  }
  // Parity regions: writable spans taken before freeze(). The encode below
  // fills them before any parity slice is submitted, and no other view
  // covers them, so the late writes are invisible to concurrent readers of
  // the tail fragments (disjoint regions of the same block).
  std::vector<common::MutByteSpan> parity_views(geom.m);
  for (std::size_t p = 0; p < geom.m; ++p) {
    parity_views[p] =
        arena.span((pad_slots.size() + p) * shard_size, shard_size);
  }
  common::Buffer side = std::move(arena).freeze();
  for (std::size_t j = 0; j < pad_slots.size(); ++j) {
    fragments[pad_slots[j]] = side.slice(j * shard_size, shard_size);
    data_views[pad_slots[j]] = fragments[pad_slots[j]];
  }

  // Pipeline: parity encode and checksums run on the session pool while
  // the k data fragments (available immediately) are dispatched. Parity
  // is encoded in independent chunks so the pool can spread the GF work.
  auto& pool = session.pool();
  const erasure::ReedSolomon& rs = striper_.codec();
  constexpr std::size_t kEncodeChunk = 256 * 1024;
  std::vector<std::future<void>> encode_futs;
  for (std::size_t off = 0; off < shard_size; off += kEncodeChunk) {
    const std::size_t len = std::min(kEncodeChunk, shard_size - off);
    encode_futs.push_back(pool.submit([&geom, &rs, &data_views, &parity_views,
                                       off, len] {
      std::vector<common::ByteSpan> d(geom.k);
      for (std::size_t i = 0; i < geom.k; ++i) {
        d[i] = data_views[i].subspan(off, len);
      }
      std::vector<common::MutByteSpan> pv(geom.m);
      for (std::size_t p = 0; p < geom.m; ++p) {
        pv[p] = parity_views[p].subspan(off, len);
      }
      (void)rs.encode_into(d, pv);
    }));
  }
  auto object_crc_fut =
      pool.submit([view = data.span()] { return common::crc32c(view); });
  std::vector<std::future<std::uint32_t>> crc_futs(total);
  for (std::size_t i = 0; i < geom.k; ++i) {
    crc_futs[i] = pool.submit(
        [view = data_views[i]] { return common::crc32c(view); });
  }

  std::vector<cloud::ObjectKey> keys;
  keys.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    keys.push_back({container_, fragment_object_name(path, 's', i)});
  }

  // One batch for the whole stripe: the k data fragments (available
  // immediately) dispatch while parity encodes; parity fragments join the
  // same batch once the encode lands. All ops carry offset 0, so the batch
  // is one concurrent round in virtual time — splitting the real
  // submission into two waves only overlaps client CPU with I/O.
  gcs::AsyncBatch batch(session);
  for (std::size_t i = 0; i < geom.k; ++i) {
    batch.submit(gcs::CloudOp::put(shard_clients[i], keys[i], fragments[i]));
  }

  for (auto& f : encode_futs) f.get();
  for (std::size_t p = 0; p < geom.m; ++p) {
    fragments[geom.k + p] =
        side.slice((pad_slots.size() + p) * shard_size, shard_size);
    crc_futs[geom.k + p] = pool.submit(
        [view = fragments[geom.k + p].span()] { return common::crc32c(view); });
  }
  for (std::size_t p = 0; p < geom.m; ++p) {
    batch.submit(gcs::CloudOp::put(shard_clients[geom.k + p], keys[geom.k + p],
                                   fragments[geom.k + p]));
  }

  // kAll acks at the slowest fragment (legacy max). Early-ack policies ack
  // at the first durable *stripe* — the k-th fragment success — while the
  // remaining fragments still run to completion below (durability and
  // unreachable-logging are never traded away).
  gcs::BatchStats stats;
  auto put_completions =
      write_ack_ == gcs::AckPolicy::kAll
          ? batch.await_all(&stats)
          : batch.await_ack(gcs::AckPolicy::kQuorum, &stats, geom.k);
  result.latency = stats.latency;

  std::size_t landed = 0;
  meta::FileMeta m;
  m.path = path;
  m.size = data.size();
  m.redundancy = meta::RedundancyKind::kErasure;
  m.crc = object_crc_fut.get();
  m.stripe_k = static_cast<std::uint32_t>(geom.k);
  m.stripe_m = static_cast<std::uint32_t>(geom.m);
  m.shard_size = shard_size;
  m.fragment_crcs.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    m.fragment_crcs.push_back(crc_futs[i].get());
  }
  for (std::size_t i = 0; i < total; ++i) {
    const cloud::OpResult& put_result = put_completions[i].result;
    const std::string& provider =
        session.client(shard_clients[i]).provider_name();
    if (put_result.ok()) {
      ++landed;
    } else if (unreachable != nullptr) {
      unreachable->push_back(provider);
    }
    m.locations.push_back({provider, keys[i].name});
  }

  if (landed < geom.k) {
    result.status =
        common::unavailable("fewer than k fragments written; stripe lost");
    return result;
  }
  stripe_metrics().encode_bytes.add(
      static_cast<std::uint64_t>(geom.m) * shard_size);
  stripe_metrics().crc_bytes.add(data.size() +
                                 static_cast<std::uint64_t>(total) * shard_size);
  result.status = common::Status::ok();
  result.meta = std::move(m);
  emit_stripe_span("stripe_write", result.latency,
                   {{"k", static_cast<long long>(geom.k)},
                    {"m", static_cast<long long>(geom.m)},
                    {"landed", static_cast<long long>(landed)}});
  return result;
}

ReadResult ErasureScheme::read(gcs::MultiCloudSession& session,
                               const meta::FileMeta& meta) const {
  ReadResult result;
  const auto& geom = striper_.geometry();
  if (meta.locations.size() != geom.total() || meta.stripe_k != geom.k ||
      meta.stripe_m != geom.m) {
    result.status = common::invalid_argument("meta/geometry mismatch");
    return result;
  }
  const auto clients = slot_clients(session, meta);
  for (std::size_t i = 0; i < geom.total(); ++i) {
    if (clients[i] == static_cast<std::size_t>(-1)) {
      result.status = common::internal_error("unknown provider in meta");
      return result;
    }
  }

  // All requests of a read — the preferred round, a phase-2 repair round,
  // or the full first-k fan-out — share one AsyncBatch, so virtual time is
  // one coherent order statistic over fragment arrivals.
  gcs::AsyncBatch batch(session);
  std::vector<std::size_t> op_slot;  // op_index -> fragment slot
  const auto submit_slot = [&](std::size_t slot, common::SimDuration start) {
    batch.submit(gcs::CloudOp::get(
        clients[slot], {container_, meta.locations[slot].object_name}, start));
    op_slot.push_back(slot);
  };

  std::vector<std::optional<common::Buffer>> shards(geom.total());

  if (read_strategy_ == ErasureReadStrategy::kFastestK) {
    // First-k-of-n: request every reachable fragment and complete at the
    // k-th fastest usable response; the in-flight tail is cancelled and
    // the shaved wait reported as saved virtual time. A corrupt or failed
    // response simply doesn't count toward k.
    for (std::size_t i = 0; i < geom.total(); ++i) {
      if (outage_aware_ && !session.client(clients[i]).provider()->online()) {
        result.degraded = true;
        continue;
      }
      submit_slot(i, 0);
    }
    const auto usable = [&](const gcs::CloudCompletion& c) {
      return c.ok() && fragment_intact(meta, op_slot[c.op_index], c.result.data);
    };
    gcs::BatchStats stats;
    auto completions = batch.await_first(geom.k, &stats, usable);
    result.latency += stats.latency;
    result.saved = stats.saved();
    result.cancelled_stragglers = stats.cancelled;
    for (auto& c : completions) {
      const std::size_t slot = op_slot[c.op_index];
      if (c.ok() && fragment_intact(meta, slot, c.result.data)) {
        shards[slot] = std::move(c.result.data);
      } else if (!c.cancelled) {
        // A real failure (outage surprise or corruption), not a straggler
        // we tore down ourselves.
        result.degraded = true;
      }
    }
  } else {
    // Phase 1: fetch k fragments in parallel. Providers known to be in
    // outage are skipped up front (a client learns this from its first
    // refused connection and the Cost & Performance Evaluator tracks it),
    // so a known outage costs one parallel round, not two; data slots are
    // preferred so the fast concatenation path applies when possible.
    for (std::size_t i = 0; i < geom.total() && op_slot.size() < geom.k; ++i) {
      if (outage_aware_ && !session.client(clients[i]).provider()->online()) {
        result.degraded = true;
        continue;
      }
      submit_slot(i, 0);
    }
    const std::size_t phase1_ops = op_slot.size();
    gcs::BatchStats stats;
    auto phase1 = batch.await_all(&stats);
    result.latency += stats.latency;

    bool all_fetched_ok = !phase1.empty();
    for (auto& c : phase1) {
      const std::size_t slot = op_slot[c.op_index];
      if (c.ok() && fragment_intact(meta, slot, c.result.data)) {
        shards[slot] = std::move(c.result.data);
      } else {
        // Unreachable — or silently corrupted: a failed integrity check
        // turns the fragment into an erasure and reconstruction takes over.
        all_fetched_ok = false;
        result.degraded = true;
      }
    }
    const bool have_all_data = [&] {
      for (std::size_t i = 0; i < geom.k; ++i) {
        if (!shards[i].has_value()) return false;
      }
      return true;
    }();

    if (all_fetched_ok && have_all_data) {
      // Fast path: fragments that came back as adjacent slices of the
      // writer's arena reassemble in O(1); anything else gathers once.
      auto object = striper_.assemble(meta.size, meta.crc, std::move(shards));
      if (!object.is_ok()) {
        result.status = object.status();
        return result;
      }
      result.status = common::Status::ok();
      result.data = std::move(object).value();
      emit_stripe_span("stripe_read", result.latency,
                       {{"k", static_cast<long long>(geom.k)},
                        {"degraded", result.degraded ? 1 : 0}});
      return result;
    }

    // Phase 2 (only on mid-flight surprises): fetch fragments not already
    // held, from slots not tried in phase 1. Submitting them into the same
    // batch at start_offset = phase-1 completion makes max-over-arrivals
    // reproduce the legacy two-round sum exactly.
    std::size_t present = 0;
    for (const auto& s : shards) present += s.has_value() ? 1 : 0;
    if (present < geom.k) {
      const common::SimDuration phase2_start = result.latency;
      for (std::size_t i = 0; i < geom.total(); ++i) {
        if (shards[i].has_value()) continue;
        if (std::find(op_slot.begin(), op_slot.begin() + static_cast<std::ptrdiff_t>(phase1_ops),
                      i) != op_slot.begin() + static_cast<std::ptrdiff_t>(phase1_ops)) {
          continue;  // already failed in phase 1
        }
        submit_slot(i, phase2_start);
      }
      auto all_ops = batch.await_all(&stats);
      result.latency = stats.latency;
      for (auto& c : all_ops) {
        if (c.op_index < phase1_ops) continue;  // consumed above
        const std::size_t slot = op_slot[c.op_index];
        if (c.ok() && fragment_intact(meta, slot, c.result.data)) {
          shards[slot] = std::move(c.result.data);
        }
      }
    }
  }

  auto object = striper_.assemble(meta.size, meta.crc, std::move(shards));
  if (!object.is_ok()) {
    result.status = object.status();
    return result;
  }
  result.status = common::Status::ok();
  result.data = std::move(object).value();
  emit_stripe_span("stripe_read", result.latency,
                   {{"k", static_cast<long long>(geom.k)},
                    {"degraded", result.degraded ? 1 : 0},
                    {"saved_ns", static_cast<long long>(result.saved)}});
  return result;
}

WriteResult ErasureScheme::update_range(gcs::MultiCloudSession& session,
                                        const meta::FileMeta& meta,
                                        std::uint64_t offset,
                                        common::ByteSpan new_bytes,
                                        bool* rmw_used,
                                        std::vector<std::string>* unreachable) const {
  WriteResult result;
  const auto& geom = striper_.geometry();
  if (!common::range_within(offset, new_bytes.size(), meta.size)) {
    result.status = common::invalid_argument("update range exceeds file size");
    return result;
  }
  const std::uint64_t shard_size = meta.shard_size;
  const std::size_t first_shard =
      static_cast<std::size_t>(offset / shard_size);
  const std::size_t last_shard = new_bytes.empty()
          ? first_shard
          : static_cast<std::size_t>((offset + new_bytes.size() - 1) / shard_size);

  if (first_shard != last_shard || first_shard >= geom.k) {
    // Multi-fragment update: read-whole, patch, re-stripe.
    if (rmw_used != nullptr) *rmw_used = false;
    ReadResult whole = read(session, meta);
    if (!whole.status.is_ok()) {
      result.status = whole.status;
      result.latency = whole.latency;
      return result;
    }
    common::Bytes patched = std::move(whole.data).into_bytes();
    common::count_copied_bytes(new_bytes.size());
    std::memcpy(patched.data() + offset, new_bytes.data(), new_bytes.size());
    std::vector<std::size_t> clients = slot_clients(session, meta);
    result = write(session, meta.path, common::Buffer::from(std::move(patched)),
                   clients, unreachable);
    result.latency += whole.latency;
    result.meta.version = meta.version + 1;
    return result;
  }

  if (rmw_used != nullptr) *rmw_used = true;

  // RMW path at *block* granularity — the paper's RAID5 small-update cost
  // model: read the old data block and the old parity block(s), compute
  // the delta, write the new blocks back. (1+m) range reads + (1+m) range
  // writes = 2R + 2W for RAID5. Range reads are plain HTTP; range writes
  // model block overwrites in a block-chunked layout (DESIGN.md §2).
  const auto clients = slot_clients(session, meta);
  const std::size_t in_shard =
      static_cast<std::size_t>(offset - first_shard * shard_size);
  const std::uint64_t block_len = new_bytes.size();

  std::vector<gcs::BatchRangeGet> reads;
  reads.push_back({clients[first_shard],
                   {container_, meta.locations[first_shard].object_name},
                   in_shard, block_len});
  for (std::size_t p = 0; p < geom.m; ++p) {
    reads.push_back({clients[geom.k + p],
                     {container_, meta.locations[geom.k + p].object_name},
                     in_shard, block_len});
  }
  common::SimDuration phase_latency = 0;
  auto gets = session.parallel_get_range(reads, &phase_latency);
  result.latency += phase_latency;
  for (const auto& g : gets) {
    if (!g.ok()) {
      // A needed fragment is unreachable: fall back to a degraded
      // read + full re-stripe (the expensive path the paper describes).
      ReadResult whole = read(session, meta);
      if (!whole.status.is_ok()) {
        result.status = whole.status;
        result.latency += whole.latency;
        return result;
      }
      common::Bytes patched = std::move(whole.data).into_bytes();
      common::count_copied_bytes(new_bytes.size());
      std::memcpy(patched.data() + offset, new_bytes.data(), new_bytes.size());
      result = write(session, meta.path,
                     common::Buffer::from(std::move(patched)), clients,
                     unreachable);
      result.latency += whole.latency;
      result.meta.version = meta.version + 1;
      if (rmw_used != nullptr) *rmw_used = false;
      return result;
    }
  }

  // The code is linear bytewise, so parity deltas apply per block.
  const common::Buffer& old_block = gets[0].data;
  erasure::ReedSolomon rs(geom.k, geom.m);
  auto deltas = rs.parity_delta(first_shard, old_block, new_bytes);
  assert(deltas.is_ok());
  std::vector<common::Bytes> new_parity_blocks;
  new_parity_blocks.reserve(geom.m);
  for (std::size_t p = 0; p < geom.m; ++p) {
    common::Bytes block = std::move(gets[1 + p].data).into_bytes();
    const auto& d = deltas.value()[p];
    for (std::size_t i = 0; i < block.size(); ++i) block[i] ^= d[i];
    new_parity_blocks.push_back(std::move(block));
  }

  std::vector<gcs::BatchRangePut> writes;
  writes.push_back({clients[first_shard],
                    {container_, meta.locations[first_shard].object_name},
                    in_shard, new_bytes});
  for (std::size_t p = 0; p < geom.m; ++p) {
    writes.push_back({clients[geom.k + p],
                      {container_, meta.locations[geom.k + p].object_name},
                      in_shard, common::ByteSpan(new_parity_blocks[p])});
  }
  auto puts = session.parallel_put_range(writes, &phase_latency);
  result.latency += phase_latency;
  for (const auto& p : puts) {
    if (!p.ok()) {
      result.status = p.status;
      return result;
    }
  }

  result.status = common::Status::ok();
  result.meta = meta;
  result.meta.version = meta.version + 1;
  // Whole-object and modified-fragment digests are unknown after an
  // in-place block update; mark them absent (0 = sentinel) rather than
  // re-reading whole fragments.
  result.meta.crc = 0;
  if (result.meta.fragment_crcs.size() == geom.total()) {
    result.meta.fragment_crcs[first_shard] = 0;
    for (std::size_t p = 0; p < geom.m; ++p) {
      result.meta.fragment_crcs[geom.k + p] = 0;
    }
  }
  return result;
}

RemoveResult ErasureScheme::remove(gcs::MultiCloudSession& session,
                                   const meta::FileMeta& meta) const {
  return remove_fragments(session, container_, meta, write_ack_);
}

common::Result<std::vector<std::pair<std::string, common::Buffer>>>
ErasureScheme::rebuild_fragments_for(gcs::MultiCloudSession& session,
                                     const meta::FileMeta& meta,
                                     const std::string& provider,
                                     common::SimDuration* latency) const {
  const auto& geom = striper_.geometry();
  const auto clients = slot_clients(session, meta);

  // Fetch every fragment not on `provider`.
  std::vector<std::optional<common::Bytes>> shards(geom.total());
  std::vector<std::size_t> batch_slots;
  std::vector<std::size_t> target_slots;
  for (std::size_t i = 0; i < geom.total(); ++i) {
    if (meta.locations[i].provider == provider) {
      target_slots.push_back(i);
      continue;
    }
    if (clients[i] == static_cast<std::size_t>(-1)) continue;
    batch_slots.push_back(i);
  }
  if (target_slots.empty()) {
    return std::vector<std::pair<std::string, common::Buffer>>{};
  }

  gcs::AsyncBatch batch(session);
  for (std::size_t slot : batch_slots) {
    batch.submit(gcs::CloudOp::get(
        clients[slot], {container_, meta.locations[slot].object_name}));
  }

  // Reconstruction needs any k intact survivors; under kFastestK the
  // rebuild completes at the k-th and cancels the rest.
  const auto usable = [&](const gcs::CloudCompletion& c) {
    return c.ok() &&
           fragment_intact(meta, batch_slots[c.op_index], c.result.data);
  };
  gcs::BatchStats stats;
  auto gets = read_strategy_ == ErasureReadStrategy::kFastestK
                  ? batch.await_first(geom.k, &stats, usable)
                  : batch.await_all(&stats);
  if (latency != nullptr) *latency += stats.latency;
  for (auto& c : gets) {
    // Corrupt survivors must not poison the rebuilt fragments.
    const std::size_t slot = batch_slots[c.op_index];
    if (c.ok() && fragment_intact(meta, slot, c.result.data)) {
      shards[slot] = std::move(c.result.data).into_bytes();
    }
  }

  erasure::ReedSolomon rs(geom.k, geom.m);
  if (auto st = rs.reconstruct(shards); !st.is_ok()) return st;

  std::vector<std::pair<std::string, common::Buffer>> out;
  out.reserve(target_slots.size());
  for (std::size_t slot : target_slots) {
    out.emplace_back(meta.locations[slot].object_name,
                     common::Buffer::from(std::move(*shards[slot])));
  }
  return out;
}

}  // namespace hyrd::dist
