// RecoveryManager: the two-phase outage recovery of paper §III-C.
//
// Phase 1 (during the outage) is on-demand reconstruction and lives in the
// schemes' read paths — nothing is eagerly migrated. Phase 2 (this class)
// runs when the provider returns: replay the update log against it so its
// stale objects become consistent, then truncate the log.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "dist/erasure_scheme.h"
#include "dist/replication.h"
#include "gcsapi/session.h"
#include "metadata/metadata_store.h"
#include "metadata/update_log.h"

namespace hyrd::dist {

struct RecoveryReport {
  common::Status status;
  std::size_t objects_repushed = 0;
  std::size_t removes_applied = 0;
  std::size_t skipped = 0;  // log records whose file no longer exists
  std::uint64_t bytes_pushed = 0;
  common::SimDuration latency = 0;
};

class RecoveryManager {
 public:
  RecoveryManager(gcs::MultiCloudSession& session, meta::MetadataStore& store,
                  meta::UpdateLog& log, const ReplicationScheme& replication,
                  const ErasureScheme& erasure)
      : session_(session),
        store_(store),
        log_(log),
        replication_(replication),
        erasure_(erasure) {}

  /// Hook for synthetic objects (e.g. serialized metadata-directory
  /// blocks): given a logged logical path, return the current object bytes
  /// to push, or nullopt if this path is not synthetic. Checked before the
  /// metadata-store lookup.
  using BlockRegenerator =
      std::function<std::optional<common::Bytes>(const std::string& path)>;
  void set_block_regenerator(BlockRegenerator fn) {
    regenerator_ = std::move(fn);
  }

  /// Replays all pending log records for `provider` (which must be back
  /// online) and truncates the processed prefix.
  RecoveryReport resync(const std::string& provider);

 private:
  BlockRegenerator regenerator_;
  gcs::MultiCloudSession& session_;
  meta::MetadataStore& store_;
  meta::UpdateLog& log_;
  const ReplicationScheme& replication_;
  const ErasureScheme& erasure_;
};

}  // namespace hyrd::dist
