// Common vocabulary for redundant data distribution schemes.
//
// A scheme turns (path, bytes) into fragments on providers and back. The
// two concrete schemes — ReplicationScheme and ErasureScheme — are exactly
// the two options the paper contrasts in §II-B; HyRD composes them, RACS
// uses only erasure, DuraCloud only replication.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "gcsapi/session.h"
#include "metadata/file_meta.h"

namespace hyrd::dist {

/// Result of a mutating scheme operation.
struct WriteResult {
  common::Status status;
  common::SimDuration latency = 0;
  meta::FileMeta meta;  // valid when status is OK
};

/// Result of a read.
struct ReadResult {
  common::Status status;
  common::SimDuration latency = 0;
  common::Bytes data;
  bool degraded = false;  // true if reconstruction / failover was needed
};

/// Result of a remove; lists providers that could not be reached so the
/// caller can log them for post-outage consistency updates.
struct RemoveResult {
  common::Status status;
  common::SimDuration latency = 0;
  std::vector<std::string> unreachable_providers;
};

/// Deterministic provider-side object name for a fragment of a file.
/// `suffix` is "r" for replicas, "s" for erasure shards.
std::string fragment_object_name(const std::string& path, char suffix,
                                 std::size_t index);

/// Orders client indices by expected GET latency for a transfer of `size`
/// bytes (fastest first). Used to pick which replica to read.
std::vector<std::size_t> order_by_expected_read_latency(
    const gcs::MultiCloudSession& session,
    const std::vector<std::size_t>& clients, std::uint64_t size);

}  // namespace hyrd::dist
