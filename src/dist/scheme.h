// Common vocabulary for redundant data distribution schemes.
//
// A scheme turns (path, bytes) into fragments on providers and back. The
// two concrete schemes — ReplicationScheme and ErasureScheme — are exactly
// the two options the paper contrasts in §II-B; HyRD composes them, RACS
// uses only erasure, DuraCloud only replication.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "gcsapi/async_batch.h"
#include "gcsapi/session.h"
#include "metadata/file_meta.h"

namespace hyrd::dist {

/// Result of a mutating scheme operation.
struct WriteResult {
  common::Status status;
  common::SimDuration latency = 0;
  meta::FileMeta meta;  // valid when status is OK
};

/// Result of a read.
struct ReadResult {
  common::Status status;
  common::SimDuration latency = 0;
  common::Buffer data;  // ref-counted view; see common/buffer.h
  bool degraded = false;  // true if reconstruction / failover was needed

  // Early-completion accounting (first-k / hedged paths; zero otherwise):
  // virtual time saved versus waiting for the slowest request, and how
  // many stragglers were torn down instead of awaited.
  common::SimDuration saved = 0;
  std::size_t cancelled_stragglers = 0;
};

/// Result of a remove; lists providers that could not be reached so the
/// caller can log them for post-outage consistency updates.
struct RemoveResult {
  common::Status status;
  common::SimDuration latency = 0;
  std::vector<std::string> unreachable_providers;
};

/// Deterministic provider-side object name for a fragment of a file.
/// `suffix` is "r" for replicas, "s" for erasure shards.
std::string fragment_object_name(const std::string& path, char suffix,
                                 std::size_t index);

/// Orders client indices by expected GET latency for a transfer of `size`
/// bytes (fastest first). Used to pick which replica to read.
std::vector<std::size_t> order_by_expected_read_latency(
    const gcs::MultiCloudSession& session,
    const std::vector<std::size_t>& clients, std::uint64_t size);

/// Shared remove core for both schemes: issues one remove per fragment
/// location concurrently through the async engine.
///
///   kAll          wait for every remove; latency = max; only kUnavailable
///                 failures are reported unreachable (the legacy contract).
///   kFirstSuccess ack at the first confirmed remove, cancel the rest.
///   kQuorum       ack at the majority of reachable targets.
///
/// Under early ack, *every* location whose remove did not confirm success —
/// failed, cancelled mid-flight, or never dispatched — is reported in
/// unreachable_providers so the caller's UpdateLog replays it after the
/// outage (removes are idempotent; a kNotFound on resync is fine). Without
/// this, a fragment whose remove was torn down after the ack would survive
/// as an orphan forever.
RemoveResult remove_fragments(gcs::MultiCloudSession& session,
                              const std::string& container,
                              const meta::FileMeta& meta,
                              gcs::AckPolicy ack = gcs::AckPolicy::kAll);

}  // namespace hyrd::dist
