// ReplicationScheme: k-way full replication across providers.
//
// The paper uses this for file-system metadata and small files (replication
// level 2 by default, configurable §III-C) and it is the whole of the
// DuraCloud baseline. Writes fan out in parallel (latency = slowest
// replica); reads go to the expected-fastest online replica and fail over.
#pragma once

#include "dist/scheme.h"

namespace hyrd::dist {

/// How replicas are written. kParallel fans out and completes with the
/// slowest replica (HyRD's dispatcher). kSequential pushes copies one
/// after another — the DuraCloud synchronization model, where the write
/// returns only after every copy is confirmed in turn; this is why the
/// paper observes DuraCloud *improving* during an outage (the unreachable
/// copy's write is skipped, "no double writes or updates are performed").
enum class ReplicaWriteMode { kParallel, kSequential };

class ReplicationScheme {
 public:
  explicit ReplicationScheme(std::string container,
                             ReplicaWriteMode mode = ReplicaWriteMode::kParallel)
      : container_(std::move(container)), mode_(mode) {}

  [[nodiscard]] const std::string& container() const { return container_; }
  [[nodiscard]] ReplicaWriteMode write_mode() const { return mode_; }

  /// Writes one replica to each client in `replica_clients` concurrently.
  /// Succeeds if at least one replica lands (the paper's availability model:
  /// writes during an outage proceed and the offline copy is logged); the
  /// result lists which providers were written in meta.locations and which
  /// were unreachable via `unreachable` (if non-null).
  WriteResult write(gcs::MultiCloudSession& session, const std::string& path,
                    common::ByteSpan data,
                    const std::vector<std::size_t>& replica_clients,
                    std::vector<std::string>* unreachable = nullptr) const;

  /// Reads from the expected-fastest replica, failing over in latency
  /// order. `degraded` is set when the first choice was unavailable.
  ReadResult read(gcs::MultiCloudSession& session,
                  const meta::FileMeta& meta) const;

  /// In-place range update: a block write to every replica, in parallel —
  /// no read amplification at all (paper §II-B: under replication a small
  /// update "just writes new data"). Must not grow the file. The returned
  /// meta has crc = 0 (whole-object digest unknown after a partial write).
  WriteResult update_range(gcs::MultiCloudSession& session,
                           const meta::FileMeta& meta, std::uint64_t offset,
                           common::ByteSpan data,
                           std::vector<std::string>* unreachable = nullptr) const;

  /// Removes all replicas concurrently.
  RemoveResult remove(gcs::MultiCloudSession& session,
                      const meta::FileMeta& meta) const;

 private:
  std::string container_;
  ReplicaWriteMode mode_;
};

}  // namespace hyrd::dist
