// ReplicationScheme: k-way full replication across providers.
//
// The paper uses this for file-system metadata and small files (replication
// level 2 by default, configurable §III-C) and it is the whole of the
// DuraCloud baseline. Writes fan out in parallel (latency = slowest
// replica); reads go to the expected-fastest online replica and fail over.
#pragma once

#include "dist/scheme.h"

namespace hyrd::dist {

/// How replicas are written. kParallel fans out and completes with the
/// slowest replica (HyRD's dispatcher). kSequential pushes copies one
/// after another — the DuraCloud synchronization model, where the write
/// returns only after every copy is confirmed in turn; this is why the
/// paper observes DuraCloud *improving* during an outage (the unreachable
/// copy's write is skipped, "no double writes or updates are performed").
enum class ReplicaWriteMode { kParallel, kSequential };

/// Hedged-read policy. A replicated read goes to the expected-fastest
/// online replica first; a hedge fires a second request when the primary
/// is slow by either clock:
///  * virtual  — the primary's response costs more than `delay_factor` ×
///    its expected latency (a brownout: reachable but degraded), or
///  * real     — no response within `real_stall_timeout_ms` of wall time
///    (a wedged request that virtual accounting alone can never observe).
/// The hedge is charged as fired at the virtual delay threshold, and the
/// read completes at the earliest usable arrival. The defaults are
/// deliberately conservative: under the baseline jitter model (lognormal
/// sigma 0.08) a 3x-expected response never occurs, so hedges fire only
/// under genuine brownouts or stalls and the normal-path economics (one
/// GET per read) are unchanged.
struct HedgePolicy {
  bool enabled = true;
  double delay_factor = 3.0;
  int real_stall_timeout_ms = 200;
};

class ReplicationScheme {
 public:
  explicit ReplicationScheme(std::string container,
                             ReplicaWriteMode mode = ReplicaWriteMode::kParallel)
      : container_(std::move(container)), mode_(mode) {}

  [[nodiscard]] const std::string& container() const { return container_; }
  [[nodiscard]] ReplicaWriteMode write_mode() const { return mode_; }

  void set_hedge(HedgePolicy policy) { hedge_ = policy; }
  [[nodiscard]] const HedgePolicy& hedge() const { return hedge_; }

  /// Write/remove ack policy (parallel mode only; sequential writes are a
  /// confirmation chain and always ack at the end). kAll keeps the legacy
  /// contract: latency = slowest replica. kFirstSuccess acks at the first
  /// durable copy while the rest land in the background of the same call;
  /// kQuorum at the majority. Failures are still observed and reported.
  void set_write_ack(gcs::AckPolicy ack) { write_ack_ = ack; }
  [[nodiscard]] gcs::AckPolicy write_ack() const { return write_ack_; }

  /// Writes one replica to each client in `replica_clients` concurrently.
  /// Succeeds if at least one replica lands (the paper's availability model:
  /// writes during an outage proceed and the offline copy is logged); the
  /// result lists which providers were written in meta.locations and which
  /// were unreachable via `unreachable` (if non-null).
  /// Zero-copy N-way fan-out: one owning Buffer is submitted to every
  /// replica target by refbump; no per-replica payload copies are made.
  WriteResult write(gcs::MultiCloudSession& session, const std::string& path,
                    common::Buffer data,
                    const std::vector<std::size_t>& replica_clients,
                    std::vector<std::string>* unreachable = nullptr) const;

  /// Legacy span adapter (no copy: the write is synchronous, so a borrowed
  /// view is safe for its duration).
  WriteResult write(gcs::MultiCloudSession& session, const std::string& path,
                    common::ByteSpan data,
                    const std::vector<std::size_t>& replica_clients,
                    std::vector<std::string>* unreachable = nullptr) const {
    return write(session, path, common::Buffer::borrow(data), replica_clients,
                 unreachable);
  }

  /// One object of a group commit (see write_many).
  struct GroupWrite {
    std::string path;
    common::Buffer data;
  };
  struct GroupWriteResult {
    WriteResult result;
    std::vector<std::string> unreachable;
  };

  /// Group commit: writes many small objects through ONE AsyncBatch —
  /// every object × every replica target submitted together, so in
  /// virtual time the whole group overlaps into a single fan-out round
  /// (the client write-back cache's flush path). Per-entry semantics
  /// mirror write(): an entry succeeds if at least one of its replicas
  /// landed, its latency honors the configured AckPolicy over its own
  /// completions, and its unreachable providers are reported for
  /// update-log accounting. `batch_latency` (if non-null) receives the
  /// whole batch's completion time. Parallel mode only; sequential
  /// (DuraCloud-style confirmation chains) falls back to per-item write().
  std::vector<GroupWriteResult> write_many(
      gcs::MultiCloudSession& session, std::vector<GroupWrite> items,
      const std::vector<std::size_t>& replica_clients,
      common::SimDuration* batch_latency = nullptr) const;

  /// Reads from the expected-fastest replica, failing over in latency
  /// order; a hedged backup fires per the HedgePolicy when the primary is
  /// slow or stalled. `degraded` is set when the first choice was
  /// unavailable (a hedge win alone is not degradation).
  ReadResult read(gcs::MultiCloudSession& session,
                  const meta::FileMeta& meta) const;

  /// In-place range update: a block write to every replica, in parallel —
  /// no read amplification at all (paper §II-B: under replication a small
  /// update "just writes new data"). Must not grow the file. The returned
  /// meta has crc = 0 (whole-object digest unknown after a partial write).
  WriteResult update_range(gcs::MultiCloudSession& session,
                           const meta::FileMeta& meta, std::uint64_t offset,
                           common::ByteSpan data,
                           std::vector<std::string>* unreachable = nullptr) const;

  /// Removes all replicas concurrently.
  RemoveResult remove(gcs::MultiCloudSession& session,
                      const meta::FileMeta& meta) const;

 private:
  std::string container_;
  ReplicaWriteMode mode_;
  HedgePolicy hedge_;
  gcs::AckPolicy write_ack_ = gcs::AckPolicy::kAll;
};

}  // namespace hyrd::dist
