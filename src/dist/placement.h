// Placement policies: which providers get which fragments.
//
// RoundRobinPlacement is RACS-style: every object uses all providers, with
// the parity slot rotating (classic RAID5 parity rotation) so no single
// provider accumulates all parity.
//
// CategoryPlacement is HyRD-style (Fig. 2): replicas go to the expected-
// fastest providers (performance-oriented), erasure data fragments go to
// the cheapest-to-serve providers with parity pushed onto the most
// expensive slot (parity is only read on degraded paths, so placing it on
// the costly/slow provider minimizes both normal-read latency and egress
// cost).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "gcsapi/session.h"

namespace hyrd::dist {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Client indices for `count` replicas, preference order.
  virtual std::vector<std::size_t> replicas(
      const gcs::MultiCloudSession& session, std::size_t count) = 0;

  /// Client indices for `count` erasure slots (k data slots first, then
  /// parity slots).
  virtual std::vector<std::size_t> shards(const gcs::MultiCloudSession& session,
                                          std::size_t count) = 0;
};

class RoundRobinPlacement final : public PlacementPolicy {
 public:
  std::vector<std::size_t> replicas(const gcs::MultiCloudSession& session,
                                    std::size_t count) override;
  std::vector<std::size_t> shards(const gcs::MultiCloudSession& session,
                                  std::size_t count) override;

 private:
  std::atomic<std::size_t> next_{0};
};

class CategoryPlacement final : public PlacementPolicy {
 public:
  /// `reference_size` is the transfer size used to rank providers by
  /// expected latency for replica placement (small-file regime).
  explicit CategoryPlacement(std::uint64_t reference_size = 64 * 1024)
      : reference_size_(reference_size) {}

  std::vector<std::size_t> replicas(const gcs::MultiCloudSession& session,
                                    std::size_t count) override;
  std::vector<std::size_t> shards(const gcs::MultiCloudSession& session,
                                  std::size_t count) override;

 private:
  std::uint64_t reference_size_;
};

}  // namespace hyrd::dist
