#include "dist/replication.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/virtual_time.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyrd::dist {

namespace {

/// Majority of the intended replica set (DepSky-style quorum rank).
std::size_t majority(std::size_t n) { return n / 2 + 1; }

obs::Counter& hedge_counter() {
  static obs::Counter c = obs::MetricsRegistry::global().counter("scheme.hedges");
  return c;
}

/// Scheme-level span stamped with the issuing tenant's virtual context
/// (tid 0 / ts 0 for plain non-sim traffic).
void emit_scheme_span(const char* name, common::SimDuration dur,
                      std::initializer_list<obs::TraceSpan::Arg> args) {
  if (!obs::trace_active()) return;
  obs::TraceSpan span;
  span.name = name;
  span.cat = "scheme";
  if (const auto base = common::VirtualScope::snapshot()) {
    span.tid = base->tenant;
    span.ts = base->now;
  }
  span.dur = dur;
  for (const auto& a : args) span.arg(a.key, a.value);
  obs::emit(std::move(span));
}

}  // namespace

WriteResult ReplicationScheme::write(
    gcs::MultiCloudSession& session, const std::string& path,
    common::Buffer data, const std::vector<std::size_t>& replica_clients,
    std::vector<std::string>* unreachable) const {
  WriteResult result;
  if (replica_clients.empty()) {
    result.status = common::invalid_argument("no replica targets");
    return result;
  }

  std::vector<cloud::ObjectKey> keys;
  keys.reserve(replica_clients.size());
  for (std::size_t i = 0; i < replica_clients.size(); ++i) {
    keys.push_back({container_, fragment_object_name(path, 'r', i)});
  }

  std::vector<cloud::OpResult> results;
  results.reserve(replica_clients.size());
  if (mode_ == ReplicaWriteMode::kParallel) {
    gcs::AsyncBatch batch(session);
    for (std::size_t i = 0; i < replica_clients.size(); ++i) {
      batch.submit(gcs::CloudOp::put(replica_clients[i], keys[i], data));
    }
    gcs::BatchStats stats;
    auto completions =
        write_ack_ == gcs::AckPolicy::kAll
            ? batch.await_all(&stats)
            : batch.await_ack(write_ack_, &stats,
                              majority(replica_clients.size()));
    result.latency = stats.latency;
    for (auto& c : completions) {
      results.push_back(static_cast<cloud::OpResult&&>(std::move(c.result)));
    }
  } else {
    // Sequential synchronization: each copy is confirmed in turn, so the
    // next put is submitted at the previous put's virtual completion and
    // the final arrival is the legacy sum of latencies. Unreachable
    // targets fail fast and are skipped.
    gcs::AsyncBatch batch(session);
    common::SimDuration offset = 0;
    for (std::size_t i = 0; i < replica_clients.size(); ++i) {
      batch.submit(
          gcs::CloudOp::put(replica_clients[i], keys[i], data, offset));
      auto c = batch.next();
      offset = c->arrival;
      results.push_back(static_cast<cloud::OpResult&&>(std::move(c->result)));
    }
    result.latency = offset;
  }

  std::size_t landed = 0;
  meta::FileMeta m;
  m.path = path;
  m.size = data.size();
  m.redundancy = meta::RedundancyKind::kReplicated;
  m.crc = common::crc32c(data);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string& provider =
        session.client(replica_clients[i]).provider_name();
    if (results[i].ok()) {
      ++landed;
    } else if (unreachable != nullptr) {
      unreachable->push_back(provider);
    }
    // Record every intended location; unreachable ones are the caller's
    // update-log entries and will be consistency-updated on recovery.
    m.locations.push_back({provider, keys[i].name});
  }

  if (landed == 0) {
    result.status = common::unavailable("no replica target reachable");
    return result;
  }
  result.status = common::Status::ok();
  result.meta = std::move(m);
  emit_scheme_span("replicated_write", result.latency,
                   {{"replicas", static_cast<long long>(replica_clients.size())},
                    {"landed", static_cast<long long>(landed)}});
  return result;
}

std::vector<ReplicationScheme::GroupWriteResult> ReplicationScheme::write_many(
    gcs::MultiCloudSession& session, std::vector<GroupWrite> items,
    const std::vector<std::size_t>& replica_clients,
    common::SimDuration* batch_latency) const {
  std::vector<GroupWriteResult> out(items.size());
  if (items.empty()) return out;
  if (replica_clients.empty()) {
    for (auto& o : out) {
      o.result.status = common::invalid_argument("no replica targets");
    }
    return out;
  }
  if (mode_ != ReplicaWriteMode::kParallel) {
    // Sequential confirmation chains cannot overlap a group; keep the
    // per-item semantics instead.
    for (std::size_t i = 0; i < items.size(); ++i) {
      out[i].result = write(session, items[i].path, std::move(items[i].data),
                            replica_clients, &out[i].unreachable);
    }
    return out;
  }

  const std::size_t replicas = replica_clients.size();
  std::vector<std::vector<cloud::ObjectKey>> keys(items.size());
  gcs::AsyncBatch batch(session);
  for (std::size_t i = 0; i < items.size(); ++i) {
    keys[i].reserve(replicas);
    for (std::size_t r = 0; r < replicas; ++r) {
      keys[i].push_back({container_, fragment_object_name(items[i].path, 'r', r)});
      // op_index = i * replicas + r: one flat submission order.
      batch.submit(
          gcs::CloudOp::put(replica_clients[r], keys[i][r], items[i].data));
    }
  }
  gcs::BatchStats stats;
  auto completions = batch.await_all(&stats);
  if (batch_latency != nullptr) *batch_latency = stats.latency;

  // Demux completions back to their entries.
  struct OpOutcome {
    bool ok = false;
    common::SimDuration arrival = 0;
  };
  std::vector<std::vector<OpOutcome>> per_item(items.size(),
                                               std::vector<OpOutcome>(replicas));
  for (const auto& c : completions) {
    const std::size_t item = c.op_index / replicas;
    const std::size_t rep = c.op_index % replicas;
    per_item[item][rep] = {c.ok(), c.arrival};
  }

  const std::size_t quorum = majority(replicas);
  for (std::size_t i = 0; i < items.size(); ++i) {
    auto& o = out[i];
    meta::FileMeta m;
    m.path = items[i].path;
    m.size = items[i].data.size();
    m.redundancy = meta::RedundancyKind::kReplicated;
    m.crc = common::crc32c(items[i].data);

    std::size_t landed = 0;
    std::vector<common::SimDuration> success_arrivals;
    common::SimDuration all_arrival = 0;
    for (std::size_t r = 0; r < replicas; ++r) {
      const std::string& provider =
          session.client(replica_clients[r]).provider_name();
      all_arrival = std::max(all_arrival, per_item[i][r].arrival);
      if (per_item[i][r].ok) {
        ++landed;
        success_arrivals.push_back(per_item[i][r].arrival);
      } else {
        o.unreachable.push_back(provider);
      }
      m.locations.push_back({provider, keys[i][r].name});
    }
    if (landed == 0) {
      o.result.status = common::unavailable("no replica target reachable");
      o.result.latency = all_arrival;
      continue;
    }
    // Per-entry ack latency over its own completions, mirroring write().
    std::sort(success_arrivals.begin(), success_arrivals.end());
    switch (write_ack_) {
      case gcs::AckPolicy::kFirstSuccess:
        o.result.latency = success_arrivals.front();
        break;
      case gcs::AckPolicy::kQuorum:
        o.result.latency = landed >= quorum ? success_arrivals[quorum - 1]
                                            : success_arrivals.back();
        break;
      case gcs::AckPolicy::kAll:
      default:
        o.result.latency = all_arrival;
        break;
    }
    o.result.status = common::Status::ok();
    o.result.meta = std::move(m);
  }
  emit_scheme_span(
      "replicated_group_write", stats.latency,
      {{"objects", static_cast<long long>(items.size())},
       {"replicas", static_cast<long long>(replicas)}});
  return out;
}

ReadResult ReplicationScheme::read(gcs::MultiCloudSession& session,
                                   const meta::FileMeta& meta) const {
  ReadResult result;
  if (meta.locations.empty()) {
    result.status = common::invalid_argument("meta has no replica locations");
    return result;
  }

  // Providers known to be in outage are skipped outright (the client has
  // already seen their connections refused); surprise failures below
  // still fail over replica by replica.
  std::vector<std::size_t> clients;
  clients.reserve(meta.locations.size());
  for (const auto& loc : meta.locations) {
    const std::size_t idx = session.index_of(loc.provider);
    if (idx == static_cast<std::size_t>(-1)) continue;
    if (!session.client(idx).provider()->online()) {
      result.degraded = true;
      continue;
    }
    clients.push_back(idx);
  }
  const auto order =
      order_by_expected_read_latency(session, clients, meta.size);

  const auto loc_for_client =
      [&](std::size_t client_idx) -> const meta::FragmentLocation* {
    const auto& provider = session.client(client_idx).provider_name();
    for (const auto& l : meta.locations) {
      if (l.provider == provider) return &l;
    }
    return nullptr;
  };

  gcs::AsyncBatch batch(session);
  std::vector<bool> op_is_hedge;
  std::size_t cursor = 0;  // next candidate in `order`
  const auto submit_next = [&](common::SimDuration start,
                               bool is_hedge) -> bool {
    while (cursor < order.size()) {
      const std::size_t client_idx = order[cursor];
      ++cursor;
      const auto* loc = loc_for_client(client_idx);
      if (loc == nullptr) continue;
      batch.submit(gcs::CloudOp::get(client_idx,
                                     {container_, loc->object_name}, start));
      op_is_hedge.push_back(is_hedge);
      if (is_hedge) hedge_counter().inc();
      return true;
    }
    return false;
  };

  bool first_attempt = !result.degraded;
  if (!submit_next(0, false)) {
    result.status = common::unavailable("no replica readable for " + meta.path);
    return result;
  }

  // A hedge fires at delay_factor × the primary's *expected* latency: the
  // client plans against the advertised model, not the (unknowable ahead
  // of time) sampled response.
  const bool may_hedge = hedge_.enabled && order.size() > 1;
  const common::SimDuration hedge_delay =
      may_hedge ? static_cast<common::SimDuration>(
                      hedge_.delay_factor *
                      static_cast<double>(
                          session.client(order[0])
                              .provider()
                              ->latency_model()
                              .expected(cloud::OpKind::kGet, meta.size)))
                : 0;

  bool hedge_attempted = false;
  bool have_usable = false;
  common::Buffer best_data;
  common::SimDuration best_arrival = 0;
  common::SimDuration worst_arrival = 0;  // max non-cancelled arrival seen

  for (;;) {
    std::optional<gcs::CloudCompletion> c;
    if (may_hedge && !hedge_attempted) {
      c = batch.next_for(hedge_.real_stall_timeout_ms);
      if (!c.has_value()) {
        if (batch.pending() == 0) break;  // all delivered
        // No response in real time: the primary is wedged, not merely
        // virtually slow. Fire the hedge now; it is charged as submitted
        // at the virtual delay threshold.
        hedge_attempted = true;
        submit_next(hedge_delay, true);
        continue;
      }
    } else {
      c = batch.next();
      if (!c.has_value()) break;
    }

    if (c->cancelled) {
      ++result.cancelled_stragglers;
      continue;
    }
    worst_arrival = std::max(worst_arrival, c->arrival);
    const bool is_hedge = op_is_hedge[c->op_index];

    bool usable = c->ok();
    if (usable && meta.crc != 0 && common::crc32c(c->result.data) != meta.crc) {
      // Stale or corrupt replica (e.g. provider returned from outage
      // before consistency update); treat as a failure and move on.
      usable = false;
    }

    if (usable) {
      if (!have_usable || c->arrival < best_arrival) {
        best_arrival = c->arrival;
        best_data = std::move(c->result.data);
      }
      have_usable = true;
      // Virtually slow primary (brownout): the hedge would have fired at
      // hedge_delay, and whichever response arrives first in virtual time
      // wins. Submit it and keep collecting.
      if (may_hedge && !hedge_attempted && !is_hedge &&
          c->arrival > hedge_delay) {
        hedge_attempted = true;
        if (submit_next(hedge_delay, true)) continue;
      }
      break;  // a usable response in hand and no reason to wait for more
    }

    // Failure. Legacy failover: try the next replica in latency order,
    // submitted at this failure's virtual arrival so the chain sums.
    result.degraded = true;
    if (!is_hedge) first_attempt = false;
    if (!have_usable && batch.pending() == 0) {
      submit_next(c->arrival, false);
    }
  }

  if (!have_usable) {
    result.status =
        common::unavailable("no replica readable for " + meta.path);
    result.latency = worst_arrival;
    return result;
  }

  // Tear down whatever is still in flight (e.g. the wedged primary after
  // a hedge win) and account for responses that raced past the teardown.
  batch.cancel_remaining();
  while (auto d = batch.next()) {
    if (d->cancelled) {
      ++result.cancelled_stragglers;
      continue;
    }
    worst_arrival = std::max(worst_arrival, d->arrival);
    if (d->ok() &&
        !(meta.crc != 0 && common::crc32c(d->result.data) != meta.crc) &&
        d->arrival < best_arrival) {
      best_arrival = d->arrival;
      best_data = std::move(d->result.data);
    }
  }

  result.status = common::Status::ok();
  result.data = std::move(best_data);
  result.latency = best_arrival;
  result.saved =
      worst_arrival > best_arrival ? worst_arrival - best_arrival : 0;
  result.degraded = result.degraded || !first_attempt;
  emit_scheme_span("replicated_read", result.latency,
                   {{"hedged", hedge_attempted ? 1 : 0},
                    {"degraded", result.degraded ? 1 : 0},
                    {"saved_ns", static_cast<long long>(result.saved)}});
  return result;
}

WriteResult ReplicationScheme::update_range(
    gcs::MultiCloudSession& session, const meta::FileMeta& meta,
    std::uint64_t offset, common::ByteSpan data,
    std::vector<std::string>* unreachable) const {
  WriteResult result;
  if (!common::range_within(offset, data.size(), meta.size)) {
    result.status = common::invalid_argument("update range exceeds file size");
    return result;
  }

  std::vector<std::size_t> targets;
  std::vector<const meta::FragmentLocation*> locs;
  for (const auto& loc : meta.locations) {
    const std::size_t idx = session.index_of(loc.provider);
    if (idx == static_cast<std::size_t>(-1)) continue;
    targets.push_back(idx);
    locs.push_back(&loc);
  }

  std::vector<cloud::OpResult> results;
  results.reserve(targets.size());
  if (mode_ == ReplicaWriteMode::kParallel) {
    gcs::AsyncBatch batch(session);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      batch.submit(gcs::CloudOp::put_range(
          targets[i], {container_, locs[i]->object_name}, offset, data));
    }
    gcs::BatchStats stats;
    auto completions =
        write_ack_ == gcs::AckPolicy::kAll
            ? batch.await_all(&stats)
            : batch.await_ack(write_ack_, &stats, majority(targets.size()));
    result.latency = stats.latency;
    for (auto& c : completions) {
      results.push_back(static_cast<cloud::OpResult&&>(std::move(c.result)));
    }
  } else {
    gcs::AsyncBatch batch(session);
    common::SimDuration chain = 0;
    for (std::size_t i = 0; i < targets.size(); ++i) {
      batch.submit(gcs::CloudOp::put_range(
          targets[i], {container_, locs[i]->object_name}, offset, data,
          chain));
      auto c = batch.next();
      chain = c->arrival;
      results.push_back(static_cast<cloud::OpResult&&>(std::move(c->result)));
    }
    result.latency = chain;
  }

  std::size_t landed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) {
      ++landed;
    } else if (unreachable != nullptr) {
      unreachable->push_back(locs[i]->provider);
    }
  }
  if (landed == 0) {
    result.status = common::unavailable("no replica target reachable");
    return result;
  }
  result.status = common::Status::ok();
  result.meta = meta;
  result.meta.version = meta.version + 1;
  result.meta.crc = 0;
  return result;
}

RemoveResult ReplicationScheme::remove(gcs::MultiCloudSession& session,
                                       const meta::FileMeta& meta) const {
  return remove_fragments(session, container_, meta, write_ack_);
}

}  // namespace hyrd::dist
