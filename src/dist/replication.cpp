#include "dist/replication.h"

#include <algorithm>

#include "common/checksum.h"

namespace hyrd::dist {

WriteResult ReplicationScheme::write(
    gcs::MultiCloudSession& session, const std::string& path,
    common::ByteSpan data, const std::vector<std::size_t>& replica_clients,
    std::vector<std::string>* unreachable) const {
  WriteResult result;
  if (replica_clients.empty()) {
    result.status = common::invalid_argument("no replica targets");
    return result;
  }

  std::vector<gcs::BatchPut> batch;
  std::vector<cloud::ObjectKey> keys;
  batch.reserve(replica_clients.size());
  keys.reserve(replica_clients.size());
  for (std::size_t i = 0; i < replica_clients.size(); ++i) {
    keys.push_back({container_, fragment_object_name(path, 'r', i)});
    batch.push_back({replica_clients[i], keys.back(), data});
  }

  std::vector<cloud::OpResult> results;
  if (mode_ == ReplicaWriteMode::kParallel) {
    common::SimDuration batch_latency = 0;
    results = session.parallel_put(batch, &batch_latency);
    result.latency = batch_latency;
  } else {
    // Sequential synchronization: each copy confirmed in turn; latency is
    // the sum. Unreachable targets fail fast and are skipped.
    results.reserve(batch.size());
    for (const auto& op : batch) {
      auto r = session.client(op.client_index).put(op.key, op.data);
      result.latency += r.latency;
      results.push_back(std::move(r));
    }
  }

  std::size_t landed = 0;
  meta::FileMeta m;
  m.path = path;
  m.size = data.size();
  m.redundancy = meta::RedundancyKind::kReplicated;
  m.crc = common::crc32c(data);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::string& provider =
        session.client(replica_clients[i]).provider_name();
    if (results[i].ok()) {
      ++landed;
    } else if (unreachable != nullptr) {
      unreachable->push_back(provider);
    }
    // Record every intended location; unreachable ones are the caller's
    // update-log entries and will be consistency-updated on recovery.
    m.locations.push_back({provider, keys[i].name});
  }

  if (landed == 0) {
    result.status = common::unavailable("no replica target reachable");
    return result;
  }
  result.status = common::Status::ok();
  result.meta = std::move(m);
  return result;
}

ReadResult ReplicationScheme::read(gcs::MultiCloudSession& session,
                                   const meta::FileMeta& meta) const {
  ReadResult result;
  if (meta.locations.empty()) {
    result.status = common::invalid_argument("meta has no replica locations");
    return result;
  }

  // Providers known to be in outage are skipped outright (the client has
  // already seen their connections refused); surprise failures below
  // still fail over replica by replica.
  std::vector<std::size_t> clients;
  clients.reserve(meta.locations.size());
  for (const auto& loc : meta.locations) {
    const std::size_t idx = session.index_of(loc.provider);
    if (idx == static_cast<std::size_t>(-1)) continue;
    if (!session.client(idx).provider()->online()) {
      result.degraded = true;
      continue;
    }
    clients.push_back(idx);
  }
  const auto order =
      order_by_expected_read_latency(session, clients, meta.size);

  bool first_attempt = !result.degraded;
  for (std::size_t client_idx : order) {
    // Find the location entry for this client's provider.
    const auto& provider = session.client(client_idx).provider_name();
    const meta::FragmentLocation* loc = nullptr;
    for (const auto& l : meta.locations) {
      if (l.provider == provider) {
        loc = &l;
        break;
      }
    }
    if (loc == nullptr) continue;

    auto get = session.client(client_idx).get({container_, loc->object_name});
    result.latency += get.latency;
    if (get.ok()) {
      // crc == 0 marks "digest unknown" (after a partial range update).
      if (meta.crc != 0 && common::crc32c(get.data) != meta.crc) {
        // Stale or corrupt replica (e.g. provider returned from outage
        // before consistency update); try the next one.
        result.degraded = true;
        first_attempt = false;
        continue;
      }
      result.status = common::Status::ok();
      result.data = std::move(get.data);
      result.degraded = result.degraded || !first_attempt;
      return result;
    }
    first_attempt = false;
    result.degraded = true;
  }
  result.status = common::unavailable("no replica readable for " + meta.path);
  return result;
}

WriteResult ReplicationScheme::update_range(
    gcs::MultiCloudSession& session, const meta::FileMeta& meta,
    std::uint64_t offset, common::ByteSpan data,
    std::vector<std::string>* unreachable) const {
  WriteResult result;
  if (offset + data.size() > meta.size) {
    result.status = common::invalid_argument("update range exceeds file size");
    return result;
  }

  std::vector<gcs::BatchRangePut> batch;
  std::vector<const meta::FragmentLocation*> locs;
  for (const auto& loc : meta.locations) {
    const std::size_t idx = session.index_of(loc.provider);
    if (idx == static_cast<std::size_t>(-1)) continue;
    batch.push_back({idx, {container_, loc.object_name}, offset, data});
    locs.push_back(&loc);
  }

  std::vector<cloud::OpResult> results;
  if (mode_ == ReplicaWriteMode::kParallel) {
    common::SimDuration batch_latency = 0;
    results = session.parallel_put_range(batch, &batch_latency);
    result.latency = batch_latency;
  } else {
    results.reserve(batch.size());
    for (const auto& op : batch) {
      auto r = session.client(op.client_index)
                   .put_range(op.key, op.offset, op.data);
      result.latency += r.latency;
      results.push_back(std::move(r));
    }
  }

  std::size_t landed = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].ok()) {
      ++landed;
    } else if (unreachable != nullptr) {
      unreachable->push_back(locs[i]->provider);
    }
  }
  if (landed == 0) {
    result.status = common::unavailable("no replica target reachable");
    return result;
  }
  result.status = common::Status::ok();
  result.meta = meta;
  result.meta.version = meta.version + 1;
  result.meta.crc = 0;
  return result;
}

RemoveResult ReplicationScheme::remove(gcs::MultiCloudSession& session,
                                       const meta::FileMeta& meta) const {
  RemoveResult result;
  // Removes are issued to all replicas; virtual latency is the max, i.e.
  // the parallel-fan-out completion time.
  common::SimDuration max_latency = 0;
  for (const auto& loc : meta.locations) {
    const std::size_t idx = session.index_of(loc.provider);
    if (idx == static_cast<std::size_t>(-1)) {
      result.unreachable_providers.push_back(loc.provider);
      continue;
    }
    auto r = session.client(idx).remove({container_, loc.object_name});
    max_latency = std::max(max_latency, r.latency);
    if (!r.ok() && r.status.code() == common::StatusCode::kUnavailable) {
      result.unreachable_providers.push_back(loc.provider);
    }
  }
  result.latency = max_latency;
  result.status = common::Status::ok();
  return result;
}

}  // namespace hyrd::dist
