#include "dist/placement.h"

#include <algorithm>
#include <numeric>

namespace hyrd::dist {

namespace {

std::vector<std::size_t> all_clients(const gcs::MultiCloudSession& session) {
  std::vector<std::size_t> out(session.client_count());
  std::iota(out.begin(), out.end(), 0);
  return out;
}

}  // namespace

std::vector<std::size_t> RoundRobinPlacement::replicas(
    const gcs::MultiCloudSession& session, std::size_t count) {
  const std::size_t n = session.client_count();
  const std::size_t start = next_.fetch_add(1) % n;
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count && i < n; ++i) {
    out.push_back((start + i) % n);
  }
  return out;
}

std::vector<std::size_t> RoundRobinPlacement::shards(
    const gcs::MultiCloudSession& session, std::size_t count) {
  // Same rotation; rotating the start slot rotates which provider holds
  // parity (the last slot), RAID5-style.
  return replicas(session, count);
}

std::vector<std::size_t> CategoryPlacement::replicas(
    const gcs::MultiCloudSession& session, std::size_t count) {
  // Fastest expected small read first: performance-oriented providers.
  std::vector<std::size_t> clients = all_clients(session);
  std::stable_sort(clients.begin(), clients.end(), [&](std::size_t a,
                                                       std::size_t b) {
    const auto la = session.client(a).provider()->latency_model().expected(
        cloud::OpKind::kGet, reference_size_);
    const auto lb = session.client(b).provider()->latency_model().expected(
        cloud::OpKind::kGet, reference_size_);
    return la < lb;
  });
  if (clients.size() > count) clients.resize(count);
  return clients;
}

std::vector<std::size_t> CategoryPlacement::shards(
    const gcs::MultiCloudSession& session, std::size_t count) {
  // Cheapest to serve first: rank by storage + egress price. Data slots
  // (the first k) land on cheap-egress providers; parity (the last slots)
  // lands on the most expensive, which is only touched on degraded paths.
  std::vector<std::size_t> clients = all_clients(session);
  auto cost_score = [&](std::size_t idx) {
    const auto& prices = session.client(idx).provider()->config().prices;
    // Storage dominates long-term cost; egress dominates read-heavy
    // workloads (the IA trace reads 2.1x what it writes). Equal weights
    // approximate the paper's dual criterion.
    return prices.storage_gb_month + prices.data_out_gb;
  };
  std::stable_sort(clients.begin(), clients.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cost_score(a) < cost_score(b);
                   });
  if (clients.size() > count) clients.resize(count);
  return clients;
}

}  // namespace hyrd::dist
