#include "cloud/registry.h"

#include <cassert>

namespace hyrd::cloud {

SimProvider* CloudRegistry::add(ProviderConfig config, std::uint64_t seed) {
  assert(find(config.name) == nullptr && "duplicate provider name");
  providers_.push_back(std::make_unique<SimProvider>(std::move(config), seed));
  return providers_.back().get();
}

SimProvider* CloudRegistry::find(const std::string& name) const {
  for (const auto& p : providers_) {
    if (p->name() == name) return p.get();
  }
  return nullptr;
}

std::vector<SimProvider*> CloudRegistry::online() const {
  std::vector<SimProvider*> out;
  for (const auto& p : providers_) {
    if (p->online()) out.push_back(p.get());
  }
  return out;
}

std::vector<SimProvider*> CloudRegistry::by_declared_category(
    bool performance, bool cost) const {
  std::vector<SimProvider*> out;
  for (const auto& p : providers_) {
    const auto& cat = p->config().declared_category;
    if ((performance && cat.performance_oriented) ||
        (cost && cat.cost_oriented)) {
      out.push_back(p.get());
    }
  }
  return out;
}

double CloudRegistry::cumulative_cost() const {
  double total = 0.0;
  for (const auto& p : providers_) total += p->billing().cumulative_cost();
  return total;
}

void CloudRegistry::close_month_all() {
  for (const auto& p : providers_) p->close_month();
}

}  // namespace hyrd::cloud
