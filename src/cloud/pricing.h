// Cloud price schedules, modelled exactly after the paper's Table II
// (monthly price plans in USD for the China region, September 10th 2014).
//
// Real providers price storage and egress in usage tiers — the paper
// explicitly takes "the prices from the first chargeable usage tier"
// (storage within 1 TB/month on S3, egress between 1 GB and 10 TB).
// TieredRate models the full ladder; the standard profiles use flat
// first-tier rates so costs match the paper's methodology.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/object_store.h"

namespace hyrd::cloud {

/// Marginal usage tier: the rate applies to bytes up to `upto_bytes`
/// (cumulative); the final tier should use kUnbounded.
struct RateTier {
  std::uint64_t upto_bytes;
  double rate_per_gb;
};

class TieredRate {
 public:
  static constexpr std::uint64_t kUnbounded =
      static_cast<std::uint64_t>(-1);

  TieredRate() = default;
  /// Tiers must be in ascending `upto_bytes` order.
  explicit TieredRate(std::vector<RateTier> tiers) : tiers_(std::move(tiers)) {}

  [[nodiscard]] bool empty() const { return tiers_.empty(); }
  [[nodiscard]] const std::vector<RateTier>& tiers() const { return tiers_; }

  /// Marginal cost of `bytes` of usage: each slice of usage is billed at
  /// its own tier's rate (how S3-style ladders work).
  [[nodiscard]] double cost(std::uint64_t bytes) const {
    double total = 0.0;
    std::uint64_t billed = 0;
    for (const auto& tier : tiers_) {
      if (billed >= bytes) break;
      const std::uint64_t ceiling =
          tier.upto_bytes == kUnbounded ? bytes : std::min(bytes, tier.upto_bytes);
      if (ceiling > billed) {
        total += tier.rate_per_gb * static_cast<double>(ceiling - billed) / 1e9;
        billed = ceiling;
      }
    }
    return total;
  }

  /// Effective first-tier rate (what Table II quotes).
  [[nodiscard]] double first_tier_rate() const {
    return tiers_.empty() ? 0.0 : tiers_.front().rate_per_gb;
  }

 private:
  std::vector<RateTier> tiers_;
};

struct PriceSchedule {
  double storage_gb_month = 0.0;    // $ per decimal GB stored per month
  double data_in_gb = 0.0;          // $ per GB uploaded
  double data_out_gb = 0.0;         // $ per GB downloaded to Internet
  double put_class_per_10k = 0.0;   // $ per 10K Put/Copy/Post/List txns
  double get_class_per_10k = 0.0;   // $ per 10K Get & other txns

  // Optional full tier ladders; when empty the flat first-tier rates
  // above apply (the paper's methodology).
  TieredRate storage_tiers;
  TieredRate egress_tiers;

  [[nodiscard]] double storage_cost(std::uint64_t bytes_month) const {
    if (!storage_tiers.empty()) return storage_tiers.cost(bytes_month);
    return storage_gb_month * static_cast<double>(bytes_month) / 1e9;
  }
  [[nodiscard]] double ingress_cost(std::uint64_t bytes) const {
    return data_in_gb * static_cast<double>(bytes) / 1e9;
  }
  [[nodiscard]] double egress_cost(std::uint64_t bytes) const {
    if (!egress_tiers.empty()) return egress_tiers.cost(bytes);
    return data_out_gb * static_cast<double>(bytes) / 1e9;
  }
  [[nodiscard]] double txn_cost(OpKind op, std::uint64_t count) const {
    const double per_10k =
        is_put_class(op) ? put_class_per_10k : get_class_per_10k;
    return per_10k * static_cast<double>(count) / 1e4;
  }
};

/// Provider service orientation derived by the Cost & Performance Evaluator
/// (Table II bottom row): a provider can be cost-oriented, performance-
/// oriented, or both (the paper classifies Aliyun as both).
struct ProviderCategory {
  bool cost_oriented = false;
  bool performance_oriented = false;

  [[nodiscard]] std::string str() const {
    if (cost_oriented && performance_oriented) return "both";
    if (cost_oriented) return "cost-oriented";
    if (performance_oriented) return "performance-oriented";
    return "uncategorized";
  }
};

}  // namespace hyrd::cloud
