#include "cloud/congestion.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyrd::cloud {

namespace {

// Registry handles for the fair-queue plane, resolved once.
struct FqMetrics {
  obs::Counter admitted =
      obs::MetricsRegistry::global().counter("cloud.fq.admitted");
  obs::Counter queued =
      obs::MetricsRegistry::global().counter("cloud.fq.queued");
  obs::Counter throttled =
      obs::MetricsRegistry::global().counter("cloud.fq.throttled");
  obs::Counter wait_ns =
      obs::MetricsRegistry::global().counter("cloud.fq.wait_ns");
};

FqMetrics& fq_metrics() {
  static FqMetrics m;
  return m;
}

}  // namespace

FairQueue::FairQueue(CongestionParams params) : params_(params) {
  if (params_.channels == 0) params_.channels = 1;
  slot_free_.assign(params_.channels, 0);
}

common::SimDuration FairQueue::service_time(std::uint64_t bytes) const {
  double ms = params_.per_op_service_ms;
  if (bytes > 0 && params_.service_mbps > 0) {
    ms += static_cast<double>(bytes) / (params_.service_mbps * 1e6) * 1e3;
  }
  return common::from_ms(ms);
}

void FairQueue::prune(common::SimDuration arrival) {
  while (!waiting_.empty() && waiting_.top() <= arrival) waiting_.pop();
}

std::size_t FairQueue::depth_at(common::SimDuration now) {
  prune(now);
  return waiting_.size();
}

FairQueue::Admission FairQueue::admit(std::uint64_t tenant, double weight,
                                      common::SimDuration arrival,
                                      std::uint64_t bytes) {
  prune(arrival);
  if (waiting_.size() >= params_.max_queue_depth) {
    ++stats_.throttled;
    fq_metrics().throttled.inc();
    if (obs::trace_active()) {
      obs::TraceSpan span;
      span.name = "throttle429";
      span.cat = "cloud";
      span.tid = tenant;
      span.ts = arrival;
      span.arg("depth", static_cast<long long>(waiting_.size()));
      obs::emit(std::move(span));
    }
    return {.admitted = false, .wait = 0};
  }

  const common::SimDuration service = service_time(bytes);
  if (weight <= 0.0) weight = 1.0;

  // Per-flow pacing gate: a flow past its weighted share waits on its own
  // tag even when a slot is free, so one hot tenant cannot starve the rest.
  common::SimDuration gate = arrival;
  if (auto it = flow_tag_.find(tenant); it != flow_tag_.end()) {
    gate = std::max(gate, it->second);
  }

  auto slot = std::min_element(slot_free_.begin(), slot_free_.end());
  const common::SimDuration begin = std::max(gate, *slot);
  *slot = begin + service;
  flow_tag_[tenant] = begin + static_cast<common::SimDuration>(
                                  static_cast<double>(service) / weight);

  const common::SimDuration wait = begin - arrival;
  ++stats_.admitted;
  fq_metrics().admitted.inc();
  if (wait > 0) {
    fq_metrics().queued.inc();
    fq_metrics().wait_ns.add(static_cast<std::uint64_t>(wait));
    ++stats_.queued;
    waiting_.push(begin);
    stats_.peak_depth = std::max(stats_.peak_depth, waiting_.size());
    stats_.total_wait += wait;
    stats_.max_wait = std::max(stats_.max_wait, wait);
  }

  // The tag map must track backlogged flows, not every tenant ever seen:
  // at 10^6 closed-loop tenants an unpruned map is hundreds of MB. Tags at
  // or behind the current arrival are inert (gate falls back to arrival).
  if (++admits_since_prune_ >= 4096) {
    admits_since_prune_ = 0;
    for (auto it = flow_tag_.begin(); it != flow_tag_.end();) {
      it = it->second <= arrival ? flow_tag_.erase(it) : std::next(it);
    }
  }
  return {.admitted = true, .wait = wait};
}

}  // namespace hyrd::cloud
