#include "cloud/memory_store.h"

#include <cstring>

#include "common/copy_meter.h"

namespace hyrd::cloud {

common::Status MemoryStore::create(const std::string& container) {
  Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto [it, inserted] = shard.containers.try_emplace(container);
  (void)it;
  if (!inserted) {
    return common::already_exists("container exists: " + container);
  }
  return common::Status::ok();
}

common::Status MemoryStore::put(const std::string& container,
                                const std::string& name,
                                common::Buffer data) {
  // own() outside the lock: a no-op refbump for owning buffers, a deep
  // copy (the only one this path can make) for borrowed spans.
  common::Buffer owned = std::move(data).own();
  Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) {
    return common::not_found("no such container: " + container);
  }
  auto& obj = it->second[name];
  stored_bytes_.fetch_sub(obj.size(), std::memory_order_relaxed);
  obj = std::move(owned);
  stored_bytes_.fetch_add(obj.size(), std::memory_order_relaxed);
  return common::Status::ok();
}

common::Result<common::Buffer> MemoryStore::get(const std::string& container,
                                                const std::string& name) const {
  const Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  return obj->second;  // refbump, no byte moves
}

common::Result<common::Buffer> MemoryStore::get_range(
    const std::string& container, const std::string& name,
    std::uint64_t offset, std::uint64_t length) const {
  const Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  if (!common::range_within(offset, length, obj->second.size())) {
    return common::invalid_argument("range beyond object end");
  }
  return obj->second.slice(static_cast<std::size_t>(offset),
                           static_cast<std::size_t>(length));
}

common::Status MemoryStore::put_range(const std::string& container,
                                      const std::string& name,
                                      std::uint64_t offset,
                                      common::ByteSpan data) {
  Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  if (!common::range_within(offset, data.size(), obj->second.size())) {
    return common::invalid_argument("range write beyond object end");
  }
  // Copy-on-write: into_bytes() steals the block in O(1) when this store
  // holds the only reference; otherwise it forks a private copy and live
  // readers (or arena-sibling fragments) keep their snapshot.
  common::Bytes block = std::move(obj->second).into_bytes();
  common::count_copied_bytes(data.size());
  std::memcpy(block.data() + offset, data.data(), data.size());
  obj->second = common::Buffer::from(std::move(block));
  return common::Status::ok();
}

common::Status MemoryStore::remove(const std::string& container,
                                   const std::string& name) {
  Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  stored_bytes_.fetch_sub(obj->second.size(), std::memory_order_relaxed);
  it->second.erase(obj);
  return common::Status::ok();
}

common::Result<std::vector<std::string>> MemoryStore::list(
    const std::string& container) const {
  const Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) {
    return common::not_found("no such container: " + container);
  }
  std::vector<std::string> names;
  names.reserve(it->second.size());
  for (const auto& [name, data] : it->second) names.push_back(name);
  return names;
}

bool MemoryStore::container_exists(const std::string& container) const {
  const Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  return shard.containers.contains(container);
}

std::uint64_t MemoryStore::object_count() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [c, objs] : shard.containers) n += objs.size();
  }
  return n;
}

std::optional<std::uint64_t> MemoryStore::object_size(
    const std::string& container, const std::string& name) const {
  const Shard& shard = shard_for(container);
  std::lock_guard lock(shard.mu);
  auto it = shard.containers.find(container);
  if (it == shard.containers.end()) return std::nullopt;
  auto obj = it->second.find(name);
  if (obj == it->second.end()) return std::nullopt;
  return obj->second.size();
}

void MemoryStore::wipe() {
  // Shard by shard: wipe is not atomic with respect to concurrent writers
  // (neither was the single-lock version from any caller's perspective —
  // a racing put can always land "after" the wipe).
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const auto& [c, objs] : shard.containers) {
      for (const auto& [name, data] : objs) {
        stored_bytes_.fetch_sub(data.size(), std::memory_order_relaxed);
      }
    }
    shard.containers.clear();
  }
}

}  // namespace hyrd::cloud
