#include "cloud/memory_store.h"

namespace hyrd::cloud {

common::Status MemoryStore::create(const std::string& container) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = containers_.try_emplace(container);
  (void)it;
  if (!inserted) {
    return common::already_exists("container exists: " + container);
  }
  return common::Status::ok();
}

common::Status MemoryStore::put(const std::string& container,
                                const std::string& name,
                                common::ByteSpan data) {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return common::not_found("no such container: " + container);
  }
  auto& obj = it->second[name];
  stored_bytes_ -= obj.size();
  obj.assign(data.begin(), data.end());
  stored_bytes_ += obj.size();
  return common::Status::ok();
}

common::Result<common::Bytes> MemoryStore::get(const std::string& container,
                                               const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  return obj->second;
}

common::Result<common::Bytes> MemoryStore::get_range(
    const std::string& container, const std::string& name,
    std::uint64_t offset, std::uint64_t length) const {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  if (offset + length > obj->second.size()) {
    return common::invalid_argument("range beyond object end");
  }
  return common::Bytes(
      obj->second.begin() + static_cast<std::ptrdiff_t>(offset),
      obj->second.begin() + static_cast<std::ptrdiff_t>(offset + length));
}

common::Status MemoryStore::put_range(const std::string& container,
                                      const std::string& name,
                                      std::uint64_t offset,
                                      common::ByteSpan data) {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  if (offset + data.size() > obj->second.size()) {
    return common::invalid_argument("range write beyond object end");
  }
  std::copy(data.begin(), data.end(),
            obj->second.begin() + static_cast<std::ptrdiff_t>(offset));
  return common::Status::ok();
}

common::Status MemoryStore::remove(const std::string& container,
                                   const std::string& name) {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return common::not_found("no such container: " + container);
  }
  auto obj = it->second.find(name);
  if (obj == it->second.end()) {
    return common::not_found("no such object: " + container + "/" + name);
  }
  stored_bytes_ -= obj->second.size();
  it->second.erase(obj);
  return common::Status::ok();
}

common::Result<std::vector<std::string>> MemoryStore::list(
    const std::string& container) const {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) {
    return common::not_found("no such container: " + container);
  }
  std::vector<std::string> names;
  names.reserve(it->second.size());
  for (const auto& [name, data] : it->second) names.push_back(name);
  return names;
}

bool MemoryStore::container_exists(const std::string& container) const {
  std::lock_guard lock(mu_);
  return containers_.contains(container);
}

std::uint64_t MemoryStore::stored_bytes() const {
  std::lock_guard lock(mu_);
  return stored_bytes_;
}

std::uint64_t MemoryStore::object_count() const {
  std::lock_guard lock(mu_);
  std::uint64_t n = 0;
  for (const auto& [c, objs] : containers_) n += objs.size();
  return n;
}

std::optional<std::uint64_t> MemoryStore::object_size(
    const std::string& container, const std::string& name) const {
  std::lock_guard lock(mu_);
  auto it = containers_.find(container);
  if (it == containers_.end()) return std::nullopt;
  auto obj = it->second.find(name);
  if (obj == it->second.end()) return std::nullopt;
  return obj->second.size();
}

void MemoryStore::wipe() {
  std::lock_guard lock(mu_);
  containers_.clear();
  stored_bytes_ = 0;
}

}  // namespace hyrd::cloud
