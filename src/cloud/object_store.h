// The "passive storage functional entity" interface from the paper (§III-D):
// each cloud storage service supports exactly five functions — List, Get,
// Create (container), Put, and Remove — and nothing else executes provider
// side. Every redundancy scheme in this repo is built strictly on top of
// these five operations.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace hyrd::cloud {

/// Operation classes as billed by real providers (Table II): PUT-class
/// covers Put/Copy/Post/List; GET-class covers Get and everything else.
enum class OpKind : std::uint8_t {
  kList,
  kGet,
  kCreate,
  kPut,
  kRemove,
};

constexpr std::string_view op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kList: return "List";
    case OpKind::kGet: return "Get";
    case OpKind::kCreate: return "Create";
    case OpKind::kPut: return "Put";
    case OpKind::kRemove: return "Remove";
  }
  return "?";
}

/// True for operations billed under the Put/Copy/Post/List transaction tier.
constexpr bool is_put_class(OpKind k) {
  return k == OpKind::kPut || k == OpKind::kCreate || k == OpKind::kList;
}

struct ObjectKey {
  std::string container;
  std::string name;

  friend bool operator==(const ObjectKey&, const ObjectKey&) = default;
  [[nodiscard]] std::string str() const { return container + "/" + name; }
};

/// Outcome of a storage operation, carrying the simulated latency the
/// operation would have taken on the modelled network path.
struct OpResult {
  common::Status status;
  common::SimDuration latency = 0;
  std::uint64_t bytes_transferred = 0;

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

struct GetResult : OpResult {
  /// A ref-counted slice of the stored block — reads are refcount bumps,
  /// not copies (see common/buffer.h and DESIGN.md §9).
  common::Buffer data;
};

struct ListResult : OpResult {
  std::vector<std::string> names;
};

/// Abstract object store; implemented by SimProvider (and by the in-memory
/// backing store it wraps).
///
/// Writes take a `Buffer`: an owning buffer is kept by refbump (zero-copy);
/// a borrow()ed one is deep-copied by the store before it returns. The
/// ByteSpan overloads are thin adapters for legacy call sites — derived
/// classes that override the virtuals should `using ObjectStore::put;`
/// (and put_range) so the adapters stay visible.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  virtual OpResult create(const std::string& container) = 0;
  virtual OpResult put(const ObjectKey& key, common::Buffer data) = 0;
  virtual GetResult get(const ObjectKey& key) = 0;
  virtual OpResult remove(const ObjectKey& key) = 0;
  virtual ListResult list(const std::string& container) = 0;

  // Byte-range variants of Get and Put. Range GET is plain HTTP (RFC 7233);
  // range PUT models a block overwrite in a block-chunked object layout
  // (how RACS-style systems do sub-object updates — see DESIGN.md §2).
  // Both are billed as Get-/Put-class transactions on the bytes moved.
  virtual GetResult get_range(const ObjectKey& key, std::uint64_t offset,
                              std::uint64_t length) = 0;
  virtual OpResult put_range(const ObjectKey& key, std::uint64_t offset,
                             common::Buffer data) = 0;

  // Legacy span entry points (no copy here; the sink owns what it keeps).
  OpResult put(const ObjectKey& key, common::ByteSpan data) {
    return put(key, common::Buffer::borrow(data));
  }
  OpResult put_range(const ObjectKey& key, std::uint64_t offset,
                     common::ByteSpan data) {
    return put_range(key, offset, common::Buffer::borrow(data));
  }
};

}  // namespace hyrd::cloud
