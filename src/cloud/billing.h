// Billing meter: accumulates a provider's monthly bill the way the paper's
// cost simulation does (Fig. 4) — storage is charged on bytes resident at
// month close, transfers on bytes moved, transactions per 10K by class.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/object_store.h"
#include "cloud/pricing.h"

namespace hyrd::cloud {

struct MonthlyBill {
  int month = 0;                   // 0-based month index
  std::uint64_t stored_bytes = 0;  // resident at month close
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t put_class_txns = 0;
  std::uint64_t get_class_txns = 0;

  double storage_cost = 0.0;
  double ingress_cost = 0.0;
  double egress_cost = 0.0;
  double txn_cost = 0.0;

  [[nodiscard]] double total() const {
    return storage_cost + ingress_cost + egress_cost + txn_cost;
  }
};

class BillingMeter {
 public:
  explicit BillingMeter(PriceSchedule schedule) : schedule_(schedule) {}

  [[nodiscard]] const PriceSchedule& schedule() const { return schedule_; }

  /// Records one operation in the open month.
  void record(OpKind op, std::uint64_t bytes_transferred);

  /// Closes the open month against the bytes currently resident and opens
  /// the next one. Returns the closed bill.
  MonthlyBill close_month(std::uint64_t resident_bytes);

  [[nodiscard]] const std::vector<MonthlyBill>& bills() const { return bills_; }
  [[nodiscard]] double cumulative_cost() const;

  /// Cost accrued in the open (not yet closed) month, excluding storage.
  [[nodiscard]] double open_month_transfer_cost() const;

  void reset();

 private:
  PriceSchedule schedule_;
  std::vector<MonthlyBill> bills_;

  // Open-month accumulators.
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
  std::uint64_t put_txns_ = 0;
  std::uint64_t get_txns_ = 0;
};

}  // namespace hyrd::cloud
