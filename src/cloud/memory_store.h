// Thread-safe in-memory object store: the durable state behind a simulated
// provider. Latency/billing live in SimProvider; this class only stores.
//
// Two hot-path properties (DESIGN.md §9):
//  * Objects are held as ref-counted `Buffer`s, so get/get_range are a
//    refcount bump + O(1) slice — no memcpy under any lock — and put keeps
//    the caller's buffer by reference when it is owning (borrowed spans
//    are deep-copied before the lock is taken).
//  * The container map is sharded across kShards stripes keyed by the
//    container-name hash, so concurrent ops on different containers (and
//    every op against *other* shards) never contend on one global mutex.
//    stored_bytes_ is a relaxed atomic: it counts *logical* bytes — what a
//    provider would bill — not physical residency, which is per unique
//    block shared by however many fragments slice it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::cloud {

class MemoryStore {
 public:
  common::Status create(const std::string& container);

  /// Stores `data`. Owning buffers are kept by refbump (zero-copy);
  /// borrowed ones are deep-copied (outside the shard lock).
  common::Status put(const std::string& container, const std::string& name,
                     common::Buffer data);
  common::Status put(const std::string& container, const std::string& name,
                     common::ByteSpan data) {
    return put(container, name, common::Buffer::borrow(data));
  }

  /// Refcount bump: the returned Buffer aliases the stored block.
  common::Result<common::Buffer> get(const std::string& container,
                                     const std::string& name) const;

  /// Byte-range read ([offset, offset+length) must lie inside the object):
  /// an O(1) slice of the stored block.
  common::Result<common::Buffer> get_range(const std::string& container,
                                           const std::string& name,
                                           std::uint64_t offset,
                                           std::uint64_t length) const;

  /// Byte-range overwrite of an existing object (must not grow it). Models
  /// a block write in a block-chunked object layout (see DESIGN.md §2).
  /// Copy-on-write: if the stored block is shared with live readers (or
  /// with sibling fragments in the same arena), they keep the pre-write
  /// snapshot and the store patches a private fork.
  common::Status put_range(const std::string& container,
                           const std::string& name, std::uint64_t offset,
                           common::ByteSpan data);

  common::Status remove(const std::string& container, const std::string& name);
  common::Result<std::vector<std::string>> list(
      const std::string& container) const;

  [[nodiscard]] bool container_exists(const std::string& container) const;
  [[nodiscard]] std::uint64_t stored_bytes() const {
    return stored_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t object_count() const;

  /// Size of one object, if present (metadata-only peek used by audits).
  [[nodiscard]] std::optional<std::uint64_t> object_size(
      const std::string& container, const std::string& name) const;

  /// Drops every container and object (simulates catastrophic data loss,
  /// used by failure-injection tests).
  void wipe();

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::map<std::string, common::Buffer>> containers;
  };

  [[nodiscard]] const Shard& shard_for(const std::string& container) const {
    return shards_[std::hash<std::string>{}(container) % kShards];
  }
  [[nodiscard]] Shard& shard_for(const std::string& container) {
    return shards_[std::hash<std::string>{}(container) % kShards];
  }

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> stored_bytes_{0};
};

}  // namespace hyrd::cloud
