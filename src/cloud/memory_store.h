// Thread-safe in-memory object store: the durable state behind a simulated
// provider. Latency/billing live in SimProvider; this class only stores.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace hyrd::cloud {

class MemoryStore {
 public:
  common::Status create(const std::string& container);
  common::Status put(const std::string& container, const std::string& name,
                     common::ByteSpan data);
  common::Result<common::Bytes> get(const std::string& container,
                                    const std::string& name) const;

  /// Byte-range read ([offset, offset+length) must lie inside the object).
  common::Result<common::Bytes> get_range(const std::string& container,
                                          const std::string& name,
                                          std::uint64_t offset,
                                          std::uint64_t length) const;

  /// Byte-range overwrite of an existing object (must not grow it). Models
  /// a block write in a block-chunked object layout (see DESIGN.md §2).
  common::Status put_range(const std::string& container,
                           const std::string& name, std::uint64_t offset,
                           common::ByteSpan data);

  common::Status remove(const std::string& container, const std::string& name);
  common::Result<std::vector<std::string>> list(
      const std::string& container) const;

  [[nodiscard]] bool container_exists(const std::string& container) const;
  [[nodiscard]] std::uint64_t stored_bytes() const;
  [[nodiscard]] std::uint64_t object_count() const;

  /// Size of one object, if present (metadata-only peek used by audits).
  [[nodiscard]] std::optional<std::uint64_t> object_size(
      const std::string& container, const std::string& name) const;

  /// Drops every container and object (simulates catastrophic data loss,
  /// used by failure-injection tests).
  void wipe();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, common::Bytes>> containers_;
  std::uint64_t stored_bytes_ = 0;
};

}  // namespace hyrd::cloud
