// Analytic network/storage latency model for a simulated cloud provider.
//
//   latency(op, size) = first_byte + size / bandwidth
//                       + congestion penalty for transfers past a threshold
//                       multiplied by seeded lognormal jitter.
//
// The congestion term reproduces the paper's Figure-5 observation that
// latency grows *disproportionally* between 1 MB and 4 MB transfers (the
// observation HyRD's 1 MB large-file threshold is based on): past
// `congestion_threshold` bytes, the marginal transfer time per byte is
// multiplied by `congestion_factor` (> 1), modelling shared-WAN throughput
// collapse for long transfers on the client's uplink.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "common/rng.h"
#include "cloud/object_store.h"

namespace hyrd::cloud {

struct LatencyParams {
  // First-byte latency (connection setup + request processing).
  double read_first_byte_ms = 100.0;
  double write_first_byte_ms = 140.0;

  // Steady-state transfer throughput, MB/s (decimal).
  double read_mbps = 2.0;
  double write_mbps = 1.4;

  // Past this many bytes, marginal per-byte time is multiplied by
  // congestion_factor (captures the >1 MB latency knee in Fig. 5).
  std::uint64_t congestion_threshold = 1u << 20;
  double congestion_factor = 2.2;

  // Lognormal jitter: multiplier exp(N(0, sigma)); sigma=0 disables jitter.
  double jitter_sigma = 0.08;

  // Cost of metadata-only ops (List / Create / Remove).
  double metadata_op_ms = 60.0;
};

class LatencyModel {
 public:
  explicit LatencyModel(LatencyParams params) : params_(params) {}

  [[nodiscard]] const LatencyParams& params() const { return params_; }

  /// Expected (jitter-free) latency for an operation on `size` bytes.
  [[nodiscard]] common::SimDuration expected(OpKind op,
                                             std::uint64_t size) const;

  /// Sampled latency with jitter drawn from `rng`.
  [[nodiscard]] common::SimDuration sample(OpKind op, std::uint64_t size,
                                           common::Xoshiro256& rng) const;

 private:
  LatencyParams params_;
};

}  // namespace hyrd::cloud
