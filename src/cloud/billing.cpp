#include "cloud/billing.h"

namespace hyrd::cloud {

void BillingMeter::record(OpKind op, std::uint64_t bytes_transferred) {
  switch (op) {
    case OpKind::kPut:
      bytes_in_ += bytes_transferred;
      ++put_txns_;
      break;
    case OpKind::kGet:
      bytes_out_ += bytes_transferred;
      ++get_txns_;
      break;
    case OpKind::kList:
    case OpKind::kCreate:
      ++put_txns_;
      break;
    case OpKind::kRemove:
      ++get_txns_;  // billed under "Get and others" (Table II)
      break;
  }
}

MonthlyBill BillingMeter::close_month(std::uint64_t resident_bytes) {
  MonthlyBill bill;
  bill.month = static_cast<int>(bills_.size());
  bill.stored_bytes = resident_bytes;
  bill.bytes_in = bytes_in_;
  bill.bytes_out = bytes_out_;
  bill.put_class_txns = put_txns_;
  bill.get_class_txns = get_txns_;

  bill.storage_cost = schedule_.storage_cost(resident_bytes);
  bill.ingress_cost = schedule_.ingress_cost(bytes_in_);
  bill.egress_cost = schedule_.egress_cost(bytes_out_);
  bill.txn_cost = schedule_.txn_cost(OpKind::kPut, put_txns_) +
                  schedule_.txn_cost(OpKind::kGet, get_txns_);

  bills_.push_back(bill);
  bytes_in_ = bytes_out_ = 0;
  put_txns_ = get_txns_ = 0;
  return bill;
}

double BillingMeter::cumulative_cost() const {
  double total = 0.0;
  for (const auto& b : bills_) total += b.total();
  return total;
}

double BillingMeter::open_month_transfer_cost() const {
  return schedule_.ingress_cost(bytes_in_) + schedule_.egress_cost(bytes_out_) +
         schedule_.txn_cost(OpKind::kPut, put_txns_) +
         schedule_.txn_cost(OpKind::kGet, get_txns_);
}

void BillingMeter::reset() {
  bills_.clear();
  bytes_in_ = bytes_out_ = 0;
  put_txns_ = get_txns_ = 0;
}

}  // namespace hyrd::cloud
