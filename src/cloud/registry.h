// CloudRegistry: owns the fleet of simulated providers and answers the
// lookups the Request Dispatcher needs (by name, by category, all-online).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.h"

namespace hyrd::cloud {

class CloudRegistry {
 public:
  /// Adds a provider; names must be unique. Returns the stored pointer.
  SimProvider* add(ProviderConfig config, std::uint64_t seed);

  [[nodiscard]] SimProvider* find(const std::string& name) const;

  [[nodiscard]] std::size_t size() const { return providers_.size(); }
  [[nodiscard]] const std::vector<std::unique_ptr<SimProvider>>& all() const {
    return providers_;
  }

  [[nodiscard]] std::vector<SimProvider*> online() const;
  [[nodiscard]] std::vector<SimProvider*> by_declared_category(
      bool performance, bool cost) const;

  /// Sum of every provider's cumulative (closed-month) bills.
  [[nodiscard]] double cumulative_cost() const;

  /// Closes the billing month on every provider.
  void close_month_all();

 private:
  std::vector<std::unique_ptr<SimProvider>> providers_;
};

}  // namespace hyrd::cloud
