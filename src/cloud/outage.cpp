#include "cloud/outage.h"

namespace hyrd::cloud {

bool OutageController::take_down(const std::string& name) {
  SimProvider* p = registry_.find(name);
  if (p == nullptr) return false;
  p->set_online(false);
  return true;
}

bool OutageController::restore(const std::string& name) {
  SimProvider* p = registry_.find(name);
  if (p == nullptr) return false;
  return p->set_online(true);
}

bool OutageController::destroy(const std::string& name) {
  SimProvider* p = registry_.find(name);
  if (p == nullptr) return false;
  p->fail_permanently();
  return true;
}

std::vector<std::string> OutageController::offline_providers() const {
  std::vector<std::string> out;
  for (const auto& p : registry_.all()) {
    if (!p->online()) out.push_back(p->name());
  }
  return out;
}

RandomOutageInjector::RandomOutageInjector(CloudRegistry& registry,
                                           std::uint64_t seed, double p_down,
                                           double p_up, std::size_t min_online)
    : registry_(registry),
      rng_(seed),
      p_down_(p_down),
      p_up_(p_up),
      min_online_(min_online) {}

std::vector<std::string> RandomOutageInjector::step() {
  std::vector<std::string> flipped;
  std::size_t online_count = registry_.online().size();
  for (const auto& p : registry_.all()) {
    if (p->online()) {
      if (online_count > min_online_ && rng_.chance(p_down_)) {
        p->set_online(false);
        --online_count;
        flipped.push_back(p->name());
      }
    } else if (!p->permanently_failed() && rng_.chance(p_up_)) {
      // Destroyed providers are out of the churn pool for good: no
      // recovery draw, no flip — their store was wiped.
      p->set_online(true);
      ++online_count;
      flipped.push_back(p->name());
    }
  }
  return flipped;
}

}  // namespace hyrd::cloud
