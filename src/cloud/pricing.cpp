#include "cloud/pricing.h"

// Header-only logic today; this TU anchors the library target and leaves a
// home for tiered-pricing extensions (usage tiers beyond the first).

namespace hyrd::cloud {}
