// Cooperative cancellation for in-flight provider operations.
//
// The async batch engine (gcsapi/async_batch.h) completes a parallel round
// as soon as enough members have landed; the stragglers it no longer needs
// are *cancelled*, not abandoned. Cancellation is cooperative and flows
// through a thread-local flag: the engine installs a CancelScope around the
// client call it runs on a pool thread, and SimProvider consults
// CancelScope::cancelled() at its data-plane entry points (and again after
// the test op hook). A cancelled op returns StatusCode::kCancelled without
// touching the store, the billing meter, or the latency RNG — exactly like
// an HTTP request torn down before the provider commits it.
//
// Test stall hooks that park a request inside the provider should poll
// CancelScope::cancelled() in their wait loop so a cancelled straggler
// unblocks promptly instead of wedging a pool thread.
#pragma once

#include <atomic>

namespace hyrd::cloud {

class CancelScope {
 public:
  explicit CancelScope(const std::atomic<bool>* flag) : prev_(current_) {
    current_ = flag;
  }
  ~CancelScope() { current_ = prev_; }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// True when the operation running on this thread has been cancelled.
  [[nodiscard]] static bool cancelled() {
    return current_ != nullptr && current_->load(std::memory_order_acquire);
  }

 private:
  const std::atomic<bool>* prev_;
  inline static thread_local const std::atomic<bool>* current_ = nullptr;
};

}  // namespace hyrd::cloud
