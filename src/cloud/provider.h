// SimProvider: a complete simulated cloud storage provider — in-memory
// object store + latency model + price meter + availability state.
//
// Substitution note (see DESIGN.md §2): this stands in for the real
// S3/Azure/Aliyun/Rackspace REST endpoints the paper measured. Every
// quantity the paper evaluates (latency, monthly cost, transfer traffic)
// is produced by this class from the same request stream a real client
// would issue through the five GCS-API functions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cloud/billing.h"
#include "cloud/cancel.h"
#include "cloud/congestion.h"
#include "cloud/latency_model.h"
#include "cloud/memory_store.h"
#include "cloud/object_store.h"
#include "cloud/pricing.h"
#include "common/rng.h"

namespace hyrd::cloud {

struct ProviderConfig {
  std::string name;
  LatencyParams latency;
  PriceSchedule prices;
  ProviderCategory declared_category;  // Table II bottom row
};

/// Per-kind operation counters (traffic audit for Table I / §II-B claims).
struct OpCounters {
  std::uint64_t lists = 0;
  std::uint64_t gets = 0;
  std::uint64_t creates = 0;
  std::uint64_t puts = 0;
  std::uint64_t removes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t rejected_unavailable = 0;
  std::uint64_t cancelled = 0;   // abandoned by the client before commit
  std::uint64_t throttled = 0;   // rejected 429 at the congestion-queue cap

  [[nodiscard]] std::uint64_t total_ops() const {
    return lists + gets + creates + puts + removes;
  }
};

class SimProvider final : public ObjectStore {
 public:
  SimProvider(ProviderConfig config, std::uint64_t seed);

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] const ProviderConfig& config() const { return config_; }

  // --- The five GCS-API functions (paper §III-D) ---
  OpResult create(const std::string& container) override;
  OpResult put(const ObjectKey& key, common::Buffer data) override;
  GetResult get(const ObjectKey& key) override;
  OpResult remove(const ObjectKey& key) override;
  ListResult list(const std::string& container) override;
  GetResult get_range(const ObjectKey& key, std::uint64_t offset,
                      std::uint64_t length) override;
  OpResult put_range(const ObjectKey& key, std::uint64_t offset,
                     common::Buffer data) override;
  using ObjectStore::put;        // keep the ByteSpan adapters visible
  using ObjectStore::put_range;

  // --- Availability control (outage emulation) ---

  /// Transient availability flip. Bringing a *permanently failed* provider
  /// back online is refused: its store was wiped, so "recovering" it would
  /// serve empty GETs as if the data had returned. Returns whether the
  /// requested state is now in effect.
  bool set_online(bool online) {
    if (online && permanently_failed_.load()) return false;
    online_.store(online);
    return true;
  }
  [[nodiscard]] bool online() const { return online_.load(); }

  /// Takes the provider offline *and* wipes stored state (permanent
  /// provider failure rather than transient outage). Irreversible:
  /// set_online(true) is a refused no-op afterwards.
  void fail_permanently();
  [[nodiscard]] bool permanently_failed() const {
    return permanently_failed_.load();
  }

  // --- Congestion (scale-out contention emulation; see congestion.h) ---

  /// Installs (or clears) the bounded-capacity fair queue. Only requests
  /// issued under a common::VirtualScope — i.e. from the discrete-event
  /// scale-out engine — are subject to it; plain single-client traffic
  /// never queues, so enabling congestion does not perturb legacy paths.
  void set_congestion(std::optional<CongestionParams> params);
  [[nodiscard]] bool congestion_enabled() const;
  [[nodiscard]] CongestionStats congestion_stats() const;

  /// Fair-queue depth at virtual time `now` (0 when congestion is off).
  /// Read by the timeline sampler for the per-provider queue-depth series.
  [[nodiscard]] std::size_t congestion_depth(common::SimDuration now) const;

  /// Brownout emulation: multiplies every sampled latency. 1.0 = healthy;
  /// e.g. 8.0 models a provider that is reachable but badly degraded (the
  /// tail the hedged/first-k read paths exist to cut). Expected-latency
  /// queries are unaffected — a client plans against the advertised model
  /// and only the observed samples degrade, like a real brownout.
  void set_latency_scale(double scale) { latency_scale_.store(scale); }
  [[nodiscard]] double latency_scale() const { return latency_scale_.load(); }

  // --- Accounting ---
  [[nodiscard]] std::uint64_t stored_bytes() const {
    return store_.stored_bytes();
  }
  [[nodiscard]] std::uint64_t object_count() const {
    return store_.object_count();
  }
  [[nodiscard]] OpCounters counters() const;
  void reset_counters();

  BillingMeter& billing() { return billing_; }
  [[nodiscard]] const BillingMeter& billing() const { return billing_; }
  MonthlyBill close_month() { return billing_.close_month(stored_bytes()); }

  [[nodiscard]] const LatencyModel& latency_model() const { return latency_; }

  /// Direct access to backing state for white-box tests and audits.
  MemoryStore& raw_store() { return store_; }

  /// Test hook invoked at the start of every data-plane op (after the
  /// availability check, before touching the store). Lets tests observe or
  /// deliberately stall a specific request — e.g. to prove client code
  /// holds no locks across provider I/O. Not used in production paths.
  using OpHook = std::function<void(OpKind, const ObjectKey&)>;
  void set_op_hook(OpHook hook) { op_hook_ = std::move(hook); }

 private:
  void run_op_hook(OpKind op, const ObjectKey& key) const {
    if (op_hook_) op_hook_(op, key);
  }

  /// Samples latency + updates billing under the provider lock.
  common::SimDuration charge(OpKind op, std::uint64_t bytes);
  OpResult unavailable_result();

  /// Congestion admission for one data-plane request. Returns a 429
  /// OpResult when the fair queue rejects it; otherwise writes the
  /// queueing delay (0 when uncontended or congestion is off) to *wait.
  std::optional<OpResult> admit(std::uint64_t bytes,
                                common::SimDuration* wait);

  /// Result for an op abandoned by the client (see cloud/cancel.h): no
  /// store mutation, no billing, no latency draw — only the `cancelled`
  /// counter moves, so cancelled stragglers are visible in audits without
  /// perturbing cost accounting or the deterministic latency stream.
  OpResult cancelled_result();

  ProviderConfig config_;
  MemoryStore store_;
  LatencyModel latency_;
  BillingMeter billing_;
  common::Xoshiro256 rng_;
  OpCounters counters_;
  std::unique_ptr<FairQueue> congestion_;  // guarded by mu_; null = off
  OpHook op_hook_;  // set before concurrent use; never mutated mid-test
  std::atomic<bool> online_{true};
  std::atomic<bool> permanently_failed_{false};
  std::atomic<double> latency_scale_{1.0};
  mutable std::mutex mu_;  // guards rng_, billing_, counters_
};

}  // namespace hyrd::cloud
