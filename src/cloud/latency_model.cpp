#include "cloud/latency_model.h"

#include <algorithm>
#include <cmath>

namespace hyrd::cloud {

namespace {

double transfer_ms(std::uint64_t size, double mbps, std::uint64_t threshold,
                   double factor) {
  const double bytes_per_ms = mbps * 1e6 / 1e3;
  if (bytes_per_ms <= 0.0) return 0.0;
  const double fast_bytes =
      static_cast<double>(std::min<std::uint64_t>(size, threshold));
  const double slow_bytes =
      size > threshold ? static_cast<double>(size - threshold) : 0.0;
  return fast_bytes / bytes_per_ms + slow_bytes * factor / bytes_per_ms;
}

}  // namespace

common::SimDuration LatencyModel::expected(OpKind op,
                                           std::uint64_t size) const {
  double ms = 0.0;
  switch (op) {
    case OpKind::kGet:
      ms = params_.read_first_byte_ms +
           transfer_ms(size, params_.read_mbps, params_.congestion_threshold,
                       params_.congestion_factor);
      break;
    case OpKind::kPut:
      ms = params_.write_first_byte_ms +
           transfer_ms(size, params_.write_mbps, params_.congestion_threshold,
                       params_.congestion_factor);
      break;
    case OpKind::kList:
    case OpKind::kCreate:
    case OpKind::kRemove:
      ms = params_.metadata_op_ms;
      break;
  }
  return common::from_ms(ms);
}

common::SimDuration LatencyModel::sample(OpKind op, std::uint64_t size,
                                         common::Xoshiro256& rng) const {
  const common::SimDuration base = expected(op, size);
  if (params_.jitter_sigma <= 0.0) return base;
  const double mult = rng.lognormal(0.0, params_.jitter_sigma);
  return static_cast<common::SimDuration>(static_cast<double>(base) * mult);
}

}  // namespace hyrd::cloud
