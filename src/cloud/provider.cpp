#include "cloud/provider.h"

#include "common/checksum.h"
#include "common/virtual_time.h"

namespace hyrd::cloud {

SimProvider::SimProvider(ProviderConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      latency_(config_.latency),
      billing_(config_.prices),
      rng_(seed ^ common::fnv1a(std::string_view(config_.name))) {}

common::SimDuration SimProvider::charge(OpKind op, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  billing_.record(op, bytes);
  switch (op) {
    case OpKind::kList: ++counters_.lists; break;
    case OpKind::kGet:
      ++counters_.gets;
      counters_.bytes_read += bytes;
      break;
    case OpKind::kCreate: ++counters_.creates; break;
    case OpKind::kPut:
      ++counters_.puts;
      counters_.bytes_written += bytes;
      break;
    case OpKind::kRemove: ++counters_.removes; break;
  }
  auto sampled = latency_.sample(op, bytes, rng_);
  double scale = latency_scale_.load();
  if (scale != 1.0) {
    sampled = static_cast<common::SimDuration>(
        static_cast<double>(sampled) * scale);
  }
  return sampled;
}

void SimProvider::set_congestion(std::optional<CongestionParams> params) {
  std::lock_guard lock(mu_);
  congestion_ = params ? std::make_unique<FairQueue>(*params) : nullptr;
}

bool SimProvider::congestion_enabled() const {
  std::lock_guard lock(mu_);
  return congestion_ != nullptr;
}

CongestionStats SimProvider::congestion_stats() const {
  std::lock_guard lock(mu_);
  return congestion_ ? congestion_->stats() : CongestionStats{};
}

std::size_t SimProvider::congestion_depth(common::SimDuration now) const {
  std::lock_guard lock(mu_);
  return congestion_ ? congestion_->depth_at(now) : 0;
}

std::optional<OpResult> SimProvider::admit(std::uint64_t bytes,
                                           common::SimDuration* wait) {
  *wait = 0;
  const common::VirtualContext* ctx = common::VirtualScope::current();
  if (ctx == nullptr) return std::nullopt;  // legacy path: infinitely wide
  std::lock_guard lock(mu_);
  if (congestion_ == nullptr) return std::nullopt;
  const auto adm =
      congestion_->admit(ctx->tenant, ctx->weight, ctx->now, bytes);
  if (adm.admitted) {
    *wait = adm.wait;
    return std::nullopt;
  }
  ++counters_.throttled;
  OpResult r;
  r.status = common::resource_exhausted(config_.name + " over capacity");
  // A 429 is cheap for the server and comes back at request-processing
  // speed; the client pays one metadata-op round trip, no money.
  r.latency = common::from_ms(config_.latency.metadata_op_ms);
  return r;
}

OpResult SimProvider::unavailable_result() {
  {
    std::lock_guard lock(mu_);
    ++counters_.rejected_unavailable;
  }
  OpResult r;
  r.status = common::unavailable(config_.name + " is in outage");
  // A client discovers an outage quickly (connect failure); charge one
  // metadata-op worth of virtual time, no money.
  r.latency = common::from_ms(config_.latency.metadata_op_ms);
  return r;
}

OpResult SimProvider::cancelled_result() {
  {
    std::lock_guard lock(mu_);
    ++counters_.cancelled;
  }
  OpResult r;
  r.status = common::cancelled(config_.name + ": request torn down by client");
  r.latency = 0;  // the client stopped waiting; nothing accrues
  return r;
}

OpResult SimProvider::create(const std::string& container) {
  if (!online()) return unavailable_result();
  OpResult r;
  r.status = store_.create(container);
  r.latency = charge(OpKind::kCreate, 0);
  return r;
}

OpResult SimProvider::put(const ObjectKey& key, common::Buffer data) {
  if (!online()) return unavailable_result();
  if (CancelScope::cancelled()) return cancelled_result();
  run_op_hook(OpKind::kPut, key);
  if (CancelScope::cancelled()) return cancelled_result();
  common::SimDuration wait = 0;
  if (auto throttled = admit(data.size(), &wait)) return *throttled;
  OpResult r;
  const std::uint64_t size = data.size();
  r.status = store_.put(key.container, key.name, std::move(data));
  if (r.status.is_ok()) {
    r.bytes_transferred = size;
    r.latency = wait + charge(OpKind::kPut, size);
  } else {
    r.latency = wait + charge(OpKind::kPut, 0);
  }
  return r;
}

GetResult SimProvider::get(const ObjectKey& key) {
  GetResult r;
  if (!online()) {
    static_cast<OpResult&>(r) = unavailable_result();
    return r;
  }
  if (CancelScope::cancelled()) {
    static_cast<OpResult&>(r) = cancelled_result();
    return r;
  }
  run_op_hook(OpKind::kGet, key);
  if (CancelScope::cancelled()) {
    static_cast<OpResult&>(r) = cancelled_result();
    return r;
  }
  auto res = store_.get(key.container, key.name);
  if (res.is_ok()) {
    common::SimDuration wait = 0;
    if (auto throttled = admit(res.value().size(), &wait)) {
      static_cast<OpResult&>(r) = *throttled;
      return r;
    }
    r.data = std::move(res).value();
    r.bytes_transferred = r.data.size();
    r.latency = wait + charge(OpKind::kGet, r.data.size());
    r.status = common::Status::ok();
  } else {
    r.status = res.status();
    r.latency = charge(OpKind::kGet, 0);
  }
  return r;
}

OpResult SimProvider::remove(const ObjectKey& key) {
  if (!online()) return unavailable_result();
  if (CancelScope::cancelled()) return cancelled_result();
  run_op_hook(OpKind::kRemove, key);
  if (CancelScope::cancelled()) return cancelled_result();
  common::SimDuration wait = 0;
  if (auto throttled = admit(0, &wait)) return *throttled;
  OpResult r;
  r.status = store_.remove(key.container, key.name);
  r.latency = wait + charge(OpKind::kRemove, 0);
  return r;
}

ListResult SimProvider::list(const std::string& container) {
  ListResult r;
  if (!online()) {
    static_cast<OpResult&>(r) = unavailable_result();
    return r;
  }
  auto res = store_.list(container);
  if (res.is_ok()) {
    r.names = std::move(res).value();
    r.status = common::Status::ok();
  } else {
    r.status = res.status();
  }
  r.latency = charge(OpKind::kList, 0);
  return r;
}

GetResult SimProvider::get_range(const ObjectKey& key, std::uint64_t offset,
                                 std::uint64_t length) {
  GetResult r;
  if (!online()) {
    static_cast<OpResult&>(r) = unavailable_result();
    return r;
  }
  if (CancelScope::cancelled()) {
    static_cast<OpResult&>(r) = cancelled_result();
    return r;
  }
  run_op_hook(OpKind::kGet, key);
  if (CancelScope::cancelled()) {
    static_cast<OpResult&>(r) = cancelled_result();
    return r;
  }
  auto res = store_.get_range(key.container, key.name, offset, length);
  if (res.is_ok()) {
    common::SimDuration wait = 0;
    if (auto throttled = admit(res.value().size(), &wait)) {
      static_cast<OpResult&>(r) = *throttled;
      return r;
    }
    r.data = std::move(res).value();
    r.bytes_transferred = r.data.size();
    r.latency = wait + charge(OpKind::kGet, r.data.size());
    r.status = common::Status::ok();
  } else {
    r.status = res.status();
    r.latency = charge(OpKind::kGet, 0);
  }
  return r;
}

OpResult SimProvider::put_range(const ObjectKey& key, std::uint64_t offset,
                                common::Buffer data) {
  if (!online()) return unavailable_result();
  if (CancelScope::cancelled()) return cancelled_result();
  run_op_hook(OpKind::kPut, key);
  if (CancelScope::cancelled()) return cancelled_result();
  common::SimDuration wait = 0;
  if (auto throttled = admit(data.size(), &wait)) return *throttled;
  OpResult r;
  r.status = store_.put_range(key.container, key.name, offset, data);
  if (r.status.is_ok()) {
    r.bytes_transferred = data.size();
    r.latency = wait + charge(OpKind::kPut, data.size());
  } else {
    r.latency = wait + charge(OpKind::kPut, 0);
  }
  return r;
}

void SimProvider::fail_permanently() {
  // Order matters: mark first, so a concurrent restore attempt racing this
  // call can never re-enable a wiped store.
  permanently_failed_.store(true);
  set_online(false);
  store_.wipe();
}

OpCounters SimProvider::counters() const {
  std::lock_guard lock(mu_);
  return counters_;
}

void SimProvider::reset_counters() {
  std::lock_guard lock(mu_);
  counters_ = OpCounters{};
}

}  // namespace hyrd::cloud
