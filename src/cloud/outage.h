// Outage injection: scripted and randomized provider failures.
//
// The paper distinguishes a *service outage* (temporary; provider returns
// with stale data that must be consistency-updated from logs) from a
// *permanent failure*. OutageController scripts the former for experiments
// like Fig. 6 ("we set the Windows Azure service off-line to emulate its
// outage"); RandomOutageInjector drives availability soak tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/registry.h"
#include "common/rng.h"

namespace hyrd::cloud {

class OutageController {
 public:
  explicit OutageController(CloudRegistry& registry) : registry_(registry) {}

  /// Takes one provider offline. Returns false if unknown.
  bool take_down(const std::string& name);

  /// Brings a provider back online (data intact — transient outage).
  /// Returns false for unknown providers and for permanently failed ones:
  /// a destroyed provider's store is gone, so restoring it would resurrect
  /// an empty provider that answers GETs as if recovered.
  bool restore(const std::string& name);

  /// Takes a provider down *and* wipes it (permanent failure).
  bool destroy(const std::string& name);

  [[nodiscard]] std::vector<std::string> offline_providers() const;

 private:
  CloudRegistry& registry_;
};

/// Randomized availability churn: each step, every online provider goes
/// down with probability p_down and every offline provider recovers with
/// probability p_up. Guarantees at least `min_online` providers stay up
/// (the paper notes two concurrent cloud outages are extremely rare).
class RandomOutageInjector {
 public:
  RandomOutageInjector(CloudRegistry& registry, std::uint64_t seed,
                       double p_down = 0.02, double p_up = 0.30,
                       std::size_t min_online = 3);

  /// Advances one epoch of churn; returns names whose state flipped.
  std::vector<std::string> step();

 private:
  CloudRegistry& registry_;
  common::Xoshiro256 rng_;
  double p_down_;
  double p_up_;
  std::size_t min_online_;
};

}  // namespace hyrd::cloud
