// Provider profiles for the four clouds the paper evaluates.
//
// Prices are transcribed verbatim from Table II (China region, Sep 10 2014,
// first chargeable tier). Latency parameters are calibrated so the
// simulated Figure-5 curves reproduce the paper's ordering: Aliyun fastest
// (in-region), Azure China second, Amazon S3 and Rackspace slowest
// (cross-Pacific paths from a CERNET client), with the >1 MB latency knee.
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/provider.h"
#include "cloud/registry.h"

namespace hyrd::cloud {

ProviderConfig amazon_s3_profile();
ProviderConfig windows_azure_profile();
ProviderConfig aliyun_profile();
ProviderConfig rackspace_profile();

/// The paper's standard Cloud-of-Clouds: the four providers above, in
/// Table II column order.
std::vector<ProviderConfig> standard_four();

/// Registers the standard four providers into a registry.
void install_standard_four(CloudRegistry& registry, std::uint64_t seed);

}  // namespace hyrd::cloud
