// Virtual-time congestion model for a simulated provider: bounded service
// capacity + a weighted fair queue over tenants.
//
// The analytic LatencyModel (latency_model.h) prices a request as if the
// provider were infinitely wide: ten thousand concurrent GETs each see the
// same first-byte + transfer time. That is exactly the assumption the
// scale-out engine (sim/) exists to break — a real provider front-end has
// a finite number of service slots, and past the saturation point latency
// is dominated by *queueing*, not transfer. This module adds that knee.
//
// Model: `channels` parallel service slots, each serving one request at a
// time. A request arriving at virtual time `a` with server-side service
// demand `s` (fixed per-op cost + bytes / service rate):
//
//   gate  = max(a, tag[tenant])            per-flow pacing (fairness)
//   begin = max(gate, earliest slot free)  queueing
//   wait  = begin - a                      what the client additionally sees
//
// and the flow's tag advances to begin + s / weight: a tenant issuing
// faster than its weighted share self-queues behind its own tag while
// light flows pass through at slot availability — start-time fair queuing
// in the style of SFQ, computed incrementally at admission so each op's
// delay is known the instant it arrives (the discrete-event loop charges
// it to the tenant's completion without any provider-side callback).
//
// Admission order is arrival order as dispatched by the event loop; an op
// that would exceed `max_queue_depth` waiting requests is rejected with
// kResourceExhausted (an HTTP 429), which is how overload stays bounded
// instead of accumulating unbounded virtual backlog.
//
// The queue only engages for requests that carry a VirtualContext
// (common/virtual_time.h). Single-client paths never install one, so every
// pre-existing bench and test is bit-for-bit unchanged.
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace hyrd::cloud {

struct CongestionParams {
  /// Concurrent service slots at the provider front-end.
  std::size_t channels = 32;

  /// Fixed server-side cost per request (request parsing, index lookup).
  double per_op_service_ms = 2.0;

  /// Per-slot payload service rate, MB/s (decimal).
  double service_mbps = 200.0;

  /// Reject (429) once this many requests are waiting for a slot.
  std::size_t max_queue_depth = 250'000;
};

struct CongestionStats {
  std::uint64_t admitted = 0;
  std::uint64_t queued = 0;     // admitted with wait > 0
  std::uint64_t throttled = 0;  // rejected at the depth cap
  common::SimDuration total_wait = 0;
  common::SimDuration max_wait = 0;
  std::size_t peak_depth = 0;
};

/// One provider's admission state. Not internally synchronized: SimProvider
/// drives it under its own mutex.
class FairQueue {
 public:
  explicit FairQueue(CongestionParams params);

  struct Admission {
    bool admitted = true;
    common::SimDuration wait = 0;  // queueing delay added to the op
  };

  /// Admits (or rejects) a request from `tenant` arriving at virtual time
  /// `arrival` carrying `bytes` of payload. Arrivals need not be globally
  /// monotonic (failover chains land "late"); state only moves forward.
  Admission admit(std::uint64_t tenant, double weight,
                  common::SimDuration arrival, std::uint64_t bytes);

  /// Server-side service demand for a request of `bytes` payload.
  [[nodiscard]] common::SimDuration service_time(std::uint64_t bytes) const;

  /// Waiting-request count as of virtual time `now` (prunes entries whose
  /// service already began). This is the queue depth the timeline sampler
  /// exports per provider.
  [[nodiscard]] std::size_t depth_at(common::SimDuration now);

  [[nodiscard]] const CongestionParams& params() const { return params_; }
  [[nodiscard]] const CongestionStats& stats() const { return stats_; }

 private:
  void prune(common::SimDuration arrival);

  CongestionParams params_;
  CongestionStats stats_;
  std::vector<common::SimDuration> slot_free_;  // per-channel busy-until
  // Begin times of admitted-but-not-yet-started requests; its size is the
  // queue depth at the latest arrival after prune().
  std::priority_queue<common::SimDuration, std::vector<common::SimDuration>,
                      std::greater<>>
      waiting_;
  // Per-flow virtual finish tags. Only flows currently ahead of real
  // arrival time matter; stale tags are lazily pruned so the map tracks
  // the set of *backlogged* tenants, not every tenant ever seen.
  std::unordered_map<std::uint64_t, common::SimDuration> flow_tag_;
  std::uint64_t admits_since_prune_ = 0;
};

}  // namespace hyrd::cloud
