#include "cloud/profiles.h"

#include "cloud/registry.h"

namespace hyrd::cloud {

ProviderConfig amazon_s3_profile() {
  ProviderConfig c;
  c.name = "AmazonS3";
  c.prices = PriceSchedule{
      .storage_gb_month = 0.033,
      .data_in_gb = 0.0,
      .data_out_gb = 0.201,
      .put_class_per_10k = 0.047,
      .get_class_per_10k = 0.0037,
  };
  c.latency = LatencyParams{
      .read_first_byte_ms = 210.0,
      .write_first_byte_ms = 290.0,
      .read_mbps = 1.9,
      .write_mbps = 1.35,
      .congestion_threshold = 1u << 20,
      .congestion_factor = 2.4,
      .jitter_sigma = 0.10,
      .metadata_op_ms = 160.0,
  };
  c.declared_category = {.cost_oriented = true, .performance_oriented = false};
  return c;
}

ProviderConfig windows_azure_profile() {
  ProviderConfig c;
  c.name = "WindowsAzure";
  c.prices = PriceSchedule{
      .storage_gb_month = 0.157,
      .data_in_gb = 0.0,
      .data_out_gb = 0.0,
      .put_class_per_10k = 0.0,
      .get_class_per_10k = 0.0,
  };
  c.latency = LatencyParams{
      .read_first_byte_ms = 85.0,
      .write_first_byte_ms = 120.0,
      .read_mbps = 2.2,
      .write_mbps = 1.55,
      .congestion_threshold = 1u << 20,
      .congestion_factor = 2.1,
      .jitter_sigma = 0.09,
      .metadata_op_ms = 70.0,
  };
  c.declared_category = {.cost_oriented = false, .performance_oriented = true};
  return c;
}

ProviderConfig aliyun_profile() {
  ProviderConfig c;
  c.name = "Aliyun";
  c.prices = PriceSchedule{
      .storage_gb_month = 0.029,
      .data_in_gb = 0.0,
      .data_out_gb = 0.123,
      .put_class_per_10k = 0.0016,
      .get_class_per_10k = 0.0016,
  };
  c.latency = LatencyParams{
      .read_first_byte_ms = 35.0,
      .write_first_byte_ms = 55.0,
      .read_mbps = 2.5,
      .write_mbps = 1.8,
      .congestion_threshold = 1u << 20,
      .congestion_factor = 1.9,
      .jitter_sigma = 0.07,
      .metadata_op_ms = 30.0,
  };
  // The paper classifies Aliyun as both cost- and performance-oriented
  // (lowest latency *and* lowest storage price).
  c.declared_category = {.cost_oriented = true, .performance_oriented = true};
  return c;
}

ProviderConfig rackspace_profile() {
  ProviderConfig c;
  c.name = "Rackspace";
  c.prices = PriceSchedule{
      .storage_gb_month = 0.13,
      .data_in_gb = 0.0,
      .data_out_gb = 0.0,
      .put_class_per_10k = 0.0,
      .get_class_per_10k = 0.0,
  };
  c.latency = LatencyParams{
      .read_first_byte_ms = 260.0,
      .write_first_byte_ms = 340.0,
      .read_mbps = 2.0,
      .write_mbps = 1.4,
      .congestion_threshold = 1u << 20,
      .congestion_factor = 2.5,
      .jitter_sigma = 0.11,
      .metadata_op_ms = 190.0,
  };
  // Table II's bottom row lists Rackspace as cost-oriented (free egress and
  // transactions despite the higher storage price).
  c.declared_category = {.cost_oriented = true, .performance_oriented = false};
  return c;
}

std::vector<ProviderConfig> standard_four() {
  return {amazon_s3_profile(), windows_azure_profile(), aliyun_profile(),
          rackspace_profile()};
}

void install_standard_four(CloudRegistry& registry, std::uint64_t seed) {
  for (auto& config : standard_four()) {
    registry.add(std::move(config), seed);
  }
}

}  // namespace hyrd::cloud
