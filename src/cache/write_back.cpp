#include "cache/write_back.h"

#include <utility>

namespace hyrd::cache {

bool WriteBackCache::absorb(const std::string& path, common::Buffer data) {
  auto it = index_.find(path);
  if (it != index_.end()) {
    bytes_ -= it->second->data.size();
    bytes_ += data.size();
    it->second->data = std::move(data);
    return true;
  }
  bytes_ += data.size();
  fifo_.push_back({path, std::move(data)});
  index_.emplace(path, std::prev(fifo_.end()));
  return false;
}

const common::Buffer* WriteBackCache::lookup(const std::string& path) const {
  auto it = index_.find(path);
  if (it == index_.end()) return nullptr;
  return &it->second->data;
}

std::optional<DirtyEntry> WriteBackCache::take(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  DirtyEntry entry = std::move(*it->second);
  bytes_ -= entry.data.size();
  fifo_.erase(it->second);
  index_.erase(it);
  return entry;
}

bool WriteBackCache::drop(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return false;
  bytes_ -= it->second->data.size();
  fifo_.erase(it->second);
  index_.erase(it);
  return true;
}

std::vector<DirtyEntry> WriteBackCache::take_group(std::size_t max_entries) {
  std::vector<DirtyEntry> out;
  out.reserve(std::min(max_entries, fifo_.size()));
  while (out.size() < max_entries && !fifo_.empty()) {
    DirtyEntry& front = fifo_.front();
    bytes_ -= front.data.size();
    index_.erase(front.path);
    out.push_back(std::move(front));
    fifo_.pop_front();
  }
  return out;
}

void WriteBackCache::restore(std::vector<DirtyEntry> entries) {
  // Reinsert at the head, preserving the original relative order; a
  // payload absorbed again while the flush was in flight wins (it is
  // strictly newer than the restored copy).
  for (auto rit = entries.rbegin(); rit != entries.rend(); ++rit) {
    if (index_.contains(rit->path)) continue;
    bytes_ += rit->data.size();
    fifo_.push_front(std::move(*rit));
    index_.emplace(fifo_.front().path, fifo_.begin());
  }
}

std::vector<std::string> WriteBackCache::paths() const {
  std::vector<std::string> out;
  out.reserve(fifo_.size());
  for (const auto& e : fifo_) out.push_back(e.path);
  return out;
}

}  // namespace hyrd::cache
