#include "cache/client_cache.h"

#include <utility>

#include "obs/metrics.h"

namespace hyrd::cache {

namespace {

struct CacheMetrics {
  obs::Counter read_hits;
  obs::Counter read_misses;
  obs::Counter dirty_hits;
  obs::Counter absorbed;
  obs::Counter absorbed_bytes;
  obs::Counter coalesced;
  obs::Counter flush_batches;
  obs::Counter flushed_entries;
  obs::Counter flushed_bytes;
  obs::Counter flush_failures;
  obs::Counter forced_flushes;
  obs::Counter dirty_lost_entries;
  obs::Counter dirty_lost_bytes;
  obs::Gauge dirty_bytes_now;
  obs::Gauge read_bytes_now;
};

CacheMetrics& metrics() {
  static CacheMetrics m{
      obs::MetricsRegistry::global().counter("cache.read.hits"),
      obs::MetricsRegistry::global().counter("cache.read.misses"),
      obs::MetricsRegistry::global().counter("cache.dirty.hits"),
      obs::MetricsRegistry::global().counter("cache.write.absorbed"),
      obs::MetricsRegistry::global().counter("cache.write.absorbed_bytes"),
      obs::MetricsRegistry::global().counter("cache.write.coalesced"),
      obs::MetricsRegistry::global().counter("cache.flush.batches"),
      obs::MetricsRegistry::global().counter("cache.flush.entries"),
      obs::MetricsRegistry::global().counter("cache.flush.bytes"),
      obs::MetricsRegistry::global().counter("cache.flush.failures"),
      obs::MetricsRegistry::global().counter("cache.flush.forced"),
      obs::MetricsRegistry::global().counter("cache.dirty.lost_entries"),
      obs::MetricsRegistry::global().counter("cache.dirty.lost_bytes"),
      obs::MetricsRegistry::global().gauge("cache.dirty.bytes"),
      obs::MetricsRegistry::global().gauge("cache.read.bytes"),
  };
  return m;
}

}  // namespace

ClientCache::ClientCache(CacheConfig config) : config_(config) {
  if (read_cache_active()) {
    read_cache_.set_capacity(config_.read_cache_bytes,
                             config_.protected_fraction);
  }
}

ClientCache::AbsorbOutcome ClientCache::absorb(const std::string& path,
                                               common::Buffer data) {
  const std::uint64_t size = data.size();
  std::lock_guard lock(mu_);
  const std::int64_t before =
      static_cast<std::int64_t>(write_back_.bytes());
  AbsorbOutcome out;
  out.coalesced = write_back_.absorb(path, std::move(data));
  // The dirty copy is the newest version; a stale read-cache copy of the
  // same path must not win a later lookup.
  read_cache_.erase(path);
  ++stats_.absorbed_writes;
  stats_.absorbed_bytes += size;
  if (out.coalesced) ++stats_.coalesced_writes;
  metrics().absorbed.inc();
  metrics().absorbed_bytes.add(size);
  if (out.coalesced) metrics().coalesced.inc();
  metrics().dirty_bytes_now.add(
      static_cast<std::int64_t>(write_back_.bytes()) - before);
  out.need_flush = write_back_.entries() >= config_.group_commit_entries ||
                   write_back_.bytes() >= config_.max_dirty_bytes;
  return out;
}

std::optional<common::Buffer> ClientCache::dirty_lookup(
    const std::string& path) {
  std::lock_guard lock(mu_);
  const common::Buffer* data = write_back_.lookup(path);
  if (data == nullptr) return std::nullopt;
  ++stats_.dirty_hits;
  metrics().dirty_hits.inc();
  return *data;
}

std::optional<common::Buffer> ClientCache::dirty_peek(
    const std::string& path) const {
  std::lock_guard lock(mu_);
  const common::Buffer* data = write_back_.lookup(path);
  if (data == nullptr) return std::nullopt;
  return *data;
}

std::vector<std::string> ClientCache::dirty_paths() const {
  std::lock_guard lock(mu_);
  return write_back_.paths();
}

std::optional<DirtyEntry> ClientCache::take_dirty(const std::string& path) {
  std::lock_guard lock(mu_);
  auto e = write_back_.take(path);
  if (e.has_value()) {
    metrics().dirty_bytes_now.add(-static_cast<std::int64_t>(e->data.size()));
  }
  return e;
}

std::vector<DirtyEntry> ClientCache::take_flush_group() {
  std::lock_guard lock(mu_);
  auto group = write_back_.take_group(config_.group_commit_entries);
  std::int64_t taken = 0;
  for (const auto& e : group) taken += static_cast<std::int64_t>(e.data.size());
  metrics().dirty_bytes_now.add(-taken);
  return group;
}

void ClientCache::restore_dirty(std::vector<DirtyEntry> entries) {
  if (entries.empty()) return;
  std::lock_guard lock(mu_);
  const std::int64_t before = static_cast<std::int64_t>(write_back_.bytes());
  stats_.flush_failures += entries.size();
  metrics().flush_failures.add(entries.size());
  write_back_.restore(std::move(entries));
  metrics().dirty_bytes_now.add(
      static_cast<std::int64_t>(write_back_.bytes()) - before);
}

bool ClientCache::drop_dirty(const std::string& path) {
  std::lock_guard lock(mu_);
  const common::Buffer* data = write_back_.lookup(path);
  if (data == nullptr) return false;
  metrics().dirty_bytes_now.add(-static_cast<std::int64_t>(data->size()));
  return write_back_.drop(path);
}

std::pair<std::uint64_t, std::uint64_t> ClientCache::discard_all_dirty() {
  std::lock_guard lock(mu_);
  const std::uint64_t entries = write_back_.entries();
  const std::uint64_t bytes = write_back_.bytes();
  (void)write_back_.take_group(entries);
  stats_.dirty_lost_entries += entries;
  stats_.dirty_lost_bytes += bytes;
  metrics().dirty_lost_entries.add(entries);
  metrics().dirty_lost_bytes.add(bytes);
  metrics().dirty_bytes_now.add(-static_cast<std::int64_t>(bytes));
  return {entries, bytes};
}

void ClientCache::note_flush_batch(std::size_t flushed_entries,
                                   std::uint64_t flushed_bytes, bool forced) {
  std::lock_guard lock(mu_);
  ++stats_.flush_batches;
  stats_.flushed_entries += flushed_entries;
  stats_.flushed_bytes += flushed_bytes;
  if (forced) ++stats_.forced_flushes;
  metrics().flush_batches.inc();
  metrics().flushed_entries.add(flushed_entries);
  metrics().flushed_bytes.add(flushed_bytes);
  if (forced) metrics().forced_flushes.inc();
}

bool ClientCache::dirty_empty() const {
  std::lock_guard lock(mu_);
  return write_back_.empty();
}

std::uint64_t ClientCache::dirty_bytes() const {
  std::lock_guard lock(mu_);
  return write_back_.bytes();
}

std::size_t ClientCache::dirty_entries() const {
  std::lock_guard lock(mu_);
  return write_back_.entries();
}

std::optional<ReadHit> ClientCache::read_lookup(const std::string& path) {
  if (!read_cache_active()) return std::nullopt;
  std::lock_guard lock(mu_);
  auto hit = read_cache_.lookup(path);
  if (hit.has_value()) {
    ++stats_.read_hits;
    metrics().read_hits.inc();
  } else {
    ++stats_.read_misses;
    metrics().read_misses.inc();
  }
  return hit;
}

void ClientCache::read_insert(const std::string& path, common::Buffer data) {
  if (!read_cache_active()) return;
  std::lock_guard lock(mu_);
  const std::int64_t before = static_cast<std::int64_t>(read_cache_.bytes());
  read_cache_.insert(path, std::move(data));
  metrics().read_bytes_now.add(static_cast<std::int64_t>(read_cache_.bytes()) -
                               before);
}

void ClientCache::invalidate(const std::string& path) {
  std::lock_guard lock(mu_);
  const common::Buffer* dirty = write_back_.lookup(path);
  if (dirty != nullptr) {
    metrics().dirty_bytes_now.add(
        -static_cast<std::int64_t>(dirty->size()));
    write_back_.drop(path);
  }
  const std::int64_t before = static_cast<std::int64_t>(read_cache_.bytes());
  read_cache_.erase(path);
  metrics().read_bytes_now.add(static_cast<std::int64_t>(read_cache_.bytes()) -
                               before);
}

void ClientCache::invalidate_read(const std::string& path) {
  std::lock_guard lock(mu_);
  const std::int64_t before = static_cast<std::int64_t>(read_cache_.bytes());
  read_cache_.erase(path);
  metrics().read_bytes_now.add(static_cast<std::int64_t>(read_cache_.bytes()) -
                               before);
}

void ClientCache::wire_adaptive(CostModel model,
                                std::function<void(std::uint64_t)> apply,
                                std::uint64_t initial_threshold) {
  std::lock_guard lock(mu_);
  adaptive_.configure(config_.adaptive, std::move(model), std::move(apply),
                      initial_threshold);
}

void ClientCache::observe_write(std::uint64_t bytes) {
  if (!config_.enabled || !config_.adaptive.enabled) return;
  std::lock_guard lock(mu_);
  adaptive_.observe_write(bytes);
  stats_.adapt_recomputes = adaptive_.recomputes();
  stats_.adapt_changes = adaptive_.applied_changes();
}

std::uint64_t ClientCache::adaptive_threshold() const {
  std::lock_guard lock(mu_);
  return adaptive_.current();
}

CacheStats ClientCache::stats_snapshot() const {
  std::lock_guard lock(mu_);
  CacheStats out = stats_;
  out.threshold_now = adaptive_.current();
  out.dirty_entries_now = write_back_.entries();
  out.dirty_bytes_now = write_back_.bytes();
  out.read_bytes_now = read_cache_.bytes();
  out.read_entries_now = read_cache_.entries();
  out.read_evictions = read_cache_.evictions();
  return out;
}

}  // namespace hyrd::cache
