// AdaptiveThreshold: online small/large classification (ROADMAP item 4).
//
// The paper fixes the replication/erasure split at 1 MB (§III-A), chosen
// offline from a PostMark-style size distribution. This controller makes
// the split workload-adaptive: it maintains a decayed log2 histogram of
// observed data-write sizes and, every adapt_interval writes, moves the
// threshold to the power-of-two candidate T minimizing
//
//   sum over buckets b:  count[b] * cost_class(rep_size(b))
//
// where cost_class is the client-supplied modeled cost of handling an
// object of that size replicated (size < T) or erasure-coded (size >= T) —
// HyRD wires in its providers' latency models plus a storage-overhead
// term (space_weight; cost-model grounding à la Pamies-Juarez et al.).
//
// Deterministic by construction: no wall clock, no randomness — the same
// observation sequence always yields the same threshold trajectory, which
// keeps the bench_scaleout same-seed byte-identity pins intact.
//
// Not thread-safe on its own: the owning ClientCache serializes access.
#pragma once

#include <array>
#include <cstdint>
#include <functional>

#include "cache/cache_config.h"

namespace hyrd::cache {

/// Modeled cost of one object of `bytes`, handled as each class. Units
/// are arbitrary (relative comparison only); both callbacks must use the
/// same units.
struct CostModel {
  std::function<double(std::uint64_t bytes)> replicated_cost;
  std::function<double(std::uint64_t bytes)> erasure_cost;
};

class AdaptiveThreshold {
 public:
  /// `apply` receives every newly chosen threshold (the client forwards it
  /// to WorkloadMonitor::set_threshold).
  void configure(const AdaptiveConfig& config, CostModel model,
                 std::function<void(std::uint64_t)> apply,
                 std::uint64_t initial_threshold);

  [[nodiscard]] bool enabled() const { return config_.enabled; }

  /// Records one data write; may recompute and apply a new threshold.
  void observe_write(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t current() const { return current_; }
  [[nodiscard]] std::uint64_t recomputes() const { return recomputes_; }
  [[nodiscard]] std::uint64_t applied_changes() const { return changes_; }

  /// Exposed for tests: the argmin over candidates for the current
  /// histogram (no state change). The incumbent threshold wins ties —
  /// only a strictly cheaper candidate moves the threshold (hysteresis;
  /// a sparse histogram leaves wide flat regions in the cost curve).
  [[nodiscard]] std::uint64_t best_candidate() const;

  /// The modeled total cost of the observed histogram under `threshold`.
  [[nodiscard]] double modeled_cost(std::uint64_t threshold) const;

 private:
  static constexpr std::size_t kBuckets = 64;
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t bytes);
  [[nodiscard]] static std::uint64_t representative(std::size_t bucket);

  AdaptiveConfig config_;
  CostModel model_;
  std::function<void(std::uint64_t)> apply_;
  std::array<std::uint64_t, kBuckets> histogram_{};
  std::uint64_t observed_ = 0;   // writes since last recompute
  std::uint64_t total_ = 0;      // decayed population size
  std::uint64_t current_ = 0;
  std::uint64_t recomputes_ = 0;
  std::uint64_t changes_ = 0;
};

}  // namespace hyrd::cache
