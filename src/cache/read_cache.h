// ReadCache: byte-bounded segmented LRU over zero-copy buffers. New
// entries land in the probation segment; a hit promotes into the
// protected segment (bounded to protected_fraction of the budget, its
// overflow demotes back to probation's head). One-touch scan traffic
// therefore washes through probation without ever displacing the working
// set — the classic SLRU scan resistance.
//
// Per-entry hit counts are surfaced on lookup so the client's
// hot-promotion heuristic can run off cache residency instead of the raw
// per-path read-count map (WorkloadMonitor keeps that map only for
// uncached reads).
//
// Not thread-safe on its own: the owning ClientCache serializes access.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/buffer.h"

namespace hyrd::cache {

struct ReadHit {
  common::Buffer data;
  std::uint32_t hits = 0;  // lookups since insertion, this one included
};

class ReadCache {
 public:
  void set_capacity(std::uint64_t bytes, double protected_fraction);

  /// Inserts (or refreshes) a clean copy of `path`. Objects larger than
  /// the whole budget are ignored.
  void insert(const std::string& path, common::Buffer data);

  /// Hit: bumps the entry's hit count, promotes/refreshes its LRU
  /// position, and returns a refbump of the bytes. Miss: nullopt.
  std::optional<ReadHit> lookup(const std::string& path);

  bool erase(const std::string& path);
  void clear();

  [[nodiscard]] std::size_t entries() const { return index_.size(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  struct Node {
    std::string path;
    common::Buffer data;
    std::uint32_t hits = 0;
    bool is_protected = false;
  };
  using List = std::list<Node>;

  void evict_to_fit();
  void bound_protected();
  void unlink(List::iterator it);

  List probation_;  // MRU at front
  List protected_;  // MRU at front
  std::unordered_map<std::string, List::iterator> index_;
  std::uint64_t capacity_ = 0;
  std::uint64_t protected_capacity_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t protected_bytes_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace hyrd::cache
