#include "cache/read_cache.h"

#include <algorithm>
#include <utility>

namespace hyrd::cache {

void ReadCache::set_capacity(std::uint64_t bytes, double protected_fraction) {
  capacity_ = bytes;
  protected_fraction = std::clamp(protected_fraction, 0.0, 1.0);
  protected_capacity_ = static_cast<std::uint64_t>(
      static_cast<double>(bytes) * protected_fraction);
  bound_protected();
  evict_to_fit();
}

void ReadCache::unlink(List::iterator it) {
  bytes_ -= it->data.size();
  if (it->is_protected) {
    protected_bytes_ -= it->data.size();
    protected_.erase(it);
  } else {
    probation_.erase(it);
  }
}

void ReadCache::insert(const std::string& path, common::Buffer data) {
  if (capacity_ == 0 || data.size() > capacity_) return;
  if (auto it = index_.find(path); it != index_.end()) {
    unlink(it->second);
    index_.erase(it);
  }
  bytes_ += data.size();
  probation_.push_front({path, std::move(data), 0, false});
  index_.emplace(path, probation_.begin());
  evict_to_fit();
}

std::optional<ReadHit> ReadCache::lookup(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return std::nullopt;
  List::iterator node = it->second;
  if (node->is_protected) {
    protected_.splice(protected_.begin(), protected_, node);
  } else {
    node->is_protected = true;
    protected_bytes_ += node->data.size();
    protected_.splice(protected_.begin(), probation_, node);
  }
  // splice preserves iterator identity, so index_ stays valid throughout.
  ++node->hits;
  ReadHit hit{node->data, node->hits};
  bound_protected();
  return hit;
}

bool ReadCache::erase(const std::string& path) {
  auto it = index_.find(path);
  if (it == index_.end()) return false;
  unlink(it->second);
  index_.erase(it);
  return true;
}

void ReadCache::clear() {
  probation_.clear();
  protected_.clear();
  index_.clear();
  bytes_ = 0;
  protected_bytes_ = 0;
}

void ReadCache::bound_protected() {
  // Protected overflow demotes LRU-first back to probation's head: the
  // entry keeps one more chance before true eviction.
  while (protected_bytes_ > protected_capacity_ && !protected_.empty()) {
    auto last = std::prev(protected_.end());
    protected_bytes_ -= last->data.size();
    last->is_protected = false;
    probation_.splice(probation_.begin(), protected_, last);
  }
}

void ReadCache::evict_to_fit() {
  while (bytes_ > capacity_) {
    List& victim_list = probation_.empty() ? protected_ : probation_;
    if (victim_list.empty()) break;
    auto last = std::prev(victim_list.end());
    if (last->is_protected) protected_bytes_ -= last->data.size();
    bytes_ -= last->data.size();
    index_.erase(last->path);
    victim_list.erase(last);
    ++evictions_;
  }
}

}  // namespace hyrd::cache
