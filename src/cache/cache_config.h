// Client cache configuration: write-back group commit, read-through
// hot-data caching, and the online-adaptive small/large threshold
// controller. Everything is off by default — a client with a
// default-constructed CacheConfig behaves byte-identically to one with no
// cache at all (the determinism pins in tests/integration rely on this).
#pragma once

#include <cstddef>
#include <cstdint>

namespace hyrd::cache {

/// Online-adaptive small/large classification (ROADMAP item 4): the
/// controller tracks the observed write-size distribution in log2 buckets
/// and periodically moves the threshold to the power-of-two candidate that
/// minimizes the modeled per-class cost supplied by the client.
struct AdaptiveConfig {
  bool enabled = false;
  /// Recompute the threshold every this many observed data writes.
  std::uint32_t adapt_interval = 16;
  std::uint64_t min_threshold = 64ull * 1024;
  std::uint64_t max_threshold = 64ull * 1024 * 1024;
  /// Weight of the storage-overhead term relative to the latency term in
  /// the candidate cost (0 = latency only; the paper's cost/performance
  /// trade-off knob, §III-C).
  double space_weight = 0.25;
};

struct CacheConfig {
  /// Master switch. When false the client never consults the cache and the
  /// do_* hot paths are exactly the pre-cache code.
  bool enabled = false;

  // --- Write-back (group commit) ---
  bool write_back_enabled = true;
  /// Absorb only objects at or below this size (replicated small writes;
  /// large/erasure writes always go straight through).
  std::uint64_t max_object_bytes = 1ull * 1024 * 1024;
  /// Dirty-byte watermark: an absorb that crosses it triggers a group
  /// flush charged to the triggering write.
  std::uint64_t max_dirty_bytes = 8ull * 1024 * 1024;
  /// Dirty-entry watermark — whichever of the two trips first flushes.
  std::size_t group_commit_entries = 32;
  /// Coherence rule for reads of dirty paths: serve the cached bytes
  /// directly (true — they are by construction the newest version), or
  /// flush-on-read before the remote GET (false).
  bool serve_dirty_reads = true;

  // --- Read-through hot-data cache ---
  bool read_cache_enabled = true;
  /// Total byte budget of the segmented LRU (probation + protected).
  std::uint64_t read_cache_bytes = 32ull * 1024 * 1024;
  /// Fraction of the budget reserved for the protected segment (entries
  /// that have been hit at least once after insertion).
  double protected_fraction = 0.8;

  AdaptiveConfig adaptive;
};

}  // namespace hyrd::cache
