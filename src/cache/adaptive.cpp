#include "cache/adaptive.h"

#include <bit>
#include <limits>

namespace hyrd::cache {

void AdaptiveThreshold::configure(const AdaptiveConfig& config,
                                  CostModel model,
                                  std::function<void(std::uint64_t)> apply,
                                  std::uint64_t initial_threshold) {
  config_ = config;
  model_ = std::move(model);
  apply_ = std::move(apply);
  current_ = initial_threshold;
}

std::size_t AdaptiveThreshold::bucket_of(std::uint64_t bytes) {
  if (bytes <= 1) return 0;
  return static_cast<std::size_t>(std::bit_width(bytes - 1));
}

std::uint64_t AdaptiveThreshold::representative(std::size_t bucket) {
  // Bucket b holds sizes in (2^(b-1), 2^b]; use the midpoint 3·2^(b-2) as
  // the representative (the exact choice only shifts all candidates'
  // costs together within a bucket).
  if (bucket < 2) return std::uint64_t{1} << bucket;
  return std::uint64_t{3} << (bucket - 2);
}

double AdaptiveThreshold::modeled_cost(std::uint64_t threshold) const {
  double cost = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (histogram_[b] == 0) continue;
    const std::uint64_t size = representative(b);
    const double per_object = size < threshold ? model_.replicated_cost(size)
                                               : model_.erasure_cost(size);
    cost += static_cast<double>(histogram_[b]) * per_object;
  }
  return cost;
}

std::uint64_t AdaptiveThreshold::best_candidate() const {
  // Hysteresis: the incumbent competes first and only a strictly cheaper
  // candidate displaces it. When the histogram has no mass between two
  // candidates their costs tie exactly, and without this rule a sparse
  // early histogram would yank the threshold to the edge of a wide flat
  // region of the cost curve — maximally far from the incumbent, on zero
  // evidence.
  std::uint64_t best = current_;
  double best_cost = modeled_cost(current_);
  for (std::uint64_t t = config_.min_threshold; t <= config_.max_threshold;
       t <<= 1) {
    const double cost = modeled_cost(t);
    if (cost < best_cost) {
      best_cost = cost;
      best = t;
    }
  }
  return best;
}

void AdaptiveThreshold::observe_write(std::uint64_t bytes) {
  if (!config_.enabled || !model_.replicated_cost || !model_.erasure_cost) {
    return;
  }
  ++histogram_[bucket_of(bytes)];
  ++total_;
  if (++observed_ < config_.adapt_interval) return;
  observed_ = 0;
  ++recomputes_;
  const std::uint64_t next = best_candidate();
  if (next != current_) {
    current_ = next;
    ++changes_;
    if (apply_) apply_(next);
  }
  // Exponential decay: halve the population each recompute so the
  // controller tracks drift instead of the all-time distribution.
  std::uint64_t remaining = 0;
  for (auto& c : histogram_) {
    c >>= 1;
    remaining += c;
  }
  total_ = remaining;
}

}  // namespace hyrd::cache
