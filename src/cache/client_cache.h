// ClientCache: the thread-safe facade StorageClient talks to. Owns the
// write-back FIFO, the segmented-LRU read cache, and the adaptive
// threshold controller, serialized under one mutex (cache operations are
// O(1) map/list moves — the mutex never spans provider I/O; flushing takes
// entries out, performs the remote writes lock-free, and restores
// failures).
//
// Every event lands in obs::MetricsRegistry under cache.* so campaign
// timelines and bench runs see hit/miss/flush/dirty-byte behavior without
// bespoke plumbing.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cache/adaptive.h"
#include "cache/cache_config.h"
#include "cache/read_cache.h"
#include "cache/write_back.h"

namespace hyrd::cache {

/// Point-in-time counters (all monotonic except the *_now gauges).
struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t dirty_hits = 0;  // reads served straight from dirty data
  std::uint64_t absorbed_writes = 0;
  std::uint64_t absorbed_bytes = 0;
  std::uint64_t coalesced_writes = 0;  // overwrote a still-dirty entry
  std::uint64_t flush_batches = 0;
  std::uint64_t flushed_entries = 0;
  std::uint64_t flushed_bytes = 0;
  std::uint64_t flush_failures = 0;    // entries restored after a failure
  std::uint64_t forced_flushes = 0;    // coherence flushes (read/update/…)
  std::uint64_t dirty_lost_entries = 0;
  std::uint64_t dirty_lost_bytes = 0;
  std::uint64_t read_evictions = 0;
  std::uint64_t adapt_recomputes = 0;
  std::uint64_t adapt_changes = 0;
  std::uint64_t threshold_now = 0;
  std::uint64_t dirty_entries_now = 0;
  std::uint64_t dirty_bytes_now = 0;
  std::uint64_t read_bytes_now = 0;
  std::uint64_t read_entries_now = 0;
};

class ClientCache {
 public:
  explicit ClientCache(CacheConfig config);

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] bool write_back_active() const {
    return config_.enabled && config_.write_back_enabled;
  }
  [[nodiscard]] bool read_cache_active() const {
    return config_.enabled && config_.read_cache_enabled;
  }

  // --- Write-back ---
  struct AbsorbOutcome {
    bool coalesced = false;
    bool need_flush = false;  // a watermark tripped; caller should flush
  };
  AbsorbOutcome absorb(const std::string& path, common::Buffer data);
  [[nodiscard]] std::optional<common::Buffer> dirty_lookup(
      const std::string& path);
  /// Const peek (stat synthesis): no hit accounting.
  [[nodiscard]] std::optional<common::Buffer> dirty_peek(
      const std::string& path) const;
  [[nodiscard]] std::vector<std::string> dirty_paths() const;
  std::optional<DirtyEntry> take_dirty(const std::string& path);
  std::vector<DirtyEntry> take_flush_group();
  /// Returns failed entries to the dirty set (counted as flush_failures).
  void restore_dirty(std::vector<DirtyEntry> entries);
  bool drop_dirty(const std::string& path);
  /// Drops everything dirty, counting it as lost (provider catastrophe /
  /// end-of-campaign accounting). Returns {entries, bytes} lost.
  std::pair<std::uint64_t, std::uint64_t> discard_all_dirty();
  void note_flush_batch(std::size_t flushed_entries,
                        std::uint64_t flushed_bytes, bool forced);
  [[nodiscard]] bool dirty_empty() const;
  [[nodiscard]] std::uint64_t dirty_bytes() const;
  [[nodiscard]] std::size_t dirty_entries() const;

  // --- Read-through ---
  [[nodiscard]] std::optional<ReadHit> read_lookup(const std::string& path);
  void read_insert(const std::string& path, common::Buffer data);
  /// Drops both the read copy and any dirty entry (full overwrite /
  /// remove passing through the cache).
  void invalidate(const std::string& path);
  void invalidate_read(const std::string& path);

  // --- Adaptive threshold ---
  void wire_adaptive(CostModel model, std::function<void(std::uint64_t)> apply,
                     std::uint64_t initial_threshold);
  void observe_write(std::uint64_t bytes);
  [[nodiscard]] std::uint64_t adaptive_threshold() const;

  [[nodiscard]] CacheStats stats_snapshot() const;

 private:
  CacheConfig config_;
  mutable std::mutex mu_;
  WriteBackCache write_back_;
  ReadCache read_cache_;
  AdaptiveThreshold adaptive_;
  CacheStats stats_;
};

}  // namespace hyrd::cache
