// WriteBackCache: bounded FIFO of dirty (absorbed, not yet flushed) small
// writes. Entries hold zero-copy common::Buffer payloads by refbump; an
// absorb of a path that is already dirty coalesces in place (the older
// payload was never observable remotely, so only the newest version needs
// to reach the providers). Flushing drains in FIFO order so group commits
// preserve the absorb order across distinct paths.
//
// Not thread-safe on its own: the owning ClientCache serializes access.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"

namespace hyrd::cache {

struct DirtyEntry {
  std::string path;
  common::Buffer data;
};

class WriteBackCache {
 public:
  /// Inserts or coalesces `path`'s newest payload. Returns true when the
  /// write replaced an existing dirty entry (a coalesced overwrite — one
  /// provider round trip saved outright).
  bool absorb(const std::string& path, common::Buffer data);

  /// Borrowed view of the dirty payload, if any (refbump to retain).
  [[nodiscard]] const common::Buffer* lookup(const std::string& path) const;

  /// Removes and returns `path`'s dirty entry (flush-on-read / coherence).
  std::optional<DirtyEntry> take(const std::string& path);

  /// Drops `path`'s dirty entry without flushing (overwritten by a larger
  /// write or removed before ever reaching a provider).
  bool drop(const std::string& path);

  /// Removes and returns up to `max_entries` entries, oldest first.
  std::vector<DirtyEntry> take_group(std::size_t max_entries);

  /// Returns entries to the head of the FIFO in their original order
  /// (flush failure: the payloads stay dirty and will be retried by the
  /// next flush attempt).
  void restore(std::vector<DirtyEntry> entries);

  /// Dirty paths in FIFO order (for list() merging).
  [[nodiscard]] std::vector<std::string> paths() const;

  [[nodiscard]] std::size_t entries() const { return fifo_.size(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return fifo_.empty(); }

 private:
  std::list<DirtyEntry> fifo_;  // oldest at front
  std::unordered_map<std::string, std::list<DirtyEntry>::iterator> index_;
  std::uint64_t bytes_ = 0;
};

}  // namespace hyrd::cache
