# CMake generated Testfile for 
# Source directory: /root/repo/src/gcsapi
# Build directory: /root/repo/build-bench/src/gcsapi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
