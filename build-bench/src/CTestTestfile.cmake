# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-bench/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("erasure")
subdirs("cloud")
subdirs("gcsapi")
subdirs("metadata")
subdirs("dist")
subdirs("core")
subdirs("workload")
