// Figure 3 reproduction: the synthesized Internet Archive year — monthly
// data transferred (a) and request counts (b), with the paper's published
// aggregate ratios (reads:writes = 2.1:1 bytes, 3.5:1 requests).
#include <cstdio>

#include "common/table.h"
#include "workload/ia_trace.h"

using namespace hyrd;

int main() {
  const workload::IaTraceParams params;
  const auto trace = workload::synthesize_ia_trace(params);
  std::printf("=== Figure 3: Internet Archive trace (synthesized, seed %llu) ===\n\n",
              static_cast<unsigned long long>(params.seed));

  static const char* kMonths[] = {"Feb08", "Mar08", "Apr08", "May08",
                                  "Jun08", "Jul08", "Aug08", "Sep08",
                                  "Oct08", "Nov08", "Dec08", "Jan09"};

  std::printf("(a) Data transferred per month (TB)\n");
  common::Table bytes({"Month", "Data Written TB", "Data Read TB"});
  for (const auto& m : trace) {
    bytes.add_row({kMonths[m.month % 12],
                   common::Table::num(static_cast<double>(m.bytes_written) / 1e12, 2),
                   common::Table::num(static_cast<double>(m.bytes_read) / 1e12, 2)});
  }
  bytes.print();

  std::printf("\n(b) User read/write requests per month (millions)\n");
  common::Table reqs({"Month", "Write requests M", "Read requests M"});
  for (const auto& m : trace) {
    reqs.add_row({kMonths[m.month % 12],
                  common::Table::num(static_cast<double>(m.write_requests) / 1e6, 3),
                  common::Table::num(static_cast<double>(m.read_requests) / 1e6, 3)});
  }
  reqs.print();

  const auto totals = workload::trace_totals(trace);
  std::printf("\nAggregate ratios (paper: 2.1:1 bytes, 3.5:1 requests)\n");
  std::printf("  reads:writes by bytes    = %.2f : 1\n", totals.byte_ratio());
  std::printf("  reads:writes by requests = %.2f : 1\n",
              totals.request_ratio());
  std::printf("  year volume: %.1f TB written, %.1f TB read\n",
              static_cast<double>(totals.bytes_written) / 1e12,
              static_cast<double>(totals.bytes_read) / 1e12);
  return 0;
}
