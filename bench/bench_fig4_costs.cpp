// Figure 4 reproduction: estimated monthly (a) and cumulative (b) costs of
// hosting the Internet Archive year on each single cloud and on the three
// Cloud-of-Clouds schemes (DuraCloud = 2x replication, RACS = RAID5 over
// four clouds, HyRD = hybrid).
//
// Paper claims to check: DuraCloud most expensive, Aliyun cheapest single
// cloud, HyRD ~33.4% below DuraCloud and ~20.4% below RACS cumulatively.
//
// The replay runs at a configurable scale (bills are linear in volume, so
// reported full-scale dollars and all ratios are scale-exact).
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "workload/cost_sim.h"

using namespace hyrd;

int main(int argc, char** argv) {
  // Optional arg: replay scale divisor (default 20000 => ~100 MB of
  // simulated ingest per month; pass a smaller divisor for a larger,
  // slower, statistically smoother replay).
  const double divisor = argc > 1 ? std::atof(argv[1]) : 20000.0;

  workload::IaTraceParams trace_params;
  const auto trace = workload::synthesize_ia_trace(trace_params);
  workload::CostSimConfig sim_config;
  sim_config.scale = 1.0 / divisor;
  workload::CostSimulator sim(sim_config);

  std::printf(
      "=== Figure 4: cloud hosting costs, IA trace (12 months, replay scale "
      "1/%.0f, seed %llu) ===\n\n",
      divisor, static_cast<unsigned long long>(sim_config.seed));

  std::vector<workload::CostSimReport> reports;
  for (const auto& [name, factory] : bench::all_schemes()) {
    auto scheme = bench::make_scheme(name, factory, 2014);
    reports.push_back(sim.replay(trace, *scheme.client, *scheme.registry));
    std::printf("  replayed %-12s  (%llu files, cumulative $%.0f)\n",
                name.c_str(),
                static_cast<unsigned long long>(reports.back().files_created),
                reports.back().total_cost());
  }

  std::printf("\n(a) Monthly cost (full-scale USD)\n");
  {
    std::vector<std::string> headers = {"Month"};
    for (const auto& r : reports) headers.push_back(r.client);
    common::Table t(headers);
    for (int m = 0; m < 12; ++m) {
      std::vector<std::string> row = {"m" + std::to_string(m)};
      for (const auto& r : reports) {
        row.push_back(common::Table::num(r.monthly_cost[m], 0));
      }
      t.add_row(row);
    }
    t.print();
  }

  std::printf("\n(b) Cumulative cost (full-scale USD)\n");
  {
    std::vector<std::string> headers = {"Month"};
    for (const auto& r : reports) headers.push_back(r.client);
    common::Table t(headers);
    for (int m = 0; m < 12; ++m) {
      std::vector<std::string> row = {"m" + std::to_string(m)};
      for (const auto& r : reports) {
        row.push_back(common::Table::num(r.cumulative_cost[m], 0));
      }
      t.add_row(row);
    }
    t.print();
  }

  auto total = [&](const std::string& name) {
    for (const auto& r : reports) {
      if (r.client == name || r.client == "Single(" + name + ")") {
        return r.total_cost();
      }
    }
    return 0.0;
  };
  const double hyrd = total("HyRD");
  const double racs = total("RACS");
  const double dura = total("DuraCloud");

  std::printf("\nPaper-shape checks:\n");
  std::printf("  HyRD vs DuraCloud: %.1f%% cheaper (paper: 33.4%%)\n",
              100.0 * (1.0 - hyrd / dura));
  std::printf("  HyRD vs RACS:      %.1f%% cheaper (paper: 20.4%%)\n",
              100.0 * (1.0 - hyrd / racs));
  std::printf("  DuraCloud is the most expensive scheme: %s\n",
              (dura >= racs && dura >= hyrd) ? "yes" : "NO (regression)");
  const double aliyun = total("Aliyun");
  bool aliyun_cheapest = true;
  for (const char* n : {"AmazonS3", "WindowsAzure", "Rackspace"}) {
    if (total(n) < aliyun) aliyun_cheapest = false;
  }
  std::printf("  Aliyun is the cheapest single cloud: %s\n",
              aliyun_cheapest ? "yes" : "NO (regression)");
  return 0;
}
