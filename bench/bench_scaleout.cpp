// Scale-out study: clients-vs-throughput/tail-latency without threads.
//
// The legacy benches model concurrency with OS threads, which tops out at
// a few thousand clients per box. This bench drives the discrete-event
// engine (sim/) instead: each tenant is a heap-allocated state machine on
// a virtual-time event queue, so one process sweeps 10^3 -> 10^6
// concurrent tenants against the three Cloud-of-Clouds schemes. Providers
// run a bounded-capacity fair queue (cloud/congestion.h), so the sweep
// exposes the congestion knee: throughput saturates and p99 climbs once
// the fleet's offered load crosses provider capacity.
//
// Usage: bench_scaleout [--smoke] [--seed=N] [--max-tenants=N]
//                       [--scheme=NAME] [--stable-json] [--meta-ratio=R]
//                       [--campaign[=N]] [--json | --json=FILE]
//                       [--timeline=FILE] [--trace=FILE] [--cache]
//
//   --smoke        one small point per scheme (CI lane; seconds, not minutes)
//   --seed=N       the single seed every RNG stream derives from (default 42)
//   --max-tenants  cap the sweep (default 1e6)
//   --scheme=NAME  restrict to HyRD | DuraCloud | RACS
//   --stable-json  exclude wall-clock/RSS keys so two same-seed runs emit
//                  byte-identical JSON (the determinism contract)
//   --meta-ratio=R fraction of each tenant's post-creation ops that are
//                  client-side metadata stats (sharded MetadataStore
//                  lookups, no provider traffic); default 0 = off, which
//                  keeps the default runs' RNG streams untouched
//   --campaign[=N] run the E4 failure campaign (N tenants, default 2000)
//                  instead of the sweep: tight congestion, jittered
//                  retries, a correlated two-provider outage, a brownout,
//                  and a permanent provider loss, reporting goodput /
//                  retry amplification / recovery time per scheme
//   --timeline=F   (campaign) write the per-scheme flight-recorder
//                  time-series to F (default BENCH_timeline.json)
//   --trace=F      (campaign) record per-op spans across the runs and dump
//                  Chrome trace_event JSON to F (one pid per scheme)
//   --cache        enable the client write-back + read-through cache
//                  (src/cache/, default config) on every run; the report
//                  gains cache_* keys and the end-of-run drain accounts
//                  dirty-data loss
//
// Sweep checks: at every point >= 1e5 tenants, RSS stays under 2 GB and
// marginal memory under 4 KB/tenant; the congestion knee must appear (p99
// at the largest point strictly above p99 at the smallest) per scheme.
// Campaign checks: HyRD rides out the whole campaign with zero
// client-visible failures, retries are actually exercised, no scheme's run
// resurrects the destroyed provider, and — read off the timeline, not
// end-of-run totals — HyRD's goodput is back at >= 90% of its pre-outage
// baseline within the recovery budget after the outage lifts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "obs/trace.h"
#include "sim/scaleout.h"
#include "sim/timeline.h"

using namespace hyrd;

namespace {

struct Point {
  sim::ScaleoutReport report;
};

constexpr std::uint64_t kGiB = 1ull << 30;

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::size_t max_tenants = 1'000'000;
  bool smoke = false;
  bool stable = false;
  bool campaign = false;
  bool cache_on = false;
  double meta_ratio = 0.0;
  std::size_t campaign_tenants = 2'000;
  std::string only_scheme;
  std::string timeline_file;
  std::string trace_file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--smoke") smoke = true;
    if (a == "--stable-json") stable = true;
    if (a == "--cache") cache_on = true;
    if (a == "--campaign") campaign = true;
    if (a.rfind("--campaign=", 0) == 0) {
      campaign = true;
      campaign_tenants = std::strtoull(a.c_str() + 11, nullptr, 10);
    }
    if (a.rfind("--seed=", 0) == 0)
      seed = std::strtoull(a.c_str() + 7, nullptr, 10);
    if (a.rfind("--max-tenants=", 0) == 0)
      max_tenants = std::strtoull(a.c_str() + 14, nullptr, 10);
    if (a.rfind("--scheme=", 0) == 0) only_scheme = a.substr(9);
    if (a.rfind("--meta-ratio=", 0) == 0)
      meta_ratio = std::strtod(a.c_str() + 13, nullptr);
    if (a.rfind("--timeline=", 0) == 0) timeline_file = a.substr(11);
    if (a.rfind("--trace=", 0) == 0) trace_file = a.substr(8);
  }
  bench::JsonSink json(argc, argv);
  if (campaign && timeline_file.empty()) timeline_file = "BENCH_timeline.json";

  if (campaign) {
    std::vector<std::string> schemes = {"HyRD", "DuraCloud", "RACS"};
    if (!only_scheme.empty()) schemes = {only_scheme};
    if (!json.quiet()) {
      std::printf(
          "=== E4 failure campaign: %zu tenants/scheme, correlated outage + "
          "brownout + permanent loss (seed %llu) ===\n\n",
          campaign_tenants, static_cast<unsigned long long>(seed));
    }

    bool hyrd_clean = true;
    bool no_resurrection = true;
    bool retried = false;
    bool recovery_ok = true;

    // Timeline recovery gate, read off the sampled series (not end-of-run
    // totals): baseline goodput = the windows between ramp end (10 vs) and
    // outage start (12 vs); the fleet must be back at >= 90% of it within
    // the budget after the outage lifts (20 vs). Gated on HyRD — the
    // schemes without a reachable replica set may legitimately limp.
    constexpr double kBaselineFromVs = 10.0;
    constexpr double kBaselineToVs = 12.0;
    constexpr double kOutageEndVs = 20.0;
    constexpr double kRecoveryFraction = 0.9;
    constexpr double kRecoveryBudgetVs = 10.0;

    obs::TraceRecorder recorder;
    std::string timelines;  // "schemes" object body of the timeline file
    common::Table t({"Scheme", "Ops ok", "Ops failed", "Retries", "Amp",
                     "Goodput", "Recovery vs", "Events", "Wall s"});
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      const std::string& scheme = schemes[si];
      sim::ScaleoutConfig config =
          sim::standard_campaign_config(scheme, campaign_tenants, seed);
      config.tenant.stat_ratio = meta_ratio;
      config.cache.enabled = cache_on;
      if (!trace_file.empty()) {
        recorder.set_default_pid(static_cast<std::uint32_t>(si + 1));
        config.trace = &recorder;
      }
      const sim::ScaleoutReport r = sim::run_scaleout(config);

      const double recovery_vs = sim::timeline_recovery_seconds(
          r.timeline, kBaselineFromVs, kBaselineToVs, kOutageEndVs,
          kRecoveryFraction);
      if (scheme == "HyRD" &&
          (recovery_vs < 0 || recovery_vs > kRecoveryBudgetVs)) {
        recovery_ok = false;
      }
      if (!timelines.empty()) timelines += ",";
      timelines += "\"" + scheme + "\":" +
                   sim::timeline_to_json(r.timeline, r.timeline_providers,
                                         r.timeline_interval_vs);

      const std::string k = "campaign/" + scheme + "/";
      json.add(k + "timeline_recovery_vs", recovery_vs);
      json.add(k + "timeline_rows", static_cast<double>(r.timeline.size()));
      json.add(k + "ops_ok", static_cast<double>(r.ops_ok));
      json.add(k + "ops_failed", static_cast<double>(r.ops_failed));
      json.add(k + "retries", static_cast<double>(r.retries));
      json.add(k + "retry_amplification", r.retry_amplification);
      json.add(k + "goodput_ops_per_vs", r.goodput_ops_per_vs);
      json.add(k + "recovery_virtual_seconds", r.recovery_virtual_seconds);
      json.add(k + "failure_events", static_cast<double>(r.failure_events));
      json.add(k + "provider_resurrected",
               static_cast<double>(r.provider_resurrected));
      json.add(k + "throttled", static_cast<double>(r.provider_throttled));
      if (cache_on) {
        json.add(k + "cache_absorbed", static_cast<double>(r.cache_absorbed));
        json.add(k + "cache_flush_batches",
                 static_cast<double>(r.cache_flush_batches));
        json.add(k + "cache_dirty_hits",
                 static_cast<double>(r.cache_dirty_hits));
        json.add(k + "cache_read_hits",
                 static_cast<double>(r.cache_read_hits));
        json.add(k + "cache_dirty_lost_entries",
                 static_cast<double>(r.cache_dirty_lost_entries));
        json.add(k + "cache_dirty_lost_bytes",
                 static_cast<double>(r.cache_dirty_lost_bytes));
      }
      if (!stable) json.add(k + "wall_ms", r.wall_ms);

      if (scheme == "HyRD" && r.ops_failed > 0) hyrd_clean = false;
      if (r.provider_resurrected != 0) no_resurrection = false;
      if (r.retries > 0) retried = true;

      t.add_row({scheme, std::to_string(r.ops_ok),
                 std::to_string(r.ops_failed), std::to_string(r.retries),
                 common::Table::num(r.retry_amplification, 3),
                 common::Table::num(r.goodput_ops_per_vs, 1),
                 common::Table::num(r.recovery_virtual_seconds, 2),
                 std::to_string(r.failure_events),
                 common::Table::num(r.wall_ms / 1000.0, 1)});
    }
    if (!json.quiet()) {
      t.print();
      std::printf("\n");
    }

    json.add("check/campaign_hyrd_zero_failures", hyrd_clean ? 1.0 : 0.0);
    json.add("check/campaign_no_resurrection", no_resurrection ? 1.0 : 0.0);
    json.add("check/campaign_retries_exercised", retried ? 1.0 : 0.0);
    json.add("check/campaign_timeline_recovery", recovery_ok ? 1.0 : 0.0);
    json.flush("bench_scaleout");

    if (!timeline_file.empty()) {
      std::FILE* f = std::fopen(timeline_file.c_str(), "w");
      if (f != nullptr) {
        char head[160];
        std::snprintf(head, sizeof(head), "{\"seed\":%llu,\"tenants\":%zu,",
                      static_cast<unsigned long long>(seed), campaign_tenants);
        std::fputs(head, f);
        std::fputs("\"schemes\":{", f);
        std::fputs(timelines.c_str(), f);
        std::fputs("}}\n", f);
        std::fclose(f);
        if (!json.quiet()) {
          std::printf("Timeline written to %s\n", timeline_file.c_str());
        }
      }
    }
    if (!trace_file.empty()) {
      std::FILE* f = std::fopen(trace_file.c_str(), "w");
      if (f != nullptr) {
        const std::string chrome = recorder.to_chrome_json();
        std::fwrite(chrome.data(), 1, chrome.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        if (!json.quiet()) {
          std::printf("Trace (%zu spans) written to %s\n", recorder.size(),
                      trace_file.c_str());
        }
      }
    }

    if (!json.quiet()) {
      std::printf("Checks:\n");
      std::printf("  HyRD zero client-visible failures: %s\n",
                  hyrd_clean ? "yes" : "NO (regression)");
      std::printf("  destroyed provider stayed destroyed: %s\n",
                  no_resurrection ? "yes" : "NO (regression)");
      std::printf("  retries exercised: %s\n", retried ? "yes" : "NO");
      std::printf("  goodput recovered to >= %.0f%% of pre-outage within "
                  "%.0f vs of outage end: %s\n",
                  kRecoveryFraction * 100.0, kRecoveryBudgetVs,
                  recovery_ok ? "yes" : "NO (regression)");
    }
    return (hyrd_clean && no_resurrection && retried && recovery_ok) ? 0 : 1;
  }

  std::vector<std::size_t> sweep;
  if (smoke) {
    sweep = {1'000};
  } else {
    for (std::size_t n : {std::size_t{1'000}, std::size_t{10'000},
                          std::size_t{100'000}, std::size_t{1'000'000}}) {
      if (n <= max_tenants) sweep.push_back(n);
    }
  }
  std::vector<std::string> schemes = {"HyRD", "DuraCloud", "RACS"};
  if (!only_scheme.empty()) schemes = {only_scheme};

  // RACS erasure-codes every object, so each of its stored objects is a
  // fresh 1.33x coded block that cannot ref-share the tenant arena the
  // way replicated slices do: at 10^6 tenants that is ~5.7 KB/tenant of
  // simulated *dataset* (measured 6.2 GB RSS) and a collapsed event loop
  // (every op fans out to all four providers — the paper's §II-B
  // critique). Its sweep is capped at 10^5, where it fits the harness
  // budget; pass --scheme=RACS --max-tenants=1000000 to run it anyway.
  const auto scheme_cap = [&](const std::string& s) {
    return s == "RACS" && only_scheme.empty() ? std::size_t{100'000}
                                              : max_tenants;
  };

  if (!json.quiet()) {
    std::printf("=== Scale-out sweep: %zu..%zu tenants/scheme on the "
                "discrete-event engine (seed %llu) ===\n\n",
                sweep.front(), sweep.back(),
                static_cast<unsigned long long>(seed));
  }

  bool memory_ok = true;
  bool knee_ok = true;
  for (const auto& scheme : schemes) {
    std::vector<Point> points;
    for (std::size_t n : sweep) {
      if (n > scheme_cap(scheme)) continue;
      sim::ScaleoutConfig config;
      config.scheme = scheme;
      config.tenants = n;
      config.seed = seed;
      config.tenant.stat_ratio = meta_ratio;
      config.cache.enabled = cache_on;
      Point pt{sim::run_scaleout(config)};
      const auto& r = pt.report;

      const std::string k = scheme + "/" + std::to_string(n) + "/";
      json.add(k + "ops_ok", static_cast<double>(r.ops_ok));
      json.add(k + "ops_failed", static_cast<double>(r.ops_failed));
      json.add(k + "throughput_ops_per_vs", r.throughput_ops_per_vs);
      json.add(k + "mean_ms", r.mean_ms);
      json.add(k + "p50_ms", r.p50_ms);
      json.add(k + "p99_ms", r.p99_ms);
      json.add(k + "p999_ms", r.p999_ms);
      json.add(k + "throttled", static_cast<double>(r.provider_throttled));
      json.add(k + "peak_queue_depth",
               static_cast<double>(r.peak_queue_depth));
      json.add(k + "events", static_cast<double>(r.events_dispatched));
      if (cache_on) {
        json.add(k + "cache_absorbed", static_cast<double>(r.cache_absorbed));
        json.add(k + "cache_flush_batches",
                 static_cast<double>(r.cache_flush_batches));
        json.add(k + "cache_read_hits",
                 static_cast<double>(r.cache_read_hits));
        json.add(k + "cache_dirty_lost_entries",
                 static_cast<double>(r.cache_dirty_lost_entries));
      }
      if (meta_ratio > 0) {
        json.add(k + "meta_stats", static_cast<double>(r.meta_stats));
      }
      if (!stable) {
        json.add(k + "wall_ms", r.wall_ms);
        json.add(k + "rss_mb",
                 static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0));
        json.add(k + "bytes_per_tenant", r.bytes_per_tenant);
      }

      if (n >= 100'000) {
        if (r.rss_bytes >= 2 * kGiB) memory_ok = false;
        if (r.bytes_per_tenant > 4096.0) memory_ok = false;
      }
      points.push_back(std::move(pt));
    }

    if (!json.quiet()) {
      std::printf("%s:\n", scheme.c_str());
      common::Table t({"Tenants", "Ops ok", "Thru (ops/vs)", "p50 ms",
                       "p99 ms", "Throttled", "Wall s", "RSS MB", "B/tenant"});
      for (const auto& pt : points) {
        const auto& r = pt.report;
        t.add_row({std::to_string(r.tenants), std::to_string(r.ops_ok),
                   common::Table::num(r.throughput_ops_per_vs, 1),
                   common::Table::num(r.p50_ms, 1),
                   common::Table::num(r.p99_ms, 1),
                   std::to_string(r.provider_throttled),
                   common::Table::num(r.wall_ms / 1000.0, 1),
                   common::Table::num(
                       static_cast<double>(r.rss_bytes) / (1024.0 * 1024.0),
                       0),
                   common::Table::num(r.bytes_per_tenant, 0)});
      }
      t.print();
      std::printf("\n");
    }

    // The knee: tail latency must visibly climb across the sweep once the
    // fleet outgrows provider capacity. Only meaningful on the full sweep.
    if (sweep.size() > 1 &&
        points.back().report.p99_ms <= points.front().report.p99_ms) {
      knee_ok = false;
    }
  }

  json.add("check/memory_budget", memory_ok ? 1.0 : 0.0);
  json.add("check/congestion_knee", (sweep.size() > 1 ? knee_ok : true) ? 1.0 : 0.0);
  json.flush("bench_scaleout");

  if (!json.quiet()) {
    std::printf("Checks:\n");
    std::printf("  RSS < 2 GB and <= 4 KB/tenant at >= 1e5 tenants: %s\n",
                memory_ok ? "yes" : "NO (regression)");
    if (sweep.size() > 1) {
      std::printf("  congestion knee visible (p99 climbs with scale): %s\n",
                  knee_ok ? "yes" : "NO (regression)");
    }
  }
  return (memory_ok && knee_ok) ? 0 : 1;
}
