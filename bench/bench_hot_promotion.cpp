// Hot-file promotion study (Fig. 2's optional optimization): "to optimize
// performance of large files, some frequently accessed large files are
// also placed in performance-oriented providers."
//
// Workload: Zipf-skewed reads over a population of large files. Compare
// HyRD with promotion off vs on, in the healthy fleet and during an
// outage of a data-slot provider (where the hot copy also avoids
// reconstruction entirely).
#include <cstdio>

#include "bench_util.h"
#include "cloud/outage.h"
#include "common/table.h"
#include "workload/popularity.h"

using namespace hyrd;

namespace {

struct RunResult {
  double mean_read_ms = 0.0;
  std::uint64_t degraded_reads = 0;
  std::size_t hot_copies = 0;
  int failed_reads = 0;
};

// outage: 0 = healthy, 1 = one data slot down, 2 = stripe unreachable
// (data slot + parity down — beyond RAID5 tolerance).
RunResult run(bool promotion, int outage, double zipf_s) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 246);
  gcs::MultiCloudSession session(registry);
  core::HyRDConfig config;
  config.hot_promotion_enabled = promotion;
  config.hot_promotion_reads = 3;
  core::HyRDClient client(session, config);
  common::Xoshiro256 rng(246);

  constexpr int kFiles = 12;
  constexpr int kReads = 150;
  for (int f = 0; f < kFiles; ++f) {
    client.put("/lib/f" + std::to_string(f),
               common::patterned(rng.uniform_int(2u << 20, 8u << 20), f));
  }
  workload::ZipfSampler zipf(kFiles, zipf_s);
  // Warm the promotion before the outage, as Fig. 2 intends (hot files
  // are already resident on the performance provider when trouble hits).
  if (promotion) {
    for (int r = 0; r < 60; ++r) {
      (void)client.get("/lib/f" + std::to_string(zipf.sample(rng)));
    }
  }
  cloud::OutageController outages(registry);
  if (outage >= 1) outages.take_down("Rackspace");  // data slot
  if (outage >= 2) outages.take_down("AmazonS3");   // parity slot

  RunResult out;
  client.reset_stats();
  for (int r = 0; r < kReads; ++r) {
    const std::size_t rank = zipf.sample(rng);
    if (!client.get("/lib/f" + std::to_string(rank)).status.is_ok()) {
      ++out.failed_reads;
    }
  }

  const auto stats = client.stats_snapshot();
  out.mean_read_ms = stats.get_ms.mean();
  out.degraded_reads = stats.degraded_reads;
  for (int f = 0; f < kFiles; ++f) {
    if (client.has_hot_copy("/lib/f" + std::to_string(f))) ++out.hot_copies;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Hot-file promotion (Fig. 2): Zipf reads over large files "
              "===\n\n");

  static const char* kFleet[] = {"healthy", "1 slot down", "stripe dead"};
  common::Table t({"Zipf s", "Fleet", "Promotion", "Mean read ms",
                   "Failed reads", "Hot copies"});
  for (double s : {1.2, 0.6}) {
    for (int outage : {0, 1, 2}) {
      for (bool promotion : {false, true}) {
        const auto r = run(promotion, outage, s);
        t.add_row({common::Table::num(s, 1), kFleet[outage],
                   promotion ? "on" : "off",
                   common::Table::num(r.mean_read_ms, 0),
                   std::to_string(r.failed_reads) + "/150",
                   std::to_string(r.hot_copies)});
      }
    }
  }
  t.print();

  const auto off = run(false, 2, 1.2);
  const auto on = run(true, 2, 1.2);
  std::printf("\nWith the stripe beyond RAID5 tolerance (two slots down), "
              "promotion turns %d/150 failed reads into %d/150: hot copies "
              "on the performance provider are extra availability for the "
              "hottest files, exactly Fig. 2's intent. The dispatcher only "
              "routes a read to the hot copy when that is expected-faster "
              "than the (possibly degraded) stripe, or when the stripe is "
              "unreachable.\n",
              off.failed_reads, on.failed_reads);
  return 0;
}
