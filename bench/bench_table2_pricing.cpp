// Table II reproduction: monthly price plans for Amazon S3, Windows Azure,
// Aliyun OSS and Rackspace Cloud Files (China region, Sep 10 2014), plus
// the category row — here derived two ways: as declared in the paper and
// as measured by HyRD's Cost & Performance Evaluator.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/evaluator.h"

using namespace hyrd;

int main() {
  std::printf("=== Table II: monthly price plans (USD, China region) ===\n\n");

  const auto configs = cloud::standard_four();
  common::Table table({"Operations & Vendors", "Amazon S3", "Windows Azure",
                       "Aliyun", "RackSpace"});
  auto row = [&](const std::string& label, auto getter, int precision) {
    std::vector<std::string> cells = {label};
    for (const auto& c : configs) {
      const double v = getter(c.prices);
      cells.push_back(v == 0.0 ? "Free" : "$" + common::Table::num(v, precision));
    }
    table.add_row(cells);
  };
  row("Storage (per GB/month)",
      [](const cloud::PriceSchedule& p) { return p.storage_gb_month; }, 3);
  row("Data In (per GB)",
      [](const cloud::PriceSchedule& p) { return p.data_in_gb; }, 3);
  row("Data Out to Internet (per GB)",
      [](const cloud::PriceSchedule& p) { return p.data_out_gb; }, 3);
  row("Put, Copy, Post, List (per 10K txns)",
      [](const cloud::PriceSchedule& p) { return p.put_class_per_10k; }, 4);
  row("Get and others (per 10K txns)",
      [](const cloud::PriceSchedule& p) { return p.get_class_per_10k; }, 4);
  {
    std::vector<std::string> cells = {"Category (paper)"};
    for (const auto& c : configs) cells.push_back(c.declared_category.str());
    table.add_row(cells);
  }

  // Derived categories: run the evaluator against a live fleet.
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 2014);
  gcs::MultiCloudSession session(registry);
  core::CostPerfEvaluator evaluator(core::HyRDConfig{});
  const auto report = evaluator.evaluate(session);
  {
    std::vector<std::string> cells = {"Category (measured)"};
    for (const auto& c : configs) {
      for (const auto& e : report.providers) {
        if (e.provider == c.name) cells.push_back(e.category.str());
      }
    }
    table.add_row(cells);
  }
  table.print();

  std::printf("\nEvaluator probe measurements (mean over %zu probes of %s):\n",
              core::HyRDConfig{}.evaluator_probes,
              common::format_bytes(core::HyRDConfig{}.evaluator_probe_size)
                  .c_str());
  common::Table probes({"Provider", "read ms", "write ms", "cost score $/GB"});
  for (const auto& e : report.providers) {
    probes.add_row({e.provider, common::Table::num(e.mean_read_ms, 1),
                    common::Table::num(e.mean_write_ms, 1),
                    common::Table::num(e.cost_score, 3)});
  }
  probes.print();
  std::printf(
      "\nPaper check: Aliyun categorized as BOTH cost- and performance-"
      "oriented -> %s\n",
      [&] {
        for (const auto& e : report.providers) {
          if (e.provider == "Aliyun") {
            return e.category.cost_oriented && e.category.performance_oriented;
          }
        }
        return false;
      }()
          ? "yes"
          : "NO (regression)");
  return 0;
}
