// Microbenchmarks for the client stack: wall-clock cost of driving the
// simulator (not virtual latency) — how many simulated cloud operations
// per second the harness sustains, per scheme and op type.
#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace hyrd;

namespace {

template <typename MakeClient>
void run_put_get(benchmark::State& state, MakeClient make_client,
                 std::size_t size) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 555);
  gcs::MultiCloudSession session(registry);
  auto client = make_client(session);
  const auto data = common::patterned(size, 1);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/b/f" + std::to_string(i++ % 64);
    auto w = client->put(path, data);
    auto r = client->get(path);
    benchmark::DoNotOptimize(r.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * size));
}

void BM_HyRDSmallPutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::HyRDClient>(s);
              },
              4096);
}
BENCHMARK(BM_HyRDSmallPutGet);

void BM_HyRDLargePutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::HyRDClient>(s);
              },
              4u << 20);
}
BENCHMARK(BM_HyRDLargePutGet);

void BM_RacsSmallPutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::RACSClient>(s);
              },
              4096);
}
BENCHMARK(BM_RacsSmallPutGet);

void BM_RacsLargePutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::RACSClient>(s);
              },
              4u << 20);
}
BENCHMARK(BM_RacsLargePutGet);

void BM_DuraCloudPutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::DuraCloudClient>(s);
              },
              256 * 1024);
}
BENCHMARK(BM_DuraCloudPutGet);

void BM_ProviderRawPut(benchmark::State& state) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 556);
  auto* provider = registry.find("Aliyun");
  provider->create("c");
  const auto data = common::patterned(static_cast<std::size_t>(state.range(0)), 2);
  int i = 0;
  for (auto _ : state) {
    auto r = provider->put({"c", "k" + std::to_string(i++ % 16)}, data);
    benchmark::DoNotOptimize(r.latency);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProviderRawPut)->Range(4 << 10, 4 << 20);

void BM_RestCodecRoundTrip(benchmark::State& state) {
  const auto body = common::patterned(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    const auto req = gcs::encode_op(cloud::OpKind::kPut, {"c", "object-name"},
                                    body);
    auto parsed = gcs::parse_request(gcs::serialize(req));
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RestCodecRoundTrip)->Range(1 << 10, 1 << 20);

}  // namespace
