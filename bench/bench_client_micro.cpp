// Microbenchmarks for the client stack: wall-clock cost of driving the
// simulator (not virtual latency) — how many simulated cloud operations
// per second the harness sustains, per scheme and op type.
//
// Two modes:
//  * default: the google-benchmark suite below.
//  * --json[=FILE]: the "databus" suite — drives the HyRD 4 MB write+read
//    round trip and the replicated-GET path while diffing the copy meter
//    (common/copy_meter.h), and emits bytes-memcpy'd-per-op plus ops/sec
//    as one flat JSON object (bench_util JsonSink). CI publishes this as
//    BENCH_databus.json; EXPERIMENTS.md E2 tracks the trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.h"
#include "common/copy_meter.h"

using namespace hyrd;

namespace {

template <typename MakeClient>
void run_put_get(benchmark::State& state, MakeClient make_client,
                 std::size_t size) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 555);
  gcs::MultiCloudSession session(registry);
  auto client = make_client(session);
  const auto data = common::patterned(size, 1);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/b/f" + std::to_string(i++ % 64);
    auto w = client->put(path, data);
    auto r = client->get(path);
    benchmark::DoNotOptimize(r.data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * size));
}

void BM_HyRDSmallPutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::HyRDClient>(s);
              },
              4096);
}
BENCHMARK(BM_HyRDSmallPutGet);

void BM_HyRDLargePutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::HyRDClient>(s);
              },
              4u << 20);
}
BENCHMARK(BM_HyRDLargePutGet);

void BM_RacsSmallPutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::RACSClient>(s);
              },
              4096);
}
BENCHMARK(BM_RacsSmallPutGet);

void BM_RacsLargePutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::RACSClient>(s);
              },
              4u << 20);
}
BENCHMARK(BM_RacsLargePutGet);

void BM_DuraCloudPutGet(benchmark::State& state) {
  run_put_get(state,
              [](gcs::MultiCloudSession& s) {
                return std::make_unique<core::DuraCloudClient>(s);
              },
              256 * 1024);
}
BENCHMARK(BM_DuraCloudPutGet);

void BM_ProviderRawPut(benchmark::State& state) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 556);
  auto* provider = registry.find("Aliyun");
  provider->create("c");
  const auto data = common::patterned(static_cast<std::size_t>(state.range(0)), 2);
  int i = 0;
  for (auto _ : state) {
    auto r = provider->put({"c", "k" + std::to_string(i++ % 16)}, data);
    benchmark::DoNotOptimize(r.latency);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ProviderRawPut)->Range(4 << 10, 4 << 20);

void BM_RestCodecRoundTrip(benchmark::State& state) {
  const auto body = common::patterned(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    const auto req = gcs::encode_op(cloud::OpKind::kPut, {"c", "object-name"},
                                    body);
    auto parsed = gcs::parse_request(gcs::serialize(req));
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RestCodecRoundTrip)->Range(1 << 10, 1 << 20);

// ---------------------------------------------------------------------------
// Databus suite (--json mode): copy-meter accounting for the hot paths the
// zero-copy plane targets. All figures are per logical client op.

using WallClock = std::chrono::steady_clock;

double seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

void die(const char* what) {
  std::fprintf(stderr, "databus bench: %s failed\n", what);
  std::exit(1);
}

/// 4 MB HyRD round trip: put a fresh 4 MB object (striped path), read it
/// back. Payloads differ per iteration so the dedup index never collapses
/// the puts.
void databus_hyrd_roundtrip(hyrd::bench::JsonSink& sink) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 777);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient client(session);

  constexpr std::size_t kSize = 4u << 20;
  constexpr int kIters = 24;
  std::vector<common::Bytes> payloads;
  payloads.reserve(kIters);
  for (int i = 0; i < kIters; ++i) {
    payloads.push_back(common::patterned(kSize, 1000 + i));
  }
  if (!client.put("/warm/f", payloads[0]).status.is_ok()) die("warm put");
  if (!client.get("/warm/f").status.is_ok()) die("warm get");

  common::reset_copied_bytes();
  const auto t0 = WallClock::now();
  for (int i = 0; i < kIters; ++i) {
    const std::string path = "/databus/f" + std::to_string(i);
    if (!client.put(path, payloads[i]).status.is_ok()) die("put");
    auto r = client.get(path);
    if (!r.status.is_ok()) die("get");
    if (r.data.size() != kSize) die("get size");
  }
  const double secs = seconds_since(t0);
  const double copied =
      static_cast<double>(common::copied_bytes()) / kIters;
  sink.add("hyrd_4mb_roundtrip/bytes_memcpy_per_op", copied);
  sink.add("hyrd_4mb_roundtrip/logical_bytes_per_op",
           static_cast<double>(2 * kSize));
  sink.add("hyrd_4mb_roundtrip/ops_per_sec", kIters / secs);
  sink.add("hyrd_4mb_roundtrip/mb_per_sec",
           (kIters * 2.0 * kSize) / secs / (1 << 20));
}

/// Replicated-GET path: DuraCloud (pure replication) serves a 256 KiB
/// object, serially and then from 8 threads (same keys — the contended
/// read-mostly shape the sharded store targets).
void databus_replicated_get(hyrd::bench::JsonSink& sink) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 778);
  gcs::MultiCloudSession session(registry);
  core::DuraCloudClient client(session);

  constexpr std::size_t kSize = 256u << 10;
  constexpr int kObjects = 8;
  for (int i = 0; i < kObjects; ++i) {
    const auto data = common::patterned(kSize, 2000 + i);
    if (!client.put("/rep/f" + std::to_string(i), data).status.is_ok()) {
      die("replicated put");
    }
  }
  if (!client.get("/rep/f0").status.is_ok()) die("warm replicated get");

  constexpr int kSerial = 192;
  common::reset_copied_bytes();
  auto t0 = WallClock::now();
  for (int i = 0; i < kSerial; ++i) {
    auto r = client.get("/rep/f" + std::to_string(i % kObjects));
    if (!r.status.is_ok() || r.data.size() != kSize) die("replicated get");
  }
  double secs = seconds_since(t0);
  sink.add("replicated_get_256k/bytes_memcpy_per_op",
           static_cast<double>(common::copied_bytes()) / kSerial);
  sink.add("replicated_get_256k/ops_per_sec", kSerial / secs);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  t0 = WallClock::now();
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          auto r = client.get("/rep/f" + std::to_string((t + i) % kObjects));
          if (!r.status.is_ok()) die("concurrent replicated get");
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  secs = seconds_since(t0);
  sink.add("replicated_get_256k_x8/ops_per_sec",
           (kThreads * kPerThread) / secs);
}

int run_databus(hyrd::bench::JsonSink& sink) {
  databus_hyrd_roundtrip(sink);
  databus_replicated_get(sink);
  sink.flush("databus");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  hyrd::bench::JsonSink sink(argc, argv);
  if (sink.enabled()) return run_databus(sink);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
