// Extended comparison (beyond the paper's Fig. 4/6 line-up): all six
// storage schemes — single cloud, DuraCloud, DepSky, RACS, NCCloud, HyRD —
// on one identical PostMark workload, reporting latency, storage footprint,
// first-month cost, and read availability, side by side.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/availability.h"
#include "core/depsky_client.h"
#include "core/nccloud_client.h"
#include "workload/postmark.h"

using namespace hyrd;

int main() {
  workload::PostMarkConfig config;
  config.initial_files = 30;
  config.transactions = 120;
  config.max_size = 32u << 20;

  std::vector<std::pair<std::string, bench::ClientFactory>> schemes =
      bench::all_schemes();
  // Trim the single clouds to one representative and add the extensions.
  schemes.erase(schemes.begin(), schemes.begin() + 2);  // keep Aliyun on
  schemes.erase(schemes.begin() + 1, schemes.begin() + 2);  // drop Rackspace
  schemes.emplace_back("DepSky", [](gcs::MultiCloudSession& s) {
    return std::make_unique<core::DepSkyClient>(s);
  });
  schemes.emplace_back("NCCloud", [](gcs::MultiCloudSession& s) {
    return std::make_unique<core::NCCloudClient>(s);
  });

  std::printf("=== Extended comparison: all schemes, one workload "
              "(PostMark, %zu txns, 1KB-32MB) ===\n\n",
              config.transactions);

  common::Table t({"Scheme", "Mean ms", "p95 ms", "Fleet bytes",
                   "Month-1 $", "Avail @ p=0.99", "Degraded reads"});
  for (const auto& [name, factory] : schemes) {
    auto scheme = bench::make_scheme(name, factory, 909);
    workload::PostMark pm(config);
    auto report = pm.run(*scheme.client);

    std::uint64_t resident = 0;
    double cost = 0.0;
    for (const auto& p : scheme.registry->all()) {
      resident += p->stored_bytes();
      const auto bill = p->close_month();
      cost += bill.total();
    }

    // Measured availability at p = 0.99 over the real stack.
    std::vector<std::string> probes;
    for (const auto& path : scheme.client->list()) {
      probes.push_back(path);
      if (probes.size() == 4) break;
    }
    const auto avail = core::measure_read_availability(
        *scheme.registry, *scheme.client, probes, 0.99, 600, 1234);

    t.add_row({name, common::Table::num(report.mean_latency_ms(), 0),
               common::Table::num(report.all_ms.percentile(95), 0),
               common::format_bytes(resident), common::Table::num(cost, 4),
               common::Table::num(avail.availability(), 3),
               std::to_string(report.degraded_reads)});
    std::printf("  ran %s\n", name.c_str());
  }
  std::printf("\n");
  t.print();
  std::printf(
      "\nReading the table: HyRD pairs the lowest bill with near-best "
      "latency; NCCloud trades cheap repairs for re-encoded updates and a "
      "RACS-level bill; DepSky pays 4x storage for its quorums; DuraCloud "
      "pays synchronized double writes; and the single cloud pays in "
      "availability.\n");
  return 0;
}
