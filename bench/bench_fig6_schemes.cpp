// Figure 6 reproduction: PostMark-driven access latency of every scheme,
// normalized to single-cloud Amazon S3, in the normal state and during a
// Windows Azure outage ("we set the Window Azure service off-line to
// emulate its outage").
//
// Paper claims to check (normal): HyRD 58.7% below DuraCloud and 34.8%
// below RACS. (Outage): HyRD 27.3% below DuraCloud and 46.3% below RACS;
// DuraCloud *improves* during the outage (no double writes).
#include <cstdio>

#include "bench_util.h"
#include "cloud/outage.h"
#include "common/table.h"
#include "workload/postmark.h"

using namespace hyrd;

namespace {

workload::PostMarkConfig fig6_config() {
  workload::PostMarkConfig c;
  c.initial_files = 40;
  c.transactions = 160;
  c.min_size = 1024;                  // 1 KB  (paper)
  c.max_size = 100ull * 1024 * 1024;  // 100 MB (paper)
  return c;
}

struct SchemeRun {
  std::string name;
  double normal_ms = 0.0;
  double outage_ms = 0.0;
};

double run_state(core::StorageClient& client) {
  workload::PostMark pm(fig6_config());
  const auto report = pm.run(client);
  return report.mean_latency_ms();
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 6: normalized access latency, normal state and Windows "
      "Azure outage (PostMark 1KB-100MB, seed %llu) ===\n\n",
      static_cast<unsigned long long>(fig6_config().seed));

  std::vector<SchemeRun> runs;
  for (const auto& [name, factory] : bench::all_schemes()) {
    SchemeRun run;
    run.name = name;

    {
      auto scheme = bench::make_scheme(name, factory, 629);
      run.normal_ms = run_state(*scheme.client);
    }
    {
      auto scheme = bench::make_scheme(name, factory, 629);
      cloud::OutageController outages(*scheme.registry);
      outages.take_down("WindowsAzure");
      run.outage_ms = run_state(*scheme.client);
    }
    std::printf("  ran %-12s  normal %7.0f ms   azure-outage %7.0f ms\n",
                name.c_str(), run.normal_ms, run.outage_ms);
    runs.push_back(run);
  }

  const double baseline = runs[0].normal_ms;  // Amazon S3, normal state
  std::printf("\nNormalized to Amazon S3 normal state (paper's baseline):\n");
  common::Table t({"Scheme", "Normal", "Azure outage"});
  for (const auto& r : runs) {
    const bool is_single_azure = r.name == "WindowsAzure";
    t.add_row({r.name, common::Table::num(r.normal_ms / baseline, 2),
               is_single_azure ? "unavailable"
                               : common::Table::num(r.outage_ms / baseline, 2)});
  }
  t.print();

  auto find = [&](const std::string& n) -> const SchemeRun& {
    for (const auto& r : runs) {
      if (r.name == n) return r;
    }
    std::abort();
  };
  const auto& hyrd = find("HyRD");
  const auto& racs = find("RACS");
  const auto& dura = find("DuraCloud");

  std::printf("\nPaper-shape checks:\n");
  std::printf("  normal: HyRD vs DuraCloud  %.1f%% lower (paper: 58.7%%)\n",
              100.0 * (1.0 - hyrd.normal_ms / dura.normal_ms));
  std::printf("  normal: HyRD vs RACS       %.1f%% lower (paper: 34.8%%)\n",
              100.0 * (1.0 - hyrd.normal_ms / racs.normal_ms));
  std::printf("  outage: HyRD vs DuraCloud  %.1f%% lower (paper: 27.3%%)\n",
              100.0 * (1.0 - hyrd.outage_ms / dura.outage_ms));
  std::printf("  outage: HyRD vs RACS       %.1f%% lower (paper: 46.3%%)\n",
              100.0 * (1.0 - hyrd.outage_ms / racs.outage_ms));
  std::printf("  DuraCloud improves during outage (no double writes): %s\n",
              dura.outage_ms < dura.normal_ms ? "yes" : "NO (regression)");
  std::printf("  HyRD best scheme in both states: %s\n",
              (hyrd.normal_ms < racs.normal_ms &&
               hyrd.normal_ms < dura.normal_ms &&
               hyrd.outage_ms < racs.outage_ms &&
               hyrd.outage_ms < dura.outage_ms)
                  ? "yes"
                  : "NO (regression)");
  return 0;
}
