// Table I reproduction, quantified: the paper compares schemes on
// redundancy kind, recovery difficulty, performance and cost. This bench
// backs each qualitative cell with a measured number from the simulator:
//
//   * small-update amplification — provider ops per 4 KB in-place update
//     (paper §II-B: RAID5 small update = 2 reads + 2 writes);
//   * storage overhead — bytes resident across the fleet per logical byte;
//   * recovery traffic — bytes transferred to resync one provider after
//     an outage ("Recovery: Easy/Hard");
//   * small-read latency during an outage — the availability experience.
#include <cstdio>

#include "bench_util.h"
#include "cloud/outage.h"
#include "common/table.h"
#include "core/depsky_client.h"
#include "core/nccloud_client.h"

using namespace hyrd;

namespace {

struct Audit {
  std::string scheme;
  double update_reads = 0.0;   // provider GETs per small update
  double update_writes = 0.0;  // provider PUTs per small update
  double storage_overhead = 0.0;
  double recovery_mb = 0.0;
  double outage_small_read_ms = 0.0;
};

cloud::OpCounters fleet_counters(const cloud::CloudRegistry& reg) {
  cloud::OpCounters total;
  for (const auto& p : reg.all()) {
    const auto c = p->counters();
    total.gets += c.gets;
    total.puts += c.puts;
    total.bytes_read += c.bytes_read;
    total.bytes_written += c.bytes_written;
  }
  return total;
}

void reset_fleet(cloud::CloudRegistry& reg) {
  for (const auto& p : reg.all()) p->reset_counters();
}

Audit audit_scheme(const std::string& name,
                   const bench::ClientFactory& factory) {
  Audit audit;
  audit.scheme = name;
  constexpr std::uint64_t kFileSize = 64 * 1024;
  constexpr std::uint64_t kUpdate = 4 * 1024;
  constexpr int kFiles = 8;

  auto scheme = bench::make_scheme(name, factory, 1001);
  // Ingest small files, then measure pure-update op counts.
  std::uint64_t logical = 0;
  for (int i = 0; i < kFiles; ++i) {
    scheme.client->put("/t/f" + std::to_string(i),
                       common::patterned(kFileSize, i));
    logical += kFileSize;
  }
  // Also one large file so recovery/overhead reflect the real mix.
  const std::uint64_t kLarge = 6ull << 20;
  scheme.client->put("/t/large", common::patterned(kLarge, 99));
  logical += kLarge;

  std::uint64_t resident = 0;
  for (const auto& p : scheme.registry->all()) resident += p->stored_bytes();
  audit.storage_overhead =
      static_cast<double>(resident) / static_cast<double>(logical);

  reset_fleet(*scheme.registry);
  for (int i = 0; i < kFiles; ++i) {
    scheme.client->update("/t/f" + std::to_string(i), 1024,
                          common::patterned(kUpdate, 7 * i));
  }
  auto ops = fleet_counters(*scheme.registry);
  // Metadata-block writes ride along with every update in all schemes;
  // subtract the per-update metadata puts to isolate the data path the
  // paper's 2R+2W analysis describes. (HyRD/DuraCloud: 2 replicas; RACS:
  // k+m fragments; single: 1.)
  audit.update_reads = static_cast<double>(ops.gets) / kFiles;
  audit.update_writes = static_cast<double>(ops.puts) / kFiles;

  // Recovery traffic: take Azure down, rewrite everything (making Azure
  // stale), restore it, resync, and count the bytes moved.
  cloud::OutageController outages(*scheme.registry);
  outages.take_down("WindowsAzure");
  for (int i = 0; i < kFiles; ++i) {
    scheme.client->put("/t/f" + std::to_string(i),
                       common::patterned(kFileSize, 1000 + i));
  }
  scheme.client->put("/t/large", common::patterned(kLarge, 1099));

  // Outage-time small read latency (availability experience).
  {
    auto r = scheme.client->get("/t/f0");
    audit.outage_small_read_ms =
        r.status.is_ok() ? common::to_ms(r.latency) : -1.0;
  }

  outages.restore("WindowsAzure");
  reset_fleet(*scheme.registry);
  scheme.client->on_provider_restored("WindowsAzure");
  ops = fleet_counters(*scheme.registry);
  audit.recovery_mb =
      static_cast<double>(ops.bytes_read + ops.bytes_written) / 1e6;
  return audit;
}

}  // namespace

int main() {
  std::printf(
      "=== Table I (quantified): scheme comparison on measured behaviour "
      "===\n\n");
  std::printf(
      "Workload: 8 x 64KB files + 1 x 6MB file; updates are 4KB in place.\n"
      "Update ops include the scheme's own metadata persistence.\n\n");

  std::vector<Audit> audits;
  for (const auto& [name, factory] : bench::all_schemes()) {
    if (name != "HyRD" && name != "RACS" && name != "DuraCloud" &&
        name != "AmazonS3") {
      continue;  // Table I compares the schemes, plus one single baseline
    }
    audits.push_back(audit_scheme(name, factory));
  }
  // Table I's remaining related systems: DepSky (quorum replication,
  // n=4 f=1) and NCCloud (F-MSR regenerating codes).
  audits.push_back(
      audit_scheme("DepSky", [](gcs::MultiCloudSession& s) {
        return std::make_unique<core::DepSkyClient>(s);
      }));
  audits.push_back(
      audit_scheme("NCCloud", [](gcs::MultiCloudSession& s) {
        return std::make_unique<core::NCCloudClient>(s);
      }));

  common::Table t({"Scheme", "Redundancy", "GETs/update", "PUTs/update",
                   "Storage overhead", "Resync traffic MB",
                   "Outage small-read ms"});
  for (const auto& a : audits) {
    const char* redundancy = a.scheme == "RACS" ? "Erasure (RAID5)"
                             : a.scheme == "DuraCloud"
                                 ? "Replication x2"
                                 : a.scheme == "DepSky"
                                       ? "Quorum replication x4"
                                       : a.scheme == "NCCloud"
                                             ? "F-MSR network codes"
                                             : a.scheme == "HyRD"
                                                   ? "Hybrid (repl + RAID5)"
                                                   : "None (single cloud)";
    t.add_row({a.scheme, redundancy, common::Table::num(a.update_reads, 1),
               common::Table::num(a.update_writes, 1),
               common::Table::num(a.storage_overhead, 2) + "x",
               common::Table::num(a.recovery_mb, 2),
               a.outage_small_read_ms < 0
                   ? "unavailable"
                   : common::Table::num(a.outage_small_read_ms, 0)});
  }
  t.print();

  auto find = [&](const std::string& n) -> const Audit& {
    for (const auto& a : audits) {
      if (a.scheme == n) return a;
    }
    std::abort();
  };
  const auto& hyrd = find("HyRD");
  const auto& racs = find("RACS");
  const auto& dura = find("DuraCloud");
  std::printf("\nPaper-shape checks (Table I cells):\n");
  std::printf(
      "  RACS 'Low for small updates': RACS reads/update (%.1f) > HyRD "
      "(%.1f): %s\n",
      racs.update_reads, hyrd.update_reads,
      racs.update_reads > hyrd.update_reads ? "yes" : "NO (regression)");
  std::printf(
      "  DuraCloud 'High cost': storage overhead %.2fx > RACS %.2fx and "
      "HyRD %.2fx: %s\n",
      dura.storage_overhead, racs.storage_overhead, hyrd.storage_overhead,
      (dura.storage_overhead > racs.storage_overhead &&
       dura.storage_overhead > hyrd.storage_overhead)
          ? "yes"
          : "NO (regression)");
  std::printf(
      "  HyRD 'Recovery: Easy': resync traffic %.2f MB < RACS %.2f MB: %s\n",
      hyrd.recovery_mb, racs.recovery_mb,
      hyrd.recovery_mb < racs.recovery_mb ? "yes" : "NO (regression)");
  std::printf(
      "  HyRD 'Performance: High': outage small-read %.0f ms < RACS %.0f "
      "ms: %s\n",
      hyrd.outage_small_read_ms, racs.outage_small_read_ms,
      hyrd.outage_small_read_ms < racs.outage_small_read_ms
          ? "yes"
          : "NO (regression)");
  return 0;
}
