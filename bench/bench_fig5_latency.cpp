// Figure 5 reproduction: read (a) and write (b) latency of each single
// cloud provider as a function of request size {4K,16K,64K,256K,1M,4M},
// mean of 3 repetitions with deviation — exactly the paper's methodology
// ("we run each experiment for three times and use the average latency
// results with the deviation values").
//
// Paper claims to check: Aliyun lowest at every size; latency grows
// disproportionally from 1 MB to 4 MB (the knee that sets HyRD's
// large-file threshold at 1 MB).
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"

using namespace hyrd;

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 705);  // exp start: Jul 5, 2014
  gcs::MultiCloudSession session(registry);
  session.ensure_container_everywhere("fig5");

  const std::vector<std::pair<const char*, std::uint64_t>> sizes = {
      {"4KB", 4ull << 10},   {"16KB", 16ull << 10}, {"64KB", 64ull << 10},
      {"256KB", 256ull << 10}, {"1MB", 1ull << 20}, {"4MB", 4ull << 20}};
  constexpr int kRepetitions = 3;

  if (!json.quiet()) {
    std::printf("=== Figure 5: single-cloud latency vs request size "
                "(mean of %d runs +- dev, seconds) ===\n\n", kRepetitions);
  }

  struct Cell {
    common::RunningStat read_ms;
    common::RunningStat write_ms;
  };
  std::vector<std::vector<Cell>> grid(
      session.client_count(), std::vector<Cell>(sizes.size()));

  for (std::size_t p = 0; p < session.client_count(); ++p) {
    auto& client = session.client(p);
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      for (int rep = 0; rep < kRepetitions; ++rep) {
        const auto payload = common::patterned(sizes[s].second,
                                               s * 100 + static_cast<std::size_t>(rep));
        const cloud::ObjectKey key{"fig5", "o" + std::to_string(s) + "-" +
                                               std::to_string(rep)};
        auto put = client.put(key, payload);
        auto get = client.get(key);
        if (put.ok()) grid[p][s].write_ms.add(common::to_ms(put.latency));
        if (get.ok()) grid[p][s].read_ms.add(common::to_ms(get.latency));
        client.remove(key);
      }
    }
  }

  auto print_table = [&](const char* title, bool read) {
    std::printf("%s\n", title);
    std::vector<std::string> headers = {"Provider"};
    for (const auto& [label, size] : sizes) headers.push_back(label);
    common::Table t(headers);
    for (std::size_t p = 0; p < session.client_count(); ++p) {
      std::vector<std::string> row = {session.client(p).provider_name()};
      for (std::size_t s = 0; s < sizes.size(); ++s) {
        const auto& stat = read ? grid[p][s].read_ms : grid[p][s].write_ms;
        row.push_back(common::Table::num(stat.mean() / 1000.0, 2) + " +- " +
                      common::Table::num(stat.stddev() / 1000.0, 2));
      }
      t.add_row(row);
    }
    t.print();
  };

  if (!json.quiet()) {
    print_table("(a) Read latency (s)", true);
    std::printf("\n");
    print_table("(b) Write latency (s)", false);
  }
  for (std::size_t p = 0; p < session.client_count(); ++p) {
    const std::string provider = session.client(p).provider_name();
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      json.add("read_ms/" + provider + "/" + sizes[s].first,
               grid[p][s].read_ms.mean());
      json.add("write_ms/" + provider + "/" + sizes[s].first,
               grid[p][s].write_ms.mean());
    }
  }

  // Paper-shape checks.
  const std::size_t aliyun = session.index_of("Aliyun");
  bool aliyun_fastest = true;
  for (std::size_t p = 0; p < session.client_count(); ++p) {
    if (p == aliyun) continue;
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      if (grid[p][s].read_ms.mean() < grid[aliyun][s].read_ms.mean()) {
        aliyun_fastest = false;
      }
    }
  }
  if (!json.quiet()) {
    std::printf("\nPaper-shape checks:\n");
    std::printf("  Aliyun lowest read latency at every size: %s\n",
                aliyun_fastest ? "yes" : "NO (regression)");
  }

  // Disproportional growth 1MB -> 4MB: latency ratio must exceed the 4x
  // size ratio once the congestion knee kicks in past 1 MB.
  double worst_ratio = 0.0;
  for (std::size_t p = 0; p < session.client_count(); ++p) {
    const double r4m = grid[p][5].read_ms.mean();
    const double r1m = grid[p][4].read_ms.mean();
    worst_ratio = std::max(worst_ratio, r4m / r1m);
  }
  if (!json.quiet()) {
    std::printf(
        "  1MB->4MB latency grows disproportionally (max ratio %.1fx > 4x "
        "size ratio): %s\n",
        worst_ratio, worst_ratio > 4.0 ? "yes" : "NO (regression)");
    std::printf("  => HyRD sets the large-file threshold at 1MB\n");
  }
  json.add("check/aliyun_fastest_every_size", aliyun_fastest ? 1.0 : 0.0);
  json.add("check/knee_ratio_1mb_to_4mb", worst_ratio);
  json.flush("bench_fig5_latency");
  return 0;
}
