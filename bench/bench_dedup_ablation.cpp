// Dedup ablation: the paper's §VI future work — "apply data deduplication
// in the HyRD module to eliminate the redundant data and reduce the total
// data transferred over the network" — measured on a duplicate-heavy
// workload (a backup-style archive where many files recur across
// generations), HyRD with and without the dedup extension.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "core/hyrd_client.h"

using namespace hyrd;

namespace {

struct RunResult {
  std::uint64_t bytes_uploaded = 0;
  std::uint64_t fleet_resident = 0;
  double mean_put_ms = 0.0;
  double transfer_cost = 0.0;
  core::DedupIndex::Stats dedup;
};

RunResult run(bool dedup_enabled, double duplicate_share) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 808);
  gcs::MultiCloudSession session(registry);
  core::HyRDConfig config;
  config.dedup_enabled = dedup_enabled;
  core::HyRDClient client(session, config);
  common::Xoshiro256 rng(808);

  // Backup generations: each generation re-uploads every file; only
  // (1 - duplicate_share) of them changed since the last generation.
  constexpr int kFiles = 24;
  constexpr int kGenerations = 4;
  std::vector<common::Bytes> contents;
  for (int f = 0; f < kFiles; ++f) {
    const std::uint64_t size =
        rng.chance(0.25) ? rng.uniform_int(1u << 20, 4u << 20)
                         : rng.uniform_int(2 << 10, 256 << 10);
    contents.push_back(common::patterned(size, rng()));
  }

  for (const auto& p : registry.all()) p->reset_counters();
  for (int gen = 0; gen < kGenerations; ++gen) {
    for (int f = 0; f < kFiles; ++f) {
      if (gen > 0 && !rng.chance(duplicate_share)) {
        contents[f] = common::patterned(contents[f].size(), rng());
      }
      const std::string path =
          "/backup/g" + std::to_string(gen) + "/f" + std::to_string(f);
      client.put(path, contents[f]);
    }
  }

  RunResult out;
  for (const auto& p : registry.all()) {
    out.bytes_uploaded += p->counters().bytes_written;
    out.fleet_resident += p->stored_bytes();
    out.transfer_cost += p->billing().open_month_transfer_cost() +
                         p->billing().schedule().storage_cost(
                             p->stored_bytes());
  }
  out.mean_put_ms = client.stats_snapshot().put_ms.mean();
  out.dedup = client.dedup().stats();
  return out;
}

}  // namespace

int main() {
  std::printf("=== Dedup ablation (paper SVI future work): 4 backup "
              "generations x 24 files ===\n\n");

  common::Table t({"Duplicate share", "Dedup", "Uploaded", "Fleet resident",
                   "Mean put ms", "Month-1 cost $", "Aliases"});
  for (double share : {0.9, 0.5, 0.0}) {
    for (bool dedup : {false, true}) {
      const auto r = run(dedup, share);
      t.add_row({common::Table::num(share, 1), dedup ? "on" : "off",
                 common::format_bytes(r.bytes_uploaded),
                 common::format_bytes(r.fleet_resident),
                 common::Table::num(r.mean_put_ms, 0),
                 common::Table::num(r.transfer_cost, 4),
                 std::to_string(r.dedup.alias_files)});
    }
  }
  t.print();

  const auto with = run(true, 0.9);
  const auto without = run(false, 0.9);
  std::printf("\nAt 90%% duplicates, dedup cuts uploaded bytes by %.0f%% and "
              "resident bytes by %.0f%% (paper's stated goal: 'reduce the "
              "total data transferred over the network').\n",
              100.0 * (1.0 - static_cast<double>(with.bytes_uploaded) /
                                 static_cast<double>(without.bytes_uploaded)),
              100.0 * (1.0 - static_cast<double>(with.fleet_resident) /
                                 static_cast<double>(without.fleet_resident)));
  std::printf("The cost: a SHA-256 per write and copy-on-write updates — "
              "the 'careful design considerations' the paper flags.\n");
  return 0;
}
