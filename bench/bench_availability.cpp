// Availability study: the paper's title claim quantified — how much does
// each redundant distribution improve storage availability over a single
// cloud, as a function of per-provider availability?
//
// Two methods, cross-validated: exact analytic enumeration and Monte Carlo
// over the real client stack (sampled provider outages, real degraded
// reads). The paper motivates this with 2013-14 outage data (§I, §II-A);
// commercial SLAs sit around 99.9 %.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "core/availability.h"

using namespace hyrd;

namespace {

double measure(const std::string& name, const bench::ClientFactory& factory,
               double p, std::size_t trials) {
  auto scheme = bench::make_scheme(name, factory, 404);
  scheme.client->put("/probe/small", common::patterned(4096, 1));
  scheme.client->put("/probe/large", common::patterned(2 << 20, 2));
  auto m = core::measure_read_availability(
      *scheme.registry, *scheme.client, {"/probe/small", "/probe/large"}, p,
      trials, 2015);
  return m.availability();
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  std::size_t trials = 1500;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') trials = std::strtoull(argv[i], nullptr, 10);
  }
  if (!json.quiet()) {
    std::printf(
        "=== Availability: analytic vs Monte Carlo (%zu trials/point) ===\n\n",
        trials);
  }

  const double sweep[] = {0.90, 0.95, 0.99, 0.999};

  common::Table t({"Provider avail.", "Single", "DuraCloud 1of2",
                   "RACS 3of4", "HyRD small 1of2", "HyRD large 2of3",
                   "HyRD overall*"});
  for (double p : sweep) {
    const auto a = core::analytic_availability(p);
    t.add_row({common::Table::num(p, 3), common::Table::num(a.single, 5),
               common::Table::num(a.duracloud, 5),
               common::Table::num(a.racs, 5),
               common::Table::num(a.hyrd_small, 5),
               common::Table::num(a.hyrd_large, 5),
               common::Table::num(a.hyrd_overall(0.8), 5)});
    const std::string key = "analytic/p" + common::Table::num(p, 3);
    json.add(key + "/single", a.single);
    json.add(key + "/duracloud", a.duracloud);
    json.add(key + "/racs", a.racs);
    json.add(key + "/hyrd_overall", a.hyrd_overall(0.8));
  }
  if (!json.quiet()) {
    std::printf(
        "Analytic read availability (independent provider failures):\n");
    t.print();
    std::printf("  (* 80%% of accesses to small files, per the paper's "
                "workload characterization)\n\n");

    std::printf("At the 99.9%% SLA point, in nines:\n");
    const auto a = core::analytic_availability(0.999);
    common::Table n({"Scheme", "Availability", "Nines"});
    n.add_row({"Single cloud", common::Table::num(a.single, 6),
               common::Table::num(core::nines(a.single), 1)});
    n.add_row({"DuraCloud", common::Table::num(a.duracloud, 6),
               common::Table::num(core::nines(a.duracloud), 1)});
    n.add_row({"RACS", common::Table::num(a.racs, 6),
               common::Table::num(core::nines(a.racs), 1)});
    n.add_row({"HyRD (overall)", common::Table::num(a.hyrd_overall(0.8), 6),
               common::Table::num(core::nines(a.hyrd_overall(0.8)), 1)});
    n.print();

    std::printf("\nMonte Carlo over the real client stack (p = 0.90, both a "
                "small and a large file must read back):\n");
  }
  common::Table mc({"Scheme", "Measured", "Analytic reference"});
  const double p = 0.90;
  const auto a = core::analytic_availability(p);
  for (const auto& [name, factory] : bench::all_schemes()) {
    if (name == "WindowsAzure" || name == "Rackspace" || name == "AmazonS3") {
      continue;  // one single-cloud representative (Aliyun) suffices
    }
    const double measured = measure(name, factory, p, trials);
    double reference = 0.0;
    if (name == "Aliyun") reference = a.single;
    if (name == "DuraCloud") reference = a.duracloud;
    if (name == "RACS") reference = a.racs;  // both files on the 3-of-4 stripe
    if (name == "HyRD") reference = a.hyrd_small * a.hyrd_large;
    if (!json.quiet()) std::printf("  measured %-10s ...\n", name.c_str());
    json.add("monte_carlo/" + name + "/measured", measured);
    json.add("monte_carlo/" + name + "/reference", reference);
    mc.add_row({name, common::Table::num(measured, 4),
                common::Table::num(reference, 4) +
                    (name == "HyRD" ? " (indep. lower bound)" : "")});
  }
  const bool shape_ok =
      core::analytic_availability(0.999).hyrd_overall(0.8) > 0.999;
  json.add("check/hyrd_beats_sla", shape_ok ? 1.0 : 0.0);
  json.flush("bench_availability");
  if (!json.quiet()) {
    mc.print();
    std::printf(
        "\nPaper-shape check: every Cloud-of-Clouds scheme beats the single "
        "cloud; HyRD's mixed redundancy keeps >= RAID5-level availability "
        "while replicating the hot (small) data: %s\n",
        shape_ok ? "yes" : "NO (regression)");
  }
  return 0;
}
