// Microbenchmarks for the erasure-coding substrate: GF(2^8) region
// kernels, Reed–Solomon encode/decode across geometries, RAID5 XOR and
// delta-parity, checksum kernels, and whole-object striping throughput.
//
// Supports `--json` (machine-readable results on stdout) and
// `--json=FILE` (write FILE, keep the console table) on top of the usual
// google-benchmark flags.
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "erasure/fmsr.h"
#include "erasure/gf256.h"
#include "erasure/raid5.h"
#include "erasure/reed_solomon.h"
#include "erasure/striper.h"

using namespace hyrd;

namespace {

std::vector<common::Bytes> make_shards(std::size_t k, std::size_t size) {
  std::vector<common::Bytes> shards;
  for (std::size_t i = 0; i < k; ++i) {
    shards.push_back(common::patterned(size, i + 1));
  }
  return shards;
}

void BM_GF256MulAddRegion(benchmark::State& state) {
  const auto& gf = erasure::GF256::instance();
  common::Bytes src = common::patterned(static_cast<std::size_t>(state.range(0)), 1);
  common::Bytes dst = common::patterned(src.size(), 2);
  for (auto _ : state) {
    gf.mul_add_region(dst, src, 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_GF256MulAddRegion)->Range(1 << 10, 1 << 22)->Arg(1 << 20);

// The retained byte-at-a-time reference kernel: the before/after baseline
// for the wide-word path above.
void BM_GF256MulAddRegionScalar(benchmark::State& state) {
  const auto& gf = erasure::GF256::instance();
  common::Bytes src =
      common::patterned(static_cast<std::size_t>(state.range(0)), 1);
  common::Bytes dst = common::patterned(src.size(), 2);
  for (auto _ : state) {
    gf.mul_add_region_scalar(dst, src, 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_GF256MulAddRegionScalar)->Arg(1 << 16)->Arg(1 << 20);

// Fused k-source accumulation (what one parity row of RS encode costs).
void BM_GF256MulAddRegionMulti(benchmark::State& state) {
  const auto& gf = erasure::GF256::instance();
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t size = static_cast<std::size_t>(state.range(1));
  const auto shards = make_shards(k, size);
  std::vector<common::ByteSpan> srcs(shards.begin(), shards.end());
  std::vector<std::uint8_t> coeffs;
  for (std::size_t i = 0; i < k; ++i) {
    coeffs.push_back(static_cast<std::uint8_t>(0x53 + i));
  }
  common::Bytes dst(size, 0);
  for (auto _ : state) {
    gf.mul_add_region_multi(dst, srcs, coeffs.data());
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * size));
}
BENCHMARK(BM_GF256MulAddRegionMulti)
    ->Args({4, 1 << 16})
    ->Args({4, 1 << 20})
    ->Args({8, 1 << 20});

void BM_RsEncode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  const std::size_t shard_size = static_cast<std::size_t>(state.range(2));
  erasure::ReedSolomon rs(k, m);
  const auto shards = make_shards(k, shard_size);
  for (auto _ : state) {
    auto parity = rs.encode(shards);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * shard_size));
}
BENCHMARK(BM_RsEncode)
    ->Args({3, 1, 256 << 10})
    ->Args({4, 2, 256 << 10})
    ->Args({6, 3, 256 << 10})
    ->Args({8, 4, 256 << 10})
    ->Args({4, 2, 1 << 20})
    ->Args({8, 4, 1 << 20});

void BM_RsReconstructWorstCase(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  erasure::ReedSolomon rs(k, m);
  const auto data = make_shards(k, 256 * 1024);
  auto parity = rs.encode(data).value();
  for (auto _ : state) {
    std::vector<std::optional<common::Bytes>> shards(k + m);
    // Worst case: the first m data shards are missing.
    for (std::size_t i = m; i < k; ++i) shards[i] = data[i];
    for (std::size_t i = 0; i < m; ++i) shards[k + i] = parity[i];
    auto st = rs.reconstruct(shards);
    benchmark::DoNotOptimize(st);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * 256 * 1024));
}
BENCHMARK(BM_RsReconstructWorstCase)->Args({3, 1})->Args({4, 2})->Args({8, 4});

void BM_Raid5Encode(benchmark::State& state) {
  erasure::Raid5 raid(3);
  const auto shards = make_shards(3, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto parity = raid.encode(shards);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 3 *
                          state.range(0));
}
BENCHMARK(BM_Raid5Encode)->Range(4 << 10, 4 << 20);

void BM_Raid5DeltaParity(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const auto old_parity = common::patterned(size, 1);
  const auto old_data = common::patterned(size, 2);
  const auto new_data = common::patterned(size, 3);
  for (auto _ : state) {
    auto parity = erasure::Raid5::delta_parity(old_parity, old_data, new_data);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Raid5DeltaParity)->Range(4 << 10, 1 << 20);

void BM_StriperEncode(benchmark::State& state) {
  erasure::Striper striper({.k = 3, .m = 1});
  const auto object =
      common::patterned(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto set = striper.encode(object);
    benchmark::DoNotOptimize(set);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StriperEncode)->Range(64 << 10, 16 << 20);

void BM_FmsrEncode(benchmark::State& state) {
  erasure::Fmsr code(4, 2);
  common::Xoshiro256 rng(1);
  const auto object =
      common::patterned(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    auto enc = code.encode(object, rng);
    benchmark::DoNotOptimize(enc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FmsrEncode)->Range(64 << 10, 4 << 20);

void BM_FmsrPlanAndRepair(benchmark::State& state) {
  erasure::Fmsr code(4, 2);
  common::Xoshiro256 rng(2);
  const auto object =
      common::patterned(static_cast<std::size_t>(state.range(0)), 10);
  auto enc = code.encode(object, rng);
  for (auto _ : state) {
    auto plan = code.plan_repair(enc.coefficients, 1, rng);
    std::vector<common::Bytes> survivor_chunks;
    for (std::size_t idx : plan.value().survivor_chunk_indices) {
      survivor_chunks.push_back(enc.chunks[idx]);
    }
    auto chunks = code.execute_repair(plan.value(), survivor_chunks);
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 3 / 4);  // repair traffic
}
BENCHMARK(BM_FmsrPlanAndRepair)->Range(64 << 10, 4 << 20);

void BM_StriperDegradedDecode(benchmark::State& state) {
  erasure::Striper striper({.k = 3, .m = 1});
  const auto object =
      common::patterned(static_cast<std::size_t>(state.range(0)), 8);
  const auto set = striper.encode(object);
  for (auto _ : state) {
    std::vector<std::optional<common::Bytes>> shards(4);
    shards[1] = set.shards[1].to_bytes();
    shards[2] = set.shards[2].to_bytes();
    shards[3] = set.shards[3].to_bytes();  // data shard 0 missing, use parity
    auto decoded = striper.decode_degraded(set.geometry, set.object_size,
                                           set.object_crc, std::move(shards));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StriperDegradedDecode)->Range(64 << 10, 16 << 20);

void BM_Crc32c(benchmark::State& state) {
  const auto data =
      common::patterned(static_cast<std::size_t>(state.range(0)), 11);
  for (auto _ : state) {
    auto crc = common::crc32c(data);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32c)->Range(1 << 10, 4 << 20);

void BM_Sha256(benchmark::State& state) {
  const auto data =
      common::patterned(static_cast<std::size_t>(state.range(0)), 12);
  for (auto _ : state) {
    auto digest = common::Sha256::digest(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Range(1 << 10, 4 << 20);

}  // namespace

// Custom entry point: `--json` / `--json=FILE` are shorthands for the
// verbose google-benchmark output flags, so scripted runs can do
// `bench_erasure_micro --json=BENCH_erasure.json` and parse MB/s.
int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json") {
      args.emplace_back("--benchmark_format=json");
    } else if (a.starts_with("--json=")) {
      args.emplace_back(std::string("--benchmark_out=") +
                        std::string(a.substr(7)));
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.emplace_back(a);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(args.size());
  for (auto& s : args) cargv.push_back(s.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
