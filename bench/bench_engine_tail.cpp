// Engine tail-latency study: what the completion-ordered engine buys each
// Cloud-of-Clouds scheme. The legacy data path aggregates a parallel round
// as max-over-arrivals; the engine completes reads at an order statistic
// instead — the k-th fastest fragment (first-k erasure reads) or the
// earlier of primary/backup (hedged replica reads). This bench quantifies
// the difference per scheme in three fleet states:
//
//   healthy   all providers at their profile latency
//   brownout  one provider 25x slow but still answering (a tail event the
//             availability model cannot see — no request ever *fails*)
//   outage    one provider offline (the paper's Fig. 6 degraded state)
//
// Usage: bench_engine_tail [reads_per_point] [--json | --json=FILE]
//
// Paper-shape checks: the engine never adds latency on a healthy fleet,
// strictly beats the max baseline under brownout for every scheme, and
// preserves the paper's scheme ordering (HyRD fastest) in the paper's two
// states, normal and outage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"

using namespace hyrd;

namespace {

constexpr std::uint64_t kSeed = 611;
constexpr std::uint64_t kSmallSize = 256ull << 10;  // replicated in HyRD
constexpr std::uint64_t kLargeSize = 2ull << 20;    // erasure-coded in HyRD
// The paper's workload characterization: most accesses hit small files.
constexpr double kSmallReadFraction = 0.8;

/// One scheme in one engine mode, on its own same-seed fleet.
struct Instance {
  std::unique_ptr<cloud::CloudRegistry> registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
  std::unique_ptr<core::StorageClient> client;
};

Instance make_instance(const std::string& scheme, bool engine) {
  Instance in;
  in.registry = std::make_unique<cloud::CloudRegistry>();
  cloud::install_standard_four(*in.registry, kSeed);
  in.session = std::make_unique<gcs::MultiCloudSession>(*in.registry);
  if (scheme == "HyRD") {
    core::HyRDConfig config;
    if (engine) {
      config.erasure_read_strategy = dist::ErasureReadStrategy::kFastestK;
    } else {
      config.hedge.enabled = false;  // legacy max-over-arrivals semantics
    }
    in.client = std::make_unique<core::HyRDClient>(*in.session, config);
  } else if (scheme == "DuraCloud") {
    auto client = std::make_unique<core::DuraCloudClient>(*in.session);
    if (!engine) client->set_hedge({.enabled = false});
    in.client = std::move(client);
  } else {  // RACS
    auto client = std::make_unique<core::RACSClient>(*in.session);
    if (engine) client->set_read_strategy(dist::ErasureReadStrategy::kFastestK);
    in.client = std::move(client);
  }
  return in;
}

void preload(Instance& in) {
  in.client->put("/s", common::patterned(kSmallSize, 3));
  in.client->put("/l", common::patterned(kLargeSize, 7));
}

/// Mean mixed-read latency (ms) over `reads` draws, 80% small / 20% large.
double mean_read_ms(Instance& in, std::size_t reads) {
  common::RunningStat ms;
  for (std::size_t i = 0; i < reads; ++i) {
    const bool small =
        static_cast<double>(i % 10) < kSmallReadFraction * 10.0;
    auto r = in.client->get(small ? "/s" : "/l");
    if (r.status.is_ok()) ms.add(common::to_ms(r.latency));
  }
  return ms.mean();
}

// Brownout victim: Aliyun, the fleet's fastest provider — the preferred
// replica target and a data-fragment holder in every scheme, so slowing
// it is the worst case for a max-aggregated read. Outage victim: Windows
// Azure, the paper's Fig. 6 protocol.
constexpr const char* kBrownoutVictim = "Aliyun";
constexpr const char* kOutageVictim = "WindowsAzure";

void apply_state(Instance& in, const std::string& state) {
  in.registry->find(kBrownoutVictim)
      ->set_latency_scale(state == "brownout" ? 25.0 : 1.0);
  in.registry->find(kOutageVictim)->set_online(state != "outage");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reads = 60;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') reads = std::strtoull(argv[i], nullptr, 10);
  }
  bench::JsonSink json(argc, argv);

  const std::vector<std::string> schemes = {"HyRD", "DuraCloud", "RACS"};
  const std::vector<std::string> states = {"healthy", "brownout", "outage"};

  if (!json.quiet()) {
    std::printf("=== Engine tail latency: max baseline vs completion-ordered "
                "engine (%zu mixed reads/point; brownout=%s 25x, outage=%s "
                "offline) ===\n\n",
                reads, kBrownoutVictim, kOutageVictim);
  }

  // grid[scheme][state] = {baseline_ms, engine_ms}
  std::vector<std::vector<std::pair<double, double>>> grid(
      schemes.size(), std::vector<std::pair<double, double>>(states.size()));

  for (std::size_t s = 0; s < schemes.size(); ++s) {
    // Twin fleets from the same seed: the engine knob is the only
    // difference between the two observations of a state.
    Instance base = make_instance(schemes[s], /*engine=*/false);
    Instance engine = make_instance(schemes[s], /*engine=*/true);
    preload(base);
    preload(engine);
    for (std::size_t st = 0; st < states.size(); ++st) {
      apply_state(base, states[st]);
      apply_state(engine, states[st]);
      grid[s][st] = {mean_read_ms(base, reads), mean_read_ms(engine, reads)};
      json.add("read_ms/" + schemes[s] + "/" + states[st] + "/baseline",
               grid[s][st].first);
      json.add("read_ms/" + schemes[s] + "/" + states[st] + "/engine",
               grid[s][st].second);
    }
  }

  if (!json.quiet()) {
    for (std::size_t st = 0; st < states.size(); ++st) {
      std::printf("%s:\n", states[st].c_str());
      common::Table t({"Scheme", "Max baseline (ms)", "Engine (ms)", "Saved"});
      for (std::size_t s = 0; s < schemes.size(); ++s) {
        const auto [b, e] = grid[s][st];
        t.add_row({schemes[s], common::Table::num(b, 1),
                   common::Table::num(e, 1),
                   common::Table::num(100.0 * (1.0 - e / b), 1) + "%"});
      }
      t.print();
      std::printf("\n");
    }
  }

  // Paper-shape checks.
  bool healthy_never_worse = true;
  bool brownout_strictly_better = true;
  bool ordering_holds = true;
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    // Sampling noise allowance on the healthy fleet: first-k/hedging may
    // only shave, but the twin fleets' draws are not perfectly paired.
    if (grid[s][0].second > grid[s][0].first * 1.02) {
      healthy_never_worse = false;
    }
    if (grid[s][1].second >= grid[s][1].first) brownout_strictly_better = false;
  }
  // The paper's scheme ordering must survive the engine in the paper's two
  // states (Fig. 6): HyRD fastest in both, and HyRD < DuraCloud < RACS
  // under the Azure outage (RACS pays per-request degraded reconstruction;
  // DuraCloud just reads the surviving replica). Brownout is this bench's
  // extension and is deliberately excluded from the ordering gate: a
  // hedged replica read waits delay_factor times the primary's expected
  // latency before firing, while RACS's first-k fan-out dodges the
  // browned-out fragment immediately — under a pure tail event the
  // speculative fan-out can legitimately win.
  for (std::size_t st : {0u, 2u}) {
    if (grid[0][st].second >= grid[1][st].second ||
        grid[0][st].second >= grid[2][st].second) {
      ordering_holds = false;
    }
  }
  if (grid[1][2].second >= grid[2][2].second) ordering_holds = false;
  json.add("check/healthy_never_worse", healthy_never_worse ? 1.0 : 0.0);
  json.add("check/brownout_strictly_better",
           brownout_strictly_better ? 1.0 : 0.0);
  json.add("check/paper_scheme_ordering", ordering_holds ? 1.0 : 0.0);
  json.flush("bench_engine_tail");

  if (!json.quiet()) {
    std::printf("Paper-shape checks:\n");
    std::printf("  engine never worse on a healthy fleet:          %s\n",
                healthy_never_worse ? "yes" : "NO (regression)");
    std::printf("  engine strictly faster under brownout (all):    %s\n",
                brownout_strictly_better ? "yes" : "NO (regression)");
    std::printf("  paper ordering (HyRD<DuraCloud<RACS in outage): %s\n",
                ordering_holds ? "yes" : "NO (regression)");
  }
  return (healthy_never_worse && brownout_strictly_better && ordering_holds)
             ? 0
             : 1;
}
