// E7: the client write-back cache (src/cache/) quantified.
//
//   (1) Group commit: replicated small-file PUT throughput vs the group
//       size — the write-back cache absorbs each put at memory speed and
//       flushes G dirty objects through ONE AsyncBatch fan-out round
//       (ReplicationScheme::write_many) plus one metadata-block persist
//       per directory, so the per-object write cost amortizes by ~G. The
//       sweet-spot speedup over the uncached client must be >= 3x.
//   (2) Read-through: normal-state GET latency with the segmented-LRU hot
//       cache vs the uncached HyRD client on a re-read-heavy pattern.
//   (3) Adaptive threshold: PostMark mean latency with the online
//       cost-model controller (classification only — data paths off) vs
//       the static threshold sweep; adaptive must match or beat the best
//       static point (it converges to the same cost-model argmin the
//       static sweep finds by brute force).
//
// Usage: bench_cache [--quick] [--seed=N] [--json | --json=FILE]
//
// All runs are deterministic per seed: virtual-time latencies only, no
// wall-clock in any reported number.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "workload/postmark.h"

using namespace hyrd;

namespace {

/// One closed-loop small-write pass: `n` 4 KB puts into one directory,
/// then a full drain; returns total virtual milliseconds charged to the
/// client (put latencies + end-of-run flush).
struct WriteRunResult {
  double total_ms = 0.0;
  double ops_per_vs = 0.0;
  std::uint64_t flush_batches = 0;
  std::uint64_t absorbed = 0;
};

WriteRunResult run_small_writes(std::uint64_t seed, std::size_t n,
                                std::size_t group_entries) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, seed);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient client(session);
  if (group_entries > 0) {
    cache::CacheConfig cc;
    cc.enabled = true;
    cc.write_back_enabled = true;
    cc.read_cache_enabled = false;
    cc.group_commit_entries = group_entries;
    cc.max_dirty_bytes = 64ull << 20;  // entries watermark governs
    client.configure_cache(cc);
  }

  common::MutableBuffer payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.data()[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  const common::Buffer frozen = std::move(payload).freeze();

  common::SimDuration total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto r = client.put("small/f" + std::to_string(i), frozen);
    if (!r.status.is_ok()) std::abort();  // deterministic sim: never happens
    total += r.latency;
  }
  total += client.flush_cache().latency;

  WriteRunResult out;
  out.total_ms = common::to_ms(total);
  out.ops_per_vs =
      out.total_ms > 0 ? static_cast<double>(n) / (out.total_ms / 1000.0) : 0;
  if (const cache::ClientCache* cc = client.client_cache()) {
    const cache::CacheStats cs = cc->stats_snapshot();
    out.flush_batches = cs.flush_batches;
    out.absorbed = cs.absorbed_writes;
  }
  return out;
}

/// Re-read-heavy GET pass over a small working set; returns mean GET ms.
struct ReadRunResult {
  double get_mean_ms = 0.0;
  double hit_rate = 0.0;
};

ReadRunResult run_hot_reads(std::uint64_t seed, std::size_t files,
                            std::size_t rounds, bool cached) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, seed);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient client(session);
  if (cached) {
    cache::CacheConfig cc;
    cc.enabled = true;
    cc.write_back_enabled = false;  // isolate the read path
    cc.read_cache_enabled = true;
    cc.read_cache_bytes = 32ull << 20;
    client.configure_cache(cc);
  }

  common::MutableBuffer payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload.data()[i] = static_cast<std::uint8_t>(i ^ 0x5a);
  }
  const common::Buffer frozen = std::move(payload).freeze();
  for (std::size_t i = 0; i < files; ++i) {
    if (!client.put("hot/f" + std::to_string(i), frozen).status.is_ok()) {
      std::abort();
    }
  }

  common::SimDuration total = 0;
  std::size_t gets = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < files; ++i) {
      const auto r = client.get("hot/f" + std::to_string(i));
      if (!r.status.is_ok()) std::abort();
      total += r.latency;
      ++gets;
    }
  }

  ReadRunResult out;
  out.get_mean_ms = gets ? common::to_ms(total) / static_cast<double>(gets) : 0;
  if (const cache::ClientCache* cc = client.client_cache()) {
    const cache::CacheStats cs = cc->stats_snapshot();
    const double looked =
        static_cast<double>(cs.read_hits + cs.read_misses);
    out.hit_rate = looked > 0 ? static_cast<double>(cs.read_hits) / looked : 0;
  }
  return out;
}

/// PostMark mean latency under a fixed (or adaptive) threshold, cache data
/// paths off — the same classification-only ablation as
/// bench_threshold_sensitivity, sized for this bench.
struct ThresholdPoint {
  double mean_ms = 0.0;
  std::uint64_t final_threshold = 0;
};

ThresholdPoint run_threshold(std::uint64_t seed, bool quick,
                             std::uint64_t static_threshold, bool adaptive) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, seed);
  gcs::MultiCloudSession session(registry);
  core::HyRDConfig config;
  if (!adaptive) config.large_file_threshold = static_threshold;
  core::HyRDClient client(session, config);
  if (adaptive) {
    cache::CacheConfig cc;
    cc.enabled = true;
    cc.write_back_enabled = false;
    cc.read_cache_enabled = false;
    cc.adaptive.enabled = true;
    // The static sweep's objective is mean latency only, so the ablation
    // drops the space-cost term: with it, the controller would trade a
    // few ms for 1.5x instead of 2x storage — a win the latency-only
    // curve cannot see.
    cc.adaptive.space_weight = 0.0;
    client.configure_cache(cc);
  }

  workload::PostMarkConfig pm;
  pm.initial_files = quick ? 20 : 30;
  pm.transactions = quick ? 80 : 120;
  pm.min_size = 1024;
  pm.max_size = 32u << 20;
  const auto report = workload::PostMark(pm).run(client);

  ThresholdPoint out;
  out.mean_ms = report.mean_latency_ms();
  out.final_threshold = client.monitor().threshold();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") quick = true;
    if (a.rfind("--seed=", 0) == 0)
      seed = std::strtoull(a.c_str() + 7, nullptr, 10);
  }
  bench::JsonSink json(argc, argv);

  const std::size_t n_writes = quick ? 384 : 1536;
  if (!json.quiet()) {
    std::printf("=== E7: client write-back cache (seed %llu%s) ===\n\n",
                static_cast<unsigned long long>(seed), quick ? ", quick" : "");
    std::printf("(1) Group-commit sweep: %zu replicated 4KB puts\n", n_writes);
  }

  // --- (1) group-commit sweep -------------------------------------------
  common::Table t1({"Group", "Total vms", "Ops/vs", "Batches", "Speedup"});
  const WriteRunResult base = run_small_writes(seed, n_writes, 0);
  t1.add_row({"uncached", common::Table::num(base.total_ms, 0),
              common::Table::num(base.ops_per_vs, 1), "-", "1.00x"});
  json.add("group_commit/uncached/ops_per_vs", base.ops_per_vs);
  double best_speedup = 1.0;
  for (std::size_t g : {std::size_t{8}, std::size_t{32}, std::size_t{128}}) {
    const WriteRunResult r = run_small_writes(seed, n_writes, g);
    const double speedup =
        base.ops_per_vs > 0 ? r.ops_per_vs / base.ops_per_vs : 0;
    best_speedup = std::max(best_speedup, speedup);
    t1.add_row({std::to_string(g), common::Table::num(r.total_ms, 0),
                common::Table::num(r.ops_per_vs, 1),
                std::to_string(r.flush_batches),
                common::Table::num(speedup, 2) + "x"});
    const std::string k = "group_commit/" + std::to_string(g) + "/";
    json.add(k + "ops_per_vs", r.ops_per_vs);
    json.add(k + "speedup", speedup);
    json.add(k + "flush_batches", static_cast<double>(r.flush_batches));
    json.add(k + "absorbed", static_cast<double>(r.absorbed));
  }
  const bool group_ok = best_speedup >= 3.0;
  if (!json.quiet()) {
    t1.print();
    std::printf("  best speedup %.2fx (gate: >= 3x)\n\n", best_speedup);
  }

  // --- (2) read-through hot cache ---------------------------------------
  const std::size_t files = quick ? 32 : 64;
  const std::size_t rounds = quick ? 4 : 8;
  if (!json.quiet()) {
    std::printf("(2) Hot reads: %zu files x %zu rounds\n", files, rounds);
  }
  const ReadRunResult cold = run_hot_reads(seed, files, rounds, false);
  const ReadRunResult hot = run_hot_reads(seed, files, rounds, true);
  const bool read_ok = hot.get_mean_ms < cold.get_mean_ms;
  common::Table t2({"Client", "GET mean ms", "Hit rate"});
  t2.add_row({"uncached HyRD", common::Table::num(cold.get_mean_ms, 2), "-"});
  t2.add_row({"cached HyRD", common::Table::num(hot.get_mean_ms, 2),
              common::Table::num(hot.hit_rate * 100.0, 1) + "%"});
  json.add("read_cache/uncached_get_mean_ms", cold.get_mean_ms);
  json.add("read_cache/cached_get_mean_ms", hot.get_mean_ms);
  json.add("read_cache/hit_rate", hot.hit_rate);
  if (!json.quiet()) {
    t2.print();
    std::printf("\n(3) Threshold ablation: PostMark static sweep vs "
                "online-adaptive\n");
  }

  // --- (3) static sweep vs adaptive -------------------------------------
  const std::vector<std::pair<const char*, std::uint64_t>> thresholds = {
      {"64KB", 64ull << 10}, {"256KB", 256ull << 10}, {"512KB", 512ull << 10},
      {"1MB", 1ull << 20},   {"4MB", 4ull << 20},     {"16MB", 16ull << 20},
  };
  common::Table t3({"Threshold", "Mean ms"});
  double best_static_ms = 1e18;
  std::string best_static_label;
  for (const auto& [label, threshold] : thresholds) {
    const ThresholdPoint p = run_threshold(seed, quick, threshold, false);
    t3.add_row({label, common::Table::num(p.mean_ms, 1)});
    json.add(std::string("adaptive/static_") + label + "_ms", p.mean_ms);
    if (p.mean_ms < best_static_ms) {
      best_static_ms = p.mean_ms;
      best_static_label = label;
    }
  }
  const ThresholdPoint adaptive = run_threshold(seed, quick, 0, true);
  t3.add_row({"adaptive", common::Table::num(adaptive.mean_ms, 1)});
  json.add("adaptive/adaptive_ms", adaptive.mean_ms);
  json.add("adaptive/final_threshold",
           static_cast<double>(adaptive.final_threshold));
  json.add("adaptive/best_static_ms", best_static_ms);
  // "At least as good as the best static point": the controller converges
  // to the cost-model argmin; a hair of tolerance absorbs the transient
  // ops it serves before the first recompute.
  const bool adaptive_ok = adaptive.mean_ms <= best_static_ms * 1.02;

  json.add("check/group_commit_3x", group_ok ? 1.0 : 0.0);
  json.add("check/read_cache_faster", read_ok ? 1.0 : 0.0);
  json.add("check/adaptive_beats_best_static", adaptive_ok ? 1.0 : 0.0);
  json.flush("bench_cache");

  if (!json.quiet()) {
    t3.print();
    std::printf("  best static %s (%.1f ms), adaptive %.1f ms "
                "(final threshold %llu)\n\n",
                best_static_label.c_str(), best_static_ms, adaptive.mean_ms,
                static_cast<unsigned long long>(adaptive.final_threshold));
    std::printf("Checks:\n");
    std::printf("  group-commit sweet spot >= 3x uncached: %s (%.2fx)\n",
                group_ok ? "yes" : "NO (regression)", best_speedup);
    std::printf("  cached GET mean below uncached HyRD: %s (%.2f vs %.2f)\n",
                read_ok ? "yes" : "NO (regression)", hot.get_mean_ms,
                cold.get_mean_ms);
    std::printf("  adaptive <= best static point: %s\n",
                adaptive_ok ? "yes" : "NO (regression)");
  }
  return (group_ok && read_ok && adaptive_ok) ? 0 : 1;
}
