// Shared plumbing for the reproduction benches: a fresh standard fleet per
// scheme (so bills and counters never mix) and a uniform client factory.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/registry.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"
#include "gcsapi/session.h"

namespace hyrd::bench {

/// A scheme under test: its own fleet, session, and client.
struct SchemeInstance {
  std::string name;
  std::unique_ptr<cloud::CloudRegistry> registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
  std::unique_ptr<core::StorageClient> client;
};

using ClientFactory =
    std::function<std::unique_ptr<core::StorageClient>(gcs::MultiCloudSession&)>;

inline SchemeInstance make_scheme(const std::string& name,
                                  const ClientFactory& factory,
                                  std::uint64_t seed) {
  SchemeInstance s;
  s.name = name;
  s.registry = std::make_unique<cloud::CloudRegistry>();
  cloud::install_standard_four(*s.registry, seed);
  s.session = std::make_unique<gcs::MultiCloudSession>(*s.registry);
  s.client = factory(*s.session);
  return s;
}

/// The full Fig. 4 line-up: four single clouds + three Cloud-of-Clouds.
inline std::vector<std::pair<std::string, ClientFactory>> all_schemes() {
  return {
      {"AmazonS3",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "AmazonS3");
       }},
      {"WindowsAzure",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "WindowsAzure");
       }},
      {"Aliyun",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "Aliyun");
       }},
      {"Rackspace",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "Rackspace");
       }},
      {"DuraCloud",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::DuraCloudClient>(s);
       }},
      {"RACS",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::RACSClient>(s);
       }},
      {"HyRD",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::HyRDClient>(s);
       }},
  };
}

/// Machine-readable output for the hand-rolled reproduction benches,
/// mirroring bench_erasure_micro's google-benchmark flags: `--json`
/// replaces the console output with one flat JSON object on stdout (CI
/// parses it); `--json=FILE` writes the object to FILE and keeps the
/// human-readable tables. Values are added flat, keyed however the bench
/// likes (e.g. "read_ms/HyRD/brownout").
class JsonSink {
 public:
  JsonSink(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i];
      if (a == "--json") {
        enabled_ = true;
        path_.clear();
      } else if (a.substr(0, 7) == "--json=") {
        enabled_ = true;
        path_ = a.substr(7);
      }
    }
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  /// True when the console tables should be suppressed (stdout is JSON).
  [[nodiscard]] bool quiet() const { return enabled_ && path_.empty(); }

  void add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    entries_.push_back("\"" + key + "\": " + buf);
  }
  void add(const std::string& key, const std::string& value) {
    entries_.push_back("\"" + key + "\": \"" + value + "\"");
  }

  /// Emits `{"bench": <name>, ...entries}`; a no-op when not enabled.
  void flush(const std::string& bench_name) const {
    if (!enabled_) return;
    std::string out = "{\n  \"bench\": \"" + bench_name + "\"";
    for (const auto& e : entries_) out += ",\n  " + e;
    out += "\n}\n";
    if (path_.empty()) {
      std::fputs(out.c_str(), stdout);
      return;
    }
    if (std::FILE* f = std::fopen(path_.c_str(), "w")) {
      std::fputs(out.c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
    }
  }

 private:
  bool enabled_ = false;
  std::string path_;
  std::vector<std::string> entries_;
};

/// The three Cloud-of-Clouds schemes only (Fig. 6's main contenders).
inline std::vector<std::pair<std::string, ClientFactory>> coc_schemes() {
  auto all = all_schemes();
  return {all[4], all[5], all[6]};
}

}  // namespace hyrd::bench
