// Shared plumbing for the reproduction benches: a fresh standard fleet per
// scheme (so bills and counters never mix) and a uniform client factory.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/registry.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"
#include "gcsapi/session.h"

namespace hyrd::bench {

/// A scheme under test: its own fleet, session, and client.
struct SchemeInstance {
  std::string name;
  std::unique_ptr<cloud::CloudRegistry> registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
  std::unique_ptr<core::StorageClient> client;
};

using ClientFactory =
    std::function<std::unique_ptr<core::StorageClient>(gcs::MultiCloudSession&)>;

inline SchemeInstance make_scheme(const std::string& name,
                                  const ClientFactory& factory,
                                  std::uint64_t seed) {
  SchemeInstance s;
  s.name = name;
  s.registry = std::make_unique<cloud::CloudRegistry>();
  cloud::install_standard_four(*s.registry, seed);
  s.session = std::make_unique<gcs::MultiCloudSession>(*s.registry);
  s.client = factory(*s.session);
  return s;
}

/// The full Fig. 4 line-up: four single clouds + three Cloud-of-Clouds.
inline std::vector<std::pair<std::string, ClientFactory>> all_schemes() {
  return {
      {"AmazonS3",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "AmazonS3");
       }},
      {"WindowsAzure",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "WindowsAzure");
       }},
      {"Aliyun",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "Aliyun");
       }},
      {"Rackspace",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::SingleCloudClient>(s, "Rackspace");
       }},
      {"DuraCloud",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::DuraCloudClient>(s);
       }},
      {"RACS",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::RACSClient>(s);
       }},
      {"HyRD",
       [](gcs::MultiCloudSession& s) {
         return std::make_unique<core::HyRDClient>(s);
       }},
  };
}

/// The three Cloud-of-Clouds schemes only (Fig. 6's main contenders).
inline std::vector<std::pair<std::string, ClientFactory>> coc_schemes() {
  auto all = all_schemes();
  return {all[4], all[5], all[6]};
}

}  // namespace hyrd::bench
