// Sensitivity study behind HyRD's two key §III-C design choices:
//
//   (1) the large-file threshold — the paper sweeps it and picks 1 MB
//       ("We have conducted sensitivity experiments to investigate the
//       file-size threshold");
//   (2) the replication level — the paper picks 2, noting higher levels
//       buy resilience with write latency and space.
//
// Also serves as the ablation bench for DESIGN.md §5, and — with the
// client cache's adaptive controller — the static-vs-online comparison:
// the "adaptive" row starts from the 1 MB default and lets the cost-model
// argmin (cache/adaptive.h) re-pick the threshold from the live PostMark
// size histogram, with the cache's data paths (write-back/read-through)
// disabled so the row isolates pure classification quality.
//
// --json[=FILE] emits every sweep point flat (threshold/<label>/mean_ms,
// replication/<level>/mean_ms, ...) for CI trend tracking.
#include <cstdio>

#include "bench_util.h"
#include "common/table.h"
#include "workload/postmark.h"

using namespace hyrd;

namespace {

workload::PostMarkConfig sweep_config() {
  workload::PostMarkConfig c;
  c.initial_files = 30;
  c.transactions = 120;
  c.min_size = 1024;
  c.max_size = 32u << 20;
  return c;
}

struct SweepPoint {
  double mean_ms = 0.0;
  double storage_overhead = 0.0;
  std::uint64_t final_threshold = 0;
};

SweepPoint run_hyrd(core::HyRDConfig config, bool adaptive = false) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 333);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient client(session, config);
  if (adaptive) {
    // Classification-only ablation: the adaptive controller re-picks the
    // monitor threshold online; absorption and read caching stay off so
    // latency differences come from placement, not from cache hits.
    cache::CacheConfig cc;
    cc.enabled = true;
    cc.write_back_enabled = false;
    cc.read_cache_enabled = false;
    cc.adaptive.enabled = true;
    client.configure_cache(cc);
  }

  workload::PostMark pm(sweep_config());
  const auto report = pm.run(client);

  std::uint64_t logical = 0;
  for (const auto& path : client.list()) {
    logical += client.stat(path)->size;
  }
  std::uint64_t resident = 0;
  for (const auto& p : registry.all()) resident += p->stored_bytes();

  SweepPoint point;
  point.mean_ms = report.mean_latency_ms();
  point.storage_overhead =
      logical == 0 ? 0.0
                   : static_cast<double>(resident) / static_cast<double>(logical);
  point.final_threshold = client.monitor().threshold();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonSink json(argc, argv);
  if (!json.quiet()) {
    std::printf("=== Sensitivity: file-size threshold and replication level "
                "(PostMark 1KB-32MB) ===\n\n");
    std::printf("(1) Large-file threshold sweep (replication level 2)\n");
  }
  common::Table t1({"Threshold", "Mean latency ms", "Storage overhead"});
  const std::vector<std::pair<const char*, std::uint64_t>> thresholds = {
      {"64KB", 64ull << 10}, {"256KB", 256ull << 10}, {"1MB", 1ull << 20},
      {"4MB", 4ull << 20},   {"16MB", 16ull << 20},
  };
  double best_ms = 1e18;
  std::string best_label;
  for (const auto& [label, threshold] : thresholds) {
    core::HyRDConfig config;
    config.large_file_threshold = threshold;
    const auto point = run_hyrd(config);
    t1.add_row({label, common::Table::num(point.mean_ms, 0),
                common::Table::num(point.storage_overhead, 2) + "x"});
    const std::string k = std::string("threshold/") + label + "/";
    json.add(k + "mean_ms", point.mean_ms);
    json.add(k + "storage_overhead", point.storage_overhead);
    if (point.mean_ms < best_ms) {
      best_ms = point.mean_ms;
      best_label = label;
    }
  }
  // The online-adaptive row: same workload, threshold re-picked live by
  // the cache's cost-model controller instead of fixed up front.
  {
    const auto point = run_hyrd(core::HyRDConfig{}, /*adaptive=*/true);
    t1.add_row({"adaptive", common::Table::num(point.mean_ms, 0),
                common::Table::num(point.storage_overhead, 2) + "x"});
    json.add("threshold/adaptive/mean_ms", point.mean_ms);
    json.add("threshold/adaptive/storage_overhead", point.storage_overhead);
    json.add("threshold/adaptive/final_threshold",
             static_cast<double>(point.final_threshold));
  }
  if (!json.quiet()) {
    t1.print();
    std::printf("  lowest static mean latency at threshold %s "
                "(paper picks 1MB)\n\n",
                best_label.c_str());
    std::printf("(2) Replication level sweep (threshold 1MB)\n");
  }
  common::Table t2({"Level", "Mean latency ms", "Storage overhead",
                    "Outages tolerated (small files)"});
  for (std::size_t level : {1u, 2u, 3u, 4u}) {
    core::HyRDConfig config;
    config.replication_level = level;
    const auto point = run_hyrd(config);
    t2.add_row({std::to_string(level), common::Table::num(point.mean_ms, 0),
                common::Table::num(point.storage_overhead, 2) + "x",
                std::to_string(level - 1)});
    const std::string k = "replication/" + std::to_string(level) + "/";
    json.add(k + "mean_ms", point.mean_ms);
    json.add(k + "storage_overhead", point.storage_overhead);
  }
  if (!json.quiet()) {
    t2.print();
    std::printf(
        "  level 2 tolerates any single outage at the lowest latency/space "
        "cost (the paper's choice; two concurrent cloud outages are "
        "extremely rare)\n\n");
    std::printf("(3) Erasure geometry ablation (threshold 1MB, level 2)\n");
  }
  common::Table t3({"Geometry", "Mean latency ms", "Storage overhead"});
  const std::vector<std::pair<const char*, erasure::StripeGeometry>> geoms = {
      {"RAID5 k=2,m=1 cost-trio (HyRD default)", {.k = 2, .m = 1}},
      {"RAID5 k=3,m=1 all four (RACS-like)", {.k = 3, .m = 1}},
      {"RS k=2,m=2 (double fault tolerance)", {.k = 2, .m = 2}},
  };
  for (const auto& [label, geom] : geoms) {
    core::HyRDConfig config;
    config.geometry = geom;
    const auto point = run_hyrd(config);
    t3.add_row({label, common::Table::num(point.mean_ms, 0),
                common::Table::num(point.storage_overhead, 2) + "x"});
    const std::string k = "geometry/k" + std::to_string(geom.k) + "m" +
                          std::to_string(geom.m) + "/";
    json.add(k + "mean_ms", point.mean_ms);
    json.add(k + "storage_overhead", point.storage_overhead);
  }
  if (!json.quiet()) {
    t3.print();
    std::printf(
        "  the k=2 cost-trio default trades some large-file parallelism for\n"
        "  cheap placement (Fig. 4's 20%% cost win over RACS); k=3 over all\n"
        "  four clouds is faster but bills like RACS; m=2 doubles fault\n"
        "  tolerance at 2x space\n");
  }
  json.flush("bench_threshold_sensitivity");
  return 0;
}
