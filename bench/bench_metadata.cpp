// Metadata-plane microbench: the sharded, keyspace-routed MetadataStore vs
// the retained legacy single-mutex std::map store (DESIGN.md §14), plus
// the indexed UpdateLog vs a scan-and-compact baseline.
//
// Part 1 sweeps threads x shard counts over a mixed lookup/upsert workload
// on a fixed path population. Every (store, threads) cell reports Mops/s;
// the headline check is sharded-16 at 8 threads >= 4x the legacy store.
//
// Part 2 builds a 10^5-record update log across 6 providers and times
// pending_for per provider on the indexed log against a faithful
// reimplementation of the pre-index algorithm (full-log scan + per-call
// compaction map); the check is >= 10x.
//
// Usage: bench_metadata [--quick] [--json | --json=FILE]
//
//   --quick   smaller op counts (CI smoke; seconds, not tens of seconds)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "metadata/legacy_store.h"
#include "metadata/metadata_store.h"
#include "metadata/update_log.h"

using namespace hyrd;

namespace {

// Big enough that the legacy nested std::map is a real tree (depth ~10 of
// pointer chases + string compares per level), which is what client
// metadata at cloud-of-clouds scale looks like — not a cache-resident toy.
constexpr std::size_t kDirs = 16;
constexpr std::size_t kFilesPerDir = 65536;

std::string path_of(std::size_t dir, std::size_t file) {
  return "d" + std::to_string(dir) + "/f" + std::to_string(file);
}

/// All paths, precomputed: the workload indexes into this so per-op cost
/// is the store, not std::to_string.
const std::vector<std::string>& path_table() {
  static const std::vector<std::string> table = [] {
    std::vector<std::string> t;
    t.reserve(kDirs * kFilesPerDir);
    for (std::size_t d = 0; d < kDirs; ++d) {
      for (std::size_t f = 0; f < kFilesPerDir; ++f) {
        t.push_back(path_of(d, f));
      }
    }
    return t;
  }();
  return table;
}

meta::FileMeta meta_of(std::string path) {
  meta::FileMeta m;
  m.path = std::move(path);
  m.size = 4096;
  m.version = 1;
  return m;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Mixed 75% lookup / 25% upsert workload over the fixed population;
/// returns Mops/s aggregated across threads. Works for both store types
/// (same upsert/lookup surface).
template <typename Store>
double run_mixed_once(Store& store, std::size_t threads,
                      std::size_t ops_per_thread, std::uint64_t seed) {
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::atomic<std::uint64_t> sink{0};  // defeat dead-code elimination
  const std::vector<std::string>& paths = path_table();

  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      common::Xoshiro256 rng(seed ^ (0x9e3779b97f4a7c15ull * (t + 1)));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t found = 0;
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        const std::string& path = paths[rng() % paths.size()];
        if (rng.chance(0.25)) {
          store.upsert(meta_of(path));
        } else {
          found += store.lookup(path).has_value() ? 1 : 0;
        }
      }
      sink.fetch_add(found);
    });
  }
  while (ready.load() != threads) {
  }
  const double start = now_s();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double elapsed = now_s() - start;
  return static_cast<double>(threads * ops_per_thread) / elapsed / 1e6;
}

/// Best of three repetitions: populating a store dominates a cell's cost,
/// the measured phase is cheap — so repeat it and keep the least-disturbed
/// run (single-core VMs get multi-millisecond scheduler artifacts).
template <typename Store>
double run_mixed(Store& store, std::size_t threads,
                 std::size_t ops_per_thread, std::uint64_t seed) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    best = std::max(best,
                    run_mixed_once(store, threads, ops_per_thread, seed + rep));
  }
  return best;
}

/// The pre-index UpdateLog algorithm, verbatim in shape: one flat record
/// vector; pending_for scans the whole log and compacts into a map keyed
/// by object name. The baseline Part 2 measures against.
struct ScanLog {
  std::vector<meta::LogRecord> records;

  std::vector<meta::LogRecord> pending_for(const std::string& provider) const {
    std::unordered_map<std::string, std::size_t> latest;
    std::vector<meta::LogRecord> out;
    for (const auto& rec : records) {
      if (rec.provider != provider) continue;
      auto [it, fresh] = latest.try_emplace(rec.object_name, out.size());
      if (fresh) {
        out.push_back(rec);
      } else {
        out[it->second] = rec;
      }
    }
    return out;
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  bench::JsonSink json(argc, argv);

  const std::uint64_t seed = 42;
  const std::size_t ops_per_thread = quick ? 50'000 : 400'000;
  const std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::vector<std::size_t> shard_counts = {1, 4, 16, 64};

  if (!json.quiet()) {
    std::printf("=== Metadata plane: sharded store vs legacy single-mutex "
                "map (%zu dirs x %zu files, %zu ops/thread) ===\n\n",
                kDirs, kFilesPerDir, ops_per_thread);
  }

  // --- Part 1: threads x shards sweep ------------------------------------
  // Fresh stores per cell so table growth/caching never leaks across cells.
  std::vector<std::vector<double>> sharded_mops(shard_counts.size());
  std::vector<double> legacy_mops;
  for (const std::size_t threads : thread_counts) {
    {
      meta::LegacyMetadataStore store;
      for (const auto& p : path_table()) store.upsert(meta_of(p));
      legacy_mops.push_back(run_mixed(store, threads, ops_per_thread, seed));
      json.add("legacy/t" + std::to_string(threads) + "/mops",
               legacy_mops.back());
    }
    for (std::size_t si = 0; si < shard_counts.size(); ++si) {
      meta::MetadataStore store(shard_counts[si]);
      for (const auto& p : path_table()) store.upsert(meta_of(p));
      sharded_mops[si].push_back(
          run_mixed(store, threads, ops_per_thread, seed));
      json.add("sharded" + std::to_string(shard_counts[si]) + "/t" +
                   std::to_string(threads) + "/mops",
               sharded_mops[si].back());
    }
  }

  if (!json.quiet()) {
    common::Table t({"Threads", "Legacy Mops", "Shard1", "Shard4", "Shard16",
                     "Shard64", "16/legacy"});
    for (std::size_t ti = 0; ti < thread_counts.size(); ++ti) {
      t.add_row({std::to_string(thread_counts[ti]),
                 common::Table::num(legacy_mops[ti], 2),
                 common::Table::num(sharded_mops[0][ti], 2),
                 common::Table::num(sharded_mops[1][ti], 2),
                 common::Table::num(sharded_mops[2][ti], 2),
                 common::Table::num(sharded_mops[3][ti], 2),
                 common::Table::num(sharded_mops[2][ti] / legacy_mops[ti], 2)});
    }
    t.print();
    std::printf("\n");
  }

  const double speedup_8t = sharded_mops[2].back() / legacy_mops.back();
  json.add("speedup/sharded16_vs_legacy_t8", speedup_8t);

  // --- Part 2: indexed UpdateLog vs scan-and-compact ----------------------
  const std::size_t log_records = quick ? 20'000 : 100'000;
  const std::vector<std::string> providers = {"AmazonS3",  "WindowsAzure",
                                              "Aliyun",    "Rackspace",
                                              "GoogleGCS", "BackblazeB2"};
  // A long outage keeps re-logging a hot working set: most appends
  // supersede an earlier record for the same object, so the compacted
  // pending set is far smaller than the raw log — exactly the shape the
  // per-provider index + watermark compaction exist for. The scan baseline
  // still walks every raw record per query.
  const std::size_t hot_objects = log_records / 50;
  meta::UpdateLog indexed;
  ScanLog scan;
  common::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < log_records; ++i) {
    const std::string& provider = providers[i % providers.size()];
    const std::size_t object = rng() % hot_objects;
    meta::LogRecord rec;
    rec.seq = i + 1;
    rec.provider = provider;
    rec.container = "hyrd-data";
    rec.path = "d" + std::to_string(object % kDirs) + "/o" +
               std::to_string(object);
    rec.object_name = "o" + std::to_string(object);
    rec.action = meta::LogAction::kPut;
    scan.records.push_back(rec);
    indexed.append(rec.provider, rec.container, rec.path, rec.object_name,
                   rec.action);
  }

  const int query_rounds = quick ? 3 : 10;
  std::size_t pending_total = 0;
  const double t_indexed_start = now_s();
  for (int round = 0; round < query_rounds; ++round) {
    for (const auto& p : providers) {
      pending_total += indexed.pending_for(p).size();
    }
  }
  const double t_indexed = now_s() - t_indexed_start;

  std::size_t pending_total_scan = 0;
  const double t_scan_start = now_s();
  for (int round = 0; round < query_rounds; ++round) {
    for (const auto& p : providers) {
      pending_total_scan += scan.pending_for(p).size();
    }
  }
  const double t_scan = now_s() - t_scan_start;

  const double log_speedup = t_scan / t_indexed;
  json.add("updatelog/records", static_cast<double>(log_records));
  json.add("updatelog/pending_ms_indexed", t_indexed * 1000.0);
  json.add("updatelog/pending_ms_scan", t_scan * 1000.0);
  json.add("updatelog/speedup", log_speedup);

  if (!json.quiet()) {
    std::printf("UpdateLog pending_for, %zu records x %d rounds x %zu "
                "providers:\n  indexed %.2f ms, scan-and-compact %.2f ms "
                "(%.1fx)\n\n",
                log_records, query_rounds, providers.size(),
                t_indexed * 1000.0, t_scan * 1000.0, log_speedup);
  }

  // Cross-check: both logs agree on the compacted pending counts.
  const bool agree = pending_total == pending_total_scan;

  // Thresholds are asserted here (committed-artifact evidence) but kept
  // advisory in CI runners, whose 2-core VMs make ratios noisy; the hard
  // functional gates live in the MetadataShard/UpdateLogIndex test suites.
  json.add("check/pending_counts_agree", agree ? 1.0 : 0.0);
  json.add("check/sharded16_4x_at_8_threads", speedup_8t >= 4.0 ? 1.0 : 0.0);
  json.add("check/updatelog_10x", log_speedup >= 10.0 ? 1.0 : 0.0);
  json.flush("bench_metadata");

  if (!json.quiet()) {
    std::printf("Checks:\n");
    std::printf("  pending counts agree (indexed == scan): %s\n",
                agree ? "yes" : "NO (bug)");
    std::printf("  sharded-16 >= 4x legacy at 8 threads: %s (%.1fx)\n",
                speedup_8t >= 4.0 ? "yes" : "NO", speedup_8t);
    std::printf("  indexed pending_for >= 10x scan: %s (%.1fx)\n",
                log_speedup >= 10.0 ? "yes" : "NO", log_speedup);
  }
  return agree ? 0 : 1;
}
