// Thread-safety: the client stack is documented as safe for concurrent
// use (provider, billing, metadata store, update log, dedup index all
// carry their own locks). Hammer it from many threads and verify no data
// races corrupt state (run under TSan for the full guarantee; these tests
// catch logic races and crashes either way).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"

namespace hyrd {
namespace {

TEST(Concurrency, ParallelPutsToDistinctPaths) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 211);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient client(session);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      common::Xoshiro256 rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path =
            "/t" + std::to_string(t) + "/f" + std::to_string(i);
        const std::uint64_t size = rng.chance(0.2)
                                       ? rng.uniform_int(1u << 20, 2u << 20)
                                       : rng.uniform_int(100, 50000);
        auto w = client.put(path, common::patterned(size, t * 100 + i));
        if (!w.status.is_ok()) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(client.list().size(),
            static_cast<std::size_t>(kThreads * kOpsPerThread));

  // Everything written must read back exactly.
  for (int t = 0; t < kThreads; ++t) {
    common::Xoshiro256 rng(1000 + t);
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string path =
          "/t" + std::to_string(t) + "/f" + std::to_string(i);
      const std::uint64_t size = rng.chance(0.2)
                                     ? rng.uniform_int(1u << 20, 2u << 20)
                                     : rng.uniform_int(100, 50000);
      auto r = client.get(path);
      ASSERT_TRUE(r.status.is_ok()) << path;
      EXPECT_EQ(r.data, common::patterned(size, t * 100 + i)) << path;
    }
  }
}

TEST(Concurrency, MixedReadersWritersAndOutages) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 223);
  gcs::MultiCloudSession session(registry);
  core::HyRDClient client(session);

  // Seed a shared working set.
  for (int i = 0; i < 10; ++i) {
    client.put("/shared/f" + std::to_string(i),
               common::patterned(20000, i));
  }

  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::vector<std::thread> threads;

  // Readers: any successful read must return a consistent snapshot
  // (a patterned buffer of the file's stated size).
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      common::Xoshiro256 rng(3000 + t);
      while (!stop.load()) {
        const std::string path =
            "/shared/f" + std::to_string(rng.uniform_int(0, 9));
        auto r = client.get(path);
        if (r.status.is_ok()) {
          const auto m = client.stat(path);
          if (!m.has_value() || r.data.size() != m->size) {
            // Benign: the file changed between read and stat. Only flag
            // an empty successful read, which would be real corruption.
            if (r.data.empty()) read_errors++;
          }
        }
      }
    });
  }
  // Writers: overwrite shared files.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      common::Xoshiro256 rng(4000 + t);
      for (int i = 0; i < 30; ++i) {
        const std::string path =
            "/shared/f" + std::to_string(rng.uniform_int(0, 9));
        client.put(path, common::patterned(rng.uniform_int(1000, 40000),
                                           rng()));
      }
    });
  }
  // Chaos: flip one provider on and off.
  threads.emplace_back([&] {
    for (int i = 0; i < 20; ++i) {
      registry.find("WindowsAzure")->set_online(i % 2 == 0);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    registry.find("WindowsAzure")->set_online(true);
  });

  // Let writers finish, then stop readers.
  threads[4].join();
  threads[5].join();
  threads[6].join();
  stop.store(true);
  for (int t = 0; t < 4; ++t) threads[t].join();

  EXPECT_EQ(read_errors.load(), 0);
  // After resync, every shared file is fully redundant again.
  client.on_provider_restored("WindowsAzure");
  registry.find("Aliyun")->set_online(false);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        client.get("/shared/f" + std::to_string(i)).status.is_ok())
        << i;
  }
}

}  // namespace
}  // namespace hyrd
