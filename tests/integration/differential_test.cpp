// Differential testing: every storage scheme must behave exactly like a
// trivial in-memory file map under an arbitrary interleaving of put / get
// / update / remove / stat / list — with and without provider churn.
#include <gtest/gtest.h>

#include <map>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "core/depsky_client.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/nccloud_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"

namespace hyrd {
namespace {

using ClientFactory = std::function<std::unique_ptr<core::StorageClient>(
    gcs::MultiCloudSession&)>;

struct SchemeParam {
  const char* name;
  ClientFactory factory;
  bool survives_single_outage;
};

class DifferentialTest : public ::testing::TestWithParam<SchemeParam> {};

void run_differential(core::StorageClient& client,
                      cloud::CloudRegistry& registry, bool with_churn,
                      std::uint64_t seed) {
  common::Xoshiro256 rng(seed);
  std::map<std::string, common::Bytes> oracle;

  std::unique_ptr<cloud::RandomOutageInjector> churn;
  if (with_churn) {
    churn = std::make_unique<cloud::RandomOutageInjector>(
        registry, seed ^ 0xabcd, 0.15, 0.6, registry.size() - 1);
  }

  for (int step = 0; step < 120; ++step) {
    if (churn) {
      churn->step();
      // Prompt consistency updates, as the paper's recovery design runs
      // them upon provider return.
      for (const auto& p : registry.all()) {
        if (p->online()) client.on_provider_restored(p->name());
      }
    }
    const std::string path =
        "/diff/d" + std::to_string(rng.uniform_int(0, 2)) + "/f" +
        std::to_string(rng.uniform_int(0, 7));
    const double action = rng.uniform();

    if (action < 0.40 || !oracle.contains(path)) {
      const std::uint64_t size = rng.chance(0.25)
                                     ? rng.uniform_int(1u << 20, 3u << 20)
                                     : rng.uniform_int(1, 32 << 10);
      common::Bytes data = common::patterned(size, rng());
      auto w = client.put(path, data);
      if (w.status.is_ok()) {
        oracle[path] = std::move(data);
      }
    } else if (action < 0.65) {
      auto r = client.get(path);
      if (r.status.is_ok()) {
        ASSERT_EQ(r.data, oracle[path]) << path << " step " << step;
      }
    } else if (action < 0.80) {
      auto& content = oracle[path];
      if (content.empty()) continue;
      const std::uint64_t len =
          rng.uniform_int(1, std::min<std::uint64_t>(content.size(), 4096));
      const std::uint64_t offset = rng.uniform_int(0, content.size() - len);
      common::Bytes patch = common::patterned(len, rng());
      auto u = client.update(path, offset, patch);
      if (u.status.is_ok()) {
        std::copy(patch.begin(), patch.end(),
                  content.begin() + static_cast<std::ptrdiff_t>(offset));
      }
    } else if (action < 0.90) {
      auto rm = client.remove(path);
      if (rm.status.is_ok()) oracle.erase(path);
    } else {
      // stat / list must mirror the oracle exactly (local metadata).
      ASSERT_EQ(client.stat(path).has_value(), oracle.contains(path))
          << path << " step " << step;
      ASSERT_EQ(client.list().size(), oracle.size()) << "step " << step;
    }
  }

  // Final: everything online, resync, full content check.
  for (const auto& p : registry.all()) p->set_online(true);
  for (const auto& p : registry.all()) client.on_provider_restored(p->name());
  for (const auto& [path, data] : oracle) {
    auto r = client.get(path);
    ASSERT_TRUE(r.status.is_ok()) << path << ": " << r.status.to_string();
    EXPECT_EQ(r.data, data) << path;
  }
}

TEST_P(DifferentialTest, MatchesOracleHealthyFleet) {
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 163);
  gcs::MultiCloudSession session(registry);
  auto client = GetParam().factory(session);
  run_differential(*client, registry, /*with_churn=*/false, 163);
}

TEST_P(DifferentialTest, MatchesOracleUnderChurn) {
  if (!GetParam().survives_single_outage) {
    GTEST_SKIP() << "scheme has no redundancy; churn loses availability";
  }
  cloud::CloudRegistry registry;
  cloud::install_standard_four(registry, 167);
  gcs::MultiCloudSession session(registry);
  auto client = GetParam().factory(session);
  run_differential(*client, registry, /*with_churn=*/true, 167);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, DifferentialTest,
    ::testing::Values(
        SchemeParam{"HyRD",
                    [](gcs::MultiCloudSession& s) {
                      return std::make_unique<core::HyRDClient>(s);
                    },
                    true},
        SchemeParam{"HyRDDedup",
                    [](gcs::MultiCloudSession& s) {
                      core::HyRDConfig config;
                      config.dedup_enabled = true;
                      return std::make_unique<core::HyRDClient>(s, config);
                    },
                    true},
        SchemeParam{"RACS",
                    [](gcs::MultiCloudSession& s) {
                      return std::make_unique<core::RACSClient>(s);
                    },
                    true},
        SchemeParam{"DuraCloud",
                    [](gcs::MultiCloudSession& s) {
                      return std::make_unique<core::DuraCloudClient>(s);
                    },
                    true},
        SchemeParam{"DepSky",
                    [](gcs::MultiCloudSession& s) {
                      return std::make_unique<core::DepSkyClient>(s);
                    },
                    true},
        SchemeParam{"NCCloud",
                    [](gcs::MultiCloudSession& s) {
                      return std::make_unique<core::NCCloudClient>(s);
                    },
                    true},
        SchemeParam{"Single",
                    [](gcs::MultiCloudSession& s) {
                      return std::make_unique<core::SingleCloudClient>(
                          s, "Aliyun");
                    },
                    false}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace hyrd
