// Qualitative reproduction of the paper's headline results (Fig. 4 / 6):
// who wins and in which direction — asserted as invariants so regressions
// in the models or schemes that would break the reproduction fail CI.
#include <gtest/gtest.h>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"
#include "core/single_client.h"
#include "workload/cost_sim.h"
#include "workload/postmark.h"

namespace hyrd {
namespace {

workload::PostMarkConfig bench_config() {
  workload::PostMarkConfig c;
  c.initial_files = 30;
  c.transactions = 120;
  c.min_size = 1024;
  c.max_size = 24u << 20;  // trimmed from 100 MB for test runtime
  return c;
}

double run_postmark_mean_ms(core::StorageClient& client) {
  workload::PostMark pm(bench_config());
  return pm.run(client).mean_latency_ms();
}

TEST(SchemeComparison, NormalStateLatencyOrdering) {
  // Paper Fig. 6 normal state: HyRD < RACS < DuraCloud mean latency.
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 101);
  gcs::MultiCloudSession session(reg);

  core::HyRDClient hyrd(session);
  core::RACSClient racs(session);
  core::DuraCloudClient dura(session);

  const double hyrd_ms = run_postmark_mean_ms(hyrd);
  const double racs_ms = run_postmark_mean_ms(racs);
  const double dura_ms = run_postmark_mean_ms(dura);

  EXPECT_LT(hyrd_ms, racs_ms);
  EXPECT_LT(racs_ms, dura_ms);
  // The paper reports HyRD 34.8 % under RACS and 58.7 % under DuraCloud;
  // require a clear margin in the same direction (the simulated gap runs
  // ~10-15 % / ~45-55 % depending on seed and workload mix).
  EXPECT_LT(hyrd_ms, racs_ms * 0.92);
  EXPECT_LT(hyrd_ms, dura_ms * 0.65);
}

TEST(SchemeComparison, OutageStateLatencyOrdering) {
  // Paper Fig. 6 outage (Azure down): HyRD beats RACS by an even wider
  // margin (46.3 %), and DuraCloud improves over its own normal state.
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 103);
  gcs::MultiCloudSession session(reg);

  core::HyRDClient hyrd(session);
  core::RACSClient racs(session);
  core::DuraCloudClient dura(session);

  const double dura_normal_ms = run_postmark_mean_ms(dura);

  cloud::OutageController outages(reg);
  outages.take_down("WindowsAzure");

  const double hyrd_ms = run_postmark_mean_ms(hyrd);
  const double racs_ms = run_postmark_mean_ms(racs);
  const double dura_ms = run_postmark_mean_ms(dura);

  EXPECT_LT(hyrd_ms, racs_ms * 0.80);
  EXPECT_LT(dura_ms, dura_normal_ms);  // no double writes during outage
}

TEST(SchemeComparison, HyRDDegradesLessThanRacsUnderOutage) {
  // RACS must reconstruct small files from all survivors; HyRD reads the
  // surviving replica. Compare outage-vs-normal degradation ratios.
  cloud::CloudRegistry reg;
  cloud::install_standard_four(reg, 107);
  gcs::MultiCloudSession session(reg);
  core::HyRDClient hyrd(session);
  core::RACSClient racs(session);

  const double hyrd_normal = run_postmark_mean_ms(hyrd);
  const double racs_normal = run_postmark_mean_ms(racs);

  cloud::OutageController outages(reg);
  outages.take_down("WindowsAzure");
  const double hyrd_outage = run_postmark_mean_ms(hyrd);
  const double racs_outage = run_postmark_mean_ms(racs);

  const double hyrd_degradation = hyrd_outage / hyrd_normal;
  const double racs_degradation = racs_outage / racs_normal;
  EXPECT_LT(hyrd_degradation, racs_degradation);
}

TEST(SchemeComparison, CumulativeCostOrdering) {
  // Paper Fig. 4(b): DuraCloud most expensive; HyRD cheaper than both
  // DuraCloud and RACS; Aliyun the cheapest single cloud.
  workload::IaTraceParams tp;
  tp.mean_monthly_write_bytes = 300e9;
  const auto trace = workload::synthesize_ia_trace(tp);
  workload::CostSimulator sim({.scale = 1.0 / 3000.0});

  auto run = [&](auto make_client) {
    cloud::CloudRegistry reg;
    cloud::install_standard_four(reg, 109);
    gcs::MultiCloudSession session(reg);
    auto client = make_client(session);
    return sim.replay(trace, *client, reg).total_cost();
  };

  const double hyrd = run([](gcs::MultiCloudSession& s) {
    return std::make_unique<core::HyRDClient>(s);
  });
  const double racs = run([](gcs::MultiCloudSession& s) {
    return std::make_unique<core::RACSClient>(s);
  });
  const double dura = run([](gcs::MultiCloudSession& s) {
    return std::make_unique<core::DuraCloudClient>(s);
  });
  const double aliyun = run([](gcs::MultiCloudSession& s) {
    return std::make_unique<core::SingleCloudClient>(s, "Aliyun");
  });
  const double azure = run([](gcs::MultiCloudSession& s) {
    return std::make_unique<core::SingleCloudClient>(s, "WindowsAzure");
  });

  EXPECT_LT(hyrd, racs);
  EXPECT_LT(hyrd, dura);
  EXPECT_GT(dura, racs);       // full replication is the costliest CoC
  EXPECT_LT(aliyun, azure);    // Aliyun cheapest single provider
  EXPECT_LT(aliyun, hyrd);     // redundancy costs more than one cheap cloud
}

}  // namespace
}  // namespace hyrd
