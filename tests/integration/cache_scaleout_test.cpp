// The client cache under the scale-out engine: determinism with the cache
// enabled, the disabled-cache bypass (all-zero accounting, identical
// event count), and end-of-run drain behavior.
#include <gtest/gtest.h>

#include <string>

#include "sim/scaleout.h"

namespace hyrd::sim {
namespace {

ScaleoutConfig small_config(std::uint64_t seed, bool cache) {
  ScaleoutConfig config;
  config.scheme = "HyRD";
  config.tenants = 300;
  config.seed = seed;
  config.congestion.channels = 4;
  config.tenant.write_ratio = 0.5;  // make the write-back path load-bearing
  config.cache.enabled = cache;
  return config;
}

TEST(CacheScaleout, SameSeedByteIdenticalWithCacheEnabled) {
  const auto run = [](std::uint64_t seed) {
    return report_to_json(run_scaleout(small_config(seed, true)),
                          /*include_env=*/false);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(CacheScaleout, DisabledCacheReportsZeroAndAbsorbsNothing) {
  const ScaleoutReport r = run_scaleout(small_config(42, false));
  EXPECT_EQ(r.cache_absorbed, 0u);
  EXPECT_EQ(r.cache_flush_batches, 0u);
  EXPECT_EQ(r.cache_read_hits, 0u);
  EXPECT_EQ(r.cache_dirty_hits, 0u);
  EXPECT_EQ(r.cache_dirty_lost_entries, 0u);
  EXPECT_EQ(r.cache_drain_flushed, 0u);
}

TEST(CacheScaleout, EnabledCacheAbsorbsAndDrainsWithoutQueueEvents) {
  const ScaleoutReport off = run_scaleout(small_config(42, false));
  const ScaleoutReport on = run_scaleout(small_config(42, true));

  // The write-back actually engaged on the tenants' small writes...
  EXPECT_GT(on.cache_absorbed, 0u);
  EXPECT_GT(on.cache_flush_batches, 0u);
  // ...everything dirty at the end drained via the direct (non-event)
  // flush, so nothing was lost and the tenant event count is unchanged —
  // the events_dispatched pin of the plain determinism contract extends
  // to cached runs.
  EXPECT_EQ(on.cache_dirty_lost_entries, 0u);
  EXPECT_EQ(on.cache_flushed_entries + on.cache_drain_flushed >=
                on.cache_absorbed - on.cache_coalesced,
            true);
  EXPECT_EQ(on.events_dispatched, off.events_dispatched);
  EXPECT_EQ(on.ops_ok + on.ops_failed, off.ops_ok + off.ops_failed);
  // Group commit reduces provider round trips for the replicated tier.
  EXPECT_LT(on.provider_ops, off.provider_ops);
}

TEST(CacheScaleout, CampaignSurvivesWithCacheEnabled) {
  ScaleoutConfig config = standard_campaign_config("HyRD", 300, 42);
  config.cache.enabled = true;
  const ScaleoutReport r = run_scaleout(config);
  // Absorbed writes never fail client-visibly; reads ride retries as
  // before — the campaign stays clean end to end.
  EXPECT_EQ(r.ops_failed, 0u);
  EXPECT_GT(r.cache_absorbed, 0u);
  EXPECT_EQ(r.provider_resurrected, 0u);
  // One replica target (WindowsAzure) survives the campaign, so every
  // dirty entry lands eventually: no dirty loss.
  EXPECT_EQ(r.cache_dirty_lost_entries, 0u);
}

}  // namespace
}  // namespace hyrd::sim
