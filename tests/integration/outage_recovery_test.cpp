// End-to-end outage lifecycle tests: the paper's §III-C recovery design
// driven through the full client stack — writes during an outage are
// logged, reads reconstruct on demand, and the provider's return triggers
// a consistency update that restores full redundancy.
#include <gtest/gtest.h>

#include "cloud/outage.h"
#include "cloud/profiles.h"
#include "core/duracloud_client.h"
#include "core/hyrd_client.h"
#include "core/racs_client.h"

namespace hyrd {
namespace {

class OutageLifecycleTest : public ::testing::Test {
 protected:
  OutageLifecycleTest() {
    cloud::install_standard_four(registry_, 53);
    session_ = std::make_unique<gcs::MultiCloudSession>(registry_);
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<gcs::MultiCloudSession> session_;
};

TEST_F(OutageLifecycleTest, HyRDFullCycleSmallFile) {
  core::HyRDClient client(*session_);
  cloud::OutageController outages(registry_);

  // Azure (a replica target) goes down; write proceeds.
  outages.take_down("WindowsAzure");
  const auto v1 = common::patterned(2000, 1);
  ASSERT_TRUE(client.put("/mail/msg", v1).status.is_ok());
  EXPECT_FALSE(client.update_log().empty());

  // Read during the outage is served from the surviving replica.
  auto r = client.get("/mail/msg");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, v1);

  // Provider returns; consistency update replays the log.
  outages.restore("WindowsAzure");
  const auto resync_latency = client.on_provider_restored("WindowsAzure");
  EXPECT_GT(resync_latency, 0);
  EXPECT_TRUE(client.update_log().pending_for("WindowsAzure").empty());

  // Full redundancy is restored: Aliyun alone down is now tolerable.
  outages.take_down("Aliyun");
  auto r2 = client.get("/mail/msg");
  ASSERT_TRUE(r2.status.is_ok());
  EXPECT_EQ(r2.data, v1);
}

TEST_F(OutageLifecycleTest, HyRDFullCycleLargeFile) {
  core::HyRDClient client(*session_);
  cloud::OutageController outages(registry_);

  const auto v1 = common::patterned(5 << 20, 2);
  ASSERT_TRUE(client.put("/media/clip", v1).status.is_ok());

  // A shard-holding provider dies; the file is overwritten meanwhile.
  outages.take_down("Rackspace");
  const auto v2 = common::patterned(5 << 20, 3);
  ASSERT_TRUE(client.put("/media/clip", v2).status.is_ok());

  // Degraded read returns the *new* content.
  auto r = client.get("/media/clip");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, v2);

  // Rackspace returns with a stale fragment; resync fixes it.
  outages.restore("Rackspace");
  client.on_provider_restored("Rackspace");

  // Now any other single provider can fail and v2 is still readable.
  for (const auto& name : {"Aliyun", "WindowsAzure", "AmazonS3"}) {
    outages.take_down(name);
    auto rr = client.get("/media/clip");
    ASSERT_TRUE(rr.status.is_ok()) << name;
    EXPECT_EQ(rr.data, v2) << name;
    outages.restore(name);
  }
}

TEST_F(OutageLifecycleTest, HyRDDeleteDuringOutagePropagatesOnReturn) {
  core::HyRDClient client(*session_);
  cloud::OutageController outages(registry_);

  ASSERT_TRUE(client.put("/f", common::patterned(500, 4)).status.is_ok());
  const auto before = registry_.find("Aliyun")->object_count();
  ASSERT_GT(before, 0u);

  outages.take_down("Aliyun");
  ASSERT_TRUE(client.remove("/f").status.is_ok());

  outages.restore("Aliyun");
  client.on_provider_restored("Aliyun");
  // Stale data replica must be gone; only metadata block objects remain.
  auto data_listing = registry_.find("Aliyun")->list("hyrd-data");
  ASSERT_TRUE(data_listing.ok());
  EXPECT_TRUE(data_listing.names.empty());
}

TEST_F(OutageLifecycleTest, HyRDMetadataBlockResynced) {
  core::HyRDClient client(*session_);
  cloud::OutageController outages(registry_);

  ASSERT_TRUE(client.put("/d/a", common::patterned(100, 5)).status.is_ok());
  outages.take_down("WindowsAzure");
  ASSERT_TRUE(client.put("/d/b", common::patterned(100, 6)).status.is_ok());
  outages.restore("WindowsAzure");
  client.on_provider_restored("WindowsAzure");

  // Azure's copy of the /d metadata block must now list both files: a
  // fresh client reading ONLY Azure must see them.
  outages.take_down("Aliyun");
  core::HyRDClient fresh(*session_);
  ASSERT_TRUE(fresh.rebuild_metadata_from_cloud().is_ok());
  auto paths = fresh.list();
  EXPECT_EQ(paths.size(), 2u);
}

TEST_F(OutageLifecycleTest, RacsFullCycle) {
  core::RACSClient racs(*session_);
  cloud::OutageController outages(registry_);

  const auto data = common::patterned(6 << 20, 7);
  ASSERT_TRUE(racs.put("/big", data).status.is_ok());

  outages.take_down("AmazonS3");
  const auto patch = common::patterned(4096, 8);
  ASSERT_TRUE(racs.update("/big", 77, patch).status.is_ok());

  outages.restore("AmazonS3");
  racs.on_provider_restored("AmazonS3");

  common::Bytes expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 77);
  for (const auto& name : {"Aliyun", "WindowsAzure", "Rackspace"}) {
    outages.take_down(name);
    auto r = racs.get("/big");
    ASSERT_TRUE(r.status.is_ok()) << name;
    EXPECT_EQ(r.data, expected) << name;
    outages.restore(name);
  }
}

TEST_F(OutageLifecycleTest, DuraCloudFullCycle) {
  core::DuraCloudClient dura(*session_);
  cloud::OutageController outages(registry_);

  outages.take_down("Aliyun");
  const auto data = common::patterned(1 << 20, 9);
  ASSERT_TRUE(dura.put("/f", data).status.is_ok());

  outages.restore("Aliyun");
  dura.on_provider_restored("Aliyun");

  outages.take_down("WindowsAzure");
  auto r = dura.get("/f");
  ASSERT_TRUE(r.status.is_ok());
  EXPECT_EQ(r.data, data);
}

TEST_F(OutageLifecycleTest, ChurnSoakPreservesAllData) {
  // Random availability churn with at least 3 providers online (single
  // concurrent outage); every stored file must stay readable throughout.
  core::HyRDClient client(*session_);
  cloud::RandomOutageInjector churn(registry_, 61, 0.25, 0.5, 3);
  common::Xoshiro256 rng(71);

  std::map<std::string, common::Bytes> oracle;
  for (int step = 0; step < 60; ++step) {
    churn.step();
    const std::string path = "/soak/f" + std::to_string(rng.uniform_int(0, 9));
    const double action = rng.uniform();
    if (action < 0.5 || !oracle.contains(path)) {
      const std::uint64_t size =
          rng.chance(0.3) ? rng.uniform_int(1 << 20, 3 << 20)
                          : rng.uniform_int(1, 64 << 10);
      common::Bytes data = common::patterned(size, rng());
      auto w = client.put(path, data);
      if (w.status.is_ok()) oracle[path] = std::move(data);
    } else if (action < 0.8) {
      auto r = client.get(path);
      ASSERT_TRUE(r.status.is_ok()) << path << " step " << step;
      EXPECT_EQ(r.data, oracle[path]) << path << " step " << step;
    } else {
      auto rm = client.remove(path);
      if (rm.status.is_ok()) oracle.erase(path);
    }
    // Whenever a provider is online, let the client resync it so stale
    // fragments don't accumulate (the paper's consistency update).
    for (const auto& p : registry_.all()) {
      if (p->online()) client.on_provider_restored(p->name());
    }
  }
  // Final verification with everything online.
  for (const auto& p : registry_.all()) p->set_online(true);
  for (const auto& p : registry_.all()) client.on_provider_restored(p->name());
  for (const auto& [path, data] : oracle) {
    auto r = client.get(path);
    ASSERT_TRUE(r.status.is_ok()) << path;
    EXPECT_EQ(r.data, data) << path;
  }
}

}  // namespace
}  // namespace hyrd
