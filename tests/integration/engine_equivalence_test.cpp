// Engine equivalence: the aggressive completion-ordered knobs (early-ack
// writes, first-k erasure reads, hedged replica reads) must be
// *observably* identical to the default wait-for-all configuration in
// everything except latency — byte-identical reads, identical durable
// provider state, identical write-side traffic and billing. The paper's
// comparability argument (Fig. 5/6) depends on this: the engine shifts
// when a call reports completion, never what the fleet ends up storing.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "core/hyrd_client.h"

namespace hyrd {
namespace {

struct Fleet {
  cloud::CloudRegistry registry;
  std::unique_ptr<gcs::MultiCloudSession> session;
  std::unique_ptr<core::HyRDClient> client;

  Fleet(std::uint64_t seed, const core::HyRDConfig& config) {
    cloud::install_standard_four(registry, seed);
    session = std::make_unique<gcs::MultiCloudSession>(registry);
    client = std::make_unique<core::HyRDClient>(*session, config);
  }
};

core::HyRDConfig aggressive_config() {
  core::HyRDConfig c;
  c.write_ack = gcs::AckPolicy::kFirstSuccess;
  c.erasure_read_strategy = dist::ErasureReadStrategy::kFastestK;
  // Hedge stays at defaults: enabled, but calibrated to fire only under
  // genuine brownouts/stalls, never under baseline jitter.
  return c;
}

TEST(EngineEquivalence, AggressiveKnobsAreByteAndStateIdentical) {
  constexpr std::uint64_t kSeed = 90210;
  Fleet defaults(kSeed, core::HyRDConfig{});
  Fleet aggressive(kSeed, aggressive_config());

  // A mixed workload crossing the small/large threshold in both
  // directions, with in-place updates and removes.
  common::Xoshiro256 rng(17);
  std::vector<std::pair<std::string, common::Bytes>> files;
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t size =
        (i % 3 == 0) ? rng.uniform_int(1u << 20, 3u << 20)   // erasure
                     : rng.uniform_int(1024, 256u << 10);    // replicated
    files.emplace_back("/eq/f" + std::to_string(i),
                       common::patterned(size, rng()));
  }

  for (const auto& [path, data] : files) {
    auto wd = defaults.client->put(path, data);
    auto wa = aggressive.client->put(path, data);
    ASSERT_TRUE(wd.status.is_ok());
    ASSERT_TRUE(wa.status.is_ok());
    EXPECT_EQ(wd.meta.redundancy, wa.meta.redundancy) << path;
    // Early ack must never report later than wait-for-all on the same
    // deterministic latency stream.
    EXPECT_LE(wa.latency, wd.latency) << path;
  }

  // A few in-place updates (replicated and erasure paths both covered).
  for (std::size_t i : {1u, 3u}) {
    auto& [path, data] = files[i];
    const std::uint64_t len = std::min<std::uint64_t>(data.size(), 2048);
    common::Bytes patch = common::patterned(len, 999 + i);
    auto ud = defaults.client->update(path, 0, patch);
    auto ua = aggressive.client->update(path, 0, patch);
    ASSERT_EQ(ud.status.is_ok(), ua.status.is_ok()) << path;
    if (ud.status.is_ok()) {
      std::copy(patch.begin(), patch.end(), data.begin());
    }
  }

  // Every read must be byte-identical across configurations.
  for (const auto& [path, data] : files) {
    auto rd = defaults.client->get(path);
    auto ra = aggressive.client->get(path);
    ASSERT_TRUE(rd.status.is_ok()) << path << " " << rd.status.to_string();
    ASSERT_TRUE(ra.status.is_ok()) << path << " " << ra.status.to_string();
    EXPECT_EQ(rd.data, data) << path;
    EXPECT_EQ(ra.data, data) << path;
    EXPECT_FALSE(rd.degraded);
    EXPECT_FALSE(ra.degraded);
  }

  // Removes (early-acked on the aggressive fleet) must leave both fleets
  // with nothing. A remove that had not resolved when the early ack fired
  // is torn down and recorded for replay — whether that happens depends on
  // real-clock scheduling, so reconcile through the update log exactly as
  // a post-outage resync would. Equality must hold afterwards either way.
  for (std::size_t i : {0u, 5u}) {
    auto dd = defaults.client->remove(files[i].first);
    auto da = aggressive.client->remove(files[i].first);
    ASSERT_TRUE(dd.status.is_ok());
    ASSERT_TRUE(da.status.is_ok());
    EXPECT_TRUE(dd.unreachable_providers.empty());
    for (const auto& provider : da.unreachable_providers) {
      aggressive.client->on_provider_restored(provider);
    }
  }

  // Durable state is identical provider by provider: same objects, same
  // resident bytes. (GET-side traffic legitimately differs — first-k
  // issues up to m extra requests — but nothing write-side may.)
  for (const auto& pd : defaults.registry.all()) {
    auto* pa = aggressive.registry.find(pd->name());
    ASSERT_NE(pa, nullptr);
    EXPECT_EQ(pd->object_count(), pa->object_count()) << pd->name();
    EXPECT_EQ(pd->stored_bytes(), pa->stored_bytes()) << pd->name();
    EXPECT_EQ(pd->counters().puts, pa->counters().puts) << pd->name();
    EXPECT_EQ(pd->counters().bytes_written, pa->counters().bytes_written)
        << pd->name();
    EXPECT_EQ(pd->counters().removes, pa->counters().removes) << pd->name();
  }
}

TEST(EngineEquivalence, HealthyFleetNeverCancelsOrHedges) {
  // With default knobs on a healthy fleet the engine must be invisible:
  // no op is ever cancelled, no hedge fires, request counts match the
  // paper's cost model exactly (k GETs per erasure read, 1 per replica
  // read).
  Fleet fleet(4242, core::HyRDConfig{});
  const auto small = common::patterned(64 * 1024, 1);
  const auto large = common::patterned(2u << 20, 2);
  ASSERT_TRUE(fleet.client->put("/a", small).status.is_ok());
  ASSERT_TRUE(fleet.client->put("/b", large).status.is_ok());
  for (const auto& p : fleet.registry.all()) p->reset_counters();

  ASSERT_TRUE(fleet.client->get("/a").status.is_ok());
  ASSERT_TRUE(fleet.client->get("/b").status.is_ok());

  std::uint64_t total_gets = 0;
  for (const auto& p : fleet.registry.all()) {
    EXPECT_EQ(p->counters().cancelled, 0u) << p->name();
    total_gets += p->counters().gets;
  }
  // 1 replica GET for the small file + k GETs for the erasure stripe.
  core::HyRDConfig config;
  EXPECT_EQ(total_gets, 1u + config.geometry.k);
}

}  // namespace
}  // namespace hyrd
