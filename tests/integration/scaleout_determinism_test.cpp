// Determinism contract of the discrete-event scale-out engine: a run is a
// pure function of its config — two runs from the same seed produce
// byte-identical reports (the --stable-json guarantee of bench_scaleout),
// and the seed actually matters.
#include <gtest/gtest.h>

#include <string>

#include "sim/scaleout.h"

namespace hyrd::sim {
namespace {

ScaleoutConfig small_config(const std::string& scheme, std::uint64_t seed) {
  ScaleoutConfig config;
  config.scheme = scheme;
  config.tenants = 400;
  config.seed = seed;
  // A narrow fleet so queueing (the stateful part of the model) engages
  // even at this size: the run must be deterministic *with* contention.
  config.congestion.channels = 4;
  return config;
}

std::string stable_json(const std::string& scheme, std::uint64_t seed) {
  return report_to_json(run_scaleout(small_config(scheme, seed)),
                        /*include_env=*/false);
}

TEST(ScaleoutDeterminism, SameSeedIsByteIdentical) {
  // HyRD covers the replicated small-file path + metadata replication.
  EXPECT_EQ(stable_json("HyRD", 42), stable_json("HyRD", 42));
}

TEST(ScaleoutDeterminism, ErasurePathIsDeterministicDespiteThePool) {
  // RACS stripes everything, so encode/CRC compute overlaps on the session
  // pool even in inline mode — the report must not depend on how the OS
  // schedules those compute tasks.
  EXPECT_EQ(stable_json("RACS", 42), stable_json("RACS", 42));
}

TEST(ScaleoutDeterminism, SeedChangesTheRun) {
  // The comparison above has teeth only if different seeds diverge.
  EXPECT_NE(stable_json("HyRD", 42), stable_json("HyRD", 43));
}

TEST(ScaleoutDeterminism, JitteredRetriesStayByteIdentical) {
  // Retry v2's full jitter is a pure function of (seed, op identity,
  // attempt) — no shared RNG stream — so enabling it must not cost the
  // byte-identity contract even with tenant-level retry events in play.
  const auto jittered = [](std::uint64_t seed) {
    ScaleoutConfig config = small_config("HyRD", seed);
    config.congestion.max_queue_depth = 16;  // force real 429s
    config.tenant.retry.max_attempts = 8;
    config.tenant.retry.backoff_ms = 20.0;
    config.tenant.retry.max_backoff_ms = 500.0;
    config.tenant.retry.retry_unavailable = true;
    config.tenant.retry.jitter_seed = seed ^ 0x51ca1e07ull;
    config.client_retry.jitter_seed = seed ^ 0xfeedfaceull;
    return report_to_json(run_scaleout(config), /*include_env=*/false);
  };
  EXPECT_EQ(jittered(42), jittered(42));
  EXPECT_NE(jittered(42), jittered(43));
}

TEST(ScaleoutDeterminism, ReportIsInternallyConsistent) {
  const ScaleoutReport r = run_scaleout(small_config("DuraCloud", 7));
  // Closed loop: every tenant issues exactly config.tenant.ops ops.
  EXPECT_EQ(r.ops_ok + r.ops_failed, 400u * 4u);
  EXPECT_EQ(r.events_dispatched, 400u * 4u);  // one event per op
  EXPECT_GT(r.provider_ops, r.ops_ok);        // fan-out: >1 provider op/op
  EXPECT_GT(r.virtual_seconds, 0.0);
  EXPECT_GE(r.p99_ms, r.p50_ms);
  // Env fields are excluded from the stable serialization.
  const std::string stable = report_to_json(r, false);
  EXPECT_EQ(stable.find("wall_ms"), std::string::npos);
  EXPECT_EQ(stable.find("rss_"), std::string::npos);
  const std::string full = report_to_json(r, true);
  EXPECT_NE(full.find("wall_ms"), std::string::npos);
}

}  // namespace
}  // namespace hyrd::sim
