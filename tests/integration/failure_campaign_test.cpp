// End-to-end failure-response contract of this PR: a throttled fleet
// completes cleanly once 429-aware retry is on, the scripted E4 campaign
// (correlated outage + brownout + permanent loss) is survivable for HyRD
// with zero client-visible errors, the destroyed provider stays destroyed,
// and the whole campaign is byte-deterministic per seed.
#include <gtest/gtest.h>

#include <string>

#include "sim/scaleout.h"

namespace hyrd::sim {
namespace {

/// A fleet sized to slam the fair queue: tight capacity, no ramp to speak
/// of, so the opening burst overruns max_queue_depth and 429s are certain.
ScaleoutConfig throttled_config(std::uint64_t seed) {
  ScaleoutConfig config;
  config.scheme = "HyRD";
  config.tenants = 200;
  config.seed = seed;
  config.congestion.channels = 2;
  config.congestion.per_op_service_ms = 5.0;
  config.congestion.max_queue_depth = 8;
  config.ramp = common::kSecond / 2;
  config.tenant.ops = 4;
  // Strip the session-level safety net so the tenant layer is what's
  // under test (and the no-retry control actually fails).
  config.client_retry = gcs::RetryPolicy::none();
  return config;
}

TEST(FailureCampaign, ThrottledFleetFailsWithoutRetryAndCompletesWithIt) {
  // Control: 429s surface as client-visible failures.
  const ScaleoutReport bare = run_scaleout(throttled_config(42));
  ASSERT_GT(bare.provider_throttled, 0u) << "config no longer throttles";
  EXPECT_GT(bare.ops_failed, 0u);
  EXPECT_EQ(bare.retries, 0u);

  // Same fleet with the tenant backoff state machine: every op completes.
  // The scheme layer aggregates an all-replicas-429 write into
  // kUnavailable ("no replica target reachable"), so the tenant policy
  // opts into unavailable — raw 429 classification is exercised at the
  // CloudClient layer (RetryPolicy.ThrottledOpSucceedsAfterBackoff).
  ScaleoutConfig config = throttled_config(42);
  config.tenant.retry.max_attempts = 32;
  config.tenant.retry.backoff_ms = 25.0;
  config.tenant.retry.max_backoff_ms = 1'000.0;
  config.tenant.retry.retry_unavailable = true;
  config.tenant.retry.jitter_seed = 42 ^ 0xeb5493553f6cf38dull;
  const ScaleoutReport retried = run_scaleout(config);
  EXPECT_GT(retried.provider_throttled, 0u);
  EXPECT_EQ(retried.ops_failed, 0u);
  EXPECT_EQ(retried.ops_ok, 200u * 4u);
  EXPECT_GT(retried.retries, 0u);
  EXPECT_GT(retried.retry_amplification, 1.0);
  // Retry wakeups are extra events beyond the one-event-per-op baseline.
  EXPECT_EQ(retried.events_dispatched, 200u * 4u + retried.retries);
}

TEST(FailureCampaign, HyRDRidesOutTheStandardCampaign) {
  const ScaleoutReport r =
      run_scaleout(standard_campaign_config("HyRD", 300, 42));
  // The campaign took down both replica targets at once, browned out the
  // metadata-heavy provider, and destroyed one replica target outright —
  // and every client op still completed.
  EXPECT_EQ(r.ops_ok, 300u * 16u);
  EXPECT_EQ(r.ops_failed, 0u);
  EXPECT_GT(r.retries, 0u);
  // 7 applied transitions: 2 outage onsets + 2 restores + brownout
  // begin/end + 1 permanent loss.
  EXPECT_EQ(r.failure_events, 7u);
  EXPECT_EQ(r.provider_resurrected, 0u);
}

TEST(FailureCampaign, DestroyedProviderStaysDestroyedForEveryScheme) {
  for (const std::string scheme : {"HyRD", "DuraCloud", "RACS"}) {
    const ScaleoutReport r =
        run_scaleout(standard_campaign_config(scheme, 120, 7));
    EXPECT_EQ(r.provider_resurrected, 0u) << scheme;
    EXPECT_EQ(r.failure_events, 7u) << scheme;
  }
}

TEST(FailureCampaign, CampaignIsByteDeterministicPerSeed) {
  const auto stable = [](std::uint64_t seed) {
    return report_to_json(run_scaleout(standard_campaign_config("HyRD", 200, seed)),
                          /*include_env=*/false);
  };
  EXPECT_EQ(stable(42), stable(42));
  EXPECT_NE(stable(42), stable(43));
}

TEST(FailureCampaign, ReportSerializesFailureFields) {
  const std::string json = report_to_json(
      run_scaleout(standard_campaign_config("HyRD", 60, 3)), false);
  for (const char* key :
       {"\"retries\":", "\"retry_amplification\":", "\"goodput_ops_per_vs\":",
        "\"failure_events\":", "\"recovery_virtual_seconds\":",
        "\"provider_resurrected\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace hyrd::sim
