#include "common/checksum.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace hyrd::common {
namespace {

TEST(Crc32c, KnownVector) {
  // RFC 3720 test vector: CRC32C("123456789") = 0xE3069283.
  const Bytes data = bytes_of("123456789");
  EXPECT_EQ(crc32c(data), 0xE3069283u);
}

TEST(Crc32c, EmptyInputIsZero) { EXPECT_EQ(crc32c({}), 0u); }

TEST(Crc32c, AllZeros32) {
  const Bytes data(32, 0);
  EXPECT_EQ(crc32c(data), 0x8A9136AAu);  // RFC 3720 vector
}

TEST(Crc32c, AllOnes32) {
  const Bytes data(32, 0xFF);
  EXPECT_EQ(crc32c(data), 0x62A8AB43u);  // RFC 3720 vector
}

TEST(Crc32c, DetectsSingleBitFlip) {
  Bytes data = patterned(4096, 7);
  const std::uint32_t clean = crc32c(data);
  data[1234] ^= 0x01;
  EXPECT_NE(crc32c(data), clean);
}

TEST(Crc32c, DifferentSeedsDiffer) {
  const Bytes data = patterned(128, 3);
  EXPECT_NE(crc32c(data, 0), crc32c(data, 1));
}

TEST(Crc32c, Incrementing32) {
  Bytes data(32, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(crc32c(data), 0x46DD794Eu);  // RFC 3720 vector
}

TEST(Crc32c, Decrementing32) {
  Bytes data(32, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(31 - i);
  }
  EXPECT_EQ(crc32c(data), 0x113FDB5Cu);  // RFC 3720 vector
}

TEST(Crc32c, ChainingSplitsAnywhere) {
  // crc32c(a+b) == crc32c(b, seed=crc32c(a)) for every split point —
  // the property the pipelined writer relies on when it checksums
  // fragments independently of the whole object.
  const Bytes data = patterned(611, 29);
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    const std::uint32_t head = crc32c(ByteSpan(data.data(), split));
    const std::uint32_t chained =
        crc32c(ByteSpan(data.data() + split, data.size() - split), head);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32c, WideMatchesReferenceAllLengths) {
  // The slicing-by-8 / hardware path must agree with the retained
  // bytewise reference for every length and alignment, including the
  // sub-8-byte head and tail cases.
  const Bytes base = patterned(1025 + 8, 41);
  for (const std::size_t off :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    for (std::size_t len = 0; len <= 1025; ++len) {
      const ByteSpan span(base.data() + off, len);
      ASSERT_EQ(crc32c(span), crc32c_reference(span))
          << "off=" << off << " len=" << len;
      ASSERT_EQ(crc32c(span, 0xDEADBEEF), crc32c_reference(span, 0xDEADBEEF))
          << "seeded off=" << off << " len=" << len;
    }
  }
}

TEST(Fnv1a, MatchesKnownValues) {
  // Standard FNV-1a 64-bit vectors.
  EXPECT_EQ(fnv1a(std::string_view("")), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a(std::string_view("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a(std::string_view("foobar")), 0x85944171f73967e8ull);
}

TEST(Fnv1a, BytesAndStringAgree) {
  const std::string s = "hello world";
  EXPECT_EQ(fnv1a(std::string_view(s)), fnv1a(bytes_of(s)));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::digest({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::digest(bytes_of("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, QuickBrownFox) {
  EXPECT_EQ(Sha256::digest(
                bytes_of("The quick brown fox jumps over the lazy dog"))
                .hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256, TwoBlockMessage) {
  // 56 bytes forces the padding split across two blocks.
  EXPECT_EQ(
      Sha256::digest(bytes_of(
                         "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))
          .hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = patterned(10000, 99);
  Sha256 h;
  // Feed in awkward chunk sizes spanning block boundaries.
  std::size_t offset = 0;
  for (std::size_t chunk : {1u, 63u, 64u, 65u, 1000u, 8807u}) {
    const std::size_t take = std::min(chunk, data.size() - offset);
    h.update(ByteSpan(data.data() + offset, take));
    offset += take;
    if (offset == data.size()) break;
  }
  ASSERT_EQ(offset, data.size());
  EXPECT_EQ(h.finalize().hex(), Sha256::digest(data).hex());
}

TEST(Sha256, MillionAs) {
  const Bytes data(1000000, 'a');
  EXPECT_EQ(Sha256::digest(data).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace hyrd::common
