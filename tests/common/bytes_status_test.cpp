#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/units.h"

namespace hyrd::common {
namespace {

TEST(Bytes, RoundTripString) {
  const Bytes b = bytes_of("hello");
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, PatternedIsDeterministic) {
  EXPECT_EQ(patterned(1024, 7), patterned(1024, 7));
  EXPECT_NE(patterned(1024, 7), patterned(1024, 8));
}

TEST(Bytes, PatternedSize) {
  EXPECT_EQ(patterned(0, 1).size(), 0u);
  EXPECT_EQ(patterned(12345, 1).size(), 12345u);
}

TEST(Bytes, ToHexTruncates) {
  const Bytes b(64, 0xAB);
  const std::string hex = to_hex(b, 4);
  EXPECT_EQ(hex, "abababab...");
}

TEST(Bytes, Concat) {
  std::vector<Bytes> parts = {bytes_of("ab"), bytes_of(""), bytes_of("cd")};
  EXPECT_EQ(to_string(concat(parts)), "abcd");
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(already_exists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(data_loss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(failed_precondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(internal_error("boom").message(), "boom");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(not_found("missing").to_string(), "NOT_FOUND: missing");
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, ErrorAccess) {
  Result<int> r = not_found("gone");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<Bytes> r(bytes_of("payload"));
  const Bytes b = std::move(r).value();
  EXPECT_EQ(to_string(b), "payload");
}

TEST(Clock, AdvanceAccumulates) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(from_ms(1.5));
  clock.advance(from_ms(0.5));
  EXPECT_EQ(clock.now(), 2 * kMillisecond);
  clock.advance(-100);  // negative deltas ignored
  EXPECT_EQ(clock.now(), 2 * kMillisecond);
  clock.reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(Clock, ConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_ms(from_ms(123.25)), 123.25);
  EXPECT_DOUBLE_EQ(to_seconds(5 * kSecond), 5.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.0 B");
  EXPECT_EQ(format_bytes(2 * KiB), "2.0 KiB");
  EXPECT_EQ(format_bytes(3 * MiB + MiB / 2), "3.5 MiB");
  EXPECT_EQ(format_bytes(7 * GiB), "7.0 GiB");
}

TEST(Units, FormatUsd) {
  EXPECT_EQ(format_usd(1.006), "$1.01");
  EXPECT_EQ(format_usd(0.0), "$0.00");
}

}  // namespace
}  // namespace hyrd::common
