#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/table.h"
#include "common/thread_pool.h"

namespace hyrd::common {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroThreadRequestStillWorks) {
  ThreadPool pool(0);  // clamped to 1
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 1000; ++i) {
    futs.push_back(pool.submit([&count] { count++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, ChunkedParallelForCoversEveryIndexExactlyOnce) {
  // The chunked dispatch must still visit each index exactly once even
  // when n is much larger than the chunk count and doesn't divide evenly.
  ThreadPool pool(4);
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{15},
                              std::size_t{16}, std::size_t{17},
                              std::size_t{1000}, std::size_t{12345}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i]++; });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
    }
  }
}

TEST(ThreadPool, ParallelForStressFromManyExternalThreads) {
  // Several caller threads hammering parallel_for on one shared pool:
  // each call must see all of its own indices and nothing else. This is
  // the shape of the pipelined erasure write (encode chunks + CRC tasks
  // + parallel_put on the same session pool).
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr int kRounds = 25;
  constexpr std::size_t kIndices = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&pool, &failures] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kIndices);
        pool.parallel_for(kIndices, [&](std::size_t i) { hits[i]++; });
        for (std::size_t i = 0; i < kIndices; ++i) {
          if (hits[i].load() != 1) failures++;
        }
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  pool.parallel_for(8, [&](std::size_t) {
    const int now = ++inside;
    int p = peak.load();
    while (now > p && !peak.compare_exchange_weak(p, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    --inside;
  });
  EXPECT_GT(peak.load(), 1);
}

TEST(Table, RendersAlignedGrid) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name"), std::string::npos);
  // Separator, header, separator, two rows, separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| x"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  EXPECT_EQ(t.render_csv(),
            "a,b\nplain,1\n\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(Table, CsvPadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_EQ(t.render_csv(), "a,b,c\nx,,\n");
}

}  // namespace
}  // namespace hyrd::common
