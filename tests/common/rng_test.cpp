#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hyrd::common {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, SeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, UniformIntRespectsBoundsInclusive) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.uniform_int(3, 9);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 9u);
    saw_lo |= v == 3;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformIntDegenerateRange) {
  Xoshiro256 rng(5);
  EXPECT_EQ(rng.uniform_int(4, 4), 4u);
  EXPECT_EQ(rng.uniform_int(9, 3), 9u);  // lo >= hi returns lo
}

TEST(Xoshiro256, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(99);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Xoshiro256, LognormalMedianMatchesMu) {
  Xoshiro256 rng(11);
  std::vector<double> vals;
  constexpr int kN = 50001;
  vals.reserve(kN);
  for (int i = 0; i < kN; ++i) vals.push_back(rng.lognormal(std::log(5.0), 0.5));
  std::nth_element(vals.begin(), vals.begin() + kN / 2, vals.end());
  EXPECT_NEAR(vals[kN / 2], 5.0, 0.25);
}

TEST(Xoshiro256, ExponentialMeanIsInverseRate) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Xoshiro256, ChanceExtremes) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Xoshiro256, ForkedStreamsAreIndependent) {
  Xoshiro256 parent(21);
  Xoshiro256 child = parent.fork();
  // The child must not replay the parent's upcoming outputs.
  bool differs = false;
  Xoshiro256 parent_copy(21);
  (void)parent_copy.fork();  // advance identically
  for (int i = 0; i < 10; ++i) {
    if (child() != parent_copy()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace hyrd::common
