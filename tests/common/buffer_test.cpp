#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/buffer.h"
#include "common/copy_meter.h"
#include "common/rng.h"

namespace hyrd::common {
namespace {

TEST(Buffer, DefaultIsEmptyAndOwning) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.owning());
  EXPECT_EQ(b.use_count(), 0);
}

TEST(Buffer, CopyIsDeepAndCounted) {
  const Bytes src = patterned(1024, 1);
  reset_copied_bytes();
  Buffer b = Buffer::copy(src);
  EXPECT_EQ(copied_bytes(), 1024u);
  EXPECT_EQ(b, src);
  EXPECT_NE(b.data(), src.data());
}

TEST(Buffer, FromAdoptsWithoutCopy) {
  Bytes src = patterned(512, 2);
  const std::uint8_t* raw = src.data();
  reset_copied_bytes();
  Buffer b = Buffer::from(std::move(src));
  EXPECT_EQ(copied_bytes(), 0u);
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b.size(), 512u);
}

TEST(Buffer, SliceIsZeroCopyView) {
  Buffer b = Buffer::from(patterned(100, 3));
  reset_copied_bytes();
  Buffer mid = b.slice(10, 50);
  EXPECT_EQ(copied_bytes(), 0u);
  EXPECT_EQ(mid.size(), 50u);
  EXPECT_EQ(mid.data(), b.data() + 10);
  EXPECT_TRUE(mid.same_block(b));
  EXPECT_EQ(b.use_count(), 2);
}

TEST(Buffer, EmptySlices) {
  Buffer b = Buffer::from(patterned(16, 4));
  Buffer zero = b.slice(0, 0);
  Buffer at_end = b.slice(16, 0);
  EXPECT_TRUE(zero.empty());
  EXPECT_TRUE(at_end.empty());
  EXPECT_EQ(zero, at_end);  // both empty: equal regardless of address
  Buffer empty;
  EXPECT_TRUE(empty.slice(0, 0).empty());
  EXPECT_EQ(empty.first(10).size(), 0u);
}

TEST(Buffer, SliceOfSliceComposes) {
  Buffer b = Buffer::from(patterned(100, 5));
  Buffer outer = b.slice(20, 60);
  Buffer inner = outer.slice(10, 20);
  EXPECT_EQ(inner.data(), b.data() + 30);
  EXPECT_EQ(inner.size(), 20u);
  EXPECT_TRUE(inner.same_block(b));
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(inner[i], b[30 + i]);
}

TEST(Buffer, SliceAliasesAfterSourceDestruction) {
  Buffer inner;
  const Bytes expect = patterned(64, 6);
  {
    Buffer outer = Buffer::from(patterned(64, 6));
    inner = outer.slice(16, 32);
  }  // outer destroyed; the block must stay alive through inner
  EXPECT_EQ(inner.size(), 32u);
  EXPECT_EQ(inner.use_count(), 1);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(inner[i], expect[16 + i]);
}

TEST(Buffer, BorrowViewsWithoutOwning) {
  const Bytes src = patterned(32, 7);
  Buffer b = Buffer::borrow(src);
  EXPECT_FALSE(b.owning());
  EXPECT_EQ(b.data(), src.data());
  reset_copied_bytes();
  Buffer owned = b.own();
  EXPECT_TRUE(owned.owning());
  EXPECT_EQ(copied_bytes(), 32u);  // borrowed -> own() must deep copy
  EXPECT_NE(owned.data(), src.data());
  EXPECT_EQ(owned, src);
}

TEST(Buffer, OwnIsRefbumpWhenAlreadyOwning) {
  Buffer b = Buffer::from(patterned(32, 8));
  reset_copied_bytes();
  Buffer again = b.own();
  EXPECT_EQ(copied_bytes(), 0u);
  EXPECT_TRUE(again.same_block(b));
}

TEST(Buffer, IntoBytesStealsWhenSoleWholeOwner) {
  Buffer b = Buffer::from(patterned(256, 9));
  const std::uint8_t* raw = b.data();
  reset_copied_bytes();
  Bytes out = std::move(b).into_bytes();
  EXPECT_EQ(copied_bytes(), 0u);
  EXPECT_EQ(out.data(), raw);
  EXPECT_EQ(out.size(), 256u);
}

TEST(Buffer, IntoBytesForksWhenShared) {
  // COW on mutation: a second view forces into_bytes() to fork so the
  // sibling keeps its snapshot.
  Buffer a = Buffer::from(patterned(128, 10));
  Buffer sibling = a.slice(0, 128);
  reset_copied_bytes();
  Bytes out = std::move(a).into_bytes();
  EXPECT_EQ(copied_bytes(), 128u);
  out[0] ^= 0xFF;
  EXPECT_NE(sibling[0], out[0]);  // sibling unchanged after the fork
}

TEST(Buffer, IntoBytesForksWhenPartialView) {
  Buffer a = Buffer::from(patterned(128, 11)).slice(8, 64);
  reset_copied_bytes();
  Bytes out = std::move(a).into_bytes();
  EXPECT_EQ(copied_bytes(), 64u);  // a partial view can never steal
  EXPECT_EQ(out.size(), 64u);
}

TEST(Buffer, JoinContiguousFastPath) {
  Buffer whole = Buffer::from(patterned(90, 12));
  std::vector<Buffer> parts = {whole.slice(0, 30), whole.slice(30, 30),
                               whole.slice(60, 30)};
  reset_copied_bytes();
  auto joined = Buffer::join_contiguous(parts, 85);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(copied_bytes(), 0u);
  EXPECT_EQ(joined->data(), whole.data());
  EXPECT_EQ(joined->size(), 85u);  // truncated to the logical length
}

TEST(Buffer, JoinContiguousRejectsGapsAndForeignBlocks) {
  Buffer whole = Buffer::from(patterned(90, 13));
  // Gap: second part skips 10 bytes.
  std::vector<Buffer> gap = {whole.slice(0, 30), whole.slice(40, 30)};
  EXPECT_FALSE(Buffer::join_contiguous(gap, 60).has_value());
  // Out of order.
  std::vector<Buffer> swapped = {whole.slice(30, 30), whole.slice(0, 30)};
  EXPECT_FALSE(Buffer::join_contiguous(swapped, 60).has_value());
  // Different blocks.
  Buffer other = Buffer::from(patterned(30, 14));
  std::vector<Buffer> mixed = {whole.slice(0, 30), other};
  EXPECT_FALSE(Buffer::join_contiguous(mixed, 60).has_value());
  // Asking for more than the run holds.
  std::vector<Buffer> ok = {whole.slice(0, 30), whole.slice(30, 30)};
  EXPECT_FALSE(Buffer::join_contiguous(ok, 61).has_value());
}

TEST(MutableBuffer, FreezeAndSlice) {
  MutableBuffer arena(64);
  const Bytes fill = patterned(32, 15);
  arena.write(16, fill);
  Buffer b = std::move(arena).freeze();
  EXPECT_EQ(b.size(), 64u);
  EXPECT_EQ(b[0], 0);  // zero-initialised outside the written region
  Buffer window = b.slice(16, 32);
  EXPECT_EQ(window, fill);
}

TEST(MutableBuffer, SpanTakenBeforeFreezeStaysWritable) {
  // The erasure write path takes parity spans before freeze() and encodes
  // into them afterwards; the bytes must land in the frozen block.
  MutableBuffer arena(32);
  MutByteSpan tail = arena.span(16, 16);
  Buffer frozen = std::move(arena).freeze();
  for (auto& byte : tail) byte = 0xAB;
  for (std::size_t i = 16; i < 32; ++i) EXPECT_EQ(frozen[i], 0xAB);
}

TEST(RangeWithin, RejectsOverflowingRanges) {
  EXPECT_TRUE(range_within(0, 10, 10));
  EXPECT_TRUE(range_within(10, 0, 10));
  EXPECT_FALSE(range_within(11, 0, 10));
  EXPECT_FALSE(range_within(0, 11, 10));
  // offset + length wraps to a small number: the naive `offset + length >
  // size` check passes; range_within must not.
  const std::uint64_t huge = ~std::uint64_t{0} - 3;
  EXPECT_FALSE(range_within(huge, 8, 100));
  EXPECT_FALSE(range_within(8, huge, 100));
  EXPECT_FALSE(range_within(huge, huge, ~std::uint64_t{0}));
  EXPECT_TRUE(range_within(huge, 3, ~std::uint64_t{0}));
}

TEST(Buffer, ConcurrentSliceAndDropIsSafe) {
  // Refcount stress: many threads slicing and dropping views of one block.
  // Run under TSan to prove the control block is the only shared state.
  Buffer shared = Buffer::from(patterned(4096, 16));
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> checksum{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&shared, &go, &checksum, t] {
      while (!go.load()) {
      }
      std::uint64_t local = 0;
      for (int i = 0; i < 2000; ++i) {
        Buffer view = shared.slice((t * 64 + i) % 2048, 1024);
        local += view[0] + view[view.size() - 1];
        Buffer copy = view;  // extra refbump/decrement churn
      }
      checksum += local;
    });
  }
  go = true;
  for (auto& th : threads) th.join();
  EXPECT_GT(checksum.load(), 0u);
  EXPECT_EQ(shared.use_count(), 1);
}

}  // namespace
}  // namespace hyrd::common
