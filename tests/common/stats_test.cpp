#include "common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace hyrd::common {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 3.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsNoop) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Samples, PercentilesOfRamp) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(Samples, MeanAndEmpty) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  s.add(2.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Samples, PercentileAfterMoreAdds) {
  Samples s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

// The sorted-prefix micro-fix: alternating add/percentile must keep
// answering from a fully ordered view (tail-sort + inplace_merge), matching
// a from-scratch sort at every step. Shuffled input exercises merges where
// the tail interleaves arbitrarily with the prefix.
TEST(Samples, InterleavedAddQueryMatchesFullSort) {
  std::mt19937_64 rng(7);
  std::vector<double> values(400);
  for (auto& v : values) {
    v = static_cast<double>(rng() % 10'000) / 10.0;
  }
  Samples s;
  std::vector<double> reference;
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.add(values[i]);
    reference.push_back(values[i]);
    if (i % 7 == 0 || i + 1 == values.size()) {
      std::vector<double> sorted = reference;
      std::sort(sorted.begin(), sorted.end());
      for (double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
        const double rank =
            p / 100.0 * static_cast<double>(sorted.size() - 1);
        const auto lo = static_cast<std::size_t>(rank);
        const auto hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        const double expected = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
        ASSERT_NEAR(s.percentile(p), expected, 1e-9)
            << "n=" << sorted.size() << " p=" << p;
      }
    }
  }
}

// Regression for the merge min/max satellite: an empty accumulator's
// zero-initialized min_/max_ must never leak into the merge result —
// neither direction, and not for all-positive or all-negative data where
// a spurious 0.0 would be a visible wrong extreme.
TEST(RunningStat, MergePreservesMinMaxAroundEmpty) {
  RunningStat positives;
  positives.add(5.0);
  positives.add(9.0);
  RunningStat empty;
  positives.merge(empty);
  EXPECT_EQ(positives.min(), 5.0);  // not clobbered to 0.0
  EXPECT_EQ(positives.max(), 9.0);

  RunningStat negatives;
  negatives.add(-7.0);
  negatives.add(-2.0);
  RunningStat into;
  into.merge(negatives);  // empty.merge(non-empty)
  EXPECT_EQ(into.min(), -7.0);
  EXPECT_EQ(into.max(), -2.0);  // not pulled up to 0.0
  EXPECT_EQ(into.count(), 2u);

  into.merge(empty);
  EXPECT_EQ(into.min(), -7.0);
  EXPECT_EQ(into.max(), -2.0);
}

TEST(LogHistogram, BucketsAndRender) {
  LogHistogram h(1.0, 10.0, 4);  // [0,1) [1,10) [10,100) [100,inf)
  h.add(0.5);
  h.add(5.0);
  h.add(50.0);
  h.add(5000.0);
  EXPECT_EQ(h.total(), 4u);
  const std::string render = h.render();
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 4);
}

TEST(LogHistogram, BucketIndexMatchesAdd) {
  // The static bucket_index must agree with add() exactly — obs::Histogram
  // depends on it for merge-of-shards == single-stream.
  LogHistogram h(1.0, 10.0, 4);
  for (double x : {0.0, 0.999, 1.0, 9.99, 10.0, 99.0, 100.0, 1e9}) {
    LogHistogram single(1.0, 10.0, 4);
    single.add(x);
    const std::size_t idx = LogHistogram::bucket_index(x, 1.0, 10.0, 4);
    EXPECT_EQ(single.counts()[idx], 1u) << "x=" << x;
  }
  // Boundary values land in the upper bucket (half-open intervals).
  EXPECT_EQ(LogHistogram::bucket_index(0.999, 1.0, 10.0, 4), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1.0, 1.0, 10.0, 4), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(10.0, 1.0, 10.0, 4), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(100.0, 1.0, 10.0, 4), 3u);
}

TEST(LogHistogram, PercentileAtBucketBoundaries) {
  // All mass in one bucket: every percentile interpolates inside
  // [base*growth^(i-1), base*growth^i).
  LogHistogram h(1.0, 10.0, 4);
  for (int i = 0; i < 100; ++i) h.add(5.0);  // bucket [1,10)
  EXPECT_GE(h.percentile(0.0), 1.0);
  EXPECT_LE(h.percentile(100.0), 10.0);
  EXPECT_GE(h.percentile(50.0), 1.0);
  EXPECT_LE(h.percentile(50.0), 10.0);

  // Mass split across two buckets: p below the split resolves to the lower
  // bucket's range, p above to the upper's.
  LogHistogram two(1.0, 10.0, 4);
  for (int i = 0; i < 90; ++i) two.add(0.5);  // [0,1)
  for (int i = 0; i < 10; ++i) two.add(5.0);  // [1,10)
  EXPECT_LT(two.percentile(50.0), 1.0);
  EXPECT_GE(two.percentile(99.0), 1.0);
  EXPECT_LE(two.percentile(99.0), 10.0);
}

TEST(LogHistogram, OverflowBucketAbsorbsTail) {
  LogHistogram h(1.0, 10.0, 3);  // [0,1) [1,10) [10,inf)
  h.add(10.0);
  h.add(1e6);
  h.add(1e18);
  EXPECT_EQ(h.counts()[2], 3u);
  EXPECT_EQ(h.total(), 3u);
  // Percentiles of overflow-only mass interpolate inside the last bucket's
  // nominal [10, 100) range — bounded even though the values were not.
  EXPECT_GE(h.percentile(0.0), 10.0);
  EXPECT_GE(h.percentile(99.0), 10.0);
  EXPECT_LE(h.percentile(99.0), 100.0);
}

TEST(LogHistogram, MergeOfShardsEqualsSingleStream) {
  std::mt19937_64 rng(11);
  LogHistogram single(0.1, 1.25, 120);
  LogHistogram shard_a(0.1, 1.25, 120);
  LogHistogram shard_b(0.1, 1.25, 120);
  LogHistogram shard_c(0.1, 1.25, 120);
  for (int i = 0; i < 5'000; ++i) {
    const double x = static_cast<double>(rng() % 1'000'000) / 100.0;
    single.add(x);
    (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c).add(x);
  }
  shard_a.merge(shard_b);
  shard_a.merge(shard_c);
  EXPECT_EQ(shard_a.total(), single.total());
  EXPECT_EQ(shard_a.counts(), single.counts());  // exact, not within-error
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(shard_a.percentile(p), single.percentile(p));
  }
}

TEST(LogHistogram, MergeRefusesGeometryMismatch) {
  LogHistogram a(1.0, 10.0, 4);
  LogHistogram b(1.0, 2.0, 4);
  a.add(5.0);
  b.add(5.0);
  a.merge(b);  // refused: growth differs
  EXPECT_EQ(a.total(), 1u);
}

TEST(LogHistogram, CountsConstructorAdoptsTotals) {
  LogHistogram from_counts(1.0, 10.0, std::vector<std::size_t>{2, 3, 0, 1});
  EXPECT_EQ(from_counts.total(), 6u);
  LogHistogram streamed(1.0, 10.0, 4);
  for (double x : {0.5, 0.6, 2.0, 3.0, 4.0, 1000.0}) streamed.add(x);
  EXPECT_EQ(from_counts.counts(), streamed.counts());
  EXPECT_DOUBLE_EQ(from_counts.percentile(50.0), streamed.percentile(50.0));
}

}  // namespace
}  // namespace hyrd::common
