#include "common/stats.h"

#include <gtest/gtest.h>

namespace hyrd::common {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 3.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptyIsNoop) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Samples, PercentilesOfRamp) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(90), 90.1, 0.2);
}

TEST(Samples, MeanAndEmpty) {
  Samples s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
  s.add(2.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(Samples, PercentileAfterMoreAdds) {
  Samples s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(20.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

TEST(LogHistogram, BucketsAndRender) {
  LogHistogram h(1.0, 10.0, 4);  // [0,1) [1,10) [10,100) [100,inf)
  h.add(0.5);
  h.add(5.0);
  h.add(50.0);
  h.add(5000.0);
  EXPECT_EQ(h.total(), 4u);
  const std::string render = h.render();
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 4);
}

}  // namespace
}  // namespace hyrd::common
