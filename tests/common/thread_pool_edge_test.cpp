// Regression tests for the parallel_for edge cases: n == 0 must return
// without touching the pool, and a throwing task must propagate cleanly —
// first exception rethrown, every chunk drained before the call returns
// (so the by-reference `fn` can never dangle), pool fully usable after.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace hyrd::common {
namespace {

TEST(ThreadPoolEdge, ParallelForZeroReturnsWithoutInvoking) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  // And a throwing fn is irrelevant at n == 0: nothing may run.
  pool.parallel_for(0, [](std::size_t) -> void {
    throw std::runtime_error("must not run");
  });
}

TEST(ThreadPoolEdge, ThrowingTaskRethrowsWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom 13");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolEdge, FirstExceptionWinsAndPoolStaysUsable) {
  ThreadPool pool(4);
  std::string what;
  try {
    // Every index throws; exactly one exception must surface.
    pool.parallel_for(32, [](std::size_t i) {
      throw std::runtime_error("boom " + std::to_string(i));
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    what = e.what();
  }
  EXPECT_EQ(what.rfind("boom ", 0), 0u) << what;

  // The pool must be fully drained and reusable: a follow-up parallel_for
  // covers all of its own indices exactly once.
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolEdge, AllChunksDrainBeforeRethrow) {
  // The contract that keeps `fn` (captured by reference) safe: when the
  // call returns — normally or by exception — no chunk is still running.
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<bool> returned{false};
  std::atomic<int> raced{0};
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      ++in_flight;
      if (returned.load()) ++raced;  // chunk alive after the call returned
      if (i == 0) {
        --in_flight;
        throw std::runtime_error("early");
      }
      --in_flight;
    });
  } catch (const std::runtime_error&) {
  }
  returned.store(true);
  EXPECT_EQ(in_flight.load(), 0);
  EXPECT_EQ(raced.load(), 0);
}

TEST(ThreadPoolEdge, ThrowOnSingleIndexPropagates) {
  // n == 1 short-circuits to an inline call; the exception must still
  // reach the caller the same way the chunked path delivers it.
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   1, [](std::size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

}  // namespace
}  // namespace hyrd::common
