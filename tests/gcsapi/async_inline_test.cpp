// AsyncBatch inline mode: under a common::VirtualScope the batch executes
// ops on the submitting thread (no pool handoff), reinstalls the tenant's
// context at each op's virtual arrival, and stays deterministic — the seam
// that lets the discrete-event engine (sim/) run a million tenants through
// the unmodified scheme stack.
#include <gtest/gtest.h>

#include <thread>

#include "cloud/profiles.h"
#include "common/bytes.h"
#include "common/clock.h"
#include "common/virtual_time.h"
#include "gcsapi/async_batch.h"
#include "gcsapi/session.h"

namespace hyrd::gcs {
namespace {

class AsyncInlineTest : public ::testing::Test {
 protected:
  AsyncInlineTest()
      : session_((cloud::install_standard_four(registry_, 42), registry_)) {
    session_.ensure_container_everywhere("c");
    payload_ = common::patterned(4096, 3);
    for (std::size_t i = 0; i < session_.client_count(); ++i) {
      session_.client(i).put({"c", "obj"}, payload_);
    }
  }

  cloud::CloudRegistry registry_;
  MultiCloudSession session_;
  common::Bytes payload_;
};

TEST_F(AsyncInlineTest, ScopeAtConstructionSelectsInlineMode) {
  AsyncBatch plain(session_);
  EXPECT_FALSE(plain.inline_mode());
  common::VirtualScope scope({.now = 0, .tenant = 1, .weight = 1.0});
  AsyncBatch inlined(session_);
  EXPECT_TRUE(inlined.inline_mode());
}

TEST_F(AsyncInlineTest, InlineOpsRunOnTheSubmittingThread) {
  std::thread::id op_thread;
  registry_.all()[0]->set_op_hook(
      [&](cloud::OpKind, const cloud::ObjectKey&) {
        op_thread = std::this_thread::get_id();
      });
  common::VirtualScope scope({.now = 0, .tenant = 1, .weight = 1.0});
  AsyncBatch batch(session_);
  batch.submit(CloudOp::get(0, {"c", "obj"}));
  auto completions = batch.await_all(nullptr);
  registry_.all()[0]->set_op_hook(nullptr);
  ASSERT_EQ(completions.size(), 1u);
  ASSERT_TRUE(completions[0].ok());
  EXPECT_EQ(op_thread, std::this_thread::get_id());
}

TEST_F(AsyncInlineTest, StartOffsetAdvancesTheReinstalledContext) {
  // An op submitted at virtual offset S (failover legs, hedges, chains)
  // must reach the provider under a context whose `now` is epoch + S —
  // that is the arrival instant the provider's fair queue prices.
  constexpr common::SimDuration kEpoch = 5 * common::kSecond;
  constexpr common::SimDuration kOffset = 250 * common::kMillisecond;
  common::SimDuration seen_now = -1;
  std::uint64_t seen_tenant = 0;
  registry_.all()[0]->set_op_hook(
      [&](cloud::OpKind, const cloud::ObjectKey&) {
        if (const auto* ctx = common::VirtualScope::current()) {
          seen_now = ctx->now;
          seen_tenant = ctx->tenant;
        }
      });
  common::VirtualScope scope({.now = kEpoch, .tenant = 77, .weight = 1.0});
  AsyncBatch batch(session_);
  auto op = CloudOp::get(0, {"c", "obj"});
  op.start_offset = kOffset;
  batch.submit(std::move(op));
  (void)batch.await_all(nullptr);
  registry_.all()[0]->set_op_hook(nullptr);
  EXPECT_EQ(seen_now, kEpoch + kOffset);
  EXPECT_EQ(seen_tenant, 77u);
}

TEST_F(AsyncInlineTest, InlineAndPooledRunsAgreeOnVirtualLatency) {
  // Same fleet seed, same ops: the inline engine must report exactly the
  // virtual latencies the pooled engine reports — inline mode changes the
  // execution vehicle, never the simulated time.
  auto run = [](bool inline_mode) {
    cloud::CloudRegistry registry;
    cloud::install_standard_four(registry, 7);
    MultiCloudSession session(registry);
    session.ensure_container_everywhere("c");
    for (std::size_t i = 0; i < session.client_count(); ++i) {
      session.client(i).put({"c", "obj"}, common::patterned(4096, 3));
    }
    std::optional<common::VirtualScope> scope;
    if (inline_mode) scope.emplace(common::VirtualContext{0, 1, 1.0});
    AsyncBatch batch(session);
    for (std::size_t i = 0; i < 4; ++i) {
      batch.submit(CloudOp::get(i, {"c", "obj"}));
    }
    BatchStats stats;
    (void)batch.await_all(&stats);
    return stats.latency;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace hyrd::gcs
