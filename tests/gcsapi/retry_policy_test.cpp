// Retry v2 (gcsapi/retry.h): per-code retryability, the capped exponential
// ladder, stateless full jitter, the deadline budget — and the end-to-end
// regression this PR exists for: a FairQueue-throttled (429) op riding
// through CloudClient's backoff to success instead of surfacing the error.
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "cloud/provider.h"
#include "common/clock.h"
#include "common/status.h"
#include "common/virtual_time.h"
#include "gcsapi/client.h"
#include "gcsapi/retry.h"

namespace hyrd::gcs {
namespace {

TEST(RetryPolicy, ClassifiesCodes) {
  RetryPolicy policy;  // defaults: throttled on, unavailable off
  EXPECT_TRUE(policy.retryable(common::StatusCode::kInternal));
  EXPECT_TRUE(policy.retryable(common::StatusCode::kResourceExhausted));
  EXPECT_FALSE(policy.retryable(common::StatusCode::kUnavailable));
  EXPECT_FALSE(policy.retryable(common::StatusCode::kNotFound));
  EXPECT_FALSE(policy.retryable(common::StatusCode::kInvalidArgument));
  EXPECT_FALSE(policy.retryable(common::StatusCode::kDataLoss));
  EXPECT_FALSE(policy.retryable(common::StatusCode::kOk));

  policy.retry_unavailable = true;
  EXPECT_TRUE(policy.retryable(common::StatusCode::kUnavailable));
  policy.retry_throttled = false;
  EXPECT_FALSE(policy.retryable(common::StatusCode::kResourceExhausted));
}

TEST(RetryPolicy, NoneNeverRetries) {
  const RetryPolicy none = RetryPolicy::none();
  EXPECT_EQ(none.max_attempts, 1);
}

TEST(RetryPolicy, LadderIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.backoff_ms = 50.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 400.0;
  policy.jitter_seed = 0;  // deterministic ladder
  EXPECT_EQ(policy.backoff_before(1, 0), common::from_ms(50.0));
  EXPECT_EQ(policy.backoff_before(2, 0), common::from_ms(100.0));
  EXPECT_EQ(policy.backoff_before(3, 0), common::from_ms(200.0));
  EXPECT_EQ(policy.backoff_before(4, 0), common::from_ms(400.0));
  // The unbounded-ladder bug: attempt 10 used to be 50 * 2^9 = 25.6 s.
  EXPECT_EQ(policy.backoff_before(10, 0), common::from_ms(400.0));
  EXPECT_EQ(policy.backoff_before(30, 0), common::from_ms(400.0));
}

TEST(RetryPolicy, JitterIsStatelessAndDeterministic) {
  RetryPolicy policy;
  policy.backoff_ms = 100.0;
  policy.max_backoff_ms = 10'000.0;
  policy.jitter_seed = 1234;

  // Pure function of (seed, decorrelate, attempt): no hidden RNG stream,
  // so concurrent callers cannot perturb each other's draws.
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(policy.backoff_before(attempt, 7),
              policy.backoff_before(attempt, 7));
  }
  // Full jitter stays within [0, ladder].
  for (int attempt = 1; attempt <= 6; ++attempt) {
    RetryPolicy unjittered = policy;
    unjittered.jitter_seed = 0;
    EXPECT_LE(policy.backoff_before(attempt, 7),
              unjittered.backoff_before(attempt, 7));
  }
  // Distinct decorrelators (distinct ops) draw distinct backoffs — the
  // whole point: a throttled cohort must not re-stampede in lockstep.
  bool any_different = false;
  for (std::uint64_t d = 1; d <= 8; ++d) {
    if (policy.backoff_before(3, d) != policy.backoff_before(3, d + 100)) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
  // A different seed reshuffles the draws.
  RetryPolicy other = policy;
  other.jitter_seed = 4321;
  bool seed_matters = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    if (policy.backoff_before(attempt, 7) != other.backoff_before(attempt, 7)) {
      seed_matters = true;
    }
  }
  EXPECT_TRUE(seed_matters);
}

TEST(RetryPolicy, DeadlineBudgetStopsRetrying) {
  RetryPolicy policy;
  policy.deadline_ms = 500.0;
  EXPECT_FALSE(policy.over_deadline(common::from_ms(100.0),
                                    common::from_ms(100.0)));
  EXPECT_FALSE(policy.over_deadline(common::from_ms(400.0),
                                    common::from_ms(100.0)));
  EXPECT_TRUE(policy.over_deadline(common::from_ms(400.0),
                                   common::from_ms(101.0)));
  policy.deadline_ms = 0.0;  // unlimited
  EXPECT_FALSE(policy.over_deadline(common::from_ms(1e9), 0));
}

// The regression at the heart of this PR: with provider-side fair-queue
// throttling, a burst from one tenant used to surface kResourceExhausted
// to the caller because 429 was classified as non-retryable. With Retry v2
// the attempt backs off, the retry arrives after the backlog drains (the
// retry re-installs the virtual scope *advanced* by the time already
// spent), and the op completes with no client-visible error.
TEST(RetryPolicy, ThrottledOpSucceedsAfterBackoff) {
  const cloud::CongestionParams tight{.channels = 1,
                                      .per_op_service_ms = 10.0,
                                      .service_mbps = 200.0,
                                      .max_queue_depth = 1};

  // Without retry: the third simultaneous op from the tenant is a 429.
  {
    cloud::SimProvider provider(cloud::aliyun_profile(), 42);
    provider.set_congestion(tight);
    ASSERT_TRUE(provider.create("c").status.is_ok());
    CloudClient client(&provider, RetryPolicy::none());
    common::VirtualScope scope({.now = 0, .tenant = 1, .weight = 1.0});
    ASSERT_TRUE(client.put({"c", "a"}, common::bytes_of("x")).ok());
    ASSERT_TRUE(client.put({"c", "b"}, common::bytes_of("x")).ok());
    const auto r = client.put({"c", "burst"}, common::bytes_of("x"));
    ASSERT_EQ(r.status.code(), common::StatusCode::kResourceExhausted);
    EXPECT_EQ(client.recent_ops().back().attempts, 1);
  }

  // With retry: same burst, zero client-visible errors.
  {
    cloud::SimProvider provider(cloud::aliyun_profile(), 42);
    provider.set_congestion(tight);
    ASSERT_TRUE(provider.create("c").status.is_ok());
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.backoff_ms = 50.0;
    policy.retry_throttled = true;
    CloudClient client(&provider, policy);
    common::VirtualScope scope({.now = 0, .tenant = 1, .weight = 1.0});
    ASSERT_TRUE(client.put({"c", "a"}, common::bytes_of("x")).ok());
    ASSERT_TRUE(client.put({"c", "b"}, common::bytes_of("x")).ok());
    const auto r = client.put({"c", "burst"}, common::bytes_of("x"));
    EXPECT_TRUE(r.ok()) << r.status.to_string();
    EXPECT_GT(client.recent_ops().back().attempts, 1);
    // The backoff is charged to the op's virtual latency.
    EXPECT_GE(r.latency, common::from_ms(50.0));
    EXPECT_EQ(provider.object_count(), 3u);
  }
}

}  // namespace
}  // namespace hyrd::gcs
