// Range operations through the GCS-API middleware and the parallel
// session fan-out.
#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "gcsapi/session.h"

namespace hyrd::gcs {
namespace {

class RangeClientTest : public ::testing::Test {
 protected:
  RangeClientTest() {
    cloud::install_standard_four(registry_, 173);
    session_ = std::make_unique<MultiCloudSession>(registry_);
    session_->ensure_container_everywhere("c");
  }
  cloud::CloudRegistry registry_;
  std::unique_ptr<MultiCloudSession> session_;
};

TEST_F(RangeClientTest, GetRangeThroughClient) {
  auto& client = session_->client(session_->index_of("Aliyun"));
  client.put({"c", "k"}, common::bytes_of("hello world"));
  auto r = client.get_range({"c", "k"}, 6, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(common::to_string(r.data), "world");
  EXPECT_EQ(r.bytes_transferred, 5u);
}

TEST_F(RangeClientTest, PutRangeThroughClient) {
  auto& client = session_->client(session_->index_of("Aliyun"));
  client.put({"c", "k"}, common::bytes_of("hello world"));
  ASSERT_TRUE(client.put_range({"c", "k"}, 0, common::bytes_of("HELLO")).ok());
  auto r = client.get({"c", "k"});
  EXPECT_EQ(common::to_string(r.data), "HELLO world");
}

TEST_F(RangeClientTest, RangeOpsAppearInTrace) {
  auto& client = session_->client(session_->index_of("Aliyun"));
  client.put({"c", "k"}, common::bytes_of("0123456789"));
  client.get_range({"c", "k"}, 0, 4);
  client.put_range({"c", "k"}, 2, common::bytes_of("xy"));
  const auto trace = client.recent_ops();
  ASSERT_GE(trace.size(), 3u);
  EXPECT_EQ(trace[trace.size() - 2].op, cloud::OpKind::kGet);
  EXPECT_EQ(trace[trace.size() - 2].bytes, 4u);
  EXPECT_EQ(trace.back().op, cloud::OpKind::kPut);
  EXPECT_EQ(trace.back().bytes, 2u);
}

TEST_F(RangeClientTest, ParallelGetRangeBatch) {
  for (std::size_t i = 0; i < 4; ++i) {
    session_->client(i).put({"c", "k"}, common::patterned(10000, i));
  }
  std::vector<BatchRangeGet> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.push_back({i, {"c", "k"}, 100, 256});
  }
  common::SimDuration latency = 0;
  auto results = session_->parallel_get_range(batch, &latency);
  common::SimDuration max_single = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(results[i].ok());
    const common::Bytes full = common::patterned(10000, i);
    EXPECT_EQ(results[i].data,
              common::Bytes(full.begin() + 100, full.begin() + 356));
    max_single = std::max(max_single, results[i].latency);
  }
  EXPECT_EQ(latency, max_single);
}

TEST_F(RangeClientTest, ParallelPutRangeBatch) {
  for (std::size_t i = 0; i < 4; ++i) {
    session_->client(i).put({"c", "k"}, common::Bytes(1000, 0));
  }
  const auto patch = common::patterned(64, 1);
  std::vector<BatchRangePut> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.push_back({i, {"c", "k"}, 500, patch});
  }
  common::SimDuration latency = 0;
  auto results = session_->parallel_put_range(batch, &latency);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(results[i].ok());
    auto r = session_->client(i).get_range({"c", "k"}, 500, 64);
    EXPECT_EQ(r.data, patch);
  }
}

TEST_F(RangeClientTest, RangeBeyondEofSurfacesInvalidArgument) {
  auto& client = session_->client(0);
  client.put({"c", "k"}, common::Bytes(10, 0));
  EXPECT_EQ(client.get_range({"c", "k"}, 8, 5).status.code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(client.put_range({"c", "k"}, 8, common::Bytes(5, 0)).status.code(),
            common::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hyrd::gcs
