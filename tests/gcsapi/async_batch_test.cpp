// AsyncBatch: the completion-ordered engine under the GCS-API layer.
// Verifies the virtual-time aggregation contracts (await_all == legacy
// max, await_first == order statistic, offset chaining == legacy sums),
// the ack policies, and cooperative cancellation end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "cloud/cancel.h"
#include "cloud/profiles.h"
#include "common/bytes.h"
#include "gcsapi/async_batch.h"
#include "gcsapi/session.h"

namespace hyrd::gcs {
namespace {

class AsyncBatchTest : public ::testing::Test {
 protected:
  AsyncBatchTest() : session_((cloud::install_standard_four(registry_, 42),
                               registry_)) {
    session_.ensure_container_everywhere("c");
    payload_ = common::patterned(200000, 7);
    for (std::size_t i = 0; i < session_.client_count(); ++i) {
      session_.client(i).put({"c", "obj"}, payload_);
    }
  }

  cloud::CloudRegistry registry_;
  MultiCloudSession session_;
  common::Bytes payload_;
};

TEST_F(AsyncBatchTest, AwaitAllLatencyIsMaxArrival) {
  AsyncBatch batch(session_);
  for (std::size_t i = 0; i < 4; ++i) {
    batch.submit(CloudOp::get(i, {"c", "obj"}));
  }
  BatchStats stats;
  auto completions = batch.await_all(&stats);
  ASSERT_EQ(completions.size(), 4u);
  common::SimDuration max_arrival = 0;
  for (const auto& c : completions) {
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c.arrival, c.result.latency);  // offset 0: arrival == latency
    max_arrival = std::max(max_arrival, c.arrival);
  }
  EXPECT_EQ(stats.latency, max_arrival);
  EXPECT_EQ(stats.latency, stats.max_latency);
  EXPECT_EQ(stats.saved(), 0);
  EXPECT_EQ(stats.succeeded, 4u);
  EXPECT_EQ(stats.cancelled, 0u);
}

TEST_F(AsyncBatchTest, AwaitFirstChargesOrderStatistic) {
  // With no stragglers left in flight (all four resolve before the k-th
  // check can fire, or get cancelled), await_first's latency must be the
  // k-th smallest arrival over the usable responses it actually kept.
  constexpr std::size_t kNeed = 2;
  AsyncBatch batch(session_);
  for (std::size_t i = 0; i < 4; ++i) {
    batch.submit(CloudOp::get(i, {"c", "obj"}));
  }
  BatchStats stats;
  auto completions = batch.await_first(kNeed, &stats);

  std::vector<common::SimDuration> usable;
  common::SimDuration max_arrival = 0;
  for (const auto& c : completions) {
    if (c.cancelled) continue;
    max_arrival = std::max(max_arrival, c.arrival);
    if (c.result.status.is_ok()) usable.push_back(c.arrival);
  }
  ASSERT_GE(usable.size(), kNeed);
  std::sort(usable.begin(), usable.end());
  EXPECT_EQ(stats.latency, usable[kNeed - 1]);
  EXPECT_EQ(stats.max_latency, max_arrival);
  EXPECT_LE(stats.latency, stats.max_latency);
}

TEST_F(AsyncBatchTest, StartOffsetChainReproducesSequentialSum) {
  // Legacy sequential semantics: each op submitted at the previous op's
  // arrival; the final arrival is the sum of individual latencies.
  AsyncBatch batch(session_);
  common::SimDuration chain = 0;
  common::SimDuration sum = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    batch.submit(CloudOp::get(i, {"c", "obj"}, chain));
    auto c = batch.next();
    ASSERT_TRUE(c.has_value());
    ASSERT_TRUE(c->ok());
    EXPECT_EQ(c->arrival, chain + c->result.latency);
    chain = c->arrival;
    sum += c->result.latency;
  }
  EXPECT_EQ(chain, sum);
  EXPECT_EQ(batch.pending(), 0u);
}

TEST_F(AsyncBatchTest, AckPoliciesAreOrderedByRank) {
  const auto run = [&](AckPolicy policy, std::size_t quorum) {
    AsyncBatch batch(session_);
    for (std::size_t i = 0; i < 4; ++i) {
      batch.submit(CloudOp::put(
          i, {"c", "ack" + std::to_string(static_cast<int>(policy))},
          common::ByteSpan(payload_)));
    }
    BatchStats stats;
    auto completions = batch.await_ack(policy, &stats, quorum);
    EXPECT_EQ(stats.succeeded, 4u);  // every write still lands
    for (const auto& c : completions) EXPECT_TRUE(c.ok());
    return stats;
  };
  const auto first = run(AckPolicy::kFirstSuccess, 0);
  const auto quorum = run(AckPolicy::kQuorum, 3);
  const auto all = run(AckPolicy::kAll, 0);
  // Rank ordering must hold: 1st success <= 3rd success <= slowest.
  EXPECT_LE(first.latency, quorum.latency);
  EXPECT_LE(quorum.latency, all.latency);
  EXPECT_GT(first.latency, 0);
  EXPECT_EQ(all.latency, all.max_latency);
}

TEST_F(AsyncBatchTest, EveryAckPolicyLeavesIdenticalDurableState) {
  // Early ack must never trade away durability: whatever the policy, all
  // four replicas exist afterwards and billing saw all four puts.
  for (const auto policy :
       {AckPolicy::kAll, AckPolicy::kFirstSuccess, AckPolicy::kQuorum}) {
    cloud::CloudRegistry reg;
    cloud::install_standard_four(reg, 77);
    MultiCloudSession session(reg);
    session.ensure_container_everywhere("c");
    AsyncBatch batch(session);
    for (std::size_t i = 0; i < session.client_count(); ++i) {
      batch.submit(CloudOp::put(i, {"c", "k"}, common::ByteSpan(payload_)));
    }
    BatchStats stats;
    batch.await_ack(policy, &stats, 3);
    for (std::size_t i = 0; i < session.client_count(); ++i) {
      auto got = session.client(i).get({"c", "k"});
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.data, payload_);
      EXPECT_EQ(session.client(i).provider()->counters().puts, 1u);
    }
  }
}

TEST_F(AsyncBatchTest, CancelledStragglerIsCheapAndCounted) {
  // Wedge one provider with a stall hook that only releases when the
  // client tears the request down; prove the cancelled op costs nothing
  // (no latency draw, no billing, no counter except `cancelled`).
  auto* slow = registry_.find("WindowsAzure");
  const auto before = slow->counters();
  const double billed_before = slow->billing().open_month_transfer_cost();
  std::atomic<bool> stalled{false};
  slow->set_op_hook([&](cloud::OpKind, const cloud::ObjectKey&) {
    stalled.store(true);
    while (!cloud::CancelScope::cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  AsyncBatch batch(session_);
  const std::size_t slow_index = session_.index_of("WindowsAzure");
  for (std::size_t i = 0; i < 4; ++i) {
    batch.submit(CloudOp::get(i, {"c", "obj"}));
  }
  // Wait until the wedged request is provably inside the provider, then
  // complete at the first 3 usable responses; the straggler is cancelled.
  while (!stalled.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  BatchStats stats;
  auto completions = batch.await_first(3, &stats);
  slow->set_op_hook(nullptr);

  ASSERT_EQ(completions.size(), 4u);
  EXPECT_TRUE(completions[slow_index].cancelled);
  EXPECT_EQ(completions[slow_index].result.status.code(),
            common::StatusCode::kCancelled);
  EXPECT_EQ(completions[slow_index].result.latency, 0);
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.succeeded, 3u);

  const auto after = slow->counters();
  EXPECT_EQ(after.cancelled, before.cancelled + 1);
  EXPECT_EQ(after.gets, before.gets);  // never committed as a served GET
  EXPECT_EQ(after.bytes_read, before.bytes_read);
  EXPECT_EQ(slow->billing().open_month_transfer_cost(), billed_before);
}

TEST_F(AsyncBatchTest, CancelBeforeDispatchNeverReachesProvider) {
  // Saturate the pool with stalls so a later op is still queued when the
  // batch cancels; it must resolve kCancelled without touching the
  // provider at all (not even the op hook).
  auto* slow = registry_.find("WindowsAzure");
  std::atomic<int> entered{0};
  slow->set_op_hook([&](cloud::OpKind, const cloud::ObjectKey&) {
    entered.fetch_add(1);
    while (!cloud::CancelScope::cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  const std::size_t slow_index = session_.index_of("WindowsAzure");
  const std::size_t workers = session_.pool().size();

  AsyncBatch batch(session_);
  for (std::size_t i = 0; i < workers; ++i) {
    batch.submit(CloudOp::get(slow_index, {"c", "obj"}));
  }
  while (entered.load() < static_cast<int>(workers)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Every worker is wedged inside the hook; this op can only be queued.
  const std::size_t queued = batch.submit(CloudOp::get(0, {"c", "obj"}));
  const auto aliyun_gets_before =
      session_.client(0).provider()->counters().gets;
  batch.cancel_remaining();
  BatchStats stats;
  auto completions = batch.await_all(&stats);
  slow->set_op_hook(nullptr);

  EXPECT_TRUE(completions[queued].cancelled);
  EXPECT_EQ(entered.load(), static_cast<int>(workers));
  EXPECT_EQ(session_.client(0).provider()->counters().gets,
            aliyun_gets_before);
  // Pre-dispatch cancellations never reached a provider, so they don't
  // even show up in the target's cancelled audit counter.
  EXPECT_EQ(session_.client(0).provider()->counters().cancelled, 0u);
  EXPECT_EQ(stats.cancelled, static_cast<std::size_t>(workers) + 1);
}

TEST_F(AsyncBatchTest, LateSubmitAfterCancelStillRuns) {
  AsyncBatch batch(session_);
  batch.submit(CloudOp::get(0, {"c", "obj"}));
  batch.await_all();
  batch.cancel_remaining();  // no-op: everything resolved
  const std::size_t late = batch.submit(CloudOp::get(1, {"c", "obj"}));
  auto c = batch.next();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->op_index, late);
  EXPECT_TRUE(c->ok());
  EXPECT_EQ(c->result.data, payload_);
}

TEST_F(AsyncBatchTest, AdapterMatchesEngineAwaitAll) {
  // The parallel_* adapters are thin wrappers over await_all; the same
  // deterministic fleet must produce byte-identical results and the same
  // batch latency through either surface.
  cloud::CloudRegistry reg_a;
  cloud::CloudRegistry reg_b;
  cloud::install_standard_four(reg_a, 1234);
  cloud::install_standard_four(reg_b, 1234);
  MultiCloudSession sess_a(reg_a);
  MultiCloudSession sess_b(reg_b);
  for (auto* s : {&sess_a, &sess_b}) {
    s->ensure_container_everywhere("c");
    for (std::size_t i = 0; i < s->client_count(); ++i) {
      s->client(i).put({"c", "k"}, payload_);
    }
  }

  std::vector<BatchGet> gets;
  for (std::size_t i = 0; i < 4; ++i) gets.push_back({i, {"c", "k"}});
  common::SimDuration adapter_latency = 0;
  auto adapter_results = sess_a.parallel_get(gets, &adapter_latency);

  AsyncBatch batch(sess_b);
  for (std::size_t i = 0; i < 4; ++i) {
    batch.submit(CloudOp::get(i, {"c", "k"}));
  }
  BatchStats stats;
  auto engine_results = batch.await_all(&stats);

  EXPECT_EQ(adapter_latency, stats.latency);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(adapter_results[i].ok());
    ASSERT_TRUE(engine_results[i].ok());
    EXPECT_EQ(adapter_results[i].data, engine_results[i].result.data);
    EXPECT_EQ(adapter_results[i].latency, engine_results[i].result.latency);
  }
}

TEST_F(AsyncBatchTest, DestructorJoinsWedgedTasks) {
  // A batch abandoned mid-flight (e.g. its scheme threw) must cancel and
  // join its tasks rather than leaving a pool thread running into freed
  // buffers. If teardown failed to unwedge the stall, this test would
  // hang rather than fail.
  auto* slow = registry_.find("WindowsAzure");
  std::atomic<bool> stalled{false};
  slow->set_op_hook([&](cloud::OpKind, const cloud::ObjectKey&) {
    stalled.store(true);
    while (!cloud::CancelScope::cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  {
    AsyncBatch batch(session_);
    batch.submit(
        CloudOp::get(session_.index_of("WindowsAzure"), {"c", "obj"}));
    while (!stalled.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Batch destroyed with the op still wedged inside the provider.
  }
  slow->set_op_hook(nullptr);
  EXPECT_EQ(slow->counters().cancelled, 1u);
}

}  // namespace
}  // namespace hyrd::gcs
