#include "gcsapi/rest_codec.h"

#include <gtest/gtest.h>

namespace hyrd::gcs {
namespace {

using cloud::ObjectKey;
using cloud::OpKind;

TEST(RestCodec, EncodePutCarriesBody) {
  const auto req = encode_op(OpKind::kPut, {"c", "obj"},
                             common::bytes_of("payload"));
  EXPECT_EQ(req.method, "PUT");
  EXPECT_EQ(req.path, "/c/obj");
  EXPECT_EQ(common::to_string(req.body), "payload");
  EXPECT_EQ(req.headers.at("Content-Length"), "7");
}

TEST(RestCodec, EncodeMappings) {
  EXPECT_EQ(encode_op(OpKind::kCreate, {"c", ""}, {}).method, "PUT");
  EXPECT_EQ(encode_op(OpKind::kCreate, {"c", ""}, {}).path, "/c");
  EXPECT_EQ(encode_op(OpKind::kGet, {"c", "o"}, {}).method, "GET");
  EXPECT_EQ(encode_op(OpKind::kRemove, {"c", "o"}, {}).method, "DELETE");
  EXPECT_EQ(encode_op(OpKind::kList, {"c", ""}, {}).path, "/c?list");
}

class CodecRoundTripTest
    : public ::testing::TestWithParam<std::tuple<OpKind, ObjectKey>> {};

TEST_P(CodecRoundTripTest, EncodeSerializeParseDecode) {
  const auto [op, key] = GetParam();
  const common::Bytes body =
      op == OpKind::kPut ? common::patterned(100, 5) : common::Bytes{};
  const RestRequest encoded = encode_op(op, key, body);
  const common::Bytes wire = serialize(encoded);
  auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value(), encoded);
  auto decoded = decode_op(parsed.value());
  ASSERT_TRUE(decoded.is_ok()) << decoded.status().to_string();
  EXPECT_EQ(decoded.value().op, op);
  EXPECT_EQ(decoded.value().key, key);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, CodecRoundTripTest,
    ::testing::Values(
        std::make_tuple(OpKind::kCreate, ObjectKey{"bucket", ""}),
        std::make_tuple(OpKind::kPut, ObjectKey{"bucket", "file.txt"}),
        std::make_tuple(OpKind::kGet, ObjectKey{"bucket", "file.txt"}),
        std::make_tuple(OpKind::kRemove, ObjectKey{"bucket", "file.txt"}),
        std::make_tuple(OpKind::kList, ObjectKey{"bucket", ""}),
        // Names needing percent-escaping.
        std::make_tuple(OpKind::kPut, ObjectKey{"my container", "a/b c?d"}),
        std::make_tuple(OpKind::kGet, ObjectKey{"c", "100% legit"})));

TEST(RestCodec, ParseRejectsMissingTerminator) {
  const auto wire = common::bytes_of("GET /c/x HTTP/1.1\r\n");
  EXPECT_FALSE(parse_request(wire).is_ok());
}

TEST(RestCodec, ParseRejectsBadVersion) {
  const auto wire = common::bytes_of("GET /c/x HTTP/0.9\r\n\r\n");
  EXPECT_FALSE(parse_request(wire).is_ok());
}

TEST(RestCodec, ParseRejectsContentLengthMismatch) {
  const auto wire =
      common::bytes_of("PUT /c/x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab");
  EXPECT_FALSE(parse_request(wire).is_ok());
}

TEST(RestCodec, ParseAcceptsBodyWithoutContentLength) {
  const auto wire = common::bytes_of("PUT /c/x HTTP/1.1\r\n\r\nabc");
  auto parsed = parse_request(wire);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(common::to_string(parsed.value().body), "abc");
}

TEST(RestCodec, DecodeRejectsUnknownMethod) {
  RestRequest req{.method = "PATCH", .path = "/c/x"};
  EXPECT_FALSE(decode_op(req).is_ok());
}

TEST(RestCodec, DecodeRejectsGetContainerWithoutList) {
  RestRequest req{.method = "GET", .path = "/c"};
  EXPECT_FALSE(decode_op(req).is_ok());
}

TEST(RestCodec, DecodeRejectsDeleteContainer) {
  RestRequest req{.method = "DELETE", .path = "/c"};
  EXPECT_FALSE(decode_op(req).is_ok());
}

TEST(RestCodec, DecodeRejectsEmptyOrUnrootedPath) {
  EXPECT_FALSE(decode_op({.method = "GET", .path = ""}).is_ok());
  EXPECT_FALSE(decode_op({.method = "GET", .path = "c/x"}).is_ok());
  EXPECT_FALSE(decode_op({.method = "PUT", .path = "/"}).is_ok());
}

TEST(RestCodec, DecodeRejectsUnknownQuery) {
  RestRequest req{.method = "GET", .path = "/c?weird"};
  EXPECT_FALSE(decode_op(req).is_ok());
}

TEST(RestCodec, HttpStatusMappingRoundTrips) {
  for (auto code :
       {common::StatusCode::kOk, common::StatusCode::kNotFound,
        common::StatusCode::kUnavailable, common::StatusCode::kInvalidArgument,
        common::StatusCode::kAlreadyExists,
        common::StatusCode::kResourceExhausted}) {
    const common::Status st(code, "m");
    EXPECT_EQ(http_to_status(status_to_http(st), "m").code(), code);
  }
}

TEST(RestCodec, ThrottleMapsTo429BothWays) {
  // The throttle boundary: a fair-queue rejection must travel as HTTP 429
  // and come back as kResourceExhausted, never as a generic 5xx — the
  // retry policy's 429-vs-outage distinction depends on it.
  EXPECT_EQ(status_to_http(common::resource_exhausted("throttled")), 429);
  const common::Status back = http_to_status(429, "throttled");
  EXPECT_EQ(back.code(), common::StatusCode::kResourceExhausted);
  EXPECT_EQ(back.message(), "throttled");
  EXPECT_NE(status_to_http(common::unavailable("down")), 429);
}

TEST(RestCodec, DataLossMapsTo500) {
  EXPECT_EQ(status_to_http(common::data_loss("x")), 500);
  EXPECT_EQ(http_to_status(500, "x").code(), common::StatusCode::kInternal);
}

}  // namespace
}  // namespace hyrd::gcs
