#include <gtest/gtest.h>

#include "cloud/profiles.h"
#include "gcsapi/client.h"
#include "gcsapi/session.h"

namespace hyrd::gcs {
namespace {

class ClientSessionTest : public ::testing::Test {
 protected:
  ClientSessionTest() { cloud::install_standard_four(registry_, 42); }

  cloud::CloudRegistry registry_;
};

TEST_F(ClientSessionTest, ClientLifecycleThroughMiddleware) {
  CloudClient client(registry_.find("Aliyun"));
  ASSERT_TRUE(client.create("c").ok());
  ASSERT_TRUE(client.put({"c", "k"}, common::bytes_of("data")).ok());
  auto got = client.get({"c", "k"});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(common::to_string(got.data), "data");
  auto listing = client.list("c");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.names.size(), 1u);
  ASSERT_TRUE(client.remove({"c", "k"}).ok());
}

TEST_F(ClientSessionTest, EnsureContainerIsIdempotent) {
  CloudClient client(registry_.find("Aliyun"));
  EXPECT_TRUE(client.ensure_container("c").ok());
  EXPECT_TRUE(client.ensure_container("c").ok());
}

TEST_F(ClientSessionTest, TraceRecordsOps) {
  CloudClient client(registry_.find("Aliyun"));
  client.create("c");
  client.put({"c", "k"}, common::bytes_of("x"));
  client.get({"c", "k"});
  const auto trace = client.recent_ops();
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].op, cloud::OpKind::kCreate);
  EXPECT_EQ(trace[1].op, cloud::OpKind::kPut);
  EXPECT_EQ(trace[1].bytes, 1u);
  EXPECT_EQ(trace[2].op, cloud::OpKind::kGet);
  EXPECT_EQ(trace[2].provider, "Aliyun");
}

TEST_F(ClientSessionTest, TraceCapacityBounded) {
  CloudClient client(registry_.find("Aliyun"));
  client.set_trace_capacity(5);
  client.create("c");
  for (int i = 0; i < 20; ++i) {
    client.put({"c", "k" + std::to_string(i)}, common::bytes_of("x"));
  }
  EXPECT_EQ(client.recent_ops().size(), 5u);
}

TEST_F(ClientSessionTest, UnavailableNotRetriedByDefault) {
  registry_.find("Aliyun")->set_online(false);
  CloudClient client(registry_.find("Aliyun"));
  auto r = client.get({"c", "k"});
  EXPECT_EQ(r.status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(client.recent_ops().back().attempts, 1);
}

TEST_F(ClientSessionTest, UnavailableRetriedWhenPolicyAllows) {
  registry_.find("Aliyun")->set_online(false);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.retry_unavailable = true;
  CloudClient client(registry_.find("Aliyun"), policy);
  auto r = client.get({"c", "k"});
  EXPECT_EQ(r.status.code(), common::StatusCode::kUnavailable);
  EXPECT_EQ(client.recent_ops().back().attempts, 3);
}

TEST_F(ClientSessionTest, RetryBackoffAddsLatency) {
  registry_.find("Aliyun")->set_online(false);
  RetryPolicy no_retry = RetryPolicy::none();
  RetryPolicy with_retry{.max_attempts = 3,
                         .backoff_ms = 100.0,
                         .backoff_multiplier = 2.0,
                         .retry_unavailable = true};
  CloudClient a(registry_.find("Aliyun"), no_retry);
  CloudClient b(registry_.find("Aliyun"), with_retry);
  const auto la = a.get({"c", "k"}).latency;
  const auto lb = b.get({"c", "k"}).latency;
  // 3 attempts + backoffs (100 + 200 ms) vs 1 attempt.
  EXPECT_GE(lb, la * 3 + common::from_ms(300.0) - common::from_ms(1.0));
}

TEST_F(ClientSessionTest, SessionIndexing) {
  MultiCloudSession session(registry_);
  EXPECT_EQ(session.client_count(), 4u);
  EXPECT_EQ(session.index_of("AmazonS3"), 0u);
  EXPECT_EQ(session.index_of("Rackspace"), 3u);
  EXPECT_EQ(session.index_of("Nimbus"), static_cast<std::size_t>(-1));
}

TEST_F(ClientSessionTest, ParallelPutLatencyIsMax) {
  MultiCloudSession session(registry_);
  ASSERT_TRUE(session.ensure_container_everywhere("c").is_ok());

  const common::Bytes data = common::patterned(200000, 1);
  std::vector<BatchPut> batch;
  for (std::size_t i = 0; i < 4; ++i) {
    batch.push_back({i, {"c", "k" + std::to_string(i)}, data});
  }
  common::SimDuration batch_latency = 0;
  auto results = session.parallel_put(batch, &batch_latency);
  ASSERT_EQ(results.size(), 4u);
  common::SimDuration max_single = 0;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    max_single = std::max(max_single, r.latency);
  }
  EXPECT_EQ(batch_latency, max_single);
  EXPECT_GT(batch_latency, 0);
}

TEST_F(ClientSessionTest, ParallelGetReturnsInOrder) {
  MultiCloudSession session(registry_);
  session.ensure_container_everywhere("c");
  for (std::size_t i = 0; i < 4; ++i) {
    session.client(i).put({"c", "k"},
                          common::bytes_of("v" + std::to_string(i)));
  }
  std::vector<BatchGet> batch;
  for (std::size_t i = 0; i < 4; ++i) batch.push_back({i, {"c", "k"}});
  common::SimDuration lat = 0;
  auto results = session.parallel_get(batch, &lat);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(common::to_string(results[i].data), "v" + std::to_string(i));
  }
}

TEST_F(ClientSessionTest, ParallelRemoveHitsAllTargets) {
  MultiCloudSession session(registry_);
  session.ensure_container_everywhere("c");
  for (std::size_t i = 0; i < 4; ++i) {
    session.client(i).put({"c", "k"}, common::bytes_of("x"));
  }
  common::SimDuration lat = 0;
  auto results = session.parallel_remove({0, 1, 2, 3}, {"c", "k"}, &lat);
  for (const auto& r : results) EXPECT_TRUE(r.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(session.client(i).get({"c", "k"}).ok());
  }
}

TEST_F(ClientSessionTest, EnsureContainerEverywhereToleratesOutage) {
  registry_.find("Rackspace")->set_online(false);
  MultiCloudSession session(registry_);
  EXPECT_TRUE(session.ensure_container_everywhere("c").is_ok());
}

}  // namespace
}  // namespace hyrd::gcs
