#include "metadata/update_log.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "metadata/keyspace.h"

namespace hyrd::meta {
namespace {

TEST(UpdateLog, AppendAssignsIncreasingSeq) {
  UpdateLog log;
  const auto s1 = log.append("P", "c", "/a", "o1", LogAction::kPut);
  const auto s2 = log.append("P", "c", "/b", "o2", LogAction::kPut);
  EXPECT_LT(s1, s2);
  EXPECT_EQ(log.size(), 2u);
}

TEST(UpdateLog, PendingFiltersByProvider) {
  UpdateLog log;
  log.append("P1", "c", "/a", "o1", LogAction::kPut);
  log.append("P2", "c", "/b", "o2", LogAction::kPut);
  const auto pending = log.pending_for("P1");
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].path, "/a");
  EXPECT_EQ(pending[0].container, "c");
}

TEST(UpdateLog, PendingCompactsPerObject) {
  UpdateLog log;
  log.append("P", "c", "/a", "obj", LogAction::kPut);
  log.append("P", "c", "/a", "obj", LogAction::kPut);
  log.append("P", "c", "/a", "obj", LogAction::kRemove);
  const auto pending = log.pending_for("P");
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].action, LogAction::kRemove);  // last wins
}

TEST(UpdateLog, PendingOrderedBySeq) {
  UpdateLog log;
  log.append("P", "c", "/z", "oz", LogAction::kPut);
  log.append("P", "c", "/a", "oa", LogAction::kPut);
  const auto pending = log.pending_for("P");
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_LT(pending[0].seq, pending[1].seq);
  EXPECT_EQ(pending[0].path, "/z");
}

TEST(UpdateLog, TruncateDropsOnlyThatProviderPrefix) {
  UpdateLog log;
  const auto s1 = log.append("P1", "c", "/a", "o1", LogAction::kPut);
  log.append("P2", "c", "/b", "o2", LogAction::kPut);
  const auto s3 = log.append("P1", "c", "/c", "o3", LogAction::kPut);
  log.truncate("P1", s1);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.pending_for("P1").size(), 1u);
  log.truncate("P1", s3);
  EXPECT_TRUE(log.pending_for("P1").empty());
  EXPECT_EQ(log.pending_for("P2").size(), 1u);
}

TEST(UpdateLog, SerializeRestoreRoundTrip) {
  UpdateLog log;
  log.append("P1", "data", "/a", "o1", LogAction::kPut);
  log.append("P2", "meta", "//meta//d", "md1", LogAction::kRemove);
  const auto snapshot = log.serialize();

  UpdateLog restored;
  ASSERT_TRUE(restored.restore(snapshot).is_ok());
  EXPECT_EQ(restored.size(), 2u);
  const auto p2 = restored.pending_for("P2");
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p2[0].action, LogAction::kRemove);
  EXPECT_EQ(p2[0].container, "meta");

  // Sequence numbering continues after restore.
  const auto next = restored.append("P3", "c", "/x", "o", LogAction::kPut);
  EXPECT_GT(next, p2[0].seq);
}

TEST(UpdateLog, RestoreRejectsGarbage) {
  UpdateLog log;
  EXPECT_FALSE(log.restore(common::bytes_of("nonsense")).is_ok());
  EXPECT_FALSE(log.restore({}).is_ok());
}

TEST(UpdateLog, EmptyLogBehaviour) {
  UpdateLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(log.pending_for("P").empty());
  log.truncate("P", 100);  // no-op
  const auto snapshot = log.serialize();
  UpdateLog restored;
  EXPECT_TRUE(restored.restore(snapshot).is_ok());
  EXPECT_TRUE(restored.empty());
}

// --- UpdateLogIndex: the per-provider/per-shard record indexes ------------

const std::vector<std::string>& six_providers() {
  static const std::vector<std::string> p = {"AmazonS3",  "WindowsAzure",
                                             "Aliyun",    "Rackspace",
                                             "GoogleGCS", "BackblazeB2"};
  return p;
}

/// Fills a log with `n` records round-robined over six providers, where a
/// bounded hot set of objects keeps getting re-logged (a long outage's
/// shape). Also appends into `mirror` when given (the scan baseline).
void fill_outage_log(UpdateLog& log, std::size_t n,
                     std::vector<LogRecord>* mirror = nullptr) {
  const auto& providers = six_providers();
  const std::size_t hot = n / 50 + 1;
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t object = (state >> 33) % hot;
    LogRecord rec;
    rec.provider = providers[i % providers.size()];
    rec.container = "hyrd-data";
    rec.path = "d" + std::to_string(object % 7) + "/o" + std::to_string(object);
    rec.object_name = "o" + std::to_string(object);
    rec.action = LogAction::kPut;
    rec.seq = log.append(rec.provider, rec.container, rec.path,
                         rec.object_name, rec.action);
    if (mirror != nullptr) mirror->push_back(rec);
  }
}

/// The pre-index pending_for: scan the whole log, compact per object.
std::vector<LogRecord> scan_pending(const std::vector<LogRecord>& records,
                                    const std::string& provider) {
  std::unordered_map<std::string, std::size_t> latest;
  std::vector<LogRecord> out;
  for (const auto& rec : records) {
    if (rec.provider != provider) continue;
    auto [it, fresh] = latest.try_emplace(rec.object_name, out.size());
    if (fresh) {
      out.push_back(rec);
    } else {
      out[it->second] = rec;
    }
  }
  return out;
}

TEST(UpdateLogIndex, PendingForIsIndexedNotQuadraticOn100kRecords) {
  // Regression gate for the pre-index quadratic behavior: querying every
  // provider against a 10^5-record log must not rescan the whole log per
  // call. The wall-clock ratio bound is deliberately conservative (the
  // bench pins >= 10x on a quiet machine; sanitizer lanes run this test
  // too), and the results must agree with the scan oracle exactly.
  constexpr std::size_t kRecords = 100'000;
  UpdateLog log;
  std::vector<LogRecord> raw;
  fill_outage_log(log, kRecords, &raw);

  using Clock = std::chrono::steady_clock;
  double indexed_s = 0.0, scan_s = 0.0;
  for (const auto& provider : six_providers()) {
    const auto t0 = Clock::now();
    const auto pending = log.pending_for(provider);
    const auto t1 = Clock::now();
    const auto oracle = scan_pending(raw, provider);
    const auto t2 = Clock::now();
    indexed_s += std::chrono::duration<double>(t1 - t0).count();
    scan_s += std::chrono::duration<double>(t2 - t1).count();

    ASSERT_EQ(pending.size(), oracle.size()) << provider;
    std::unordered_map<std::string, std::uint64_t> oracle_seq;
    for (const auto& rec : oracle) oracle_seq[rec.object_name] = rec.seq;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      EXPECT_EQ(pending[i].seq, oracle_seq.at(pending[i].object_name));
      if (i > 0) EXPECT_LT(pending[i - 1].seq, pending[i].seq);
    }
  }
  EXPECT_GT(scan_s / indexed_s, 3.0)
      << "indexed " << indexed_s * 1e3 << " ms vs scan " << scan_s * 1e3
      << " ms";
}

TEST(UpdateLogIndex, TruncateLeavesOtherProvidersByteIdentical) {
  UpdateLog log;
  fill_outage_log(log, 3000);
  // Snapshot the other providers' pending sets, truncate one provider
  // completely, and require the rest unchanged record-for-record.
  const std::string victim = six_providers()[0];
  std::vector<std::vector<LogRecord>> before;
  for (std::size_t i = 1; i < six_providers().size(); ++i) {
    before.push_back(log.pending_for(six_providers()[i]));
  }
  const auto victim_pending = log.pending_for(victim);
  ASSERT_FALSE(victim_pending.empty());
  log.truncate(victim, victim_pending.back().seq);
  EXPECT_TRUE(log.pending_for(victim).empty());
  for (std::size_t i = 1; i < six_providers().size(); ++i) {
    const auto after = log.pending_for(six_providers()[i]);
    ASSERT_EQ(after.size(), before[i - 1].size());
    for (std::size_t r = 0; r < after.size(); ++r) {
      EXPECT_EQ(after[r].seq, before[i - 1][r].seq);
      EXPECT_EQ(after[r].object_name, before[i - 1][r].object_name);
    }
  }
}

TEST(UpdateLogIndex, SerializeIsByteStableForUnchangedLogicalLog) {
  UpdateLog log;
  fill_outage_log(log, 2000);
  const auto snapshot = log.serialize();

  // Read-side traffic must not perturb the serialized form.
  for (const auto& p : six_providers()) (void)log.pending_for(p);
  (void)log.pending_for_shard(six_providers()[0], 0);
  log.truncate(six_providers()[0], 0);  // logical no-op: seq 0 drops nothing
  EXPECT_EQ(log.serialize(), snapshot);

  // A restore of the snapshot re-serializes byte-identically.
  UpdateLog restored;
  ASSERT_TRUE(restored.restore(snapshot).is_ok());
  EXPECT_EQ(restored.serialize(), snapshot);

  // Binding a keyspace changes routing metadata only, never the bytes.
  const Keyspace ks(16);
  restored.bind_keyspace(&ks);
  EXPECT_EQ(restored.serialize(), snapshot);
}

TEST(UpdateLogIndex, WatermarkCompactionDropsShadowedRecords) {
  UpdateLog log;
  log.set_compaction_watermark(8);
  for (int i = 0; i < 32; ++i) {
    log.append("P", "c", "/a", "hot", LogAction::kPut);
  }
  EXPECT_GT(log.compactions(), 0u);
  // Shadowed records past the watermark are gone from the logical log;
  // only the latest survives, and pending still answers correctly.
  EXPECT_LT(log.size(), 32u);
  const auto pending = log.pending_for("P");
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].seq, 32u);
}

TEST(UpdateLogIndex, RestoreRebuildsProviderAndShardIndexes) {
  const Keyspace ks(16);
  UpdateLog log;
  log.bind_keyspace(&ks);
  fill_outage_log(log, 2000);
  const auto snapshot = log.serialize();

  UpdateLog restored;
  restored.bind_keyspace(&ks);
  ASSERT_TRUE(restored.restore(snapshot).is_ok());
  for (const auto& provider : six_providers()) {
    const auto want = log.pending_for(provider);
    const auto got = restored.pending_for(provider);
    ASSERT_EQ(got.size(), want.size()) << provider;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, want[i].seq);
    }
    for (std::size_t shard = 0; shard < ks.shard_count(); ++shard) {
      EXPECT_EQ(restored.pending_for_shard(provider, shard).size(),
                log.pending_for_shard(provider, shard).size());
    }
  }
}

TEST(UpdateLogIndex, PendingForShardPartitionsThePendingSet) {
  const Keyspace ks(4);
  UpdateLog log;
  log.bind_keyspace(&ks);
  fill_outage_log(log, 1500);

  for (const auto& provider : six_providers()) {
    const auto all = log.pending_for(provider);
    std::vector<LogRecord> unioned;
    for (std::size_t shard = 0; shard < ks.shard_count(); ++shard) {
      for (const auto& rec : log.pending_for_shard(provider, shard)) {
        EXPECT_EQ(ks.shard_of_path(rec.path), shard);
        unioned.push_back(rec);
      }
    }
    ASSERT_EQ(unioned.size(), all.size()) << provider;
  }

  // Unbound logs put everything in shard 0.
  UpdateLog unbound;
  fill_outage_log(unbound, 300);
  const auto& p0 = six_providers()[0];
  EXPECT_EQ(unbound.pending_for_shard(p0, 0).size(),
            unbound.pending_for(p0).size());
  EXPECT_TRUE(unbound.pending_for_shard(p0, 1).empty());
}

}  // namespace
}  // namespace hyrd::meta
