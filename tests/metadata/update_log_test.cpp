#include "metadata/update_log.h"

#include <gtest/gtest.h>

namespace hyrd::meta {
namespace {

TEST(UpdateLog, AppendAssignsIncreasingSeq) {
  UpdateLog log;
  const auto s1 = log.append("P", "c", "/a", "o1", LogAction::kPut);
  const auto s2 = log.append("P", "c", "/b", "o2", LogAction::kPut);
  EXPECT_LT(s1, s2);
  EXPECT_EQ(log.size(), 2u);
}

TEST(UpdateLog, PendingFiltersByProvider) {
  UpdateLog log;
  log.append("P1", "c", "/a", "o1", LogAction::kPut);
  log.append("P2", "c", "/b", "o2", LogAction::kPut);
  const auto pending = log.pending_for("P1");
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].path, "/a");
  EXPECT_EQ(pending[0].container, "c");
}

TEST(UpdateLog, PendingCompactsPerObject) {
  UpdateLog log;
  log.append("P", "c", "/a", "obj", LogAction::kPut);
  log.append("P", "c", "/a", "obj", LogAction::kPut);
  log.append("P", "c", "/a", "obj", LogAction::kRemove);
  const auto pending = log.pending_for("P");
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].action, LogAction::kRemove);  // last wins
}

TEST(UpdateLog, PendingOrderedBySeq) {
  UpdateLog log;
  log.append("P", "c", "/z", "oz", LogAction::kPut);
  log.append("P", "c", "/a", "oa", LogAction::kPut);
  const auto pending = log.pending_for("P");
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_LT(pending[0].seq, pending[1].seq);
  EXPECT_EQ(pending[0].path, "/z");
}

TEST(UpdateLog, TruncateDropsOnlyThatProviderPrefix) {
  UpdateLog log;
  const auto s1 = log.append("P1", "c", "/a", "o1", LogAction::kPut);
  log.append("P2", "c", "/b", "o2", LogAction::kPut);
  const auto s3 = log.append("P1", "c", "/c", "o3", LogAction::kPut);
  log.truncate("P1", s1);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.pending_for("P1").size(), 1u);
  log.truncate("P1", s3);
  EXPECT_TRUE(log.pending_for("P1").empty());
  EXPECT_EQ(log.pending_for("P2").size(), 1u);
}

TEST(UpdateLog, SerializeRestoreRoundTrip) {
  UpdateLog log;
  log.append("P1", "data", "/a", "o1", LogAction::kPut);
  log.append("P2", "meta", "//meta//d", "md1", LogAction::kRemove);
  const auto snapshot = log.serialize();

  UpdateLog restored;
  ASSERT_TRUE(restored.restore(snapshot).is_ok());
  EXPECT_EQ(restored.size(), 2u);
  const auto p2 = restored.pending_for("P2");
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_EQ(p2[0].action, LogAction::kRemove);
  EXPECT_EQ(p2[0].container, "meta");

  // Sequence numbering continues after restore.
  const auto next = restored.append("P3", "c", "/x", "o", LogAction::kPut);
  EXPECT_GT(next, p2[0].seq);
}

TEST(UpdateLog, RestoreRejectsGarbage) {
  UpdateLog log;
  EXPECT_FALSE(log.restore(common::bytes_of("nonsense")).is_ok());
  EXPECT_FALSE(log.restore({}).is_ok());
}

TEST(UpdateLog, EmptyLogBehaviour) {
  UpdateLog log;
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(log.pending_for("P").empty());
  log.truncate("P", 100);  // no-op
  const auto snapshot = log.serialize();
  UpdateLog restored;
  EXPECT_TRUE(restored.restore(snapshot).is_ok());
  EXPECT_TRUE(restored.empty());
}

}  // namespace
}  // namespace hyrd::meta
