#include "metadata/file_meta.h"

#include <gtest/gtest.h>

#include "metadata/serializer.h"

namespace hyrd::meta {
namespace {

FileMeta sample_meta() {
  FileMeta m;
  m.path = "/docs/report.pdf";
  m.size = 123456;
  m.mtime = 987654321;
  m.version = 7;
  m.redundancy = RedundancyKind::kErasure;
  m.crc = 0xCAFEBABE;
  m.stripe_k = 3;
  m.stripe_m = 1;
  m.shard_size = 41152;
  m.locations = {{"AmazonS3", "ab.s0"},
                 {"WindowsAzure", "ab.s1"},
                 {"Aliyun", "ab.s2"},
                 {"Rackspace", "ab.s3"}};
  return m;
}

TEST(FileMeta, SerializeDeserializeRoundTrip) {
  const FileMeta m = sample_meta();
  Writer w;
  m.serialize(w);
  Reader r(w.data());
  auto back = FileMeta::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), m);
  EXPECT_TRUE(r.at_end());
}

TEST(FileMeta, ReplicatedRoundTrip) {
  FileMeta m;
  m.path = "/a";
  m.redundancy = RedundancyKind::kReplicated;
  m.locations = {{"Aliyun", "x.r0"}, {"WindowsAzure", "x.r1"}};
  Writer w;
  m.serialize(w);
  Reader r(w.data());
  auto back = FileMeta::deserialize(r);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), m);
}

TEST(FileMeta, DeserializeRejectsBadVersion) {
  Writer w;
  w.u8(99);
  Reader r(w.data());
  EXPECT_FALSE(FileMeta::deserialize(r).is_ok());
}

TEST(FileMeta, DeserializeRejectsTruncation) {
  const FileMeta m = sample_meta();
  Writer w;
  m.serialize(w);
  auto full = w.take();
  for (std::size_t cut : {std::size_t{1}, std::size_t{10}, std::size_t{20},
                          full.size() - 1}) {
    common::Bytes truncated(full.begin(),
                            full.begin() + static_cast<std::ptrdiff_t>(cut));
    Reader r(truncated);
    EXPECT_FALSE(FileMeta::deserialize(r).is_ok()) << "cut=" << cut;
  }
}

TEST(FileMeta, DeserializeRejectsBadRedundancyKind) {
  FileMeta m = sample_meta();
  Writer w;
  m.serialize(w);
  auto bytes = w.take();
  // The redundancy byte follows: version(1) + path(4+16) + size(8) +
  // mtime(8) + version(8) = offset 45.
  bytes[45] = 9;
  Reader r(bytes);
  EXPECT_FALSE(FileMeta::deserialize(r).is_ok());
}

TEST(SplitPath, Basics) {
  EXPECT_EQ(split_path("/a/b/c.txt"), (std::pair<std::string, std::string>{
                                          "/a/b", "c.txt"}));
  EXPECT_EQ(split_path("/top.txt"),
            (std::pair<std::string, std::string>{"/", "top.txt"}));
  EXPECT_EQ(split_path("noslash"),
            (std::pair<std::string, std::string>{"/", "noslash"}));
}

TEST(FileMeta, DirectoryAndFilename) {
  FileMeta m;
  m.path = "/mail/inbox/0001";
  EXPECT_EQ(m.directory(), "/mail/inbox");
  EXPECT_EQ(m.filename(), "0001");
}

}  // namespace
}  // namespace hyrd::meta
