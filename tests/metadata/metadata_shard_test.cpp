// Property and concurrency tests for the sharded metadata plane: the
// MetadataStore must be observationally equivalent to the retained
// LegacyMetadataStore on every read surface, byte-compatible on the wire,
// and invariant under shard count — sharding is a layout choice, not a
// semantic one.
#include "metadata/metadata_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "metadata/legacy_store.h"

namespace hyrd::meta {
namespace {

FileMeta make_meta(std::string path, std::uint64_t version = 1,
                   std::uint64_t size = 4096) {
  FileMeta m;
  m.path = std::move(path);
  m.size = size;
  m.version = version;
  m.crc = static_cast<std::uint32_t>(version * 2654435761u);
  return m;
}

std::string random_path(common::Xoshiro256& rng) {
  return "d" + std::to_string(rng() % 13) + "/f" + std::to_string(rng() % 97);
}

TEST(MetadataShard, MatchesLegacyUnderRandomChurn) {
  for (const std::size_t shards : {1u, 4u, 16u, 64u}) {
    MetadataStore store(shards);
    LegacyMetadataStore legacy;
    common::Xoshiro256 rng(0xC0FFEE ^ shards);

    for (int op = 0; op < 5000; ++op) {
      const std::string path = random_path(rng);
      const std::uint64_t roll = rng() % 100;
      if (roll < 60) {
        FileMeta m = make_meta(path, rng() % 8 + 1, rng() % 100000);
        store.upsert(m);
        legacy.upsert(std::move(m));
      } else if (roll < 80) {
        EXPECT_EQ(store.erase(path), legacy.erase(path)) << path;
      } else {
        const auto a = store.lookup(path);
        const auto b = legacy.lookup(path);
        ASSERT_EQ(a.has_value(), b.has_value()) << path;
        if (a.has_value()) {
          EXPECT_EQ(a->version, b->version);
          EXPECT_EQ(a->size, b->size);
          EXPECT_EQ(a->crc, b->crc);
        }
      }
    }

    EXPECT_EQ(store.file_count(), legacy.file_count());
    EXPECT_EQ(store.directories(), legacy.directories());
    EXPECT_EQ(store.all_paths(), legacy.all_paths());
    for (const auto& dir : legacy.directories()) {
      const auto a = store.files_in(dir);
      const auto b = legacy.files_in(dir);
      ASSERT_EQ(a.size(), b.size()) << dir;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].path, b[i].path);
        EXPECT_EQ(a[i].version, b[i].version);
      }
    }
  }
}

TEST(MetadataShard, SerializeDirectoryBytesInvariantUnderShardCount) {
  // The directory block is the replication unit shipped to providers; its
  // bytes are pinned across shard counts AND against the legacy encoder.
  LegacyMetadataStore legacy;
  std::vector<MetadataStore*> stores;
  MetadataStore s1(1), s4(4), s16(16), s64(64);
  for (MetadataStore* s : {&s1, &s4, &s16, &s64}) stores.push_back(s);

  common::Xoshiro256 rng(123);
  for (int i = 0; i < 400; ++i) {
    FileMeta m = make_meta(random_path(rng), rng() % 5 + 1, rng() % 9999);
    for (MetadataStore* s : stores) s->upsert(m);
    legacy.upsert(std::move(m));
  }

  for (const auto& dir : legacy.directories()) {
    const auto reference = legacy.serialize_directory(dir);
    for (MetadataStore* s : stores) {
      EXPECT_EQ(s->serialize_directory(dir), reference) << dir;
    }
  }
  // A directory nobody populated serializes identically too (empty block).
  EXPECT_EQ(s1.serialize_directory("ghost"), legacy.serialize_directory("ghost"));
}

TEST(MetadataShard, SerializeLoadRoundTripsAcrossShardCounts) {
  // Blocks written by a store with one shard count load into any other:
  // the keyspace re-routes each record, and the result is byte-for-byte
  // re-serializable — determinism regardless of shard count.
  MetadataStore src(64);
  common::Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) {
    src.upsert(make_meta(random_path(rng), rng() % 9 + 1));
  }

  MetadataStore dst(4);
  for (const auto& dir : src.directories()) {
    ASSERT_TRUE(dst.load_directory_block(src.serialize_directory(dir)).is_ok());
  }
  EXPECT_EQ(dst.all_paths(), src.all_paths());
  EXPECT_EQ(dst.file_count(), src.file_count());
  for (const auto& dir : src.directories()) {
    EXPECT_EQ(dst.serialize_directory(dir), src.serialize_directory(dir));
  }
}

TEST(MetadataShard, UpsertVersionedAssignsMonotonicVersions) {
  MetadataStore store(16);
  FileMeta m = make_meta("a/b", /*version=*/0);
  EXPECT_EQ(store.upsert_versioned(m), 1u);
  EXPECT_EQ(m.version, 1u);
  EXPECT_EQ(store.upsert_versioned(m), 2u);
  EXPECT_EQ(store.upsert_versioned(m), 3u);
  EXPECT_EQ(store.lookup("a/b")->version, 3u);
  store.erase("a/b");
  EXPECT_EQ(store.upsert_versioned(m), 1u);  // fresh file restarts at 1
}

TEST(MetadataShard, WriteOrderMutexIsStablePerPath) {
  MetadataStore store(16);
  std::mutex& a = store.write_order_mu("mail/0001");
  std::mutex& b = store.write_order_mu("mail/0001");
  EXPECT_EQ(&a, &b);
}

TEST(MetadataShard, ShardOccupancySumsToFileCount) {
  MetadataStore store(16);
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) store.upsert(make_meta(random_path(rng)));
  std::size_t dirs = 0, files = 0;
  for (const auto& occ : store.shard_occupancy()) {
    dirs += occ.directories;
    files += occ.files;
  }
  EXPECT_EQ(files, store.file_count());
  EXPECT_EQ(dirs, store.directories().size());
}

// Readers, writers, erasers, and block loads racing across every shard.
// The assertions are deliberately light — this test exists for TSan (CI
// runs the MetadataShard suites under TSan and ASan/UBSan); correctness
// of results is covered by the deterministic tests above.
TEST(MetadataShardStress, ConcurrentChurnAcrossShards) {
  MetadataStore store(16);
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr int kOpsPerThread = 4000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> threads;

  // Seed blocks for the loader thread to replay concurrently.
  MetadataStore seed(1);
  for (int i = 0; i < 200; ++i) {
    seed.upsert(make_meta("d" + std::to_string(i % 13) + "/s" +
                          std::to_string(i)));
  }
  std::vector<common::Bytes> blocks;
  for (const auto& dir : seed.directories()) {
    blocks.push_back(seed.serialize_directory(dir));
  }

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      common::Xoshiro256 rng(1000 + w);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path = random_path(rng);
        if (rng.chance(0.3)) {
          store.erase(path);
        } else if (rng.chance(0.5)) {
          FileMeta m = make_meta(path);
          store.upsert_versioned(m);
        } else {
          store.upsert(make_meta(path, rng() % 4 + 1));
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      common::Xoshiro256 rng(2000 + r);
      std::uint64_t found = 0;
      while (!stop.load(std::memory_order_acquire)) {
        found += store.lookup(random_path(rng)).has_value() ? 1 : 0;
        if (rng.chance(0.01)) found += store.file_count();
        if (rng.chance(0.01)) found += store.files_in("d3").size();
      }
      sink.fetch_add(found);
    });
  }
  threads.emplace_back([&] {
    common::Xoshiro256 rng(3000);
    while (!stop.load(std::memory_order_acquire)) {
      const auto& block = blocks[rng() % blocks.size()];
      ASSERT_TRUE(store.load_directory_block(block).is_ok());
      sink.fetch_add(store.serialize_directory("d3").size());
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Post-churn sanity: every path the store lists is really present.
  for (const auto& path : store.all_paths()) {
    EXPECT_TRUE(store.lookup(path).has_value()) << path;
  }
}

}  // namespace
}  // namespace hyrd::meta
