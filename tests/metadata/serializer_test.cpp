#include "metadata/serializer.h"

#include <gtest/gtest.h>

namespace hyrd::meta {
namespace {

TEST(Serializer, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);

  Reader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0xBEEF);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Serializer, StringsAndBytesRoundTrip) {
  Writer w;
  w.str("hello");
  w.str("");
  w.bytes(common::patterned(100, 1));

  Reader r(w.data());
  EXPECT_EQ(r.str().value(), "hello");
  EXPECT_EQ(r.str().value(), "");
  EXPECT_EQ(r.bytes().value(), common::patterned(100, 1));
  EXPECT_TRUE(r.at_end());
}

TEST(Serializer, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 4u);
  EXPECT_EQ(d[0], 0x04);
  EXPECT_EQ(d[3], 0x01);
}

TEST(Serializer, TruncatedReadsFailCleanly) {
  Writer w;
  w.u32(7);
  Reader r(w.data());
  EXPECT_TRUE(r.u32().is_ok());
  EXPECT_FALSE(r.u8().is_ok());
  EXPECT_FALSE(r.u64().is_ok());
}

TEST(Serializer, TruncatedStringLengthFails) {
  Writer w;
  w.u32(100);  // declares 100 bytes, provides none
  Reader r(w.data());
  EXPECT_FALSE(r.str().is_ok());
}

TEST(Serializer, RemainingTracksPosition) {
  Writer w;
  w.u64(1);
  Reader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Serializer, UnicodeBytesSurvive) {
  Writer w;
  w.str("caf\xC3\xA9 \xE2\x98\x83");
  Reader r(w.data());
  EXPECT_EQ(r.str().value(), "caf\xC3\xA9 \xE2\x98\x83");
}

}  // namespace
}  // namespace hyrd::meta
