#include "metadata/metadata_store.h"

#include <gtest/gtest.h>

namespace hyrd::meta {
namespace {

FileMeta make_meta(const std::string& path, std::uint64_t version = 1) {
  FileMeta m;
  m.path = path;
  m.size = 100;
  m.version = version;
  m.redundancy = RedundancyKind::kReplicated;
  m.locations = {{"Aliyun", "obj.r0"}};
  return m;
}

TEST(MetadataStore, UpsertLookupErase) {
  MetadataStore store;
  store.upsert(make_meta("/a/b"));
  auto got = store.lookup("/a/b");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->path, "/a/b");
  EXPECT_TRUE(store.erase("/a/b"));
  EXPECT_FALSE(store.lookup("/a/b").has_value());
  EXPECT_FALSE(store.erase("/a/b"));
}

TEST(MetadataStore, UpsertOverwrites) {
  MetadataStore store;
  store.upsert(make_meta("/a/b", 1));
  store.upsert(make_meta("/a/b", 2));
  EXPECT_EQ(store.file_count(), 1u);
  EXPECT_EQ(store.lookup("/a/b")->version, 2u);
}

TEST(MetadataStore, DirectoryGrouping) {
  MetadataStore store;
  store.upsert(make_meta("/mail/1"));
  store.upsert(make_meta("/mail/2"));
  store.upsert(make_meta("/docs/x"));
  store.upsert(make_meta("/top"));

  const auto dirs = store.directories();
  EXPECT_EQ(dirs.size(), 3u);  // "/", "/docs", "/mail"
  EXPECT_EQ(store.files_in("/mail").size(), 2u);
  EXPECT_EQ(store.files_in("/docs").size(), 1u);
  EXPECT_EQ(store.files_in("/").size(), 1u);
  EXPECT_EQ(store.files_in("/none").size(), 0u);
  EXPECT_EQ(store.file_count(), 4u);
  EXPECT_EQ(store.all_paths().size(), 4u);
}

TEST(MetadataStore, EmptyDirectoryRemovedOnErase) {
  MetadataStore store;
  store.upsert(make_meta("/only/file"));
  store.erase("/only/file");
  EXPECT_TRUE(store.directories().empty());
}

TEST(MetadataStore, DirectoryBlockRoundTrip) {
  MetadataStore store;
  store.upsert(make_meta("/mail/1", 3));
  store.upsert(make_meta("/mail/2", 5));
  const common::Bytes block = store.serialize_directory("/mail");

  MetadataStore other;
  ASSERT_TRUE(other.load_directory_block(block).is_ok());
  EXPECT_EQ(other.file_count(), 2u);
  EXPECT_EQ(other.lookup("/mail/1")->version, 3u);
  EXPECT_EQ(other.lookup("/mail/2")->version, 5u);
}

TEST(MetadataStore, LoadBlockNewerVersionWins) {
  MetadataStore a;
  a.upsert(make_meta("/d/f", 5));
  const auto block_v5 = a.serialize_directory("/d");

  MetadataStore b;
  b.upsert(make_meta("/d/f", 7));
  ASSERT_TRUE(b.load_directory_block(block_v5).is_ok());
  EXPECT_EQ(b.lookup("/d/f")->version, 7u);  // older block does not clobber

  MetadataStore c;
  c.upsert(make_meta("/d/f", 2));
  ASSERT_TRUE(c.load_directory_block(block_v5).is_ok());
  EXPECT_EQ(c.lookup("/d/f")->version, 5u);  // newer block wins
}

TEST(MetadataStore, LoadBlockRejectsGarbage) {
  MetadataStore store;
  EXPECT_FALSE(store.load_directory_block(common::bytes_of("junk")).is_ok());
  EXPECT_FALSE(store.load_directory_block({}).is_ok());
}

TEST(MetadataStore, SerializeEmptyDirectoryIsLoadable) {
  MetadataStore store;
  const auto block = store.serialize_directory("/nothing");
  MetadataStore other;
  EXPECT_TRUE(other.load_directory_block(block).is_ok());
  EXPECT_EQ(other.file_count(), 0u);
}

TEST(MetadataStore, ClearEmptiesStore) {
  MetadataStore store;
  store.upsert(make_meta("/a"));
  store.clear();
  EXPECT_EQ(store.file_count(), 0u);
}

}  // namespace
}  // namespace hyrd::meta
