// Robustness fuzzing (deterministic): deserializers consume bytes that
// came over the network from providers we do not control. Random mutations
// and truncations of valid payloads — and pure noise — must produce clean
// Status errors, never crashes, hangs, or huge allocations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gcsapi/rest_codec.h"
#include "metadata/file_meta.h"
#include "metadata/metadata_store.h"
#include "metadata/serializer.h"
#include "metadata/update_log.h"

namespace hyrd::meta {
namespace {

common::Bytes valid_block() {
  MetadataStore store;
  for (int i = 0; i < 5; ++i) {
    FileMeta m;
    m.path = "/dir/f" + std::to_string(i);
    m.size = 1000 + i;
    m.version = i;
    m.redundancy =
        i % 2 == 0 ? RedundancyKind::kReplicated : RedundancyKind::kErasure;
    m.locations = {{"Aliyun", "o" + std::to_string(i)},
                   {"WindowsAzure", "p" + std::to_string(i)}};
    m.fragment_crcs = {1u, 2u, 3u};
    store.upsert(m);
  }
  return store.serialize_directory("/dir");
}

TEST(FuzzRobustness, MetadataBlockSingleByteMutations) {
  const common::Bytes block = valid_block();
  for (std::size_t pos = 0; pos < block.size(); ++pos) {
    for (std::uint8_t flip : {0x01, 0x80, 0xFF}) {
      common::Bytes bad = block;
      bad[pos] ^= flip;
      MetadataStore store;
      // Must return (either status); must not crash or hang.
      (void)store.load_directory_block(bad);
    }
  }
}

TEST(FuzzRobustness, MetadataBlockTruncations) {
  const common::Bytes block = valid_block();
  for (std::size_t len = 0; len < block.size(); ++len) {
    MetadataStore store;
    auto st = store.load_directory_block(
        common::ByteSpan(block.data(), len));
    EXPECT_FALSE(st.is_ok()) << "truncation to " << len << " accepted";
  }
}

TEST(FuzzRobustness, MetadataBlockRandomNoise) {
  common::Xoshiro256 rng(251);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t len = rng.uniform_int(0, 300);
    common::Bytes noise(len);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    MetadataStore store;
    (void)store.load_directory_block(noise);
    EXPECT_EQ(store.file_count(), 0u);
  }
}

TEST(FuzzRobustness, UpdateLogMutationsAndNoise) {
  UpdateLog log;
  log.append("P1", "c", "/a", "o1", LogAction::kPut);
  log.append("P2", "c", "/b", "o2", LogAction::kRemove);
  const common::Bytes snapshot = log.serialize();

  common::Xoshiro256 rng(257);
  for (int trial = 0; trial < 300; ++trial) {
    common::Bytes bad = snapshot;
    const std::size_t pos = rng.uniform_int(0, bad.size() - 1);
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    UpdateLog restored;
    (void)restored.restore(bad);  // any status; no crash
  }
  for (std::size_t len = 0; len < snapshot.size(); ++len) {
    UpdateLog restored;
    EXPECT_FALSE(
        restored.restore(common::ByteSpan(snapshot.data(), len)).is_ok());
  }
}

TEST(FuzzRobustness, LengthPrefixBombRejected) {
  // A hostile length prefix must not trigger a giant allocation: the
  // reader bounds-checks against the actual payload size.
  Writer w;
  w.u32(0x48795244);          // block magic
  w.str("/dir");
  w.u32(0xFFFFFFFF);          // claims 4 billion records
  MetadataStore store;
  EXPECT_FALSE(store.load_directory_block(w.data()).is_ok());

  Writer w2;
  w2.u32(0xFFFFFFFFu);  // string length prefix far beyond the buffer
  Reader r(w2.data());
  EXPECT_FALSE(r.str().is_ok());
}

TEST(FuzzRobustness, RestParserMutationsAndNoise) {
  const auto req = gcs::encode_op(cloud::OpKind::kPut, {"bucket", "obj"},
                                  common::patterned(64, 1));
  const common::Bytes wire = gcs::serialize(req);

  common::Xoshiro256 rng(263);
  for (int trial = 0; trial < 500; ++trial) {
    common::Bytes bad = wire;
    const std::size_t pos = rng.uniform_int(0, bad.size() - 1);
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
    auto parsed = gcs::parse_request(bad);
    if (parsed.is_ok()) {
      (void)gcs::decode_op(parsed.value());  // any status; no crash
    }
  }
  for (std::size_t len = 0; len < wire.size(); ++len) {
    (void)gcs::parse_request(common::ByteSpan(wire.data(), len));
  }
}

TEST(FuzzRobustness, FileMetaRandomNoise) {
  common::Xoshiro256 rng(269);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t len = rng.uniform_int(1, 200);
    common::Bytes noise(len);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng());
    Reader r(noise);
    (void)FileMeta::deserialize(r);
  }
}

}  // namespace
}  // namespace hyrd::meta
