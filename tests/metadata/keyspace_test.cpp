#include "metadata/keyspace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "metadata/shard_table.h"

namespace hyrd::meta {
namespace {

std::vector<std::string> sample_dirs(std::size_t n) {
  std::vector<std::string> dirs;
  dirs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    dirs.push_back("/mail/inbox/" + std::to_string(i));
  }
  return dirs;
}

TEST(MetadataShardKeyspace, RoutingIsDeterministicAcrossInstances) {
  const Keyspace a(16);
  const Keyspace b(16);
  for (const auto& dir : sample_dirs(500)) {
    EXPECT_EQ(a.shard_of_dir(dir), b.shard_of_dir(dir)) << dir;
  }
}

TEST(MetadataShardKeyspace, EveryShardOwnsSomeKeys) {
  const Keyspace ks(16);
  std::set<std::size_t> hit;
  for (const auto& dir : sample_dirs(2000)) hit.insert(ks.shard_of_dir(dir));
  EXPECT_EQ(hit.size(), 16u);
}

TEST(MetadataShardKeyspace, ShardOfHashStaysInRange) {
  const Keyspace ks(7);  // non-power-of-two on purpose
  common::Xoshiro256 rng(99);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(ks.shard_of_hash(rng()), 7u);
  }
  // Ring extremes: below the first point and past the last point (wrap).
  EXPECT_LT(ks.shard_of_hash(0), 7u);
  EXPECT_LT(ks.shard_of_hash(~std::uint64_t{0}), 7u);
}

TEST(MetadataShardKeyspace, LutRoutesMatchBinarySearchOracle) {
  // The radix-LUT fast path must agree with a from-scratch successor
  // search over the same deterministic vnode set.
  const std::size_t shards = 16;
  const Keyspace ks(shards);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring;
  for (std::size_t s = 0; s < shards; ++s) {
    common::SplitMix64 gen(0x6b657973'70616365ull ^ (s + 1));
    for (std::size_t v = 0; v < Keyspace::kDefaultVnodes; ++v) {
      ring.emplace_back(gen.next(), static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring.begin(), ring.end());
  const auto oracle = [&](std::uint64_t point) -> std::size_t {
    for (const auto& [where, shard] : ring) {
      if (where >= point) return shard;
    }
    return ring.front().second;  // wrap
  };
  common::Xoshiro256 rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t point = rng();
    EXPECT_EQ(ks.shard_of_hash(point), oracle(point)) << point;
  }
  // Exact boundary points route to themselves (successor is inclusive).
  for (std::size_t i = 0; i < ring.size(); i += 37) {
    EXPECT_EQ(ks.shard_of_hash(ring[i].first), oracle(ring[i].first));
  }
}

TEST(MetadataShardKeyspace, OwnershipSumsToOneAndIsRoughlyBalanced) {
  const Keyspace ks(16);
  const auto own = ks.ownership();
  ASSERT_EQ(own.size(), 16u);
  double total = 0.0;
  for (const double frac : own) {
    total += frac;
    EXPECT_GT(frac, 0.0);
    // 64 vnodes/shard keeps the imbalance well under 3x of fair share.
    EXPECT_LT(frac, 3.0 / 16.0);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MetadataShardKeyspace, MovedFractionIsZeroForIdenticalKeyspaces) {
  const Keyspace a(16);
  const Keyspace b(16);
  EXPECT_DOUBLE_EQ(Keyspace::moved_fraction(a, b), 0.0);
}

TEST(MetadataShardKeyspace, GrowthMovesOnlyTheNewShardsArcs) {
  // Consistent hashing's defining property: growing 16 -> 17 shards
  // relocates only keys the new shard claims (~1/17 of the space), and
  // every relocated directory lands on the new shard.
  const Keyspace before(16);
  const Keyspace after(17);
  const double moved = Keyspace::moved_fraction(before, after);
  EXPECT_GT(moved, 0.0);
  EXPECT_LT(moved, 2.5 / 17.0);  // near 1/17, generous bound

  for (const auto& dir : sample_dirs(2000)) {
    const std::size_t from = before.shard_of_dir(dir);
    const std::size_t to = after.shard_of_dir(dir);
    if (from != to) EXPECT_EQ(to, 16u) << dir;  // only into the new shard
  }
}

TEST(MetadataShardKeyspace, PathRoutesViaItsDirectory) {
  const Keyspace ks(16);
  EXPECT_EQ(ks.shard_of_path("/mail/inbox/0001"), ks.shard_of_dir("/mail/inbox"));
  EXPECT_EQ(ks.shard_of_path("rootfile"), ks.shard_of_dir("/"));
  EXPECT_EQ(ks.shard_of_path("/toplevel"), ks.shard_of_dir("/"));
}

TEST(MetadataShardKeyspace, StableKeyHashNeverReturnsZero) {
  // 0 is the shard table's empty sentinel; the hash must avoid it.
  EXPECT_NE(stable_key_hash(""), 0u);
  EXPECT_NE(stable_key_hash("/"), 0u);
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(stable_key_hash("k" + std::to_string(rng())), 0u);
  }
}

}  // namespace
}  // namespace hyrd::meta
