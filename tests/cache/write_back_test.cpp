#include <gtest/gtest.h>

#include "cache/write_back.h"

namespace hyrd::cache {
namespace {

common::Buffer bytes(const char* s) { return common::Buffer::of(s); }

std::string as_string(const common::Buffer& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(CacheWriteBack, AbsorbTracksBytesAndOrder) {
  WriteBackCache wb;
  EXPECT_TRUE(wb.empty());
  EXPECT_FALSE(wb.absorb("a", bytes("aaaa")));
  EXPECT_FALSE(wb.absorb("b", bytes("bb")));
  EXPECT_FALSE(wb.absorb("c", bytes("c")));
  EXPECT_EQ(wb.entries(), 3u);
  EXPECT_EQ(wb.bytes(), 7u);
  EXPECT_EQ(wb.paths(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CacheWriteBack, CoalesceReplacesInPlace) {
  WriteBackCache wb;
  wb.absorb("a", bytes("old"));
  wb.absorb("b", bytes("bb"));
  EXPECT_TRUE(wb.absorb("a", bytes("newest")));  // coalesced
  EXPECT_EQ(wb.entries(), 2u);
  EXPECT_EQ(wb.bytes(), 8u);  // 6 + 2
  ASSERT_NE(wb.lookup("a"), nullptr);
  EXPECT_EQ(as_string(*wb.lookup("a")), "newest");
  // FIFO position is kept: "a" is still the oldest entry.
  EXPECT_EQ(wb.paths(), (std::vector<std::string>{"a", "b"}));
}

TEST(CacheWriteBack, TakeGroupDrainsOldestFirst) {
  WriteBackCache wb;
  wb.absorb("a", bytes("1"));
  wb.absorb("b", bytes("2"));
  wb.absorb("c", bytes("3"));
  auto group = wb.take_group(2);
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].path, "a");
  EXPECT_EQ(group[1].path, "b");
  EXPECT_EQ(wb.entries(), 1u);
  EXPECT_EQ(wb.bytes(), 1u);
  EXPECT_EQ(wb.lookup("a"), nullptr);
  EXPECT_NE(wb.lookup("c"), nullptr);
}

TEST(CacheWriteBack, TakeAndDropByPath) {
  WriteBackCache wb;
  wb.absorb("a", bytes("abc"));
  wb.absorb("b", bytes("b"));
  auto taken = wb.take("a");
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->path, "a");
  EXPECT_EQ(as_string(taken->data), "abc");
  EXPECT_EQ(wb.bytes(), 1u);
  EXPECT_FALSE(wb.take("a").has_value());
  EXPECT_TRUE(wb.drop("b"));
  EXPECT_FALSE(wb.drop("b"));
  EXPECT_TRUE(wb.empty());
  EXPECT_EQ(wb.bytes(), 0u);
}

TEST(CacheWriteBack, RestoreReturnsToHeadInOrder) {
  WriteBackCache wb;
  wb.absorb("a", bytes("1"));
  wb.absorb("b", bytes("2"));
  wb.absorb("c", bytes("3"));
  auto group = wb.take_group(2);  // a, b out
  wb.restore(std::move(group));
  // Original order back: the retried flush sees the same sequence.
  EXPECT_EQ(wb.paths(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(wb.bytes(), 3u);
}

TEST(CacheWriteBack, RestoreNeverClobbersReabsorbedNewerPayload) {
  WriteBackCache wb;
  wb.absorb("a", bytes("v1"));
  auto group = wb.take_group(8);  // flush in flight with v1
  wb.absorb("a", bytes("v2-newer"));
  wb.restore(std::move(group));  // flush failed; v1 comes back
  EXPECT_EQ(wb.entries(), 1u);
  ASSERT_NE(wb.lookup("a"), nullptr);
  EXPECT_EQ(as_string(*wb.lookup("a")), "v2-newer");
  EXPECT_EQ(wb.bytes(), 8u);
}

}  // namespace
}  // namespace hyrd::cache
