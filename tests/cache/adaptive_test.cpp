#include <gtest/gtest.h>

#include <vector>

#include "cache/adaptive.h"

namespace hyrd::cache {
namespace {

AdaptiveConfig config(std::uint64_t interval = 8) {
  AdaptiveConfig c;
  c.enabled = true;
  c.adapt_interval = interval;
  c.min_threshold = 64ull << 10;
  c.max_threshold = 64ull << 20;
  return c;
}

/// A model with a hard crossover at `cross` bytes: replication cheaper
/// strictly below it, erasure cheaper at and above it.
CostModel crossover_model(double cross) {
  CostModel m;
  m.replicated_cost = [cross](std::uint64_t b) {
    return static_cast<double>(b) / cross;  // 1.0 at the crossover
  };
  m.erasure_cost = [](std::uint64_t) { return 1.0; };
  return m;
}

TEST(CacheAdaptive, MovesToTheModelCrossover) {
  AdaptiveThreshold at;
  std::vector<std::uint64_t> applied;
  at.configure(config(), crossover_model(4.0 * (1 << 20)),
               [&](std::uint64_t t) { applied.push_back(t); }, 1 << 20);
  EXPECT_EQ(at.current(), 1u << 20);
  // Writes spread across the whole candidate range, so every boundary
  // has mass and the argmin is sharp: 4MB (sizes below it replicate at
  // cost < 1, above it erasure wins).
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t s : {100ull << 10, 300ull << 10, 700ull << 10,
                            3ull << 20, 6ull << 20, 20ull << 20,
                            40ull << 20, 60ull << 20}) {
      at.observe_write(s);
    }
  }
  EXPECT_EQ(at.current(), 4ull << 20);
  ASSERT_FALSE(applied.empty());
  EXPECT_EQ(applied.back(), 4ull << 20);
  EXPECT_GE(at.recomputes(), 1u);
  EXPECT_EQ(at.applied_changes(), applied.size());
}

TEST(CacheAdaptive, HysteresisKeepsIncumbentOnFlatCost) {
  // No observed sizes anywhere near the candidate range's interior:
  // every candidate between the extremes ties, and the incumbent must
  // win the tie (no evidence, no movement).
  AdaptiveThreshold at;
  std::uint64_t changes = 0;
  at.configure(config(), crossover_model(4.0 * (1 << 20)),
               [&](std::uint64_t) { ++changes; }, 1 << 20);
  for (int i = 0; i < 32; ++i) at.observe_write(1024);  // all tiny
  EXPECT_EQ(at.current(), 1u << 20);
  EXPECT_EQ(changes, 0u);
  EXPECT_GE(at.recomputes(), 4u);
}

TEST(CacheAdaptive, DisabledObservesNothing) {
  AdaptiveThreshold at;
  AdaptiveConfig c = config();
  c.enabled = false;
  at.configure(c, crossover_model(1.0), [](std::uint64_t) { FAIL(); },
               1 << 20);
  for (int i = 0; i < 64; ++i) at.observe_write(1 << 30);
  EXPECT_EQ(at.recomputes(), 0u);
  EXPECT_EQ(at.current(), 1u << 20);
}

TEST(CacheAdaptive, DecayForgetsOldDistribution) {
  // Replication is cheap up to 256KB, ruinous above; erasure is flat.
  AdaptiveThreshold at;
  CostModel m;
  m.replicated_cost = [](std::uint64_t b) {
    return b <= (256u << 10) ? 0.5 : 10.0;
  };
  m.erasure_cost = [](std::uint64_t) { return 3.0; };
  at.configure(config(), m, nullptr, 1 << 20);
  // Phase 1: 512KB writes are misclassified replicated under the 1MB
  // incumbent (cost 10 vs erasure 3) — the threshold must drop below
  // 512KB's bucket representative (384KB).
  for (int i = 0; i < 16; ++i) at.observe_write(512ull << 10);
  EXPECT_LT(at.current(), 384ull << 10);
  const std::uint64_t after_phase1 = at.current();
  // Phase 2: 100KB writes dominate (rep 0.5 < erasure 3); the halving
  // decay lets them outweigh the phase-1 mass and pull the threshold
  // back above 100KB within a few recomputes.
  for (int i = 0; i < 64; ++i) at.observe_write(100ull << 10);
  EXPECT_GT(at.current(), 100ull << 10);
  EXPECT_NE(at.current(), after_phase1);
}

TEST(CacheAdaptive, DeterministicTrajectory) {
  auto run = [] {
    AdaptiveThreshold at;
    std::vector<std::uint64_t> applied;
    at.configure(config(4), crossover_model(2.0 * (1 << 20)),
                 [&](std::uint64_t t) { applied.push_back(t); }, 1 << 20);
    std::uint64_t s = 1021;
    for (int i = 0; i < 200; ++i) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      at.observe_write((s >> 40) + 1);
    }
    applied.push_back(at.current());
    return applied;
  };
  EXPECT_EQ(run(), run());
}

TEST(CacheAdaptive, ModeledCostSplitsAtThreshold) {
  AdaptiveThreshold at;
  CostModel m;
  m.replicated_cost = [](std::uint64_t) { return 1.0; };
  m.erasure_cost = [](std::uint64_t) { return 3.0; };
  at.configure(config(64), m, nullptr, 1 << 20);
  at.observe_write(4096);        // below any candidate: replicated
  at.observe_write(32ull << 20);  // above max candidate: erasure
  EXPECT_DOUBLE_EQ(at.modeled_cost(1 << 20), 1.0 + 3.0);
  EXPECT_DOUBLE_EQ(at.modeled_cost(64ull << 20), 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(at.modeled_cost(1), 3.0 + 3.0);
}

}  // namespace
}  // namespace hyrd::cache
