#include <gtest/gtest.h>

#include "cache/read_cache.h"

namespace hyrd::cache {
namespace {

common::Buffer filled(std::size_t n, std::uint8_t v) {
  common::MutableBuffer b(n);
  std::memset(b.data(), v, n);
  return std::move(b).freeze();
}

TEST(CacheReadCache, InsertLookupCountsHits) {
  ReadCache rc;
  rc.set_capacity(1024, 0.8);
  rc.insert("a", filled(16, 1));
  auto h1 = rc.lookup("a");
  ASSERT_TRUE(h1.has_value());
  EXPECT_EQ(h1->hits, 1u);
  EXPECT_EQ(h1->data.size(), 16u);
  EXPECT_EQ(h1->data.data()[0], 1);
  auto h2 = rc.lookup("a");
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(h2->hits, 2u);
  EXPECT_FALSE(rc.lookup("missing").has_value());
  EXPECT_EQ(rc.bytes(), 16u);
}

TEST(CacheReadCache, ScanResistance) {
  // A promoted (2-touch) entry survives a one-touch scan that overflows
  // the whole budget: scan traffic washes through probation only.
  ReadCache rc;
  rc.set_capacity(64, 0.5);
  rc.insert("hot", filled(16, 7));
  ASSERT_TRUE(rc.lookup("hot").has_value());  // promoted to protected
  for (int i = 0; i < 32; ++i) {
    rc.insert("scan" + std::to_string(i), filled(16, 1));
  }
  EXPECT_TRUE(rc.lookup("hot").has_value());
  EXPECT_LE(rc.bytes(), 64u);
  EXPECT_GT(rc.evictions(), 0u);
}

TEST(CacheReadCache, ProtectedOverflowDemotesNotDrops) {
  ReadCache rc;
  rc.set_capacity(64, 0.5);  // protected budget: 32 bytes = 2 entries
  for (int i = 0; i < 3; ++i) {
    rc.insert("p" + std::to_string(i), filled(16, 1));
    ASSERT_TRUE(rc.lookup("p" + std::to_string(i)).has_value());  // promote
  }
  // All three are still resident (one was demoted to probation, none
  // dropped: 48 bytes < 64 total).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(rc.lookup("p" + std::to_string(i)).has_value()) << i;
  }
  EXPECT_LE(rc.bytes(), 64u);
}

TEST(CacheReadCache, ByteBoundHolds) {
  ReadCache rc;
  rc.set_capacity(100, 0.8);
  for (int i = 0; i < 50; ++i) {
    rc.insert("k" + std::to_string(i), filled(30, 2));
    ASSERT_LE(rc.bytes(), 100u);
  }
  EXPECT_LE(rc.entries(), 3u);
}

TEST(CacheReadCache, OversizedObjectIgnored) {
  ReadCache rc;
  rc.set_capacity(64, 0.8);
  rc.insert("big", filled(100, 3));
  EXPECT_EQ(rc.entries(), 0u);
  EXPECT_FALSE(rc.lookup("big").has_value());
}

TEST(CacheReadCache, EraseAndClear) {
  ReadCache rc;
  rc.set_capacity(1024, 0.8);
  rc.insert("a", filled(8, 1));
  rc.insert("b", filled(8, 2));
  EXPECT_TRUE(rc.erase("a"));
  EXPECT_FALSE(rc.erase("a"));
  EXPECT_EQ(rc.bytes(), 8u);
  rc.clear();
  EXPECT_EQ(rc.entries(), 0u);
  EXPECT_EQ(rc.bytes(), 0u);
}

TEST(CacheReadCache, ReinsertRefreshesPayload) {
  ReadCache rc;
  rc.set_capacity(1024, 0.8);
  rc.insert("a", filled(8, 1));
  rc.insert("a", filled(12, 9));
  auto h = rc.lookup("a");
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->data.size(), 12u);
  EXPECT_EQ(h->data.data()[0], 9);
  EXPECT_EQ(rc.bytes(), 12u);
}

}  // namespace
}  // namespace hyrd::cache
