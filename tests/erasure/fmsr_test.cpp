#include "erasure/fmsr.h"

#include <gtest/gtest.h>

namespace hyrd::erasure {
namespace {

/// Chunk indices held by a node set.
std::vector<std::size_t> node_chunks(const Fmsr& code,
                                     const std::vector<std::size_t>& nodes) {
  std::vector<std::size_t> out;
  for (std::size_t node : nodes) {
    for (std::size_t c = 0; c < code.chunks_per_node(); ++c) {
      out.push_back(node * code.chunks_per_node() + c);
    }
  }
  return out;
}

common::Result<common::Bytes> decode_from_nodes(
    const Fmsr& code, const Fmsr::Encoded& enc,
    const std::vector<std::size_t>& nodes) {
  const auto indices = node_chunks(code, nodes);
  std::vector<common::Bytes> chunks;
  for (std::size_t i : indices) chunks.push_back(enc.chunks[i]);
  return code.decode(enc.coefficients, indices, chunks, enc.object_size,
                     enc.object_crc);
}

TEST(Fmsr, GeometryAccessors) {
  Fmsr code(4, 2);
  EXPECT_EQ(code.nodes(), 4u);
  EXPECT_EQ(code.chunks_per_node(), 2u);
  EXPECT_EQ(code.native_chunks(), 4u);
  EXPECT_EQ(code.total_chunks(), 8u);
}

TEST(Fmsr, EncodeProducesMdsCode) {
  Fmsr code(4, 2);
  common::Xoshiro256 rng(1);
  const auto enc = code.encode(common::patterned(10000, 1), rng);
  EXPECT_EQ(enc.chunks.size(), 8u);
  EXPECT_TRUE(code.mds_ok(enc.coefficients));
}

TEST(Fmsr, AnyTwoNodesDecode) {
  Fmsr code(4, 2);
  common::Xoshiro256 rng(2);
  const auto object = common::patterned(123457, 2);
  const auto enc = code.encode(object, rng);

  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      auto decoded = decode_from_nodes(code, enc, {a, b});
      ASSERT_TRUE(decoded.is_ok()) << a << "," << b;
      EXPECT_EQ(decoded.value(), object) << a << "," << b;
    }
  }
}

TEST(Fmsr, StorageOverheadMatchesRs) {
  // MSR point: total stored = n/k x object (same as RS), here 2x.
  Fmsr code(4, 2);
  common::Xoshiro256 rng(3);
  const auto enc = code.encode(common::patterned(1 << 20, 3), rng);
  std::size_t stored = 0;
  for (const auto& c : enc.chunks) stored += c.size();
  EXPECT_NEAR(static_cast<double>(stored) / (1 << 20), 2.0, 0.01);
}

TEST(Fmsr, PlannedRepairUsesOneChunkPerSurvivor) {
  // The regenerating property: 3 chunks of size M/4 = 0.75M repair
  // traffic, vs M for conventional erasure codes.
  Fmsr code(4, 2);
  common::Xoshiro256 rng(4);
  const auto object = common::patterned(1 << 20, 4);
  auto enc = code.encode(object, rng);

  const std::size_t failed = 1;
  auto plan = code.plan_repair(enc.coefficients, failed, rng);
  ASSERT_TRUE(plan.is_ok());
  ASSERT_EQ(plan.value().survivor_chunk_indices.size(), 3u);

  std::vector<common::Bytes> survivor_chunks;
  std::size_t repair_bytes = 0;
  for (std::size_t i : plan.value().survivor_chunk_indices) {
    EXPECT_NE(i / 2, failed);  // never downloads from the failed node
    survivor_chunks.push_back(enc.chunks[i]);
    repair_bytes += enc.chunks[i].size();
  }
  EXPECT_NEAR(static_cast<double>(repair_bytes) / (1 << 20), 0.75, 0.01);

  const auto new_chunks = code.execute_repair(plan.value(), survivor_chunks);
  ASSERT_EQ(new_chunks.size(), 2u);

  // Install the repaired chunks and verify full decodability again.
  enc.coefficients = plan.value().new_coefficients;
  enc.chunks[2] = new_chunks[0];
  enc.chunks[3] = new_chunks[1];
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      auto decoded = decode_from_nodes(code, enc, {a, b});
      ASSERT_TRUE(decoded.is_ok()) << a << "," << b;
      EXPECT_EQ(decoded.value(), object) << a << "," << b;
    }
  }
}

TEST(Fmsr, RepeatedRepairsStayMds) {
  // Functional repair changes coefficients each round; the MDS property
  // must survive a long sequence of failures.
  Fmsr code(4, 2);
  common::Xoshiro256 rng(5);
  const auto object = common::patterned(40000, 5);
  auto enc = code.encode(object, rng);

  for (int round = 0; round < 20; ++round) {
    const std::size_t failed = rng.uniform_int(0, 3);
    auto plan = code.plan_repair(enc.coefficients, failed, rng);
    ASSERT_TRUE(plan.is_ok()) << "round " << round;

    std::vector<common::Bytes> survivor_chunks;
    for (std::size_t i : plan.value().survivor_chunk_indices) {
      survivor_chunks.push_back(enc.chunks[i]);
    }
    const auto new_chunks = code.execute_repair(plan.value(), survivor_chunks);
    enc.coefficients = plan.value().new_coefficients;
    enc.chunks[failed * 2] = new_chunks[0];
    enc.chunks[failed * 2 + 1] = new_chunks[1];
    EXPECT_TRUE(code.mds_ok(enc.coefficients)) << "round " << round;

    auto decoded = decode_from_nodes(
        code, enc, {(failed + 1) % 4, (failed + 2) % 4});
    ASSERT_TRUE(decoded.is_ok()) << "round " << round;
    EXPECT_EQ(decoded.value(), object) << "round " << round;
  }
}

TEST(Fmsr, DecodeRejectsWrongChunkCount) {
  Fmsr code(4, 2);
  common::Xoshiro256 rng(6);
  const auto enc = code.encode(common::patterned(100, 6), rng);
  auto r = code.decode(enc.coefficients, {0, 1}, {enc.chunks[0],
                                                  enc.chunks[1]},
                       enc.object_size, enc.object_crc);
  EXPECT_FALSE(r.is_ok());
}

TEST(Fmsr, DecodeDetectsCorruption) {
  Fmsr code(4, 2);
  common::Xoshiro256 rng(7);
  auto enc = code.encode(common::patterned(5000, 7), rng);
  enc.chunks[0][10] ^= 0xFF;
  auto r = decode_from_nodes(code, enc, {0, 1});
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kDataLoss);
}

TEST(Fmsr, SmallAndEmptyObjects) {
  Fmsr code(4, 2);
  common::Xoshiro256 rng(8);
  for (std::uint64_t size : {0ull, 1ull, 3ull, 4ull, 5ull, 1000ull}) {
    const auto object = common::patterned(size, size + 9);
    const auto enc = code.encode(object, rng);
    auto decoded = decode_from_nodes(code, enc, {1, 3});
    ASSERT_TRUE(decoded.is_ok()) << size;
    EXPECT_EQ(decoded.value(), object) << size;
  }
}

TEST(Fmsr, AlternateGeometry) {
  // (n=3, k=2): 2 native chunks, 1 coded chunk per node.
  Fmsr code(3, 2);
  common::Xoshiro256 rng(9);
  const auto object = common::patterned(9999, 10);
  const auto enc = code.encode(object, rng);
  EXPECT_EQ(enc.chunks.size(), 3u);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      auto decoded = decode_from_nodes(code, enc, {a, b});
      ASSERT_TRUE(decoded.is_ok());
      EXPECT_EQ(decoded.value(), object);
    }
  }
}

}  // namespace
}  // namespace hyrd::erasure
