#include "erasure/gf256.h"

#include <gtest/gtest.h>

namespace hyrd::erasure {
namespace {

const GF256& gf() { return GF256::instance(); }

TEST(GF256, AddIsXor) {
  EXPECT_EQ(gf().add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf().sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(GF256, MulByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf().mul(static_cast<std::uint8_t>(a), 0), 0);
    EXPECT_EQ(gf().mul(0, static_cast<std::uint8_t>(a)), 0);
    EXPECT_EQ(gf().mul(static_cast<std::uint8_t>(a), 1), a);
  }
}

TEST(GF256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(gf().mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)),
                gf().mul(static_cast<std::uint8_t>(b),
                         static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(GF256, MulAssociative) {
  for (int a = 1; a < 256; a += 31) {
    for (int b = 1; b < 256; b += 37) {
      for (int c = 1; c < 256; c += 41) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf().mul(gf().mul(ua, ub), uc),
                  gf().mul(ua, gf().mul(ub, uc)));
      }
    }
  }
}

TEST(GF256, DistributiveOverAdd) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 17) {
      for (int c = 0; c < 256; c += 19) {
        const auto ua = static_cast<std::uint8_t>(a);
        const auto ub = static_cast<std::uint8_t>(b);
        const auto uc = static_cast<std::uint8_t>(c);
        EXPECT_EQ(gf().mul(ua, gf().add(ub, uc)),
                  gf().add(gf().mul(ua, ub), gf().mul(ua, uc)));
      }
    }
  }
}

TEST(GF256, InverseProperty) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf().mul(ua, gf().inv(ua)), 1) << "a=" << a;
  }
}

TEST(GF256, DivUndoesMul) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf().div(gf().mul(ua, ub), ub), ua);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 2; a < 256; a += 51) {
    const auto ua = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 10; ++n) {
      EXPECT_EQ(gf().pow(ua, n), acc);
      acc = gf().mul(acc, ua);
    }
  }
}

TEST(GF256, PowEdgeCases) {
  EXPECT_EQ(gf().pow(0, 0), 1);  // 0^0 convention
  EXPECT_EQ(gf().pow(0, 5), 0);
  EXPECT_EQ(gf().pow(1, 1000), 1);
}

TEST(GF256, MulAddRegionMatchesScalar) {
  common::Bytes src = common::patterned(257, 1);
  common::Bytes dst = common::patterned(257, 2);
  common::Bytes expected = dst;
  const std::uint8_t c = 0x8E;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] ^= gf().mul(c, src[i]);
  }
  gf().mul_add_region(dst, src, c);
  EXPECT_EQ(dst, expected);
}

TEST(GF256, MulAddRegionZeroCoefficientIsNoop) {
  common::Bytes src = common::patterned(64, 1);
  common::Bytes dst = common::patterned(64, 2);
  const common::Bytes before = dst;
  gf().mul_add_region(dst, src, 0);
  EXPECT_EQ(dst, before);
}

TEST(GF256, MulAddRegionOneCoefficientIsXor) {
  common::Bytes src = common::patterned(64, 1);
  common::Bytes dst = common::patterned(64, 2);
  common::Bytes expected = dst;
  for (std::size_t i = 0; i < 64; ++i) expected[i] ^= src[i];
  gf().mul_add_region(dst, src, 1);
  EXPECT_EQ(dst, expected);
}

TEST(GF256, MulRegionMatchesScalar) {
  common::Bytes src = common::patterned(100, 3);
  common::Bytes dst(100, 0);
  gf().mul_region(dst, src, 0x1D);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], gf().mul(0x1D, src[i]));
  }
}

// ---- Wide-word kernel vs scalar reference property tests ----
//
// The wide paths (uint64 / SSSE3 / AVX2, whichever the host dispatched)
// must be bit-identical to the retained byte-at-a-time reference for
// every length — including 0, sub-word tails, and unaligned base
// pointers, which is where vectorized head/tail handling goes wrong.

TEST(GF256, MulAddRegionWideMatchesReferenceAllSizes) {
  constexpr std::size_t kMaxLen = 1025;
  constexpr std::size_t kMargin = 8;
  const common::Bytes src_base = common::patterned(kMaxLen + kMargin, 17);
  const common::Bytes dst_base = common::patterned(kMaxLen + kMargin, 91);
  const std::uint8_t coeffs[] = {0x02, 0x1D, 0x57, 0x8E, 0xFF};
  for (const std::uint8_t c : coeffs) {
    for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                  std::size_t{3}, std::size_t{5}}) {
      for (std::size_t len = 0; len <= kMaxLen - off; ++len) {
        common::Bytes got(dst_base.begin(), dst_base.end());
        common::Bytes want = got;
        gf().mul_add_region(
            common::MutByteSpan(got.data() + off, len),
            common::ByteSpan(src_base.data() + off, len), c);
        gf().mul_add_region_scalar(
            common::MutByteSpan(want.data() + off, len),
            common::ByteSpan(src_base.data() + off, len), c);
        ASSERT_EQ(got, want) << "c=" << int(c) << " off=" << off
                             << " len=" << len;
      }
    }
  }
}

TEST(GF256, MulRegionWideMatchesReferenceAllSizes) {
  constexpr std::size_t kMaxLen = 1025;
  const common::Bytes src_base = common::patterned(kMaxLen + 8, 23);
  const std::uint8_t coeffs[] = {0x03, 0x8E, 0xC4};
  for (const std::uint8_t c : coeffs) {
    for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                  std::size_t{5}}) {
      for (std::size_t len = 0; len <= kMaxLen - off; ++len) {
        common::Bytes got(len, 0xAB);
        common::Bytes want(len, 0xAB);
        gf().mul_region(got, common::ByteSpan(src_base.data() + off, len), c);
        gf().mul_region_scalar(
            want, common::ByteSpan(src_base.data() + off, len), c);
        ASSERT_EQ(got, want) << "c=" << int(c) << " off=" << off
                             << " len=" << len;
      }
    }
  }
}

TEST(GF256, MulAddRegionMultiMatchesSequentialApplication) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{1}, std::size_t{255}, std::size_t{4096},
          std::size_t{9000}}) {
      std::vector<common::Bytes> shards;
      std::vector<common::ByteSpan> srcs;
      std::vector<std::uint8_t> coeffs;
      for (std::size_t i = 0; i < k; ++i) {
        shards.push_back(common::patterned(len, i + 2));
        coeffs.push_back(static_cast<std::uint8_t>(7 * i + 3));
      }
      for (const auto& s : shards) srcs.emplace_back(s);
      common::Bytes got = common::patterned(len, 77);
      common::Bytes want = got;
      gf().mul_add_region_multi(got, srcs, coeffs.data());
      for (std::size_t i = 0; i < k; ++i) {
        gf().mul_add_region(want, srcs[i], coeffs[i]);
      }
      ASSERT_EQ(got, want) << "k=" << k << " len=" << len;
    }
  }
}

TEST(GF256, RegionKernelNameIsReported) {
  // Smoke check for the dispatcher: some kernel must have been chosen.
  EXPECT_FALSE(GF256::region_kernel_name().empty());
}

}  // namespace
}  // namespace hyrd::erasure
